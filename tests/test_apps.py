"""Tests for the application layer (Jacobian, Hessian, SGD)."""

import numpy as np
import pytest
from scipy import sparse

from repro.apps import (
    ColorSchedule,
    HessianCompressor,
    JacobianCompressor,
    recover_jacobian,
    seed_matrix,
    sgd_factorize,
)
from repro.core.bgpc import color_bgpc
from repro.core.policies import B2Policy
from repro.datasets import random_bipartite
from repro.errors import ColoringError


@pytest.fixture(scope="module")
def jac_pattern(  # noqa: PT005 - module-scoped deterministic pattern
):
    rng = np.random.default_rng(8)
    dense = (rng.random((35, 50)) < 0.12).astype(float)
    dense[0, :10] = 1.0  # a denser row to make the coloring non-trivial
    return sparse.csr_matrix(dense)


class TestSeedMatrix:
    def test_shape_and_content(self):
        seeds = seed_matrix(np.array([0, 1, 0, 2]))
        assert seeds.shape == (4, 3)
        assert seeds[0, 0] == 1 and seeds[2, 0] == 1
        assert seeds.sum() == 4

    def test_empty(self):
        assert seed_matrix(np.array([], dtype=np.int64)).shape == (0, 0)


class TestJacobian:
    def test_exact_recovery_linear(self, jac_pattern):
        rng = np.random.default_rng(1)
        dense = jac_pattern.toarray() * rng.random(jac_pattern.shape)
        compressor = JacobianCompressor(jac_pattern, algorithm="N1-N2", threads=8)
        compressed = compressor.compress_product(dense)
        recovered = recover_jacobian(
            compressor.graph, compressor.colors, compressed
        )
        assert np.allclose(recovered.toarray(), dense)

    def test_finite_difference_estimate(self, jac_pattern):
        rng = np.random.default_rng(2)
        dense = jac_pattern.toarray() * rng.random(jac_pattern.shape)

        def func(x):
            return dense @ x

        compressor = JacobianCompressor(jac_pattern, algorithm="V-N2", threads=4)
        estimate = compressor.estimate(func, np.zeros(dense.shape[1]))
        assert np.allclose(estimate.toarray(), dense, atol=1e-6)

    def test_sequential_algorithm(self, jac_pattern):
        compressor = JacobianCompressor(jac_pattern, algorithm="sequential")
        assert compressor.num_colors >= compressor.graph.color_lower_bound()

    def test_compression_beats_identity(self, jac_pattern):
        compressor = JacobianCompressor(jac_pattern, algorithm="N1-N2")
        assert compressor.num_colors < jac_pattern.shape[1]
        assert compressor.compression_ratio > 1.0

    def test_rejects_wrong_x0_shape(self, jac_pattern):
        compressor = JacobianCompressor(jac_pattern)
        with pytest.raises(ColoringError, match="x0"):
            compressor.estimate(lambda x: x, np.zeros(3))

    def test_rejects_wrong_compressed_rows(self, jac_pattern):
        compressor = JacobianCompressor(jac_pattern)
        with pytest.raises(ColoringError, match="rows"):
            recover_jacobian(
                compressor.graph,
                compressor.colors,
                np.zeros((1, compressor.num_colors)),
            )


class TestHessian:
    @pytest.fixture(scope="class")
    def hessian(self):
        n = 40
        h = np.zeros((n, n))
        rng = np.random.default_rng(3)
        for i in range(n - 1):
            h[i, i + 1] = h[i + 1, i] = rng.random() + 0.1
        for i in range(n - 3):
            h[i, i + 3] = h[i + 3, i] = rng.random() * 0.5
        np.fill_diagonal(h, 2.0 + rng.random(n))
        return h

    def test_exact_recovery(self, hessian):
        pattern = sparse.csr_matrix((hessian != 0).astype(float))
        compressor = HessianCompressor(pattern, algorithm="N1-N2", threads=8)
        compressed = hessian @ compressor.seed()
        recovered = compressor.recover(compressed).toarray()
        assert np.allclose(recovered, hessian)

    def test_finite_difference(self, hessian):
        pattern = sparse.csr_matrix((hessian != 0).astype(float))
        compressor = HessianCompressor(pattern, algorithm="V-N1", threads=4)
        estimate = compressor.estimate(lambda x: hessian @ x, np.zeros(len(hessian)))
        assert np.allclose(estimate.toarray(), hessian, atol=1e-5)

    def test_fewer_colors_than_n(self, hessian):
        pattern = sparse.csr_matrix((hessian != 0).astype(float))
        compressor = HessianCompressor(pattern)
        assert compressor.num_colors < len(hessian)

    def test_rejects_bad_compressed_shape(self, hessian):
        pattern = sparse.csr_matrix((hessian != 0).astype(float))
        compressor = HessianCompressor(pattern)
        with pytest.raises(ColoringError):
            compressor.recover(np.zeros((2, 2)))


class TestSchedule:
    @pytest.fixture(scope="class")
    def instance(self):
        return random_bipartite(50, 70, density=0.08, seed=13)

    def test_classes_partition_columns(self, instance):
        result = color_bgpc(instance, algorithm="N1-N2", threads=8)
        schedule = ColorSchedule(instance, result.colors)
        all_members = np.sort(np.concatenate(schedule.classes))
        assert np.array_equal(all_members, np.arange(instance.num_vertices))

    def test_lock_freedom_invariant(self, instance):
        result = color_bgpc(instance, algorithm="V-N2", threads=8)
        ColorSchedule(instance, result.colors).assert_lock_free()

    def test_invalid_coloring_rejected(self, instance):
        bad = np.zeros(instance.num_vertices, dtype=np.int64)
        from repro.errors import InvalidColoringError

        with pytest.raises(InvalidColoringError):
            ColorSchedule(instance, bad)

    def test_stats(self, instance):
        result = color_bgpc(instance, algorithm="N1-N2", threads=8)
        schedule = ColorSchedule(instance, result.colors)
        stats = schedule.stats(cores=8)
        assert 0 < stats.utilization <= 1.0
        assert stats.actual_rounds >= stats.ideal_rounds

    def test_stats_rejects_bad_cores(self, instance):
        result = color_bgpc(instance, algorithm="N1-N2", threads=8)
        with pytest.raises(ColoringError):
            ColorSchedule(instance, result.colors).stats(cores=0)


class TestSgd:
    def test_loss_decreases(self):
        bg = random_bipartite(40, 60, density=0.1, seed=17)
        rng = np.random.default_rng(17)
        true_p = rng.normal(size=(40, 3))
        true_q = rng.normal(size=(60, 3))
        users = np.repeat(np.arange(40), bg.net_to_vtxs.degrees())
        items = bg.net_to_vtxs.idx
        values = np.einsum("ij,ij->i", true_p[users], true_q[items])
        _, _, losses, stats = sgd_factorize(
            bg, values, rank=3, epochs=6, threads=8, seed=0
        )
        assert losses[-1] < losses[0]
        assert stats.num_steps > 0

    def test_balanced_schedule_not_worse(self):
        bg = random_bipartite(60, 120, density=0.06, seed=23)
        values = np.ones(bg.num_edges)
        _, _, _, unbalanced = sgd_factorize(bg, values, epochs=1, threads=16)
        _, _, _, balanced = sgd_factorize(
            bg, values, epochs=1, threads=16, policy=B2Policy()
        )
        assert balanced.utilization >= unbalanced.utilization * 0.9

    def test_rejects_wrong_values_shape(self):
        bg = random_bipartite(10, 10, density=0.2, seed=1)
        with pytest.raises(ColoringError):
            sgd_factorize(bg, np.ones(3))
