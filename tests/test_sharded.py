"""Tests for ``backend="sharded"`` and the partitioner registry.

Covers the acceptance guarantees of the sharded backend (see
``docs/sharding.md``): exact parity with the :func:`distributed_bgpc`
oracle given the same partition and batch, byte-identical colors to
``backend="process"`` at one shard, valid colorings on every
regress-suite instance, and determinism at any shard count.  Plus
property tests (hypothesis) for all registered partitioners and the
memory-bound regression for the BFS frontier fix.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import color_bgpc, color_d2gc, validate_bgpc, validate_d2gc
from repro.cli import main
from repro.datasets import channel_mesh, random_bipartite, random_graph
from repro.dist import (
    distributed_bgpc,
    get_partitioner,
    partition_bfs,
    partition_contiguous,
    partition_greedy,
    partitioner_names,
)
from repro.errors import ColoringError
from repro.graph import (
    bipartite_from_dense,
    bipartite_from_edges,
    write_matrix_market,
)
from repro.graph.bipartite import BipartiteGraph

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def instance():
    return random_bipartite(80, 150, density=0.06, seed=53)


def _gview(bg):
    """The constraint-group view the sharded backend partitions on.

    For BGPC the groups are the nets themselves, but the backend rebuilds
    both CSR orientations from the net→vertex side — ``nets(u)`` ordering
    can differ from ``bg``'s, and BFS partitions are ordering-sensitive,
    so parity tests must partition the same view the backend does.
    """
    return BipartiteGraph.from_net_to_vtxs(bg.net_to_vtxs)


class TestOracleParity:
    @pytest.mark.parametrize("partitioner", ["bfs", "contiguous"])
    def test_matches_distributed_oracle(self, instance, partitioner):
        # Same partition + batch => exactly the oracle's colors and
        # superstep/conflict counts; only the communication accounting
        # differs (real exchanges vs the cluster model's charges).
        part = get_partitioner(partitioner)(_gview(instance), 3)
        oracle = distributed_bgpc(instance, ranks=3, batch=20, partition=part)
        result = color_bgpc(
            instance,
            "V-V",
            threads=3,
            backend="sharded",
            partitioner=partitioner,
            batch=20,
        )
        assert np.array_equal(result.colors, oracle.colors)
        assert result.num_colors == oracle.num_colors
        wm = result.work_metrics
        assert wm["shard.supersteps"] == oracle.supersteps
        assert wm["shard.conflicts"] == oracle.conflicts
        assert wm["shard.interior"] == oracle.interior
        assert wm["shard.boundary"] == oracle.boundary

    def test_counts_real_exchanges(self, instance):
        result = color_bgpc(
            instance, "V-V", threads=3, backend="sharded", batch=20
        )
        wm = result.work_metrics
        if wm["shard.boundary"]:
            # Two int64 words (id, color) per boundary pick, re-picked once
            # more per conflict; at least one message per superstep.
            assert wm["shard.comm_words"] == 2 * (
                wm["shard.boundary"] + wm["shard.conflicts"]
            )
            assert wm["shard.comm_messages"] >= wm["shard.supersteps"]

    def test_single_shard_matches_process_backend(self, instance):
        # One shard => every vertex interior, one worker, and the exact
        # colors backend="process" produces with one worker.
        sharded = color_bgpc(instance, "V-V", threads=1, backend="sharded")
        process = color_bgpc(instance, "V-V", threads=1, backend="process")
        assert np.array_equal(sharded.colors, process.colors)
        assert sharded.num_colors == process.num_colors
        wm = sharded.work_metrics
        assert wm["shard.boundary"] == 0
        assert wm["shard.supersteps"] == 0
        assert wm["shard.comm_words"] == 0


class TestValidityAndDeterminism:
    @pytest.mark.parametrize("partitioner", sorted(partitioner_names()))
    def test_valid_every_partitioner(self, instance, partitioner):
        result = color_bgpc(
            instance,
            "V-V",
            threads=3,
            backend="sharded",
            partitioner=partitioner,
        )
        validate_bgpc(instance, result.colors)

    def test_valid_on_regress_instances(self):
        # The same instances the pinned regress suite runs sharded cases on.
        for bg in (
            random_bipartite(120, 200, density=0.05, seed=7),
            channel_mesh(6, 5, 5),
        ):
            result = color_bgpc(bg, "V-V", threads=2, backend="sharded")
            validate_bgpc(bg, result.colors)

    def test_valid_d2gc(self):
        g = random_graph(200, 800, seed=11)
        result = color_d2gc(
            g, "V-V", threads=2, backend="sharded", partitioner="greedy"
        )
        validate_d2gc(g, result.colors)

    @pytest.mark.parametrize("batch", [1, 7, 1000])
    def test_valid_any_batch(self, instance, batch):
        result = color_bgpc(
            instance, "V-V", threads=4, backend="sharded", batch=batch
        )
        validate_bgpc(instance, result.colors)

    def test_deterministic_at_multiple_shards(self, instance):
        # Unlike threaded/process, sharded commits only at barriers — the
        # whole run is reproducible at any shard count.
        first = color_bgpc(instance, "V-V", threads=4, backend="sharded")
        for _ in range(2):
            again = color_bgpc(instance, "V-V", threads=4, backend="sharded")
            assert np.array_equal(first.colors, again.colors)
            assert first.work_metrics == again.work_metrics

    def test_iteration_records_cover_supersteps(self, instance):
        result = color_bgpc(
            instance, "V-V", threads=3, backend="sharded", batch=20
        )
        # Record 0 is the interior phase; one record per superstep after.
        assert len(result.iterations) == 1 + result.work_metrics[
            "shard.supersteps"
        ]
        assert result.iterations[0].conflicts == 0


@st.composite
def bipartite_graphs(draw, max_vertices=40, max_nets=30):
    num_vertices = draw(st.integers(1, max_vertices))
    num_nets = draw(st.integers(1, max_nets))
    num_edges = draw(st.integers(0, num_vertices * 3))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1), st.integers(0, num_nets - 1)
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return bipartite_from_edges(
        edges, num_vertices=num_vertices, num_nets=num_nets
    )


class TestPartitionerProperties:
    @SLOW
    @given(
        bg=bipartite_graphs(),
        ranks=st.integers(1, 6),
        name=st.sampled_from(["contiguous", "random", "bfs", "greedy"]),
        seed=st.integers(0, 3),
    )
    def test_every_vertex_owned(self, bg, ranks, name, seed):
        part = get_partitioner(name)(bg, ranks, seed=seed)
        assert part.shape == (bg.num_vertices,)
        assert part.dtype == np.int64
        if part.size:
            assert part.min() >= 0
            assert part.max() < ranks

    @SLOW
    @given(n=st.integers(0, 200), ranks=st.integers(1, 9))
    def test_contiguous_balance(self, n, ranks):
        part = partition_contiguous(n, ranks)
        sizes = np.bincount(part, minlength=ranks)
        assert sizes.max() - sizes.min() <= 1
        assert np.all(np.diff(part) >= 0)

    @SLOW
    @given(bg=bipartite_graphs(), ranks=st.integers(1, 6))
    def test_bfs_balance_bound(self, bg, ranks):
        part = partition_bfs(bg, ranks)
        cap = -(-bg.num_vertices // ranks) + 1
        assert np.bincount(part, minlength=ranks).max() <= cap

    @SLOW
    @given(bg=bipartite_graphs(), ranks=st.integers(1, 6))
    def test_greedy_balance_bound(self, bg, ranks):
        part = partition_greedy(bg, ranks)
        cap = -(-bg.num_vertices // ranks) + 1
        assert np.bincount(part, minlength=ranks).max() <= cap

    @SLOW
    @given(
        bg=bipartite_graphs(),
        ranks=st.integers(1, 6),
        name=st.sampled_from(["contiguous", "random", "bfs", "greedy"]),
        seed=st.integers(0, 3),
    )
    def test_deterministic_per_seed(self, bg, ranks, name, seed):
        fn = get_partitioner(name)
        assert np.array_equal(fn(bg, ranks, seed=seed), fn(bg, ranks, seed=seed))

    @SLOW
    @given(
        bg=bipartite_graphs(max_vertices=5),
        name=st.sampled_from(["contiguous", "random", "bfs", "greedy"]),
    )
    def test_more_ranks_than_vertices(self, bg, name):
        ranks = bg.num_vertices + 3
        part = get_partitioner(name)(bg, ranks)
        assert part.shape == (bg.num_vertices,)
        if part.size:
            assert part.min() >= 0
            assert part.max() < ranks


class TestBfsMemoryBound:
    def test_dense_net_queue_stays_linear(self):
        # One net spanning all n vertices: before the mark-on-enqueue fix
        # every dequeue re-enqueued all unassigned neighbors, growing the
        # frontier O(E) = O(n^2) total with an O(n * target) peak.  The
        # frontier now holds each vertex at most once per part.
        n = 300
        pattern = np.ones((1, n), dtype=int)
        bg = bipartite_from_dense(pattern)
        stats = {}
        part = partition_bfs(bg, 4, stats=stats)
        assert stats["max_queue"] <= n
        assert part.shape == (n,)
        assert part.min() >= 0 and part.max() < 4

    def test_fix_preserves_partition(self):
        # The stamp-array fix is output-identical: a part never enqueues a
        # vertex twice, but a later part may still claim it.
        bg = random_bipartite(60, 100, density=0.1, seed=3)
        stats = {}
        part = partition_bfs(bg, 3, stats=stats)
        sizes = np.bincount(part, minlength=3)
        assert sizes.sum() == bg.num_vertices
        assert sizes.max() <= -(-bg.num_vertices // 3) + 1
        assert stats["max_queue"] <= bg.num_vertices


class TestRejections:
    def test_rejects_balancing_policies(self, instance):
        with pytest.raises(ColoringError, match="first-fit"):
            color_bgpc(
                instance, "V-V", threads=2, backend="sharded", policy="B1"
            )

    def test_rejects_resume(self, instance):
        initial = np.full(instance.num_vertices, -1, dtype=np.int64)
        with pytest.raises(ColoringError, match="resume"):
            color_bgpc(
                instance,
                "V-V",
                threads=2,
                backend="sharded",
                initial_colors=initial,
            )

    def test_rejects_bad_batch(self, instance):
        with pytest.raises(ColoringError, match="batch"):
            color_bgpc(
                instance, "V-V", threads=2, backend="sharded", batch=0
            )

    def test_unknown_partitioner_lists_names(self, instance):
        with pytest.raises(ColoringError, match="bfs"):
            color_bgpc(
                instance,
                "V-V",
                threads=2,
                backend="sharded",
                partitioner="metis",
            )

    def test_get_partitioner_error_lists_names(self):
        with pytest.raises(ValueError, match="contiguous"):
            get_partitioner("nope")

    @pytest.mark.parametrize("backend", ["sim", "threaded", "numpy"])
    def test_other_backends_reject_sharded_options(self, instance, backend):
        # Free-form backend options must fail loudly where unsupported,
        # never be silently ignored.
        with pytest.raises(ColoringError, match="partitioner"):
            color_bgpc(
                instance,
                "V-V",
                threads=2,
                backend=backend,
                partitioner="bfs",
            )


class TestShardedCli:
    @pytest.fixture
    def mtx_file(self, tmp_path, rng):
        pattern = (rng.random((20, 30)) < 0.15).astype(int)
        bg = bipartite_from_dense(pattern)
        path = tmp_path / "instance.mtx"
        write_matrix_market(bg, path)
        return path

    def test_runs_sharded(self, mtx_file, capsys):
        code = main(
            [
                str(mtx_file),
                "--algorithm",
                "V-V",
                "--backend",
                "sharded",
                "--shards",
                "2",
                "--partitioner",
                "bfs",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sharded" in out
        assert "shards" in out

    @pytest.mark.parametrize(
        "flags", [["--shards", "2"], ["--partitioner", "bfs"]]
    )
    def test_flags_require_sharded_backend(self, mtx_file, capsys, flags):
        assert main([str(mtx_file), *flags]) == 2
        err = capsys.readouterr().err
        assert "--backend sharded" in err

    def test_delta_rejects_sharded(self, mtx_file, tmp_path, capsys):
        delta = tmp_path / "delta.json"
        delta.write_text('{"add": [[0, 0]], "remove": []}')
        code = main(
            [
                str(mtx_file),
                "--algorithm",
                "V-V",
                "--backend",
                "sharded",
                "--delta",
                str(delta),
            ]
        )
        assert code == 2
        assert "sharded" in capsys.readouterr().err
