"""Tests for the synthetic dataset generators and the registry."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    PAPER_DATASETS,
    bgpc_dataset_names,
    cfd_like,
    channel_mesh,
    copapers_like,
    d2gc_dataset_names,
    kkt_like,
    load_dataset,
    movielens_like,
    random_bipartite,
    random_graph,
    shell_mesh,
    stencil3d,
    web_like,
)
from repro.datasets.registry import load_d2gc_dataset
from repro.errors import DatasetError


class TestRegistry:
    def test_eight_paper_datasets(self):
        assert len(PAPER_DATASETS) == 8
        assert set(bgpc_dataset_names()) == set(DATASETS)

    def test_five_symmetric_for_d2gc(self):
        assert set(d2gc_dataset_names()) == {
            "af_shell", "bone", "channel", "copapers", "kkt",
        }

    def test_all_tiny_instances_build(self):
        for name in bgpc_dataset_names():
            bg = load_dataset(name, "tiny")
            assert bg.num_vertices > 0
            assert bg.num_edges > 0

    def test_symmetry_flags_match_structure(self):
        for spec in PAPER_DATASETS:
            bg = load_dataset(spec.name, "tiny")
            assert bg.is_structurally_symmetric() == spec.d2gc, spec.name

    def test_d2gc_loader_rejects_asymmetric(self):
        with pytest.raises(DatasetError, match="not structurally"):
            load_d2gc_dataset("web", "tiny")

    def test_d2gc_loader_returns_graph(self):
        g = load_d2gc_dataset("channel", "tiny")
        assert g.num_vertices == load_dataset("channel", "tiny").num_vertices

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_unknown_scale(self):
        with pytest.raises(DatasetError, match="scale"):
            load_dataset("channel", "huge")

    def test_caching(self):
        assert load_dataset("kkt", "tiny") is load_dataset("kkt", "tiny")


class TestGeneratorDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: movielens_like(num_nets=30, num_vertices=90, avg_net_size=6,
                                   max_net_size=30, seed=1),
            lambda: web_like(num_vertices=80, avg_degree=4, max_degree=20, seed=1),
            lambda: copapers_like(num_vertices=80, num_cliques=25, max_clique=10,
                                  seed=1),
            lambda: cfd_like(num_vertices=60, block=6, extra_links=1, seed=1),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        a, b = factory(), factory()
        assert a.net_to_vtxs.sorted() == b.net_to_vtxs.sorted()


class TestStructuralTraits:
    def test_movielens_giant_net(self):
        bg = movielens_like(num_nets=40, num_vertices=200, avg_net_size=6,
                            max_net_size=100, seed=2)
        assert bg.color_lower_bound() == 100  # the blockbuster net

    def test_movielens_rectangular(self):
        bg = load_dataset("movielens", "tiny")
        assert bg.num_nets != bg.num_vertices

    def test_channel_regular_interior_degree(self):
        bg = channel_mesh(nx=8, ny=6, nz=6)
        degs = bg.vtx_to_nets.degrees()
        # interior vertices: 18 neighbours + diagonal = 19
        assert degs.max() == 19
        assert np.median(degs) >= 13

    def test_shell_bounded_degree(self):
        bg = shell_mesh(nx=12, ny=12)
        assert bg.vtx_to_nets.max_degree() <= 25

    def test_stencil3d_degree_band(self):
        bg = stencil3d(nx=6, ny=6, nz=6)
        # 27-point stencil plus 3 axial second-shell links and diagonal
        assert 27 <= bg.vtx_to_nets.max_degree() <= 34

    def test_copapers_clique_union(self):
        bg = copapers_like(num_vertices=100, num_cliques=30, max_clique=12, seed=4)
        # a clique-heavy graph: max degree well above the average
        degs = bg.vtx_to_nets.degrees()
        assert degs.max() > 2 * degs.mean()

    def test_cfd_block_structure(self):
        bg = cfd_like(num_vertices=60, block=6, extra_links=0, seed=0)
        # without extras, every net covers exactly its block
        assert bg.color_lower_bound() == 6

    def test_kkt_symmetric(self):
        bg = kkt_like(grid=(4, 4, 3), num_constraints=20, vars_per_constraint=4)
        assert bg.is_structurally_symmetric()

    def test_web_square_asymmetric(self):
        bg = web_like(num_vertices=100, avg_degree=4, max_degree=25, seed=3)
        assert bg.num_nets == bg.num_vertices
        assert not bg.is_structurally_symmetric()


class TestGeneratorErrors:
    def test_movielens_bad_dims(self):
        with pytest.raises(DatasetError):
            movielens_like(num_nets=0, num_vertices=5)

    def test_cfd_block_too_big(self):
        with pytest.raises(DatasetError):
            cfd_like(num_vertices=5, block=10)

    def test_stencil_too_small(self):
        with pytest.raises(DatasetError):
            stencil3d(nx=1, ny=5, nz=5)

    def test_random_bipartite_bad_density(self):
        with pytest.raises(DatasetError):
            random_bipartite(5, 5, density=1.5)

    def test_random_graph_too_many_edges(self):
        with pytest.raises(DatasetError):
            random_graph(4, 100)


class TestRandomInstances:
    def test_random_bipartite_counts(self):
        bg = random_bipartite(20, 30, density=0.1, seed=0)
        assert bg.num_nets == 20
        assert bg.num_vertices == 30

    def test_random_graph_exact_edges(self):
        g = random_graph(30, 50, seed=1)
        assert g.num_edges == 50
        assert g.num_vertices == 30
