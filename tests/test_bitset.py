"""Tests for the packed-bitset fast-path primitives
(:mod:`repro.core.fastpath.bitset`).

Two contract levels:

* property tests (hypothesis) that the vectorized primitives agree with
  simple per-bit reference loops on arbitrary masks/ranks — in particular
  that :func:`nth_free_color` equals a per-color mex loop;
* a ``tracemalloc`` peak-allocation regression test pinning the
  tentpole's memory claim: a speculative round must not allocate the
  O(n_groups × palette) dense float forbidden matrix the bitset rewrite
  replaced.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpath.bitset import (
    WORD_BITS,
    _popcount_swar,
    mask_words,
    nth_free_color,
    or_reduce_segments,
    pack_color_masks,
    popcount,
)

words64 = st.integers(min_value=0, max_value=2**64 - 1)


def _reference_nth_free(forbidden_row: np.ndarray, rank: int) -> int:
    """Per-color mex loop: the (rank+1)-th color whose bit is clear."""
    words = forbidden_row.size
    need = rank
    c = 0
    while True:
        w, b = divmod(c, WORD_BITS)
        taken = w < words and bool(
            (forbidden_row[w] >> np.uint64(b)) & np.uint64(1)
        )
        if not taken:
            if need == 0:
                return c
            need -= 1
        c += 1


class TestPopcount:
    @given(st.lists(words64, min_size=1, max_size=64))
    def test_matches_python_bit_count(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [int(v).bit_count() for v in values]
        assert popcount(arr).tolist() == expected
        # The SWAR fallback (used on NumPy < 2.0) must agree too.
        assert _popcount_swar(arr).tolist() == expected


class TestNthFreeColor:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=300),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_mex_loop(self, q, words, rank_hi, rnd):
        forbidden = np.array(
            [[rnd.getrandbits(64) for _ in range(words)] for _ in range(q)],
            dtype=np.uint64,
        )
        ranks = np.array(
            [rnd.randint(0, rank_hi) for _ in range(q)], dtype=np.int64
        )
        got = nth_free_color(forbidden, ranks)
        for i in range(q):
            assert got[i] == _reference_nth_free(forbidden[i], int(ranks[i]))

    def test_fully_forbidden_rows_answer_in_the_virtual_tail(self):
        forbidden = np.full((3, 2), ~np.uint64(0), dtype=np.uint64)
        got = nth_free_color(forbidden, np.array([0, 1, 7]))
        assert got.tolist() == [128, 129, 135]

    def test_rank_zero_on_empty_mask_is_color_zero(self):
        forbidden = np.zeros((2, 1), dtype=np.uint64)
        assert nth_free_color(forbidden, np.array([0, 5])).tolist() == [0, 5]


class TestPackAndReduce:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=200),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_pack_sets_exactly_the_given_bits(self, pairs):
        n_groups, cap = 7, 201
        words = mask_words(cap)
        groups = np.array([g for g, _ in pairs], dtype=np.int64)
        cols = np.array([c for _, c in pairs], dtype=np.int64)
        masks = pack_color_masks(groups, cols, n_groups, words)
        expected = np.zeros((n_groups, words), dtype=np.uint64)
        for g, c in pairs:
            expected[g, c // WORD_BITS] |= np.uint64(1) << np.uint64(
                c % WORD_BITS
            )
        assert np.array_equal(masks, expected)

    def test_or_reduce_handles_empty_segments(self):
        masks = pack_color_masks(
            np.array([0, 1, 2]), np.array([1, 65, 3]), 3, 2
        )
        rows = masks[[0, 2, 1]]
        out = or_reduce_segments(rows, np.array([2, 0, 1]))
        assert np.array_equal(out[0], masks[0] | masks[2])
        assert not out[1].any()
        assert np.array_equal(out[2], masks[1])

    def test_mask_words_rounds_up_and_floors_at_one(self):
        assert mask_words(0) == 1
        assert mask_words(1) == 1
        assert mask_words(64) == 1
        assert mask_words(65) == 2
        assert mask_words(640) == 10


class TestSpeculativeMemory:
    """The tentpole's memory claim, pinned with tracemalloc."""

    def test_no_dense_palette_matrix_is_allocated(self):
        # One 220-member clique group forces a ~220-color palette; 24k
        # 2-member groups make n_groups large.  The replaced engine built
        # an (n_groups × palette) float32 matrix per masked round —
        # ≥ 21 MB here — while the packed bitsets need n_groups × 4 words.
        from repro.core.fastpath.engine import run_fastpath
        from repro.graph.csr import CSR

        rng = np.random.default_rng(42)
        n, small_groups, clique = 5000, 24000, 220
        pairs = rng.integers(0, n, size=(small_groups, 2), dtype=np.int64)
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        members = np.concatenate(
            [pairs.ravel(), rng.choice(n, size=clique, replace=False)]
        )
        ptr = np.concatenate(
            [np.arange(0, 2 * len(pairs) + 1, 2),
             [2 * len(pairs) + clique]]
        ).astype(np.int64)
        groups = CSR(ptr, members.astype(np.int64), n)

        tracemalloc.start()
        try:
            colors, records = run_fastpath(groups, mode="speculative")
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        n_groups = ptr.size - 1
        palette = int(colors.max()) + 1
        assert palette >= clique  # the wide-palette regime is exercised
        assert len(records) >= 2  # at least one masked round ran
        dense_bytes = n_groups * palette * 4
        assert dense_bytes > 20 * 2**20
        # Generous headroom for the O(entries) working arrays — but far
        # below one dense forbidden matrix.
        assert peak < dense_bytes // 2, (
            f"speculative peak {peak} bytes suggests a dense "
            f"(n_groups × palette) matrix (~{dense_bytes} bytes) is back"
        )
