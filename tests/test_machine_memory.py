"""Unit tests for the happens-before timestamped memory."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.memory import TimestampedMemory


def make(n=4, fill=-1):
    return TimestampedMemory(np.full(n, fill, dtype=np.int64))


class TestVisibility:
    def test_write_invisible_before_commit_time(self):
        mem = make()
        mem.write(0, 7, commit_time=10)
        mem.commit_until(9)
        assert mem.read(0) == -1

    def test_write_visible_at_commit_time(self):
        mem = make()
        mem.write(0, 7, commit_time=10)
        mem.commit_until(10)
        assert mem.read(0) == 7

    def test_overlapping_tasks_miss_each_other(self):
        """The race mechanism: two writes commit after both reads happened."""
        mem = make()
        # Task A [0, 10), task B [2, 12): both read at start, commit at end.
        read_a = mem.read(0)  # at time 0
        mem.write(0, 1, commit_time=10)
        mem.commit_until(2)
        read_b = mem.read(0)  # at time 2: A's write not yet committed
        mem.write(0, 1, commit_time=12)
        assert read_a == read_b == -1  # both picked blindly -> same color

    def test_last_writer_wins_by_commit_time(self):
        mem = make()
        mem.write(0, 1, commit_time=5)
        mem.write(0, 2, commit_time=3)
        mem.commit_until(5)
        assert mem.read(0) == 1

    def test_equal_commit_times_apply_in_submission_order(self):
        mem = make()
        mem.write(0, 1, commit_time=5)
        mem.write(0, 2, commit_time=5)
        mem.commit_until(5)
        assert mem.read(0) == 2

    def test_commit_returns_applied_count(self):
        mem = make()
        mem.write(0, 1, 3)
        mem.write(1, 2, 4)
        assert mem.commit_until(3) == 1
        assert mem.commit_until(10) == 1


class TestLifecycle:
    def test_flush_commits_everything(self):
        mem = make()
        mem.write(0, 1, 100)
        mem.write(1, 2, 200)
        assert mem.flush() == 2
        assert mem.read(0) == 1
        assert mem.read(1) == 2

    def test_reset_clock_requires_empty_pending(self):
        mem = make()
        mem.write(0, 1, 5)
        with pytest.raises(MachineError):
            mem.reset_clock()
        mem.flush()
        mem.reset_clock()
        mem.write(0, 2, 1)  # small times valid again

    def test_monotone_commit_enforced(self):
        mem = make()
        mem.commit_until(10)
        with pytest.raises(MachineError):
            mem.commit_until(5)

    def test_write_into_past_rejected(self):
        mem = make()
        mem.commit_until(10)
        with pytest.raises(MachineError):
            mem.write(0, 1, commit_time=5)

    def test_snapshot_excludes_pending(self):
        mem = make()
        mem.write(0, 9, 50)
        snap = mem.snapshot()
        assert snap[0] == -1
        snap[0] = 123  # snapshot is a copy
        assert mem.read(0) == -1

    def test_initial_values_copied(self):
        source = np.zeros(3, dtype=np.int64)
        mem = TimestampedMemory(source)
        source[0] = 99
        assert mem.read(0) == 0

    def test_len_and_pending_count(self):
        mem = make(6)
        assert len(mem) == 6
        mem.write(0, 1, 5)
        assert mem.pending_count == 1
        mem.flush()
        assert mem.pending_count == 0
