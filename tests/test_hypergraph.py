"""Tests for the hypergraph facade and the PaToH reader."""

import numpy as np
import pytest

from repro.errors import GraphBuildError
from repro.graph.hypergraph import Hypergraph, read_patoh


@pytest.fixture
def tiny_hg():
    return Hypergraph.from_nets([[0, 1, 2], [2, 3], [3, 4]], num_pins=5)


class TestFacade:
    def test_sizes(self, tiny_hg):
        assert tiny_hg.num_pins == 5
        assert tiny_hg.num_nets == 3
        assert tiny_hg.num_pin_entries == 7

    def test_pins_and_nets_of(self, tiny_hg):
        assert sorted(tiny_hg.pins(0)) == [0, 1, 2]
        assert sorted(tiny_hg.nets_of(3)) == [1, 2]

    def test_max_net_size_is_lower_bound(self, tiny_hg):
        assert tiny_hg.max_net_size() == 3

    def test_color_and_validate(self, tiny_hg):
        result = tiny_hg.color(algorithm="N1-N2", threads=4)
        tiny_hg.validate(result.colors)
        assert result.num_colors >= 3

    def test_from_nets_infers_pins(self):
        hg = Hypergraph.from_nets([[7]])
        assert hg.num_pins == 8

    def test_rejects_negative_pin(self):
        with pytest.raises(GraphBuildError):
            Hypergraph.from_nets([[-1]])

    def test_empty(self):
        hg = Hypergraph.from_nets([])
        assert hg.num_nets == 0
        assert hg.num_pins == 0

    def test_repr(self, tiny_hg):
        assert "pins=5" in repr(tiny_hg)


class TestPatohReader:
    def _write(self, tmp_path, body):
        path = tmp_path / "h.hgr"
        path.write_text(body)
        return path

    def test_zero_indexed(self, tmp_path):
        path = self._write(tmp_path, "% comment\n3 5 7\n0 1 2\n2 3\n3 4\n")
        hg = read_patoh(path)
        assert hg.num_nets == 3
        assert sorted(hg.pins(0)) == [0, 1, 2]

    def test_one_indexed_autodetect(self, tmp_path):
        path = self._write(tmp_path, "3 5 7\n1 2 3\n3 4\n4 5\n")
        hg = read_patoh(path)
        assert sorted(hg.pins(0)) == [0, 1, 2]
        assert sorted(hg.pins(2)) == [3, 4]

    def test_explicit_base(self, tmp_path):
        path = self._write(tmp_path, "1 3 2\n1 2\n")
        hg = read_patoh(path, index_base=1)
        assert sorted(hg.pins(0)) == [0, 1]

    def test_missing_header(self, tmp_path):
        path = self._write(tmp_path, "% only comments\n")
        with pytest.raises(GraphBuildError, match="header"):
            read_patoh(path)

    def test_wrong_net_count(self, tmp_path):
        path = self._write(tmp_path, "2 3 2\n0 1\n")
        with pytest.raises(GraphBuildError, match="net lines"):
            read_patoh(path)

    def test_wrong_entry_count(self, tmp_path):
        path = self._write(tmp_path, "1 3 5\n0 1\n")
        with pytest.raises(GraphBuildError, match="pin entries"):
            read_patoh(path)

    def test_out_of_range_pin(self, tmp_path):
        path = self._write(tmp_path, "1 2 1\n5\n")
        with pytest.raises(GraphBuildError, match="outside"):
            read_patoh(path)

    def test_roundtrip_coloring(self, tmp_path):
        path = self._write(tmp_path, "4 6 10\n0 1 2\n2 3 4\n4 5\n0 5\n")
        hg = read_patoh(path)
        result = hg.color(threads=8)
        hg.validate(result.colors)


class TestHypergraphBalancing:
    def test_policy_passthrough(self, tiny_hg):
        from repro import B2Policy

        result = tiny_hg.color(algorithm="V-N2", threads=8, policy=B2Policy())
        tiny_hg.validate(result.colors)

    def test_order_passthrough(self, tiny_hg):
        from repro.order import smallest_last_order

        order = smallest_last_order(tiny_hg.bipartite)
        result = tiny_hg.color(order=order)
        tiny_hg.validate(result.colors)
