"""Tests for incremental recoloring: deltas, frontiers, the resumed loop.

The acceptance bar (docs/incremental.md): an incremental recolor must be
valid on the mutated graph on every kernel-level backend, byte-identical
across repeat runs on the deterministic backends (a golden pins it), and
must do frontier-proportional work — orders of magnitude less than a
full recolor on small deltas.  Deletions alone must cost nothing.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bgpc import color_bgpc
from repro.core.incremental import IncrementalResult, recolor_incremental
from repro.core.validate import validate_bgpc
from repro.datasets.synthetic import random_bipartite
from repro.errors import ColoringError, GraphError
from repro.graph.build import bipartite_from_edges
from repro.graph.delta import GraphDelta, apply_delta, delta_frontier
from repro.service.fingerprint import graph_fingerprint

EDGES = [(0, 0), (1, 0), (1, 1), (2, 1), (3, 2), (0, 2), (2, 3), (3, 3)]


@pytest.fixture
def bg():
    return bipartite_from_edges(EDGES)


@pytest.fixture(scope="module")
def golden_graph():
    return random_bipartite(40, 160, density=0.05, seed=3)


# -- GraphDelta -------------------------------------------------------------


class TestGraphDelta:
    def test_canonicalized_sorted_deduped(self):
        delta = GraphDelta(insert=[(5, 1), (0, 3), (5, 1)], delete=())
        assert delta.insert.tolist() == [[0, 3], [5, 1]]
        assert delta.num_insertions == 2
        assert delta.num_deletions == 0

    def test_empty_and_delete_only_flags(self):
        assert GraphDelta().is_empty
        assert GraphDelta(delete=[(0, 0)]).is_delete_only
        assert not GraphDelta(insert=[(0, 0)]).is_delete_only
        assert not GraphDelta(insert=[(0, 0)]).is_empty

    def test_edge_in_both_lists_rejected(self):
        with pytest.raises(GraphError, match="both insert and delete"):
            GraphDelta(insert=[(1, 2), (3, 4)], delete=[(1, 2)])

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphError):
            GraphDelta(insert=[(-1, 2)])

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            GraphDelta(insert=[(1, 2, 3)])

    def test_non_integer_rejected(self):
        with pytest.raises(GraphError):
            GraphDelta(insert=[(0.5, 2)])

    def test_repr(self):
        delta = GraphDelta(insert=[(0, 1)], delete=[(2, 3), (4, 5)])
        assert repr(delta) == "GraphDelta(+1 insert, -2 delete)"


# -- apply_delta ------------------------------------------------------------


class TestApplyDelta:
    def test_insert_and_delete(self, bg):
        delta = GraphDelta(insert=[(0, 1)], delete=[(2, 3)])
        mutated = apply_delta(bg, delta)
        assert mutated.num_edges == bg.num_edges
        assert 1 in mutated.nets(0)
        assert 3 not in mutated.nets(2)
        # the input graph is untouched
        assert 1 not in bg.nets(0)
        assert 3 in bg.nets(2)

    def test_deleting_missing_edge_rejected(self, bg):
        with pytest.raises(GraphError, match="deletes a missing edge"):
            apply_delta(bg, GraphDelta(delete=[(0, 3)]))

    def test_inserting_existing_edge_rejected(self, bg):
        with pytest.raises(GraphError, match="inserts an existing edge"):
            apply_delta(bg, GraphDelta(insert=[(0, 0)]))

    def test_insertions_grow_the_graph(self, bg):
        mutated = apply_delta(bg, GraphDelta(insert=[(7, 9)]))
        assert mutated.num_vertices == 8
        assert mutated.num_nets == 10
        assert 9 in mutated.nets(7)

    def test_deletions_never_shrink(self, bg):
        # remove every edge of vertex 3: cardinalities must not change
        mutated = apply_delta(bg, GraphDelta(delete=[(3, 2), (3, 3)]))
        assert mutated.num_vertices == bg.num_vertices
        assert mutated.num_nets == bg.num_nets
        assert mutated.nets(3).size == 0

    def test_insert_then_delete_round_trips_fingerprint(self, bg):
        pairs = [(0, 1), (3, 0)]
        grown = apply_delta(bg, GraphDelta(insert=pairs))
        back = apply_delta(grown, GraphDelta(delete=pairs))
        assert graph_fingerprint(back) == graph_fingerprint(bg)


# -- the frontier rule ------------------------------------------------------


class TestDeltaFrontier:
    def test_deletions_invalidate_nothing(self, bg):
        delta = GraphDelta(delete=[(0, 0), (2, 3)])
        mutated = apply_delta(bg, delta)
        assert delta_frontier(mutated, delta).size == 0

    def test_insertion_frontier_covers_net_members(self, bg):
        # inserting (3, 0) makes net 0 = {0, 1, 3}: all three must recolor
        delta = GraphDelta(insert=[(3, 0)])
        mutated = apply_delta(bg, delta)
        assert delta_frontier(mutated, delta).tolist() == [0, 1, 3]

    def test_frontier_uses_mutated_membership(self, bg):
        # delete (1, 0) and insert (3, 0): net 0 is now {0, 3} — vertex 1
        # no longer shares it, so it is NOT invalidated
        delta = GraphDelta(insert=[(3, 0)], delete=[(1, 0)])
        mutated = apply_delta(bg, delta)
        assert delta_frontier(mutated, delta).tolist() == [0, 3]


# -- recolor_incremental ----------------------------------------------------


class TestRecolorIncremental:
    @pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
    def test_valid_on_kernel_backends(self, golden_graph, backend):
        bg = golden_graph
        base = color_bgpc(bg, algorithm="V-V", threads=4)
        delta = GraphDelta(insert=[(0, 0), (1, 1)], delete=[(0, 8)])
        threads = 1 if backend == "process" else 4
        inc = recolor_incremental(
            bg, base.colors, delta,
            algorithm="V-V", threads=threads, backend=backend,
        )
        assert isinstance(inc, IncrementalResult)
        validate_bgpc(inc.graph, inc.colors)
        assert inc.frontier_size > 0

    def test_numpy_cannot_resume(self, golden_graph):
        bg = golden_graph
        base = color_bgpc(bg, algorithm="V-V", threads=4)
        with pytest.raises(ColoringError, match="cannot resume"):
            recolor_incremental(
                bg, base.colors, GraphDelta(insert=[(0, 0)]),
                backend="numpy",
            )

    def test_wrong_colors_shape_rejected(self, golden_graph):
        with pytest.raises(ColoringError):
            recolor_incremental(
                golden_graph, np.zeros(3, dtype=np.int64),
                GraphDelta(insert=[(0, 0)]),
            )

    def test_invalid_base_coloring_rejected(self, bg):
        colors = np.zeros(bg.num_vertices, dtype=np.int64)  # all conflicts
        with pytest.raises(Exception):
            recolor_incremental(bg, colors, GraphDelta(insert=[(0, 1)]))

    def test_empty_delta_zero_work_identical_colors(self, golden_graph):
        bg = golden_graph
        base = color_bgpc(bg, algorithm="V-V", threads=4)
        inc = recolor_incremental(bg, base.colors, GraphDelta())
        assert np.array_equal(inc.colors, base.colors)
        assert inc.frontier_size == 0
        assert sum(inc.work_metrics.values()) == 0

    def test_delete_only_zero_work(self, golden_graph):
        bg = golden_graph
        base = color_bgpc(bg, algorithm="V-V", threads=4)
        inc = recolor_incremental(
            bg, base.colors, GraphDelta(delete=[(0, 8), (3, 27)])
        )
        assert np.array_equal(inc.colors, base.colors)
        assert inc.frontier_size == 0
        assert sum(inc.work_metrics.values()) == 0
        validate_bgpc(inc.graph, inc.colors)

    def test_incremental_work_far_below_full(self):
        # A larger instance than the golden graph: the >= 10x claim needs
        # the frontier to be a small share of the vertex set.
        bg = random_bipartite(300, 1200, density=0.01, seed=42)
        base = color_bgpc(bg, algorithm="V-V", threads=4)
        delta = GraphDelta(insert=[(0, 0), (1, 1), (2, 0)],
                           delete=[(0, 46), (1, 11)])
        inc = recolor_incremental(bg, base.colors, delta,
                                  algorithm="V-V", threads=4)
        mutated = apply_delta(bg, delta)
        full = color_bgpc(mutated, algorithm="V-V", threads=4)

        def work(metrics):
            return metrics.get("probes", 0) + metrics.get("conflict_checks", 0)

        assert work(inc.work_metrics) * 10 <= work(full.work_metrics)

    def test_golden_pinned_on_sim(self, golden_graph):
        """Byte-level determinism contract for the deterministic backend.

        If this fails, the incremental loop's behavior changed: either
        re-pin deliberately (and say so in the commit) or find the bug.
        """
        bg = golden_graph
        base = color_bgpc(bg, algorithm="V-V", threads=4)
        assert (base.num_colors, int(base.colors.sum())) == (17, 705)
        delta = GraphDelta(insert=[(0, 0), (1, 1), (2, 0)],
                           delete=[(0, 8), (3, 27)])
        inc = recolor_incremental(bg, base.colors, delta,
                                  algorithm="V-V", threads=4)
        assert inc.num_colors == 17
        assert int(inc.colors.sum()) == 731
        assert inc.frontier_size == 15
        assert inc.work_metrics == {
            "tasks": 36, "probes": 112, "scans": 508,
            "conflict_checks": 483, "queue_pushes": 3, "color_writes": 18,
        }
        assert inc.result.num_iterations == 2
        assert inc.result.cycles == 8975.0

    def test_deterministic_across_runs(self, golden_graph):
        bg = golden_graph
        base = color_bgpc(bg, algorithm="V-V", threads=4)
        delta = GraphDelta(insert=[(0, 0), (2, 0)], delete=[(0, 8)])
        runs = [
            recolor_incremental(bg, base.colors, delta,
                                algorithm="V-V", threads=4)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].colors, runs[1].colors)
        assert runs[0].result.cycles == runs[1].result.cycles
        assert runs[0].work_metrics == runs[1].work_metrics


# -- equivalence property: full vs incremental on random deltas -------------


def _two_hop_bound(bg) -> int:
    """max over vertices of sum(|net| - 1): an upper bound on any
    forbidden set the greedy loop can see, hence on first-fit colors."""
    sizes = np.bincount(bg.vtx_to_nets.idx, minlength=bg.num_nets)
    bound = 0
    for v in range(bg.num_vertices):
        nets = bg.nets(v)
        if nets.size:
            bound = max(bound, int((sizes[nets] - 1).sum()))
    return bound


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_incremental_equivalent_to_full_on_random_deltas(data):
    """Property: for any graph and any legal delta, the incremental
    recolor is valid on the mutated graph and its palette respects the
    same bounds a full recolor's would."""
    edges = data.draw(
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 7)),
            min_size=4, max_size=40, unique=True,
        ),
        label="edges",
    )
    bg = bipartite_from_edges(edges)
    existing = {(int(u), int(n)) for u, n in edges}
    delete = data.draw(
        st.lists(st.sampled_from(sorted(existing)), max_size=4, unique=True),
        label="delete",
    )
    absent = sorted(
        (u, n)
        for u in range(bg.num_vertices)
        for n in range(bg.num_nets)
        if (u, n) not in existing
    )
    insert = (
        data.draw(
            st.lists(st.sampled_from(absent), max_size=4, unique=True),
            label="insert",
        )
        if absent
        else []
    )

    base = color_bgpc(bg, algorithm="V-V", threads=4)
    delta = GraphDelta(insert=insert, delete=delete)
    inc = recolor_incremental(bg, base.colors, delta,
                              algorithm="V-V", threads=4)
    mutated = apply_delta(bg, delta)
    full = color_bgpc(mutated, algorithm="V-V", threads=4)

    validate_bgpc(mutated, inc.colors)  # always valid
    validate_bgpc(mutated, full.colors)
    lower = mutated.color_lower_bound()
    bound = max(base.num_colors, _two_hop_bound(mutated) + 1)
    assert lower <= inc.num_colors <= bound
    assert lower <= full.num_colors <= bound
