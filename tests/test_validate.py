"""Unit tests for the coloring validators and conflict counters."""

import numpy as np
import pytest

from repro.core.validate import (
    count_bgpc_conflict_vertices,
    count_d2gc_conflict_vertices,
    find_bgpc_conflict,
    find_d2gc_conflict,
    is_valid_bgpc,
    is_valid_d2gc,
    validate_bgpc,
    validate_d2gc,
)
from repro.errors import InvalidColoringError


class TestBgpc:
    def test_valid_coloring_accepted(self, tiny_bipartite):
        colors = np.array([0, 1, 2, 0, 1])
        validate_bgpc(tiny_bipartite, colors)
        assert is_valid_bgpc(tiny_bipartite, colors)

    def test_conflict_detected(self, tiny_bipartite):
        colors = np.array([0, 1, 0, 2, 1])  # 0 and 2 share net 0
        assert not is_valid_bgpc(tiny_bipartite, colors)
        with pytest.raises(InvalidColoringError) as err:
            validate_bgpc(tiny_bipartite, colors)
        assert err.value.conflict == (0, 2, 0)

    def test_uncolored_rejected(self, tiny_bipartite):
        colors = np.array([0, 1, 2, -1, 0])
        with pytest.raises(InvalidColoringError, match="uncolored"):
            validate_bgpc(tiny_bipartite, colors)

    def test_wrong_shape_rejected(self, tiny_bipartite):
        with pytest.raises(InvalidColoringError, match="shape"):
            validate_bgpc(tiny_bipartite, np.zeros(3, dtype=np.int64))

    def test_find_conflict_skips_uncolored(self, tiny_bipartite):
        colors = np.array([0, -1, 0, 1, 2])  # only 0 and 2 clash
        assert find_bgpc_conflict(tiny_bipartite, colors) == (0, 2, 0)
        colors = np.array([0, -1, -1, 1, 2])  # clash removed
        assert find_bgpc_conflict(tiny_bipartite, colors) is None

    def test_conflict_vertex_count(self, tiny_bipartite):
        colors = np.array([0, 0, 0, 1, 2])  # 0,1,2 all clash in net 0
        assert count_bgpc_conflict_vertices(tiny_bipartite, colors) == 3

    def test_conflict_count_zero_when_valid(self, tiny_bipartite):
        colors = np.array([0, 1, 2, 0, 1])
        assert count_bgpc_conflict_vertices(tiny_bipartite, colors) == 0


class TestD2gc:
    def test_valid_star(self, star_graph):
        colors = np.arange(7)
        validate_d2gc(star_graph, colors)

    def test_star_needs_distinct_colors(self, star_graph):
        colors = np.array([0, 1, 2, 3, 4, 5, 1])  # two leaves share color 1
        assert not is_valid_d2gc(star_graph, colors)
        conflict = find_d2gc_conflict(star_graph, colors)
        assert conflict is not None
        assert conflict[2] == 0  # middle is the hub

    def test_path_distance2(self, path_graph):
        # 0-1-2-3-4: a 3-coloring pattern 0,1,2,0,1 is valid.
        validate_d2gc(path_graph, np.array([0, 1, 2, 0, 1]))
        # but 0,1,0,... clashes (0 and 2 are distance 2 apart).
        assert not is_valid_d2gc(path_graph, np.array([0, 1, 0, 1, 2]))

    def test_distance1_also_checked(self, path_graph):
        assert not is_valid_d2gc(path_graph, np.array([0, 0, 1, 2, 3]))

    def test_uncolored_rejected(self, path_graph):
        with pytest.raises(InvalidColoringError, match="uncolored"):
            validate_d2gc(path_graph, np.array([0, 1, 2, -1, 1]))

    def test_conflict_vertex_count(self, star_graph):
        colors = np.array([0, 1, 1, 2, 3, 4, 5])
        assert count_d2gc_conflict_vertices(star_graph, colors) == 2

    def test_partial_coloring_counting(self, star_graph):
        colors = np.array([0, 1, -1, 2, 3, 4, 5])
        assert count_d2gc_conflict_vertices(star_graph, colors) == 0


class TestCrossCheck:
    def test_bgpc_validity_equals_d1_on_conflict_graph(self, small_bipartite, rng):
        """BGPC validity must coincide with distance-1 validity on the
        materialized conflict graph — for valid and invalid colorings."""
        from repro.graph.ops import bgpc_conflict_graph

        cg = bgpc_conflict_graph(small_bipartite)
        for trial in range(10):
            colors = rng.integers(0, 12, size=small_bipartite.num_vertices)
            expected = all(
                colors[u] != colors[v]
                for u in range(cg.num_vertices)
                for v in cg.nbor(u)
            )
            assert is_valid_bgpc(small_bipartite, colors) == expected

    def test_d2gc_validity_equals_d1_on_square(self, small_graph, rng):
        from repro.graph.ops import d2gc_conflict_graph

        sq = d2gc_conflict_graph(small_graph)
        for trial in range(10):
            colors = rng.integers(0, 40, size=small_graph.num_vertices)
            expected = all(
                colors[u] != colors[v]
                for u in range(sq.num_vertices)
                for v in sq.nbor(u)
            )
            assert is_valid_d2gc(small_graph, colors) == expected
