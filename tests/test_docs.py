"""Documentation integrity checks (run in CI alongside the tier-1 suite).

Three invariants keep the docs from drifting:

* every relative link in ``README.md`` and ``docs/*.md`` resolves to a
  file or directory in the repository;
* the README's documentation index links every page under ``docs/``;
* every ``:func:``/``:class:``/``:data:``/``:mod:`` reference in a module
  docstring under ``src/repro`` names a symbol that actually resolves —
  either a dotted ``repro...`` path importable from the package root, or
  a bare name present in the referencing module's namespace.
"""

from __future__ import annotations

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_REF_RE = re.compile(r":(func|class|data|mod|attr|meth):`~?([^`]+)`")

DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

MODULE_FILES = sorted(
    p
    for p in (SRC_ROOT / "repro").rglob("*.py")
    if "__pycache__" not in p.parts
    # __main__ modules run the CLI at import time by design
    and p.name != "__main__.py"
)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)}: broken links {broken}"


def test_readme_indexes_every_docs_page():
    """The README's documentation index must link every docs/*.md page."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    linked = {match.group(1).split("#", 1)[0] for match in _LINK_RE.finditer(readme)}
    pages = sorted(p.name for p in (REPO_ROOT / "docs").glob("*.md"))
    assert pages, "docs/ has no pages — the glob is broken"
    missing = [page for page in pages if f"docs/{page}" not in linked]
    assert not missing, f"README.md does not link docs pages: {missing}"


def _module_name(path: Path) -> str:
    rel = path.relative_to(SRC_ROOT).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolves(ref: str, module) -> bool:
    ref = ref.strip().rstrip("()")
    if ref.startswith("repro"):
        # dotted path: peel module prefix, then getattr the rest
        parts = ref.split(".")
        for split in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
            except ImportError:
                continue
            try:
                for attr in parts[split:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                return False
            return True
        return False
    # bare (possibly dotted) name: walk it from the module's namespace,
    # e.g. ``Machine.parallel_for`` -> getattr(getattr(mod, "Machine"), ...)
    obj = module
    for attr in ref.split("."):
        if not hasattr(obj, attr):
            return False
        obj = getattr(obj, attr)
    return True


@pytest.mark.parametrize("path", MODULE_FILES, ids=_module_name)
def test_docstring_references_resolve(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree)
    if not docstring:
        return
    refs = _REF_RE.findall(docstring)
    if not refs:
        return
    module = importlib.import_module(_module_name(path))
    bad = [ref for _, ref in refs if not _resolves(ref, module)]
    assert not bad, f"{path.relative_to(REPO_ROOT)}: unresolved references {bad}"
