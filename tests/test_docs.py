"""Documentation integrity checks (run in CI alongside the tier-1 suite).

Four invariants keep the docs from drifting:

* every relative link in ``README.md`` and ``docs/*.md`` resolves to a
  file or directory in the repository;
* the README's documentation index links every page under ``docs/``;
* every ``:func:``/``:class:``/``:data:``/``:mod:`` reference in a module
  docstring under ``src/repro`` names a symbol that actually resolves —
  either a dotted ``repro...`` path importable from the package root, or
  a bare name present in the referencing module's namespace;
* every ``python -m repro...`` invocation quoted in a shell code block
  parses against the real argparse tree of the module it names, so a
  renamed or removed flag cannot leave stale commands in the docs;
* every complete JSON object quoted in a ``json`` code block actually
  parses, and any ``"op"`` it names is an op the wire protocol defines —
  so the protocol examples in ``docs/service.md`` / ``docs/incremental.md``
  cannot drift from the server.  Objects (or lines) containing
  placeholder tokens (``…``, ``...``, ``→``) are illustrative and skipped.
"""

from __future__ import annotations

import ast
import importlib
import re
import shlex
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_REF_RE = re.compile(r":(func|class|data|mod|attr|meth):`~?([^`]+)`")

DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

MODULE_FILES = sorted(
    p
    for p in (SRC_ROOT / "repro").rglob("*.py")
    if "__pycache__" not in p.parts
    # __main__ modules run the CLI at import time by design
    and p.name != "__main__.py"
)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    text = doc.read_text(encoding="utf-8")
    broken = []
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (doc.parent / path).exists():
            broken.append(target)
    assert not broken, f"{doc.relative_to(REPO_ROOT)}: broken links {broken}"


def test_readme_indexes_every_docs_page():
    """The README's documentation index must link every docs/*.md page."""
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    linked = {match.group(1).split("#", 1)[0] for match in _LINK_RE.finditer(readme)}
    pages = sorted(p.name for p in (REPO_ROOT / "docs").glob("*.md"))
    assert pages, "docs/ has no pages — the glob is broken"
    missing = [page for page in pages if f"docs/{page}" not in linked]
    assert not missing, f"README.md does not link docs pages: {missing}"


def _module_name(path: Path) -> str:
    rel = path.relative_to(SRC_ROOT).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _resolves(ref: str, module) -> bool:
    ref = ref.strip().rstrip("()")
    if ref.startswith("repro"):
        # dotted path: peel module prefix, then getattr the rest
        parts = ref.split(".")
        for split in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:split]))
            except ImportError:
                continue
            try:
                for attr in parts[split:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                return False
            return True
        return False
    # bare (possibly dotted) name: walk it from the module's namespace,
    # e.g. ``Machine.parallel_for`` -> getattr(getattr(mod, "Machine"), ...)
    obj = module
    for attr in ref.split("."):
        if not hasattr(obj, attr):
            return False
        obj = getattr(obj, attr)
    return True


_SHELL_FENCE_RE = re.compile(
    r"^```(?:bash|sh|shell|console)\s*$(.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)

#: Tokens marking a command as illustrative, not literally runnable.
_PLACEHOLDER_TOKENS = ("...", "…", "[", "<")


def _shell_invocations(text: str) -> list[str]:
    """Every ``python -m repro...`` command quoted in a shell code block.

    Continuation lines (trailing ``\\``) are folded into one command;
    commands containing placeholder tokens are skipped.
    """
    commands = []
    for fence in _SHELL_FENCE_RE.finditer(text):
        lines = fence.group(1).splitlines()
        i = 0
        while i < len(lines):
            line = lines[i].strip()
            while line.endswith("\\") and i + 1 < len(lines):
                i += 1
                line = line[:-1].rstrip() + " " + lines[i].strip()
            i += 1
            if not line.startswith("python -m repro"):
                continue
            if any(tok in line for tok in _PLACEHOLDER_TOKENS):
                continue
            commands.append(line)
    return commands


def _parser_for(module: str, rest: list[str]):
    """The ``(build_parser(), argv)`` pair a quoted command parses with."""
    if module == "repro":
        from repro.cli import build_parser

        return build_parser(), rest
    if module == "repro.serve":
        from repro.serve import build_parser

        return build_parser(), rest
    if module == "repro.bench":
        if rest and rest[0] == "regress":
            from repro.bench.regress.cli import build_parser

            return build_parser(), rest[1:]
        from repro.bench.__main__ import build_parser

        return build_parser(), rest
    return None, rest


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_quoted_cli_invocations_parse(doc):
    """Shell-block ``python -m repro...`` commands must parse today."""
    bad = []
    for command in _shell_invocations(doc.read_text(encoding="utf-8")):
        argv = shlex.split(command, comments=True)
        module = argv[2]  # ["python", "-m", "<module>", ...]
        parser, rest = _parser_for(module, argv[3:])
        if parser is None:
            bad.append(f"{command!r}: unknown module {module!r}")
            continue
        try:
            parser.parse_args(rest)
        except SystemExit:
            bad.append(f"{command!r}: does not parse")
    assert not bad, f"{doc.relative_to(REPO_ROOT)}: stale CLI commands: {bad}"


_JSON_FENCE_RE = re.compile(
    r"^```json\s*$(.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)

#: Tokens marking a JSON example (or one line of it) as illustrative.
_JSON_PLACEHOLDERS = ("…", "...", "→")


def _json_documents(text: str) -> list[str]:
    """Every complete JSON object quoted in a ``json`` code block.

    A fence whose whole body is one object (and placeholder-free) yields
    that body; otherwise each placeholder-free *line* that looks like a
    complete object (``{…}``) yields individually — this covers fences
    that stack several one-line request/response examples.
    """
    documents = []
    for fence in _JSON_FENCE_RE.finditer(text):
        body = fence.group(1).strip()
        if not body:
            continue
        if (
            body.startswith("{")
            and body.endswith("}")
            and not any(tok in body for tok in _JSON_PLACEHOLDERS)
        ):
            documents.append(body)
            continue
        for line in body.splitlines():
            line = line.strip()
            if (
                line.startswith("{")
                and line.endswith("}")
                and not any(tok in line for tok in _JSON_PLACEHOLDERS)
            ):
                documents.append(line)
    return documents


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_quoted_json_examples_parse(doc):
    """``json``-block wire examples must parse and name only real ops."""
    import json

    from repro.service.protocol import OPS

    bad = []
    for document in _json_documents(doc.read_text(encoding="utf-8")):
        try:
            obj = json.loads(document)
        except ValueError as exc:
            bad.append(f"{document[:60]!r}: invalid JSON ({exc})")
            continue
        if isinstance(obj, dict) and "op" in obj and obj["op"] not in OPS:
            bad.append(f"{document[:60]!r}: unknown op {obj['op']!r}")
    assert not bad, f"{doc.relative_to(REPO_ROOT)}: bad JSON examples: {bad}"


def test_cli_scan_finds_the_sharding_docs():
    """The scanner must see sharding.md's commands, and they must exercise
    the sharded flags — so a renamed ``--shards``/``--partitioner`` cannot
    leave the page stale (guards both the regex and the page)."""
    text = (REPO_ROOT / "docs" / "sharding.md").read_text(encoding="utf-8")
    commands = _shell_invocations(text)
    assert any(
        "--backend sharded" in cmd and "--shards" in cmd
        and "--partitioner" in cmd
        for cmd in commands
    ), f"docs/sharding.md quotes no runnable sharded CLI command: {commands}"
    assert any(
        cmd.startswith("python -m repro.bench shards") for cmd in commands
    ), "docs/sharding.md quotes no shards bench command"


def test_cli_scan_finds_the_adaptive_docs():
    """docs/adaptive.md must quote runnable ``--schedule adaptive``
    commands (parsed for real by test_quoted_cli_invocations_parse), so a
    renamed flag or controller name cannot leave the page stale."""
    text = (REPO_ROOT / "docs" / "adaptive.md").read_text(encoding="utf-8")
    commands = _shell_invocations(text)
    assert any(
        "--schedule adaptive" in cmd for cmd in commands
    ), f"docs/adaptive.md quotes no runnable adaptive CLI command: {commands}"
    assert any(
        "--schedule adaptive:" in cmd for cmd in commands
    ), "docs/adaptive.md quotes no thresholded adaptive command"


def test_json_example_scan_finds_the_wire_docs():
    """The scanner must see the protocol pages' examples (guards the regex)."""
    service = (REPO_ROOT / "docs" / "service.md").read_text(encoding="utf-8")
    incremental = (
        REPO_ROOT / "docs" / "incremental.md"
    ).read_text(encoding="utf-8")
    assert len(_json_documents(service)) >= 3
    assert len(_json_documents(incremental)) >= 2


@pytest.mark.parametrize("path", MODULE_FILES, ids=_module_name)
def test_docstring_references_resolve(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(tree)
    if not docstring:
        return
    refs = _REF_RE.findall(docstring)
    if not refs:
        return
    module = importlib.import_module(_module_name(path))
    bad = [ref for _, ref in refs if not _resolves(ref, module)]
    assert not bad, f"{path.relative_to(REPO_ROOT)}: unresolved references {bad}"
