"""Unit tests for the vertex-ordering heuristics."""

import numpy as np
import pytest

from repro.graph import bipartite_from_dense, graph_from_edges
from repro.order import (
    ORDERINGS,
    bgpc_two_hop_degrees,
    get_ordering,
    incidence_degree_order,
    largest_first_order,
    natural_order,
    random_order,
    smallest_last_order,
)


def is_permutation(order, n):
    return sorted(order) == list(range(n))


class TestBasics:
    def test_natural(self, small_bipartite):
        order = natural_order(small_bipartite)
        assert list(order) == list(range(small_bipartite.num_vertices))

    def test_random_is_permutation(self, small_bipartite):
        order = random_order(small_bipartite, seed=3)
        assert is_permutation(order, small_bipartite.num_vertices)

    def test_random_seeded(self, small_bipartite):
        a = random_order(small_bipartite, seed=3)
        b = random_order(small_bipartite, seed=3)
        c = random_order(small_bipartite, seed=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_all_orderings_are_permutations(self, small_bipartite, small_graph):
        for name, fn in ORDERINGS.items():
            for instance in (small_bipartite, small_graph):
                order = fn(instance)
                assert is_permutation(order, instance.num_vertices if hasattr(instance, "num_vertices") else 0), name

    def test_registry_lookup(self):
        assert get_ordering("natural") is natural_order
        with pytest.raises(KeyError):
            get_ordering("bogus")

    def test_empty_instance(self):
        bg = bipartite_from_dense(np.zeros((0, 0)))
        assert smallest_last_order(bg).size == 0


class TestDegrees:
    def test_two_hop_degrees_tiny(self, tiny_bipartite):
        # vertex 2 is in nets {0,1}: (3-1) + (2-1) = 3 walks.
        degs = bgpc_two_hop_degrees(tiny_bipartite)
        assert list(degs) == [2, 2, 3, 2, 1]

    def test_largest_first_sorts_by_conflict_degree(self, tiny_bipartite):
        order = largest_first_order(tiny_bipartite)
        # conflict degrees: v0=2, v1=2, v2=3, v3=2, v4=1
        assert order[0] == 2
        assert order[-1] == 4


class TestSmallestLast:
    def test_path_conflict_graph(self):
        # A path as a unipartite graph: SL removal starts at the endpoints.
        g = graph_from_edges([(0, 1), (1, 2), (2, 3)], num_vertices=4)
        order = smallest_last_order(g)
        assert is_permutation(order, 4)

    def test_core_vertex_comes_first(self):
        """SL orders a dense core before pendant vertices.

        Build (as a unipartite D2GC instance) a triangle 0-1-2 plus a long
        pendant path; the triangle has higher degeneracy, so its vertices
        appear before the path tail in the coloring order.
        """
        edges = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (5, 6)]
        g = graph_from_edges(edges, num_vertices=7)
        order = list(smallest_last_order(g))
        assert order.index(6) > max(order.index(0), order.index(1))

    def test_reduces_colors_on_crafted_instance(self):
        """The crown-graph-style example where natural order is bad.

        Bipartite conflict structure engineered so first-fit in natural
        order wastes colors but smallest-last recovers the optimum.
        """
        from repro import sequential_bgpc

        # Nets pair up opposite vertices: classic crown construction.
        n = 8
        rows = []
        for i in range(n):
            for j in range(n):
                if i != j:
                    rows.append((min(i, j) * n + max(i, j), i))
                    rows.append((min(i, j) * n + max(i, j), j))
        from repro.graph import bipartite_from_edges

        bg = bipartite_from_edges(rows)
        nat = sequential_bgpc(bg)
        sl = sequential_bgpc(bg, order=smallest_last_order(bg))
        assert sl.num_colors <= nat.num_colors

    def test_deterministic(self, small_bipartite):
        a = smallest_last_order(small_bipartite)
        b = smallest_last_order(small_bipartite)
        assert np.array_equal(a, b)


class TestIncidenceDegree:
    def test_is_permutation(self, small_bipartite):
        order = incidence_degree_order(small_bipartite)
        assert is_permutation(order, small_bipartite.num_vertices)

    def test_starts_with_max_degree(self, tiny_bipartite):
        order = incidence_degree_order(tiny_bipartite)
        # With zero incidence everywhere, ties break by conflict degree:
        # vertex 2 or 3 (degree 3) must come first.
        assert order[0] in (2, 3)


class TestOrderingQuality:
    """Orderings should not catastrophically hurt greedy color counts."""

    def test_all_orderings_within_degeneracy_bound(self, small_bipartite):
        from repro import sequential_bgpc
        from repro.graph.ops import bgpc_conflict_graph

        max_deg = bgpc_conflict_graph(small_bipartite).max_degree()
        for name, fn in ORDERINGS.items():
            order = fn(small_bipartite)
            result = sequential_bgpc(small_bipartite, order=order)
            assert result.num_colors <= max_deg + 1, name

    def test_smallest_last_within_degeneracy_plus_one(self, small_bipartite):
        """Matula–Beck guarantee: SL greedy uses <= degeneracy + 1 colors."""
        from repro import sequential_bgpc
        from repro.graph.ops import bgpc_conflict_graph

        adj = bgpc_conflict_graph(small_bipartite).adj
        # Compute the degeneracy exactly via the same peeling process.
        import heapq

        n = adj.nrows
        degree = adj.degrees().copy()
        removed = [False] * n
        heap = [(int(degree[v]), v) for v in range(n)]
        heapq.heapify(heap)
        degeneracy = 0
        for _ in range(n):
            while True:
                d, v = heapq.heappop(heap)
                if not removed[v] and d == degree[v]:
                    break
            removed[v] = True
            degeneracy = max(degeneracy, int(degree[v]))
            for u in adj.row(v):
                u = int(u)
                if not removed[u]:
                    degree[u] -= 1
                    heapq.heappush(heap, (int(degree[u]), u))
        sl = sequential_bgpc(
            small_bipartite, order=smallest_last_order(small_bipartite)
        )
        assert sl.num_colors <= degeneracy + 1
