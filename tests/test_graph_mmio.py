"""Unit tests for the MatrixMarket reader/writer."""

import gzip

import numpy as np
import pytest

from repro.errors import MatrixMarketError
from repro.graph import (
    bipartite_from_dense,
    read_matrix_market,
    write_matrix_market,
)


def write_text(tmp_path, body, name="m.mtx"):
    path = tmp_path / name
    path.write_text(body)
    return path


class TestRead:
    def test_general_pattern(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% a comment\n"
            "2 3 3\n"
            "1 1\n"
            "1 3\n"
            "2 2\n",
        )
        bg = read_matrix_market(path)
        assert bg.num_nets == 2
        assert bg.num_vertices == 3
        assert sorted(bg.vtxs(0)) == [0, 2]

    def test_real_values_ignored(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n"
            "1 1 3.5\n"
            "2 2 -1.25e3\n",
        )
        bg = read_matrix_market(path)
        assert bg.num_edges == 2

    def test_symmetric_expansion(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n"
            "1 1 1.0\n"
            "2 1 1.0\n"
            "3 2 1.0\n",
        )
        bg = read_matrix_market(path)
        # (2,1) also yields (1,2); (3,2) yields (2,3); diagonal stays single.
        assert bg.num_edges == 5
        assert bg.is_structurally_symmetric()

    def test_gzip(self, tmp_path):
        body = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "1 2 2\n1 1\n1 2\n"
        )
        path = tmp_path / "m.mtx.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(body.encode("ascii"))
        bg = read_matrix_market(path)
        assert bg.num_edges == 2

    def test_non_ascii_comment_header(self, tmp_path):
        # Real SuiteSparse headers carry author names with accented or
        # arbitrary non-ASCII bytes; the reader must not crash on them.
        body = (
            b"%%MatrixMarket matrix coordinate pattern general\n"
            b"% author: Fran\xe7ois M\xfcller \xfe\xff\n"
            b"2 2 2\n1 1\n2 2\n"
        )
        path = tmp_path / "latin.mtx"
        path.write_bytes(body)
        bg = read_matrix_market(path)
        assert bg.num_edges == 2

    def test_non_ascii_comment_header_gzip(self, tmp_path):
        body = (
            b"%%MatrixMarket matrix coordinate pattern general\n"
            b"% \xe9\xe8\xea accents everywhere\n"
            b"1 2 2\n1 1\n1 2\n"
        )
        path = tmp_path / "latin.mtx.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(body)
        bg = read_matrix_market(path)
        assert bg.num_edges == 2

    def test_gzip_handle_closed_on_wrapper_error(self, tmp_path, monkeypatch):
        # If building the text wrapper fails, the gzip handle must still be
        # closed rather than leaked.
        from repro.graph import mmio

        opened = []
        real_gzip_open = gzip.open

        def tracking_gzip_open(*args, **kwargs):
            fh = real_gzip_open(*args, **kwargs)
            opened.append(fh)
            return fh

        def exploding_wrapper(*args, **kwargs):
            raise ValueError("wrapper construction failed")

        path = tmp_path / "m.mtx.gz"
        with gzip.open(path, "wb") as fh:
            fh.write(b"%%MatrixMarket matrix coordinate pattern general\n1 1 0\n")
        monkeypatch.setattr(mmio.gzip, "open", tracking_gzip_open)
        monkeypatch.setattr(mmio.io, "TextIOWrapper", exploding_wrapper)
        with pytest.raises(ValueError, match="wrapper"):
            read_matrix_market(path)
        assert opened and all(fh.closed for fh in opened)

    def test_blank_lines_and_comments_between_entries(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% header comment\n"
            "\n"
            "2 2 2\n"
            "1 1\n"
            "% interleaved comment\n"
            "\n"
            "2 2\n",
        )
        assert read_matrix_market(path).num_edges == 2


class TestReadErrors:
    def test_missing_banner(self, tmp_path):
        path = write_text(tmp_path, "1 1 0\n")
        with pytest.raises(MatrixMarketError, match="banner"):
            read_matrix_market(path)

    def test_unsupported_format(self, tmp_path):
        path = write_text(tmp_path, "%%MatrixMarket matrix array real general\n")
        with pytest.raises(MatrixMarketError, match="coordinate"):
            read_matrix_market(path)

    def test_unsupported_symmetry(self, tmp_path):
        path = write_text(
            tmp_path, "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n"
        )
        with pytest.raises(MatrixMarketError, match="symmetry"):
            read_matrix_market(path)

    def test_missing_size_line(self, tmp_path):
        path = write_text(tmp_path, "%%MatrixMarket matrix coordinate real general\n")
        with pytest.raises(MatrixMarketError, match="size"):
            read_matrix_market(path)

    def test_truncated_entries(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n2 2 3\n1 1\n",
        )
        with pytest.raises(MatrixMarketError, match="expected 3"):
            read_matrix_market(path)

    def test_too_many_entries(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n1 1\n2 2\n",
        )
        with pytest.raises(MatrixMarketError, match="more entries"):
            read_matrix_market(path)

    def test_out_of_range_entry(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
        )
        with pytest.raises(MatrixMarketError, match="outside"):
            read_matrix_market(path)

    def test_malformed_entry(self, tmp_path):
        path = write_text(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nfoo bar\n",
        )
        with pytest.raises(MatrixMarketError, match="bad entry"):
            read_matrix_market(path)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path, rng):
        pattern = (rng.random((9, 14)) < 0.3).astype(int)
        bg = bipartite_from_dense(pattern)
        path = tmp_path / "round.mtx"
        write_matrix_market(bg, path, comment="round trip\ntwo lines")
        back = read_matrix_market(path)
        assert back.num_nets == bg.num_nets
        assert back.num_vertices == bg.num_vertices
        assert back.net_to_vtxs.sorted() == bg.net_to_vtxs.sorted()
