"""Schedule-spec grammar: parsing, round-trips, derived algorithm tables.

The acceptance bar of the plan/engine refactor: ``ScheduleSpec.parse``
round-trips all 8 paper schedules (plus ``-B1``/``-B2`` variants), alias
spellings normalize to one canonical name, and the *derived*
``BGPC_ALGORITHMS``/``D2GC_ALGORITHMS`` tables are golden-pinned equal to
the previously hand-written specs.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.plan import (
    BALANCING_POLICIES,
    INF_ITERS,
    PAPER_SCHEDULES,
    AlgorithmSpec,
    ScheduleSpec,
    build_algorithm_table,
    normalize_schedule_name,
    resolve_schedule,
    validate_horizons,
)
from repro.errors import ColoringError
from repro.machine.engine import QUEUE_ATOMIC, QUEUE_PRIVATE


class TestRoundTrip:
    @pytest.mark.parametrize("name", PAPER_SCHEDULES)
    def test_paper_names_round_trip(self, name):
        assert str(ScheduleSpec.parse(name)) == name

    @pytest.mark.parametrize("name", PAPER_SCHEDULES)
    @pytest.mark.parametrize("suffix", ["B1", "B2"])
    def test_balanced_variants_round_trip(self, name, suffix):
        balanced = f"{name}-{suffix}"
        spec = ScheduleSpec.parse(balanced)
        assert spec.balancing == suffix
        assert str(spec) == balanced

    def test_parse_is_idempotent_on_canonical_names(self):
        for name in PAPER_SCHEDULES:
            spec = ScheduleSpec.parse(name)
            again = ScheduleSpec.parse(str(spec))
            assert again == spec

    @given(
        net_color=st.integers(min_value=0, max_value=5),
        extra_removal=st.integers(min_value=0, max_value=5),
        chunk=st.integers(min_value=1, max_value=512),
        private=st.booleans(),
        balancing=st.sampled_from(BALANCING_POLICIES),
    )
    def test_any_valid_spec_round_trips(
        self, net_color, extra_removal, chunk, private, balancing
    ):
        # Horizons built to satisfy the invariant by construction.
        net_removal = max(net_color - 1, 0) + extra_removal
        spec = ScheduleSpec(
            net_color_iters=net_color,
            net_removal_iters=net_removal,
            chunk=chunk,
            queue_mode=QUEUE_PRIVATE if private else QUEUE_ATOMIC,
            balancing=balancing,
        )
        assert ScheduleSpec.parse(str(spec)) == spec


class TestSwitchSegments:
    """Per-iteration balancing switches: the ``POLICY@ITER`` grammar."""

    def test_issue_example_round_trips(self):
        spec = ScheduleSpec.parse("V-V-64D-B1@2")
        assert spec.balancing == "U"
        assert spec.switches == ((2, "B1"),)
        assert str(spec) == "V-V-64D-B1@2"

    def test_multiple_segments_round_trip(self):
        spec = ScheduleSpec.parse("N1-N2-B1-B2@2-U@5")
        assert spec.balancing == "B1"
        assert spec.switches == ((2, "B2"), (5, "U"))
        assert str(spec) == "N1-N2-B1-B2@2-U@5"

    def test_active_balancing_resolution(self):
        spec = ScheduleSpec.parse("V-V-B1-B2@2-U@4")
        assert [spec.active_balancing(i) for i in range(6)] == [
            "B1", "B1", "B2", "B2", "U", "U",
        ]

    def test_iteration_plan_stamps_active_policy(self):
        spec = ScheduleSpec.parse("V-V-64D-B1@2")
        assert spec.iteration_plan(0).color.balancing == "U"
        assert spec.iteration_plan(1).color.balancing == "U"
        assert spec.iteration_plan(2).color.balancing == "B1"
        assert spec.iteration_plan(7).color.balancing == "B1"

    @pytest.mark.parametrize(
        "bad",
        [
            "V-V-B1@",        # missing iteration
            "V-V-B1@0",       # iteration 0 is the base policy
            "V-V-B1@-1",      # negative
            "V-V-B1@x",       # non-integer
            "V-V-B3@2",       # unknown policy
            "V-V-B1@2.5",     # fractional
        ],
    )
    def test_malformed_segments_rejected(self, bad):
        with pytest.raises(ColoringError, match="cannot parse schedule"):
            ScheduleSpec.parse(bad)

    def test_duplicate_switch_iteration_rejected(self):
        with pytest.raises(ColoringError, match="duplicate switch iteration"):
            ScheduleSpec.parse("V-V-B1@2-B2@2")

    def test_decreasing_switch_iterations_rejected(self):
        with pytest.raises(ColoringError, match="strictly increasing"):
            ScheduleSpec.parse("V-V-B2@3-B1@2")

    def test_direct_construction_validated(self):
        with pytest.raises(ColoringError, match="switch iteration must be >= 1"):
            ScheduleSpec(switches=((0, "B1"),))
        with pytest.raises(ColoringError, match="bad switch policy"):
            ScheduleSpec(switches=((2, "B9"),))
        with pytest.raises(ColoringError, match="strictly increasing"):
            ScheduleSpec(switches=((3, "B1"), (2, "B2")))

    @given(
        net_color=st.integers(min_value=0, max_value=3),
        extra_removal=st.integers(min_value=0, max_value=3),
        balancing=st.sampled_from(BALANCING_POLICIES),
        starts=st.lists(
            st.integers(min_value=1, max_value=20), unique=True, max_size=4
        ),
        policies=st.lists(st.sampled_from(BALANCING_POLICIES), min_size=4, max_size=4),
    )
    def test_switched_specs_round_trip(
        self, net_color, extra_removal, balancing, starts, policies
    ):
        switches = tuple(zip(sorted(starts), policies))
        spec = ScheduleSpec(
            net_color_iters=net_color,
            net_removal_iters=max(net_color - 1, 0) + extra_removal,
            balancing=balancing,
            switches=switches,
        )
        assert ScheduleSpec.parse(str(spec)) == spec


class TestAliases:
    @pytest.mark.parametrize(
        "alias, canonical",
        [
            ("V-N∞", "V-Ninf"),
            ("v-ninf", "V-Ninf"),
            ("v-v", "V-V"),
            ("n1-n2", "N1-N2"),
            ("N1-N2-b1", "N1-N2-B1"),
            ("v-v-64d", "V-V-64D"),
            ("V-V-D", "V-V-64D"),
            ("  V-N2  ", "V-N2"),
            ("Ninf-Ninf", "Ninf-Ninf"),
        ],
    )
    def test_normalize(self, alias, canonical):
        assert normalize_schedule_name(alias) == canonical

    def test_infinity_token(self):
        spec = ScheduleSpec.parse("V-N∞")
        assert spec.net_removal_iters == INF_ITERS

    def test_explicit_chunk_without_d_is_atomic(self):
        spec = ScheduleSpec.parse("V-V-64")
        assert spec.chunk == 64 and spec.queue_mode == QUEUE_ATOMIC

    def test_bare_d_implies_chunk_64(self):
        spec = ScheduleSpec.parse("V-N1-D")
        assert spec.chunk == 64 and spec.queue_mode == QUEUE_PRIVATE


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad", ["", "V", "bogus", "X-Y", "V-V-banana", "N0-N1", "V-V-64-32"]
    )
    def test_rejects_with_grammar_hint(self, bad):
        with pytest.raises(ColoringError, match="cannot parse schedule"):
            ScheduleSpec.parse(bad)

    def test_duplicate_balancing_rejected(self):
        with pytest.raises(ColoringError, match="duplicate balancing"):
            ScheduleSpec.parse("V-V-B1-B2")

    def test_horizon_invariant_enforced(self):
        # Net coloring must follow a net-based removal (invariant lives in
        # validate_horizons, shared with the legacy AlgorithmSpec).
        with pytest.raises(ColoringError, match="net coloring must follow"):
            ScheduleSpec.parse("N2-V")
        with pytest.raises(ColoringError, match="net coloring must follow"):
            validate_horizons("x", 2, 0)
        validate_horizons("x", 1, 0)  # exceeding by exactly 1 is allowed

    def test_resolver_lists_known_names(self):
        with pytest.raises(ColoringError, match="unknown BGPC algorithm"):
            resolve_schedule("nope", build_algorithm_table(), problem="BGPC")


class TestDerivedTables:
    #: The hand-written tables this refactor replaced, pinned verbatim.
    GOLDEN = {
        "V-V": AlgorithmSpec("V-V", chunk=1, queue_mode=QUEUE_ATOMIC),
        "V-V-64": AlgorithmSpec("V-V-64", chunk=64, queue_mode=QUEUE_ATOMIC),
        "V-V-64D": AlgorithmSpec("V-V-64D", chunk=64, queue_mode=QUEUE_PRIVATE),
        "V-Ninf": AlgorithmSpec(
            "V-Ninf", chunk=64, queue_mode=QUEUE_PRIVATE,
            net_removal_iters=INF_ITERS,
        ),
        "V-N1": AlgorithmSpec(
            "V-N1", chunk=64, queue_mode=QUEUE_PRIVATE, net_removal_iters=1
        ),
        "V-N2": AlgorithmSpec(
            "V-N2", chunk=64, queue_mode=QUEUE_PRIVATE, net_removal_iters=2
        ),
        "N1-N2": AlgorithmSpec(
            "N1-N2", chunk=64, queue_mode=QUEUE_PRIVATE,
            net_color_iters=1, net_removal_iters=2,
        ),
        "N2-N2": AlgorithmSpec(
            "N2-N2", chunk=64, queue_mode=QUEUE_PRIVATE,
            net_color_iters=2, net_removal_iters=2,
        ),
    }

    def test_bgpc_table_matches_golden(self):
        from repro.core.bgpc import BGPC_ALGORITHMS

        assert BGPC_ALGORITHMS == self.GOLDEN

    def test_d2gc_table_matches_golden(self):
        from repro.core.d2gc import D2GC_ALGORITHMS

        assert D2GC_ALGORITHMS == self.GOLDEN

    def test_build_table_matches_golden(self):
        assert build_algorithm_table() == self.GOLDEN


class TestIterationPlan:
    def test_n1_n2_phase_kinds(self):
        spec = ScheduleSpec.parse("N1-N2")
        kinds = [
            (p.color.kind, p.remove.kind)
            for p in (spec.iteration_plan(i) for i in range(4))
        ]
        assert kinds == [
            ("net", "net"),
            ("vertex", "net"),
            ("vertex", "vertex"),
            ("vertex", "vertex"),
        ]

    def test_queue_mode_only_on_vertex_removal(self):
        spec = ScheduleSpec.parse("V-N1")
        assert spec.iteration_plan(0).remove.queue_mode == "none"
        assert spec.iteration_plan(1).remove.queue_mode == spec.queue_mode
        assert spec.iteration_plan(1).color.queue_mode == "none"

    def test_balancing_carried_into_plans(self):
        plan = ScheduleSpec.parse("V-V-B2").iteration_plan(0)
        assert plan.color.balancing == "B2"


class TestCompatShims:
    def test_algorithm_spec_importable_from_driver(self):
        from repro.core.driver import AlgorithmSpec as DriverSpec

        assert DriverSpec is AlgorithmSpec

    def test_run_speculative_accepts_algorithm_spec(self, rng):
        import numpy as np

        from repro.core.bgpc.runner import BGPCAdapter
        from repro.core.driver import run_speculative
        from repro.graph import bipartite_from_dense
        from repro.machine.cost import CostModel

        bg = bipartite_from_dense((rng.random((15, 20)) < 0.2).astype(int))
        adapter = BGPCAdapter(bg, CostModel())
        legacy = AlgorithmSpec("custom", chunk=8, queue_mode=QUEUE_PRIVATE)
        result = run_speculative(adapter, legacy, threads=4, backend="sim")
        assert result.algorithm == "custom"
        assert np.all(result.colors >= 0)

    def test_spec_conversions_preserve_fields(self):
        spec = ScheduleSpec.parse("N1-N2")
        legacy = spec.to_algorithm_spec("N1-N2")
        assert ScheduleSpec.from_algorithm_spec(legacy) == spec
