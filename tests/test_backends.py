"""Execution-backend registry and the schedules × backends parity matrix.

Every named schedule must produce a *valid* coloring on every registered
backend; ``numpy``-exact mode must match the sequential reference (and
therefore the one-thread simulator) byte-for-byte; ``threaded`` runs on
real Python threads and must converge despite genuine races; ``process``
runs on a shared-memory worker pool and must additionally leave zero
stale ``/dev/shm`` segments on every exit path, including a worker killed
mid-iteration.
"""

import glob

import numpy as np
import pytest

from repro.core.backends import (
    NumpyBackend,
    ProcessBackend,
    SimBackend,
    ThreadedBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.bgpc import BGPC_ALGORITHMS, color_bgpc, sequential_bgpc
from repro.core.compiled import PURE_ENV, numba_available
from repro.core.d2gc import color_d2gc
from repro.core.validate import validate_bgpc, validate_d2gc
from repro.errors import ColoringError
from repro.graph import bipartite_from_dense
from repro.graph.ops import bipartite_to_graph


@pytest.fixture
def bg(rng):
    return bipartite_from_dense((rng.random((25, 35)) < 0.18).astype(int))


def _runnable(backend, monkeypatch):
    """Keep the parity matrix total: ``compiled`` registers without numba,
    so run its kernels as plain Python where numba is missing (CI's
    compiled-smoke job covers the JIT path)."""
    if backend == "compiled" and not numba_available():
        monkeypatch.setenv(PURE_ENV, "1")


@pytest.fixture
def sym_graph(rng):
    base = (rng.random((24, 24)) < 0.12).astype(int)
    sym = ((base + base.T + np.eye(24, dtype=int)) > 0).astype(int)
    return bipartite_to_graph(bipartite_from_dense(sym))


class TestRegistry:
    def test_default_backends_registered(self):
        assert set(backend_names()) >= {"sim", "numpy", "threaded", "process"}

    def test_get_backend_returns_singletons(self):
        assert isinstance(get_backend("sim"), SimBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert isinstance(get_backend("threaded"), ThreadedBackend)
        assert isinstance(get_backend("process"), ProcessBackend)

    def test_unknown_backend_lists_names(self):
        with pytest.raises(ColoringError, match="unknown backend"):
            get_backend("gpu")
        with pytest.raises(ColoringError, match="threaded"):
            get_backend("gpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ColoringError, match="already registered"):
            register_backend(SimBackend())

    def test_replace_allows_reregistration(self):
        original = get_backend("sim")
        try:
            replacement = SimBackend()
            register_backend(replacement, replace=True)
            assert get_backend("sim") is replacement
        finally:
            register_backend(original, replace=True)

    def test_legacy_backends_tuple_still_importable(self):
        from repro.core.driver import BACKENDS

        assert "sim" in BACKENDS and "numpy" in BACKENDS


class TestParityMatrix:
    """All named schedules × all registered backends → valid colorings."""

    @pytest.mark.parametrize("alg", sorted(BGPC_ALGORITHMS))
    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_bgpc_conflict_free(self, bg, alg, backend, monkeypatch):
        _runnable(backend, monkeypatch)
        result = color_bgpc(bg, algorithm=alg, threads=4, backend=backend)
        validate_bgpc(bg, result.colors)
        assert result.backend == backend

    @pytest.mark.parametrize("alg", ("V-V-64D", "N1-N2"))
    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_d2gc_conflict_free(self, sym_graph, alg, backend, monkeypatch):
        _runnable(backend, monkeypatch)
        result = color_d2gc(sym_graph, algorithm=alg, threads=4, backend=backend)
        validate_d2gc(sym_graph, result.colors)

    @pytest.mark.parametrize("alg", sorted(BGPC_ALGORITHMS))
    def test_numpy_exact_matches_sequential_bytes(self, bg, alg):
        # Exact mode ignores the kernel schedule; every named spec must
        # yield the sequential-greedy colors byte-for-byte.
        exact = color_bgpc(bg, algorithm=alg, backend="numpy")
        seq = sequential_bgpc(bg)
        assert exact.colors.tobytes() == seq.colors.tobytes()

    @pytest.mark.parametrize("alg", ("V-V", "V-V-64", "V-V-64D"))
    def test_numpy_exact_matches_one_thread_sim_bytes(self, bg, alg):
        # At one simulated thread the vertex-based schedules are race-free
        # and reduce to sequential greedy, so sim and numpy-exact agree
        # exactly (net-based schedules legitimately recolor and differ).
        sim = color_bgpc(bg, algorithm=alg, threads=1, backend="sim")
        fast = color_bgpc(bg, algorithm=alg, backend="numpy")
        assert sim.colors.tobytes() == fast.colors.tobytes()


class TestSwitchedScheduleParity:
    """Per-iteration ``@`` policy switches run on every backend.

    Whole-array backends ignore kernel plans (they already ignore the
    static balancing suffix the same way), so a switched spec must stay
    *valid* everywhere and byte-match the usual parity anchors.
    """

    @pytest.mark.parametrize("backend", sorted(backend_names()))
    def test_valid_on_every_backend(self, bg, backend, monkeypatch):
        _runnable(backend, monkeypatch)
        result = color_bgpc(bg, algorithm="V-V-64D-B1@2", threads=4, backend=backend)
        validate_bgpc(bg, result.colors)
        assert result.algorithm == "V-V-64D-B1@2"

    def test_numpy_exact_matches_sequential_bytes(self, bg):
        exact = color_bgpc(bg, algorithm="V-V-64D-B1@2", backend="numpy")
        seq = sequential_bgpc(bg)
        assert exact.colors.tobytes() == seq.colors.tobytes()

    def test_one_thread_sim_matches_sequential_bytes(self, bg):
        # One simulated thread is race-free: the loop converges before any
        # switch iteration is reached, reducing to sequential greedy.
        sim = color_bgpc(bg, algorithm="V-V-64D-B1@2", threads=1, backend="sim")
        seq = sequential_bgpc(bg)
        assert sim.colors.tobytes() == seq.colors.tobytes()

    def test_noop_switch_is_byte_identical(self, bg):
        # Switching to the policy already active must not perturb anything.
        plain = color_bgpc(bg, algorithm="V-V-64D", threads=16, backend="sim")
        switched = color_bgpc(bg, algorithm="V-V-64D-U@3", threads=16, backend="sim")
        assert plain.colors.tobytes() == switched.colors.tobytes()
        assert plain.work_metrics == switched.work_metrics

    def test_switch_shares_iteration_zero_with_base(self, bg):
        # B1@1 runs first-fit at iteration 0 exactly like the unswitched
        # spec, so the first iteration's record is identical; later
        # iterations recolor the conflict queue with B1 instead.
        plain = color_bgpc(bg, algorithm="V-V-64D", threads=16, backend="sim")
        switched = color_bgpc(bg, algorithm="V-V-64D-B1@1", threads=16, backend="sim")
        assert switched.iterations[0].queue_size == plain.iterations[0].queue_size
        assert switched.iterations[0].conflicts == plain.iterations[0].conflicts
        validate_bgpc(bg, switched.colors)

    def test_process_multiworker_switched_valid(self, bg):
        result = color_bgpc(
            bg, algorithm="V-V-64D-B1@1", threads=2, backend="process"
        )
        validate_bgpc(bg, result.colors)


class TestThreadedBackend:
    def test_converges_and_reports_wall(self, bg):
        result = color_bgpc(bg, algorithm="V-V-64D", threads=4, backend="threaded")
        validate_bgpc(bg, result.colors)
        assert result.backend == "threaded"
        assert result.cycles == 0.0
        assert result.wall_seconds > 0.0
        assert all(rec.color_timing is None for rec in result.iterations)
        assert all(rec.wall_seconds > 0.0 for rec in result.iterations)

    def test_single_thread_matches_sequential(self, bg):
        # One real thread has no races: plain greedy in work order.
        result = color_bgpc(bg, algorithm="V-V", threads=1, backend="threaded")
        seq = sequential_bgpc(bg)
        assert result.colors.tobytes() == seq.colors.tobytes()
        assert result.num_iterations == 1

    def test_profile_table_uses_wall_path(self, bg):
        from repro.obs import profile_table

        result = color_bgpc(bg, algorithm="V-V-64D", threads=4, backend="threaded")
        table = profile_table(result)
        assert "backend threaded" in table
        assert "wall ms" in table
        assert "setup" in table

    def test_schedule_with_net_phases(self, bg):
        result = color_bgpc(bg, algorithm="N1-N2", threads=4, backend="threaded")
        validate_bgpc(bg, result.colors)

    def test_hybrid_dist_accepts_threaded(self, bg):
        from repro.dist.hybrid import hybrid_bgpc

        result = hybrid_bgpc(bg, ranks=2, threads_per_rank=2, backend="threaded")
        validate_bgpc(bg, result.colors)

    def test_hybrid_dist_rejects_whole_array_backend(self, bg):
        from repro.dist.hybrid import hybrid_bgpc

        with pytest.raises(ColoringError, match="kernel-level"):
            hybrid_bgpc(bg, ranks=2, threads_per_rank=2, backend="numpy")


def _shm_segments() -> set:
    """Current ``repro_shm_`` segments in ``/dev/shm`` (empty off Linux)."""
    return set(glob.glob("/dev/shm/repro_shm_*"))


class TestProcessBackend:
    """Worker-pool semantics, shared-memory hygiene, and fault injection."""

    def test_converges_and_reports_wall(self, bg):
        from repro.obs import profile_table

        result = color_bgpc(bg, algorithm="V-V-64D", threads=2, backend="process")
        validate_bgpc(bg, result.colors)
        assert result.backend == "process"
        assert result.cycles == 0.0
        assert result.wall_seconds > 0.0
        assert all(rec.color_timing is None for rec in result.iterations)
        assert all(rec.wall_seconds > 0.0 for rec in result.iterations)
        assert "backend process" in profile_table(result)

    def test_dispatched_phases_beyond_one_chunk(self, rng):
        # > chunk tasks forces pool dispatch (small phases run inline in
        # the parent); the coloring must stay valid either way.
        big = bipartite_from_dense((rng.random((90, 160)) < 0.08).astype(int))
        result = color_bgpc(big, algorithm="V-V-64D", threads=2, backend="process")
        validate_bgpc(big, result.colors)

    def test_single_worker_v_v_matches_sequential(self, bg):
        # One worker drains the chunk queue in order with no races: plain
        # greedy in work order, exactly like threaded at one thread.
        result = color_bgpc(bg, algorithm="V-V", threads=1, backend="process")
        seq = sequential_bgpc(bg)
        assert result.colors.tobytes() == seq.colors.tobytes()
        assert result.num_iterations == 1

    def test_worker_counters_through_tracer(self, bg):
        from repro.obs import RecordingTracer

        tracer = RecordingTracer()
        result = color_bgpc(
            bg, algorithm="V-V-64D", threads=2, backend="process", tracer=tracer
        )
        validate_bgpc(bg, result.colors)
        counters = [e for e in tracer.events if e.name == "process.worker_tasks"]
        assert counters
        assert all(e.attrs["phase"] in ("color", "remove") for e in counters)
        colored = sum(
            e.value for e in counters if e.attrs["phase"] == "color"
        )
        # Every vertex is colored at least once (conflicts recolor extras).
        assert colored >= bg.num_vertices

    def test_no_leaked_segments_after_clean_run(self, bg):
        before = _shm_segments()
        result = color_bgpc(bg, algorithm="V-V-64D", threads=2, backend="process")
        validate_bgpc(bg, result.colors)
        assert _shm_segments() == before

    def test_killed_worker_raises_and_leaks_nothing(self, bg, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_FAULT", "kill")
        before = _shm_segments()
        with pytest.raises(ColoringError, match="worker process died"):
            color_bgpc(bg, algorithm="V-V-64D", threads=2, backend="process")
        assert _shm_segments() == before

    def test_malformed_fault_directive_rejected(self, bg, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_FAULT", "explode")
        with pytest.raises(ColoringError, match="fault directive"):
            color_bgpc(bg, algorithm="V-V-64D", threads=2, backend="process")

    def test_parse_fault_grammar(self):
        from repro.core.procworker import parse_fault

        assert parse_fault(None) is None
        assert parse_fault("") is None
        assert parse_fault("kill") == {"kind": "kill", "after_chunks": 1}
        assert parse_fault("kill:3") == {"kind": "kill", "after_chunks": 3}
        with pytest.raises(ValueError):
            parse_fault("kill:0")
        with pytest.raises(ValueError):
            parse_fault("explode")

    def test_invalid_worker_count_rejected(self, bg):
        with pytest.raises(ColoringError, match="threads >= 1"):
            color_bgpc(bg, algorithm="V-V-64D", threads=0, backend="process")

    def test_hybrid_dist_rejects_process(self, bg):
        from repro.dist.hybrid import hybrid_bgpc

        with pytest.raises(ColoringError, match="kernel-level"):
            hybrid_bgpc(bg, ranks=2, threads_per_rank=2, backend="process")


class TestTracedParity:
    def test_sim_span_stream_unchanged_by_dispatch(self, bg):
        # The run/iteration/phase span structure must be identical whether
        # the caller goes through color_bgpc or the backend directly.
        from repro.obs import RecordingTracer

        t1, t2 = RecordingTracer(), RecordingTracer()
        color_bgpc(bg, algorithm="N1-N2", threads=4, backend="sim", tracer=t1)
        color_bgpc(bg, algorithm="N1-N2", threads=4, backend="sim", tracer=t2)
        names1 = [e.name for e in t1.events]
        assert names1 == [e.name for e in t2.events]
        assert "run" in names1 and "iteration" in names1 and "phase" in names1

    def test_threaded_iteration_spans_report_wall(self, bg):
        from repro.obs import RecordingTracer

        tracer = RecordingTracer()
        color_bgpc(
            bg, algorithm="V-V-64D", threads=4, backend="threaded", tracer=tracer
        )
        iters = [e for e in tracer.events if e.name == "iteration"]
        assert iters
        assert all("wall_seconds" in e.attrs for e in iters)
        assert all("cycles" not in e.attrs for e in iters)
