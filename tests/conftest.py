"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import random_bipartite, random_graph
from repro.graph.build import bipartite_from_dense, graph_from_edges


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_bipartite():
    """A hand-written 3-net / 5-vertex instance.

    nets: 0 -> {0, 1, 2}, 1 -> {2, 3}, 2 -> {3, 4}
    Conflict pairs: (0,1), (0,2), (1,2), (2,3), (3,4).
    Optimal BGPC uses 3 colors (net 0 is a triangle of conflicts).
    """
    pattern = np.array(
        [
            [1, 1, 1, 0, 0],
            [0, 0, 1, 1, 0],
            [0, 0, 0, 1, 1],
        ]
    )
    return bipartite_from_dense(pattern)


@pytest.fixture
def small_bipartite():
    """A 40-net / 60-vertex random instance, moderately dense."""
    return random_bipartite(40, 60, density=0.08, seed=7)


@pytest.fixture
def medium_bipartite():
    """A 150-net / 200-vertex random instance for parallel-run tests."""
    return random_bipartite(150, 200, density=0.04, seed=3)


@pytest.fixture
def path_graph():
    """P5: 0-1-2-3-4.  D2GC needs 3 colors."""
    return graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], num_vertices=5)


@pytest.fixture
def star_graph():
    """K1,6: center 0.  D2GC needs 7 colors (all vertices pairwise d<=2)."""
    return graph_from_edges([(0, k) for k in range(1, 7)], num_vertices=7)


@pytest.fixture
def small_graph():
    """An 80-vertex random graph with 240 edges."""
    return random_graph(80, 240, seed=9)
