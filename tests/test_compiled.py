"""Tests for the optional numba-compiled backend (``backend="compiled"``).

Three contract levels, matching the backend's three operating regimes:

* **pure-mode parity** (always runs): under ``REPRO_COMPILED_PURE`` the
  plain-Python kernels must reproduce ``backend="numpy"`` byte-for-byte —
  colors, per-round records and every work counter including the
  :data:`~repro.obs.work.FASTPATH_METRICS` extras;
* **JIT parity** (``@pytest.mark.numba``, auto-skipped without numba):
  the same assertions against the actually-compiled kernels;
* **missing-dependency behaviour** (skipped *when* numba is installed):
  selecting the backend must be a one-line :class:`ColoringError` → CLI
  exit 2, the server must fail fast at startup, and the size router must
  degrade to the declared fallback without ever overriding a pin.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.backends import backend_names, get_backend
from repro.core.bgpc import color_bgpc
from repro.core.compiled import CompiledBackend, PURE_ENV, numba_available
from repro.core.d2gc import color_d2gc
from repro.errors import ColoringError, ServiceError
from repro.graph import bipartite_from_dense, write_matrix_market
from repro.graph.ops import bipartite_to_graph
from repro.serve import main as serve_main
from repro.service import SizeRouter

needs_numba = pytest.mark.numba
skip_without_numba = pytest.mark.skipif(
    not numba_available(), reason="numba not installed"
)
skip_with_numba = pytest.mark.skipif(
    numba_available(), reason="numba installed; missing-dep paths unreachable"
)

MODES = ("exact", "speculative")


@pytest.fixture
def bg(rng):
    return bipartite_from_dense((rng.random((30, 45)) < 0.15).astype(int))


@pytest.fixture
def sym_graph(rng):
    base = (rng.random((28, 28)) < 0.12).astype(int)
    sym = ((base + base.T + np.eye(28, dtype=int)) > 0).astype(int)
    return bipartite_to_graph(bipartite_from_dense(sym))


def _assert_matches_numpy(compiled, reference):
    assert compiled.backend == "compiled"
    assert compiled.colors.tobytes() == reference.colors.tobytes()
    assert compiled.num_colors == reference.num_colors
    assert compiled.work_metrics == reference.work_metrics
    assert len(compiled.iterations) == len(reference.iterations)
    for got, want in zip(compiled.iterations, reference.iterations):
        assert got.queue_size == want.queue_size
        assert got.conflicts == want.conflicts
        assert got.colors_introduced == want.colors_introduced


class TestRegistry:
    def test_compiled_is_registered_without_numba(self):
        assert "compiled" in backend_names()
        assert isinstance(get_backend("compiled"), CompiledBackend)

    def test_fallback_points_at_numpy(self):
        assert get_backend("compiled").fallback == "numpy"

    def test_available_reflects_numba_or_pure_hook(self, monkeypatch):
        monkeypatch.delenv(PURE_ENV, raising=False)
        assert get_backend("compiled").available() == numba_available()
        monkeypatch.setenv(PURE_ENV, "1")
        assert get_backend("compiled").available()


class _ParityAssertions:
    """Shared parity assertions; subclasses pick the kernel flavour."""

    @pytest.mark.parametrize("mode", MODES)
    def test_bgpc_matches_numpy_bytes_and_counters(self, bg, mode):
        compiled = color_bgpc(bg, backend="compiled", fastpath_mode=mode)
        reference = color_bgpc(bg, backend="numpy", fastpath_mode=mode)
        _assert_matches_numpy(compiled, reference)

    @pytest.mark.parametrize("mode", MODES)
    def test_d2gc_matches_numpy_bytes_and_counters(self, sym_graph, mode):
        compiled = color_d2gc(sym_graph, backend="compiled", fastpath_mode=mode)
        reference = color_d2gc(sym_graph, backend="numpy", fastpath_mode=mode)
        _assert_matches_numpy(compiled, reference)

    def test_speculative_carries_fastpath_extras(self, bg):
        result = color_bgpc(
            bg, backend="compiled", fastpath_mode="speculative"
        )
        assert "fastpath.palette_words" in result.work_metrics
        assert "fastpath.mask_or_words" in result.work_metrics

    def test_rejects_resume_and_non_first_fit(self, bg):
        from repro.core.policies import get_policy

        with pytest.raises(ColoringError, match="cannot resume"):
            color_bgpc(
                bg,
                backend="compiled",
                initial_colors=np.full(bg.num_vertices, -1, dtype=np.int64),
            )
        with pytest.raises(ColoringError, match="first-fit"):
            color_bgpc(bg, backend="compiled", policy=get_policy("B1"))

    def test_rejects_unknown_mode(self, bg):
        with pytest.raises(ColoringError, match="unknown fastpath mode"):
            color_bgpc(bg, backend="compiled", fastpath_mode="bogus")


class TestPureModeParity(_ParityAssertions):
    """The plain-Python kernels, runnable on any host."""

    @pytest.fixture(autouse=True)
    def _pure(self, monkeypatch):
        monkeypatch.setenv(PURE_ENV, "1")


@needs_numba
@skip_without_numba
class TestJitParity(_ParityAssertions):
    """The numba-compiled kernels (CI's compiled-smoke job)."""

    @pytest.fixture(autouse=True)
    def _jit(self, monkeypatch):
        monkeypatch.delenv(PURE_ENV, raising=False)


@skip_with_numba
class TestMissingNumba:
    """Without numba, selection fails in one line everywhere."""

    @pytest.fixture(autouse=True)
    def _no_pure_hook(self, monkeypatch):
        monkeypatch.delenv(PURE_ENV, raising=False)

    def test_run_raises_one_line_coloring_error(self, bg):
        with pytest.raises(ColoringError, match="requires numba") as exc:
            color_bgpc(bg, backend="compiled")
        assert "\n" not in str(exc.value)

    def test_cli_exits_2_with_one_error_line(self, tmp_path, rng, capsys):
        pattern = (rng.random((12, 18)) < 0.2).astype(int)
        path = tmp_path / "g.mtx"
        write_matrix_market(bipartite_from_dense(pattern), path)
        assert cli_main([str(path), "--backend", "compiled"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "numba" in err
        assert err.count("\n") == 1  # exactly one line, no traceback

    def test_serve_fails_fast_at_startup(self, capsys):
        assert serve_main(["--backend", "compiled", "--port", "0"]) == 2
        err = capsys.readouterr().err
        assert "not available" in err

    def test_router_pin_is_never_overridden(self, bg):
        with pytest.raises(ServiceError, match="not available"):
            SizeRouter().route(bg, backend="compiled")

    def test_router_degrades_unpinned_pick_to_fallback(self, bg):
        router = SizeRouter(small_backend="compiled")
        assert router.route(bg) == "numpy"

    def test_pure_hook_reenables_routing(self, bg, monkeypatch):
        monkeypatch.setenv(PURE_ENV, "1")
        router = SizeRouter(small_backend="compiled")
        assert router.route(bg) == "compiled"


class TestRegressMapBackend:
    """``--map-backend`` argument validation (the full mapped run is CI's
    compiled-smoke job; subsets legitimately fail the MISSING check)."""

    def test_malformed_mapping_exits_2(self, capsys):
        from repro.bench.regress.cli import main as regress_main

        assert regress_main(["--map-backend", "numpycompiled", "--list"]) == 2
        assert "FROM=TO" in capsys.readouterr().err

    def test_unknown_backend_exits_2(self, capsys):
        from repro.bench.regress.cli import main as regress_main

        assert regress_main(["--map-backend", "numpy=gpu", "--list"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend" in err and "compiled" in err

    def test_mapping_keeps_case_ids(self, capsys):
        from repro.bench.regress.cli import main as regress_main

        assert regress_main(["--map-backend", "numpy=compiled", "--list"]) == 0
        out = capsys.readouterr().out
        assert "[map-backend] numpy -> compiled" in out
        # Case ids are stable so the mapped run compares against the
        # committed numpy baseline entries.
        assert "bgpc/numpy-spec" in out
