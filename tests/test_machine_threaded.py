"""Tests for the real-thread executor (GIL-interleaved race sanity check)."""

import numpy as np
import pytest

from repro.core.bgpc.net import make_net_color_kernel, make_net_removal_kernel
from repro.core.bgpc.vertex import (
    make_vertex_color_kernel,
    make_vertex_removal_kernel,
)
from repro.core.policies import FirstFit
from repro.core.validate import is_valid_bgpc, validate_bgpc
from repro.datasets import random_bipartite
from repro.errors import MachineError
from repro.machine.cost import CostModel
from repro.machine.threaded import ThreadedExecutor
from repro.types import UNCOLORED


class TestExecutor:
    def test_rejects_bad_threads(self):
        with pytest.raises(MachineError):
            ThreadedExecutor(0)

    def test_runs_all_tasks(self):
        executor = ThreadedExecutor(4)
        colors = np.full(100, -1, dtype=np.int64)

        def kernel(task, ctx):
            ctx.write(task, task)

        executor.parallel_for(100, kernel, colors, chunk=7)
        assert np.array_equal(colors, np.arange(100))

    def test_queue_merge(self):
        executor = ThreadedExecutor(3)
        colors = np.zeros(10, dtype=np.int64)

        def kernel(task, ctx):
            if task % 2 == 0:
                ctx.append(task)

        queue = executor.parallel_for(10, kernel, colors)
        assert sorted(queue) == [0, 2, 4, 6, 8]

    def test_kernel_exception_propagates(self):
        executor = ThreadedExecutor(2)

        def kernel(task, ctx):
            raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            executor.parallel_for(4, kernel, np.zeros(4, dtype=np.int64))


class TestSpeculativeColoringOnRealThreads:
    """The speculative loop must converge under genuine GIL interleavings."""

    def _iterate(self, bg, threads=4, max_rounds=50):
        cost = CostModel()
        executor = ThreadedExecutor(threads)
        colors = np.full(bg.num_vertices, UNCOLORED, dtype=np.int64)
        color_kernel = make_vertex_color_kernel(bg, FirstFit(), cost)
        removal_kernel = make_vertex_removal_kernel(bg, cost)
        work = np.arange(bg.num_vertices, dtype=np.int64)
        for _ in range(max_rounds):
            if work.size == 0:
                break
            executor.parallel_for(work.size, color_kernel, colors, task_ids=work)
            queued = executor.parallel_for(
                work.size, removal_kernel, colors, task_ids=work
            )
            work = np.asarray(queued, dtype=np.int64)
        return colors, work

    def test_vertex_based_converges_to_valid(self):
        bg = random_bipartite(60, 90, density=0.08, seed=31)
        colors, remaining = self._iterate(bg)
        assert remaining.size == 0
        validate_bgpc(bg, colors)

    def test_net_based_round_is_usable(self):
        """One net-coloring + net-removal round on real threads leaves a
        conflict-free partial coloring (Alg. 7's guarantee)."""
        bg = random_bipartite(60, 90, density=0.08, seed=32)
        cost = CostModel()
        executor = ThreadedExecutor(4)
        colors = np.full(bg.num_vertices, UNCOLORED, dtype=np.int64)
        executor.parallel_for(
            bg.num_nets, make_net_color_kernel(bg, cost), colors
        )
        executor.parallel_for(
            bg.num_nets, make_net_removal_kernel(bg, cost), colors
        )
        from repro.core.validate import find_bgpc_conflict

        assert find_bgpc_conflict(bg, colors) is None


class TestExecutorReuse:
    def test_thread_states_isolated_between_executors(self):
        a = ThreadedExecutor(2)
        b = ThreadedExecutor(2)

        def kernel(task, ctx):
            ctx.thread_state["n"] = ctx.thread_state.get("n", 0) + 1

        a.parallel_for(10, kernel, np.zeros(10, dtype=np.int64))
        total_a = sum(s.get("n", 0) for s in a._thread_states)
        total_b = sum(s.get("n", 0) for s in b._thread_states)
        assert total_a == 10
        assert total_b == 0

    def test_executor_reusable_across_phases(self):
        executor = ThreadedExecutor(3)
        colors = np.full(30, -1, dtype=np.int64)

        def kernel(task, ctx):
            ctx.write(task, 1)

        executor.parallel_for(30, kernel, colors)
        executor.parallel_for(30, kernel, colors)
        assert (colors == 1).all()
