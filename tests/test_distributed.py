"""Tests for the distributed-memory BGPC framework simulation."""

import numpy as np
import pytest

from repro import validate_bgpc
from repro.datasets import random_bipartite
from repro.dist import (
    ClusterModel,
    distributed_bgpc,
    partition_contiguous,
    partition_random,
)
from repro.errors import ColoringError


@pytest.fixture(scope="module")
def instance():
    return random_bipartite(80, 150, density=0.06, seed=53)


class TestClusterModel:
    def test_superstep_accounting(self):
        cluster = ClusterModel(ranks=2, alpha=100, beta=2, sync_cycles=10)
        stats = cluster.superstep([50, 70], [5, 3], [1, 1])
        assert stats.compute_cycles == 70
        # busiest rank: alpha*1 + beta*5 = 110, plus the sync barrier.
        assert stats.comm_cycles == 110 + 10
        assert stats.words == 8
        assert cluster.total_cycles == stats.wall

    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            ClusterModel(ranks=0)

    def test_rejects_mismatched_lists(self):
        cluster = ClusterModel(ranks=2)
        with pytest.raises(ValueError):
            cluster.superstep([1])

    def test_aggregates(self):
        cluster = ClusterModel(ranks=1, alpha=0, beta=1, sync_cycles=0)
        cluster.superstep([10], [4], [2])
        cluster.superstep([20], [6], [1])
        assert cluster.num_supersteps == 2
        assert cluster.total_compute == 30
        assert cluster.total_words == 10
        assert cluster.total_messages == 3


class TestPartitions:
    def test_contiguous_covers_all_ranks(self):
        part = partition_contiguous(100, 4)
        assert part.shape == (100,)
        assert set(part.tolist()) == {0, 1, 2, 3}
        # Blocks are contiguous: the owner array is non-decreasing.
        assert np.all(np.diff(part) >= 0)

    def test_random_seeded(self):
        a = partition_random(50, 3, seed=1)
        b = partition_random(50, 3, seed=1)
        assert np.array_equal(a, b)


class TestDistributedColoring:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    def test_valid_any_rank_count(self, instance, ranks):
        result = distributed_bgpc(instance, ranks=ranks, batch=20)
        validate_bgpc(instance, result.colors)

    @pytest.mark.parametrize("batch", [1, 5, 50, 1000])
    def test_valid_any_batch(self, instance, batch):
        result = distributed_bgpc(instance, ranks=4, batch=batch)
        validate_bgpc(instance, result.colors)

    def test_single_rank_all_interior(self, instance):
        result = distributed_bgpc(instance, ranks=1)
        assert result.boundary == 0
        assert result.supersteps == 0
        assert result.conflicts == 0
        assert result.comm_words == 0

    def test_classification_partition_sensitive(self, instance):
        block = distributed_bgpc(instance, ranks=4, batch=50)
        scattered = distributed_bgpc(
            instance,
            ranks=4,
            batch=50,
            partition=partition_random(instance.num_vertices, 4, seed=2),
        )
        validate_bgpc(instance, scattered.colors)
        # A random partition can only increase the boundary set.
        assert scattered.boundary >= block.boundary

    def test_bigger_batches_fewer_supersteps(self, instance):
        small = distributed_bgpc(instance, ranks=4, batch=5)
        large = distributed_bgpc(instance, ranks=4, batch=500)
        assert large.supersteps <= small.supersteps

    def test_deterministic(self, instance):
        a = distributed_bgpc(instance, ranks=4, batch=30)
        b = distributed_bgpc(instance, ranks=4, batch=30)
        assert np.array_equal(a.colors, b.colors)
        assert a.cycles == b.cycles
        assert a.conflicts == b.conflicts

    def test_communication_accounted(self, instance):
        result = distributed_bgpc(instance, ranks=4, batch=20)
        if result.boundary:
            assert result.comm_words > 0
            assert result.comm_messages > 0

    def test_rejects_bad_batch(self, instance):
        with pytest.raises(ColoringError):
            distributed_bgpc(instance, ranks=2, batch=0)

    def test_rejects_bad_partition(self, instance):
        with pytest.raises(ColoringError):
            distributed_bgpc(
                instance,
                ranks=2,
                partition=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(ColoringError):
            distributed_bgpc(
                instance,
                ranks=2,
                partition=np.full(instance.num_vertices, 7, dtype=np.int64),
            )

    def test_interior_plus_boundary_is_total(self, instance):
        result = distributed_bgpc(instance, ranks=4)
        assert result.interior + result.boundary == instance.num_vertices


class TestHybrid:
    def test_valid(self, instance):
        from repro.dist import hybrid_bgpc

        result = hybrid_bgpc(instance, ranks=3, threads_per_rank=4, batch=20)
        validate_bgpc(instance, result.colors)

    @pytest.mark.parametrize("threads", [1, 2, 8])
    def test_valid_any_thread_count(self, instance, threads):
        from repro.dist import hybrid_bgpc

        result = hybrid_bgpc(
            instance, ranks=2, threads_per_rank=threads, batch=30
        )
        validate_bgpc(instance, result.colors)

    def test_deterministic(self, instance):
        from repro.dist import hybrid_bgpc

        a = hybrid_bgpc(instance, ranks=4, threads_per_rank=4, batch=25)
        b = hybrid_bgpc(instance, ranks=4, threads_per_rank=4, batch=25)
        assert np.array_equal(a.colors, b.colors)
        assert a.cycles == b.cycles

    def test_intra_rank_races_produce_conflicts(self, instance):
        """With many threads per rank, the rank-local coloring races; the
        hybrid resolver must absorb those conflicts too."""
        from repro.dist import hybrid_bgpc

        single = hybrid_bgpc(instance, ranks=2, threads_per_rank=1, batch=1000)
        racy = hybrid_bgpc(instance, ranks=2, threads_per_rank=16, batch=1000)
        validate_bgpc(instance, racy.colors)
        assert racy.conflicts >= single.conflicts

    def test_single_rank_single_thread_is_sequential_like(self, instance):
        from repro.dist import hybrid_bgpc

        result = hybrid_bgpc(instance, ranks=1, threads_per_rank=1)
        validate_bgpc(instance, result.colors)
        assert result.conflicts == 0
        assert result.boundary == 0

    def test_rejects_bad_threads(self, instance):
        from repro.dist import hybrid_bgpc

        with pytest.raises(ColoringError):
            hybrid_bgpc(instance, ranks=2, threads_per_rank=0)


class TestBfsPartition:
    def test_is_valid_partition(self, instance):
        from repro.dist import partition_bfs

        part = partition_bfs(instance, 4)
        assert part.shape == (instance.num_vertices,)
        assert part.min() >= 0 and part.max() < 4

    def test_roughly_balanced(self, instance):
        from repro.dist import partition_bfs

        part = partition_bfs(instance, 4)
        sizes = np.bincount(part, minlength=4)
        target = -(-instance.num_vertices // 4)
        assert sizes.max() <= target + 1

    def test_less_boundary_than_random(self):
        """On a mesh, BFS growth yields fewer boundary vertices than a
        random partition."""
        from repro.datasets import channel_mesh
        from repro.dist import distributed_bgpc, partition_bfs, partition_random

        bg = channel_mesh(nx=10, ny=8, nz=8)
        bfs = distributed_bgpc(bg, ranks=4, partition=partition_bfs(bg, 4))
        rnd = distributed_bgpc(
            bg, ranks=4,
            partition=partition_random(bg.num_vertices, 4, seed=0),
        )
        assert bfs.boundary < rnd.boundary or rnd.boundary == bg.num_vertices

    def test_coloring_valid_with_bfs_partition(self, instance):
        from repro.dist import distributed_bgpc, partition_bfs

        result = distributed_bgpc(
            instance, ranks=4, partition=partition_bfs(instance, 4)
        )
        validate_bgpc(instance, result.colors)


class TestClusterCostSensitivity:
    def test_higher_latency_costs_more(self, instance):
        from repro.dist.mpi import ClusterModel

        cheap = distributed_bgpc(
            instance, batch=10,
            cluster=ClusterModel(ranks=4, alpha=100, beta=1, sync_cycles=100),
        )
        pricey = distributed_bgpc(
            instance, batch=10,
            cluster=ClusterModel(ranks=4, alpha=100_000, beta=1, sync_cycles=100),
        )
        assert np.array_equal(cheap.colors, pricey.colors)  # costs don't steer
        assert pricey.cycles > cheap.cycles

    def test_same_colors_independent_of_cluster_costs(self, instance):
        """The cluster cost model is observational: it never changes what
        the algorithm computes, only what it charges."""
        from repro.dist.mpi import ClusterModel

        a = distributed_bgpc(
            instance, batch=25,
            cluster=ClusterModel(ranks=3, alpha=1, beta=1, sync_cycles=0),
        )
        b = distributed_bgpc(
            instance, batch=25,
            cluster=ClusterModel(ranks=3, alpha=9999, beta=77, sync_cycles=5),
        )
        assert np.array_equal(a.colors, b.colors)
        assert a.supersteps == b.supersteps
        assert a.conflicts == b.conflicts
