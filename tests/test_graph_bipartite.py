"""Unit tests for BipartiteGraph and the graph builders."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import GraphBuildError, GraphError
from repro.graph import (
    BipartiteGraph,
    bipartite_from_dense,
    bipartite_from_edges,
    bipartite_from_scipy,
)
from repro.graph.csr import CSR


class TestConstruction:
    def test_from_vtx_to_nets(self, tiny_bipartite):
        assert tiny_bipartite.num_vertices == 5
        assert tiny_bipartite.num_nets == 3
        assert tiny_bipartite.num_edges == 7

    def test_orientations_are_transposes(self, small_bipartite):
        t = small_bipartite.vtx_to_nets.transpose()
        assert t.sorted() == small_bipartite.net_to_vtxs.sorted()

    def test_mismatched_orientations_rejected(self):
        a = CSR(np.array([0, 1]), np.array([0]), 2)
        b = CSR(np.array([0, 1]), np.array([0]), 2)  # wrong: 2 cols vs 1 row
        with pytest.raises(GraphError):
            BipartiteGraph(a, b)

    def test_adjacency_views(self, tiny_bipartite):
        assert sorted(tiny_bipartite.vtxs(0)) == [0, 1, 2]
        assert sorted(tiny_bipartite.vtxs(1)) == [2, 3]
        assert sorted(tiny_bipartite.nets(2)) == [0, 1]

    def test_repr(self, tiny_bipartite):
        assert "|V_A|=5" in repr(tiny_bipartite)


class TestBounds:
    def test_color_lower_bound(self, tiny_bipartite):
        assert tiny_bipartite.color_lower_bound() == 3

    def test_neighborhood_work(self, tiny_bipartite):
        # 3^2 + 2^2 + 2^2 = 17
        assert tiny_bipartite.neighborhood_work() == 17

    def test_empty_instance(self):
        bg = bipartite_from_edges([], num_vertices=3, num_nets=2)
        assert bg.color_lower_bound() == 0
        assert bg.num_edges == 0


class TestSymmetry:
    def test_rectangular_not_symmetric(self, tiny_bipartite):
        assert not tiny_bipartite.is_structurally_symmetric()

    def test_symmetric_pattern(self):
        pattern = np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]])
        assert bipartite_from_dense(pattern).is_structurally_symmetric()

    def test_square_but_asymmetric(self):
        pattern = np.array([[1, 1], [0, 1]])
        assert not bipartite_from_dense(pattern).is_structurally_symmetric()


class TestPermutation:
    def test_permute_vertices_preserves_structure(self, small_bipartite):
        n = small_bipartite.num_vertices
        perm = np.random.default_rng(0).permutation(n)
        permuted = small_bipartite.permute_vertices(perm)
        # New vertex k is old vertex perm[k]: same net memberships.
        for k in range(0, n, 7):
            old = perm[k]
            assert sorted(permuted.nets(k)) == sorted(small_bipartite.nets(old))

    def test_permute_identity(self, small_bipartite):
        n = small_bipartite.num_vertices
        same = small_bipartite.permute_vertices(np.arange(n))
        assert same.vtx_to_nets.sorted() == small_bipartite.vtx_to_nets.sorted()

    def test_permute_preserves_lower_bound(self, small_bipartite):
        perm = np.random.default_rng(1).permutation(small_bipartite.num_vertices)
        assert (
            small_bipartite.permute_vertices(perm).color_lower_bound()
            == small_bipartite.color_lower_bound()
        )


class TestBuilders:
    def test_from_edges_dedup(self):
        bg = bipartite_from_edges([(0, 0), (0, 0), (1, 0)], num_vertices=2, num_nets=1)
        assert bg.num_edges == 2

    def test_from_edges_infers_sizes(self):
        bg = bipartite_from_edges([(3, 1)])
        assert bg.num_vertices == 4
        assert bg.num_nets == 2

    def test_from_edges_rejects_negative(self):
        with pytest.raises(GraphBuildError):
            bipartite_from_edges([(-1, 0)])

    def test_from_edges_rejects_bad_shape(self):
        with pytest.raises(GraphBuildError):
            bipartite_from_edges(np.zeros((2, 3), dtype=np.int64))

    def test_from_scipy_columns_are_vertices(self):
        mat = sparse.csr_matrix(np.array([[1, 0, 1], [0, 1, 0]]))
        bg = bipartite_from_scipy(mat)
        assert bg.num_nets == 2  # rows
        assert bg.num_vertices == 3  # columns
        assert sorted(bg.vtxs(0)) == [0, 2]

    def test_from_scipy_rejects_dense(self):
        with pytest.raises(GraphBuildError):
            bipartite_from_scipy(np.eye(3))

    def test_from_dense_matches_scipy(self):
        arr = (np.random.default_rng(2).random((6, 9)) < 0.3).astype(int)
        a = bipartite_from_dense(arr)
        b = bipartite_from_scipy(sparse.csr_matrix(arr))
        assert a.net_to_vtxs.sorted() == b.net_to_vtxs.sorted()

    def test_from_dense_rejects_1d(self):
        with pytest.raises(GraphBuildError):
            bipartite_from_dense(np.ones(4))
