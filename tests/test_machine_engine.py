"""Unit tests for the discrete-event parallel-for engine."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.cost import CostModel
from repro.machine.engine import (
    QUEUE_ATOMIC,
    QUEUE_NONE,
    QUEUE_PRIVATE,
    run_parallel_for,
)
from repro.machine.memory import TimestampedMemory
from repro.machine.scheduler import Schedule


def mem(n=16):
    return TimestampedMemory(np.full(n, -1, dtype=np.int64))


def run(n_tasks, kernel, memory=None, threads=2, cost=None, schedule=None,
        queue_mode=QUEUE_NONE, task_ids=None):
    return run_parallel_for(
        n_tasks=n_tasks,
        kernel=kernel,
        memory=memory if memory is not None else mem(max(n_tasks, 1)),
        threads=threads,
        cost=cost if cost is not None else CostModel(),
        schedule=schedule if schedule is not None else Schedule.dynamic(1),
        queue_mode=queue_mode,
        task_ids=task_ids,
    )


class TestBasics:
    def test_all_tasks_execute_once(self):
        seen = []

        def kernel(task, ctx):
            seen.append(task)
            ctx.charge_cpu(1)

        timing, _ = run(20, kernel, threads=3)
        assert sorted(seen) == list(range(20))
        assert timing.tasks == 20

    def test_task_ids_mapping(self):
        seen = []

        def kernel(task, ctx):
            seen.append(task)

        ids = np.array([5, 9, 2])
        run(3, kernel, task_ids=ids)
        assert sorted(seen) == [2, 5, 9]

    def test_empty_phase(self):
        timing, queue = run(0, lambda t, c: None)
        assert timing.tasks == 0
        assert queue == []

    def test_writes_commit_by_barrier(self):
        memory = mem(4)

        def kernel(task, ctx):
            ctx.write(task, task * 10)
            ctx.charge_cpu(5)

        run(4, kernel, memory=memory)
        assert list(memory.values) == [0, 10, 20, 30]

    def test_thread_state_persists_across_tasks(self):
        states = [{"count": 0}, {"count": 0}]

        def kernel(task, ctx):
            ctx.thread_state["count"] += 1

        run_parallel_for(
            10, kernel, mem(), threads=2, cost=CostModel(),
            schedule=Schedule.dynamic(1), thread_states=states,
        )
        assert sum(s["count"] for s in states) == 10

    def test_rejects_bad_threads(self):
        with pytest.raises(MachineError):
            run(1, lambda t, c: None, threads=0)

    def test_rejects_unknown_queue_mode(self):
        with pytest.raises(MachineError):
            run(1, lambda t, c: None, queue_mode="bogus")

    def test_append_without_queue_rejected(self):
        def kernel(task, ctx):
            ctx.append(task)

        with pytest.raises(MachineError, match="queue_mode"):
            run(1, kernel)


class TestDeterminism:
    def test_identical_reruns(self):
        def make_kernel():
            def kernel(task, ctx):
                ctx.charge_mem(task % 7 + 1)
                ctx.write(task % 16, task)
            return kernel

        memory1, memory2 = mem(), mem()
        t1, _ = run(50, make_kernel(), memory=memory1, threads=4)
        t2, _ = run(50, make_kernel(), memory=memory2, threads=4)
        assert t1.cycles == t2.cycles
        assert t1.thread_cycles == t2.thread_cycles
        assert np.array_equal(memory1.values, memory2.values)


class TestTimingSemantics:
    def test_single_thread_serializes(self):
        """With one thread every task sees all earlier writes (no races)."""
        memory = mem(8)
        blind = []

        def kernel(task, ctx):
            if task > 0:
                blind.append(ctx.colors[task - 1] == -1)
            ctx.write(task, task)
            ctx.charge_cpu(3)

        run(8, kernel, memory=memory, threads=1)
        assert not any(blind)

    def test_two_threads_race(self):
        """Concurrent tasks must miss each other's writes."""
        memory = mem(8)
        observed = []

        def kernel(task, ctx):
            observed.append((task, int(ctx.colors[1 - task]) if task < 2 else 0))
            if task < 2:
                ctx.write(task, 99)
            ctx.charge_cpu(100)

        run(2, kernel, memory=memory, threads=2, cost=CostModel(race_window_pct=100))
        # Both tasks started at the same fee-offset instant; neither sees
        # the other's write.
        assert dict(observed) == {0: -1, 1: -1}

    def test_wall_clock_is_max_thread(self):
        cost = CostModel(
            task_overhead=0, chunk_base=0, chunk_contention=0,
            barrier_base=0, barrier_per_thread=0, coherence_pct=0,
        )

        def kernel(task, ctx):
            ctx.charge_cpu(100 if task == 0 else 1)

        timing, _ = run(2, kernel, threads=2, cost=cost)
        assert timing.cycles == 100

    def test_chunk_fee_charged_per_chunk(self):
        cost = CostModel(
            task_overhead=0, chunk_base=10, chunk_contention=0,
            barrier_base=0, barrier_per_thread=0, coherence_pct=0,
        )

        def kernel(task, ctx):
            ctx.charge_cpu(1)

        # 4 tasks, 1 thread, chunk 2 -> 3 chunk grabs (2 full + 1 empty probe
        # costs nothing): 2 fees + 4 cycles... the final empty grab is free.
        timing, _ = run(4, kernel, threads=1, cost=cost,
                        schedule=Schedule.dynamic(2))
        assert timing.cycles == 2 * 10 + 4

    def test_static_schedule_has_no_fee(self):
        cost = CostModel(
            task_overhead=0, chunk_base=1000, chunk_contention=0,
            barrier_base=0, barrier_per_thread=0, coherence_pct=0,
        )

        def kernel(task, ctx):
            ctx.charge_cpu(1)

        timing, _ = run(4, kernel, threads=2, cost=cost,
                        schedule=Schedule.static())
        assert timing.cycles == 2

    def test_memory_inflation_applied_to_mem_charges(self):
        cost = CostModel(
            task_overhead=0, chunk_base=0, chunk_contention=0,
            barrier_base=0, barrier_per_thread=0,
            coherence_pct=100, bandwidth_threads=64,
        )

        def kernel(task, ctx):
            ctx.charge_mem(50)

        timing, _ = run(1, kernel, threads=2, cost=cost)
        assert timing.cycles == 100  # doubled by 100% coherence


class TestQueues:
    def test_atomic_queue_ordered_by_commit_time(self):
        cost = CostModel(
            task_overhead=0, chunk_base=0, chunk_contention=0,
            atomic_base=0, atomic_contention=0,
            barrier_base=0, barrier_per_thread=0, coherence_pct=0,
        )

        def kernel(task, ctx):
            # Task 0 is slow, task 1 fast: task 1's append lands first.
            ctx.charge_cpu(100 if task == 0 else 1)
            ctx.append(task)

        _, queue = run(2, kernel, threads=2, cost=cost, queue_mode=QUEUE_ATOMIC)
        assert queue == [1, 0]

    def test_private_queue_ordered_by_thread(self):
        def kernel(task, ctx):
            ctx.charge_cpu(100 if task == 0 else 1)
            ctx.append(task)

        _, queue = run(
            2, kernel, threads=2, queue_mode=QUEUE_PRIVATE,
            schedule=Schedule.dynamic(1),
        )
        # Thread 0 ran task 0, thread 1 task 1; merge in thread order.
        assert queue == [0, 1]

    def test_atomic_appends_cost_cycles(self):
        base = CostModel(
            task_overhead=0, chunk_base=0, chunk_contention=0,
            barrier_base=0, barrier_per_thread=0, coherence_pct=0,
            atomic_base=50, atomic_contention=0,
        )

        def kernel(task, ctx):
            ctx.append(task)
            ctx.charge_cpu(1)

        timing_atomic, _ = run(1, kernel, threads=1, cost=base,
                               queue_mode=QUEUE_ATOMIC)
        timing_private, _ = run(1, kernel, threads=1, cost=base,
                                queue_mode=QUEUE_PRIVATE)
        assert timing_atomic.cycles == timing_private.cycles + 49


class TestEngineValidation:
    def test_wrong_thread_states_length_rejected(self):
        with pytest.raises(MachineError, match="thread_states"):
            run_parallel_for(
                1,
                lambda t, c: None,
                mem(),
                threads=2,
                cost=CostModel(),
                schedule=Schedule.dynamic(1),
                thread_states=[{}],
            )

    def test_static_schedule_with_task_ids(self):
        seen = []

        def kernel(task, ctx):
            seen.append(task)

        ids = np.array([9, 7, 5, 3])
        run(4, kernel, threads=2, schedule=Schedule.static(), task_ids=ids)
        assert sorted(seen) == [3, 5, 7, 9]
