"""Tests for the perf-regression gate (:mod:`repro.bench.regress`).

The two contract-level properties from the gate's spec are pinned here:
an injected 2x probe-count inflation must be flagged as a regression, and
two consecutive collections on the same revision must serialize to
byte-for-byte identical JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.regress import (
    BenchCase,
    collect,
    compare,
    default_suite,
    load,
    save,
    select_cases,
)
from repro.bench.regress.compare import inject, parse_injection
from repro.bench.regress.store import RegressError, dumps


# One fast case per backend family keeps this module well under a second.
FAST_CASES = [
    BenchCase("t/sim", "bgpc", "bip-small", "N1-N2", threads=4),
    BenchCase(
        "t/numpy", "bgpc", "bip-small", "N1-N2",
        backend="numpy", threads=1, fastpath_mode="speculative",
    ),
    BenchCase(
        "t/threaded", "bgpc", "bip-small", "N1-N2",
        backend="threaded", threads=1,
    ),
]


@pytest.fixture(scope="module")
def baseline():
    payload, advisory = collect(FAST_CASES, repeats=2)
    assert set(advisory) == {c.id for c in FAST_CASES}
    return payload


class TestStore:
    def test_rerun_is_byte_identical(self, baseline):
        again, _ = collect(FAST_CASES, repeats=1)
        assert dumps(again) == dumps(baseline)

    def test_save_load_roundtrip(self, baseline, tmp_path):
        path = tmp_path / "BENCH_x.json"
        save(baseline, path)
        assert load(path) == baseline
        # canonical form: trailing newline, sorted keys
        text = path.read_text()
        assert text.endswith("\n")
        assert text == json.dumps(baseline, indent=2, sort_keys=True) + "\n"

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(RegressError, match="does not exist"):
            load(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(RegressError, match="not valid JSON"):
            load(bad)
        schemaless = tmp_path / "schemaless.json"
        schemaless.write_text('{"cases": {}, "schema": 99}')
        with pytest.raises(RegressError, match="schema"):
            load(schemaless)

    def test_metrics_include_behavior_and_sim_cycles(self, baseline):
        sim = baseline["cases"]["t/sim"]["metrics"]
        assert sim["num_colors"] > 0 and sim["iterations"] > 0
        assert sim["cycles"] > 0
        assert "cycles" not in baseline["cases"]["t/numpy"]["metrics"]


class TestCompare:
    def test_identical_runs_pass(self, baseline):
        report = compare(baseline, baseline)
        assert report.ok
        assert not report.failures
        assert "OK" in report.render()

    def test_injected_probe_inflation_is_flagged(self, baseline):
        current = json.loads(dumps(baseline))  # deep copy
        touched = inject(current, "probes", 2.0)
        assert touched == len(FAST_CASES)
        report = compare(baseline, current)
        assert not report.ok
        flagged = {(d.case, d.metric) for d in report.failures}
        # numpy's fastpath keeps probes at 0 (0 * 2 == 0): no false alarm.
        assert ("t/sim", "probes") in flagged
        assert ("t/threaded", "probes") in flagged
        assert ("t/numpy", "probes") not in flagged
        assert "FAIL" in report.render()
        assert "+100.0%" in report.render()

    def test_small_drift_within_band_passes(self, baseline):
        current = json.loads(dumps(baseline))
        scans = current["cases"]["t/sim"]["metrics"]["scans"]
        current["cases"]["t/sim"]["metrics"]["scans"] = int(scans * 1.01)
        assert compare(baseline, current, tolerance=0.02).ok
        assert not compare(baseline, current, tolerance=0.001).ok

    def test_improvement_passes_but_is_labelled(self, baseline):
        current = json.loads(dumps(baseline))
        current["cases"]["t/sim"]["metrics"]["probes"] //= 2
        report = compare(baseline, current)
        assert report.ok
        assert any(d.status == "improved" for d in report.deltas)
        assert "improved" in report.render()

    def test_exact_metrics_fail_in_both_directions(self, baseline):
        for delta in (+1, -1):
            current = json.loads(dumps(baseline))
            current["cases"]["t/sim"]["metrics"]["num_colors"] += delta
            report = compare(baseline, current)
            assert not report.ok
            assert any(d.status == "changed" for d in report.failures)

    def test_missing_case_fails_new_case_passes(self, baseline):
        current = json.loads(dumps(baseline))
        del current["cases"]["t/threaded"]
        current["cases"]["t/extra"] = {"metrics": {"tasks": 1}}
        report = compare(baseline, current)
        assert report.missing_cases == ["t/threaded"]
        assert report.new_cases == ["t/extra"]
        assert not report.ok

    def test_injection_parsing(self):
        assert parse_injection("probes=2") == ("probes", 2.0)
        assert parse_injection("scans=1.5") == ("scans", 1.5)
        with pytest.raises(RegressError):
            parse_injection("probes")
        with pytest.raises(RegressError):
            parse_injection("probes=lots")

    def test_injecting_unknown_metric_raises(self, baseline):
        current = json.loads(dumps(baseline))
        with pytest.raises(RegressError, match="matched no case"):
            inject(current, "typo_metric", 2.0)


class TestSuite:
    def test_default_suite_ids_unique_and_backends_covered(self):
        suite = default_suite()
        ids = [c.id for c in suite]
        assert len(ids) == len(set(ids))
        assert {c.backend for c in suite} == {
            "sim", "numpy", "threaded", "process", "sharded"
        }
        # Real-parallel backends must be pinned to one worker (determinism).
        # Sharded is exempt: supersteps commit at barriers, so it is
        # deterministic at any shard count (see docs/sharding.md).
        for case in suite:
            if case.backend in ("threaded", "process"):
                assert case.threads == 1, case.id

    def test_select_cases_glob(self):
        suite = default_suite()
        assert select_cases(suite, []) == suite
        bgpc = select_cases(suite, ["bgpc/*"])
        assert bgpc and all(c.id.startswith("bgpc/") for c in bgpc)
        assert select_cases(suite, ["nope*"]) == []

    def test_nondeterminism_is_an_error(self, monkeypatch):
        case = FAST_CASES[0]
        real_run = BenchCase.run
        calls = {"n": 0}

        def flaky_run(self, tracer=None):
            result = real_run(self, tracer)
            calls["n"] += 1
            if calls["n"] == 2:
                result.work_metrics["probes"] += 1
            return result

        monkeypatch.setattr(BenchCase, "run", flaky_run)
        with pytest.raises(RegressError, match="nondeterministic"):
            collect([case], repeats=2)


class TestCli:
    """Exit codes and wiring of ``python -m repro.bench regress``."""

    def _main(self, *argv):
        from repro.bench.regress.cli import main

        return main(list(argv))

    def test_list_and_usage_errors(self, capsys):
        assert self._main("--list") == 0
        out = capsys.readouterr().out
        assert "bgpc/N1-N2/sim16" in out
        assert self._main("--cases", "zzz*") == 2
        assert self._main() == 2  # neither --baseline nor --write

    def test_write_then_compare_roundtrip(self, tmp_path, capsys):
        base = tmp_path / "BENCH_base.json"
        head = tmp_path / "BENCH_head.json"
        args = ("--cases", "bgpc/N1-N2/sim16", "--repeats", "2")
        assert self._main("--write", str(base), *args) == 0
        assert self._main("--baseline", str(base), "--write", str(head), *args) == 0
        assert base.read_bytes() == head.read_bytes()
        assert "OK: no work-metric regressions" in capsys.readouterr().out

    def test_inject_trips_gate_with_exit_1(self, tmp_path, capsys):
        base = tmp_path / "BENCH_base.json"
        args = ("--cases", "bgpc/N1-N2/sim16", "--repeats", "1")
        assert self._main("--write", str(base), *args) == 0
        assert (
            self._main("--baseline", str(base), "--inject", "probes=2", *args)
            == 1
        )
        out = capsys.readouterr().out
        assert "regressed" in out and "FAIL" in out

    def test_inject_unknown_metric_fails_fast_with_exit_2(self, capsys):
        # Validated before the expensive collection runs: one line on
        # stderr listing the valid names, exit 2, no traceback.
        assert (
            self._main(
                "--baseline", "unused.json", "--inject", "typo_metric=2",
                "--cases", "bgpc/N1-N2/sim16",
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "unknown metric 'typo_metric'" in err
        assert "'probes'" in err and "'num_colors'" in err
        assert err.count("\n") == 1

    def test_inject_bad_spec_is_usage_error(self, capsys):
        assert (
            self._main(
                "--baseline", "unused.json", "--inject", "probes",
                "--cases", "bgpc/N1-N2/sim16",
            )
            == 2
        )
        assert "METRIC=FACTOR" in capsys.readouterr().err

    def test_missing_baseline_is_usage_error(self, tmp_path):
        assert (
            self._main(
                "--baseline", str(tmp_path / "nope.json"),
                "--cases", "bgpc/N1-N2/sim16", "--repeats", "1",
            )
            == 2
        )

    def test_bench_main_dispatches_regress(self, capsys):
        from repro.bench.__main__ import main as bench_main

        assert bench_main(["regress", "--list"]) == 0
        assert "bgpc/numpy-exact" in capsys.readouterr().out


class TestCommittedBaseline:
    """The repo-root BENCH_baseline.json must stay in sync with the code."""

    def test_committed_baseline_matches_current_code(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"
        baseline = load(path)
        current, _ = collect(default_suite(), repeats=1)
        report = compare(baseline, current)
        assert report.ok, (
            "committed BENCH_baseline.json disagrees with the current code:\n"
            + report.render()
            + "\nif the change is intentional, regenerate with "
            "`python -m repro.bench regress --write BENCH_baseline.json`"
        )
