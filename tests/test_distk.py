"""Tests for the distance-k extension (paper §VIII future work)."""

import numpy as np
import pytest

from repro.core.distk import (
    ball,
    color_distk,
    is_valid_distk,
    sequential_distk,
    validate_distk,
)
from repro.datasets import random_graph
from repro.errors import ColoringError, InvalidColoringError
from repro.graph import graph_from_edges


@pytest.fixture
def cycle10():
    edges = [(i, (i + 1) % 10) for i in range(10)]
    return graph_from_edges(edges, num_vertices=10)


class TestBall:
    def test_radius_zero_empty(self, path_graph):
        assert ball(path_graph, 2, 0).size == 0

    def test_radius_one_is_nbor(self, path_graph):
        assert sorted(ball(path_graph, 1, 1)) == [0, 2]

    def test_radius_two_matches_distance2(self, small_graph):
        for v in range(0, small_graph.num_vertices, 9):
            expected = sorted(small_graph.distance2_neighbors(v))
            assert sorted(ball(small_graph, v, 2)) == expected

    def test_radius_covers_whole_component(self, path_graph):
        assert sorted(ball(path_graph, 0, 10)) == [1, 2, 3, 4]

    def test_cycle_radius3(self, cycle10):
        assert sorted(ball(cycle10, 0, 3)) == [1, 2, 3, 7, 8, 9]


class TestK2MatchesD2gc:
    def test_same_validity_notion(self, small_graph):
        from repro import color_d2gc

        result = color_d2gc(small_graph, algorithm="V-V-64D", threads=4)
        validate_distk(small_graph, 2, result.colors)

    def test_distk_coloring_valid_for_d2gc(self, small_graph):
        from repro import validate_d2gc

        result = color_distk(small_graph, 2, algorithm="N1-N2", threads=8)
        validate_d2gc(small_graph, result.colors)


class TestColoring:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_sequential_valid(self, cycle10, k):
        result = sequential_distk(cycle10, k)
        validate_distk(cycle10, k, result.colors)

    def test_cycle_k3_needs_four(self, cycle10):
        # C10 with k=3: any 4 consecutive vertices are mutually within 3.
        result = sequential_distk(cycle10, 3)
        assert result.num_colors >= 4

    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("alg", ["V-V-64D", "V-N1", "N1-N2"])
    def test_parallel_even_k(self, k, alg):
        g = random_graph(60, 120, seed=41)
        result = color_distk(g, k, algorithm=alg, threads=8)
        validate_distk(g, k, result.colors)

    @pytest.mark.parametrize("k", [1, 3])
    def test_parallel_odd_k_vertex_based(self, k):
        g = random_graph(50, 100, seed=43)
        result = color_distk(g, k, algorithm="V-V-64D", threads=8)
        validate_distk(g, k, result.colors)

    def test_odd_k_rejects_net_based(self, cycle10):
        with pytest.raises(ColoringError, match="even k"):
            color_distk(cycle10, 3, algorithm="N1-N2", threads=4)

    def test_k_must_be_positive(self, cycle10):
        with pytest.raises(ColoringError):
            sequential_distk(cycle10, 0)

    def test_unknown_algorithm(self, cycle10):
        with pytest.raises(ColoringError, match="unknown distance-k algorithm"):
            color_distk(cycle10, 2, algorithm="Z")

    def test_larger_k_needs_more_colors(self):
        g = random_graph(70, 140, seed=44)
        counts = [sequential_distk(g, k).num_colors for k in (1, 2, 3)]
        assert counts[0] <= counts[1] <= counts[2]

    def test_deterministic(self, cycle10):
        a = color_distk(cycle10, 2, algorithm="N1-N2", threads=8)
        b = color_distk(cycle10, 2, algorithm="N1-N2", threads=8)
        assert np.array_equal(a.colors, b.colors)


class TestValidator:
    def test_detects_planted_conflict(self, cycle10):
        colors = np.arange(10)
        colors[3] = colors[0]  # distance 3 apart
        assert is_valid_distk(cycle10, 2, colors)
        assert not is_valid_distk(cycle10, 3, colors)

    def test_rejects_incomplete(self, cycle10):
        colors = np.arange(10)
        colors[0] = -1
        with pytest.raises(InvalidColoringError):
            validate_distk(cycle10, 2, colors)

    def test_rejects_bad_shape(self, cycle10):
        with pytest.raises(InvalidColoringError):
            validate_distk(cycle10, 2, np.arange(3))
