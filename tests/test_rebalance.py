"""Tests for the shuffle rebalancing post-pass baseline."""

import numpy as np
import pytest

from repro import color_bgpc, sequential_bgpc, validate_bgpc
from repro.core.balance import rebalance_shuffle
from repro.core.metrics import color_stats
from repro.datasets import random_bipartite
from repro.errors import InvalidColoringError


@pytest.fixture(scope="module")
def instance():
    return random_bipartite(100, 250, density=0.05, seed=29)


@pytest.fixture(scope="module")
def skewed_coloring(instance):
    """First-fit sequential coloring: maximally skewed class profile."""
    return sequential_bgpc(instance).colors


class TestShuffle:
    def test_output_valid(self, instance, skewed_coloring):
        result = rebalance_shuffle(instance, skewed_coloring)
        validate_bgpc(instance, result.colors)

    def test_std_decreases(self, instance, skewed_coloring):
        before = color_stats(skewed_coloring).std
        result = rebalance_shuffle(instance, skewed_coloring)
        after = color_stats(result.colors).std
        assert after < before

    def test_no_new_colors(self, instance, skewed_coloring):
        result = rebalance_shuffle(instance, skewed_coloring)
        assert result.colors.max() <= skewed_coloring.max()

    def test_move_count_positive_on_skewed_input(self, instance, skewed_coloring):
        result = rebalance_shuffle(instance, skewed_coloring)
        assert result.moves > 0

    def test_cost_is_nonzero_unlike_b1b2(self, instance, skewed_coloring):
        """The point of the baseline: the shuffle pays real cycles."""
        result = rebalance_shuffle(instance, skewed_coloring)
        assert result.estimated_cycles > 0

    def test_input_not_mutated(self, instance, skewed_coloring):
        original = skewed_coloring.copy()
        rebalance_shuffle(instance, skewed_coloring)
        assert np.array_equal(skewed_coloring, original)

    def test_rejects_invalid_input(self, instance):
        with pytest.raises(InvalidColoringError):
            rebalance_shuffle(
                instance, np.zeros(instance.num_vertices, dtype=np.int64)
            )

    def test_single_color_noop(self):
        bg = random_bipartite(5, 8, density=0.0, seed=1)
        colors = np.zeros(8, dtype=np.int64)
        result = rebalance_shuffle(bg, colors)
        assert result.moves == 0

    def test_composes_with_parallel_coloring(self, instance):
        parallel = color_bgpc(instance, algorithm="N1-N2", threads=16)
        result = rebalance_shuffle(instance, parallel.colors)
        validate_bgpc(instance, result.colors)
        assert color_stats(result.colors).std <= color_stats(parallel.colors).std
