"""End-to-end integration tests across module boundaries."""

import numpy as np
import pytest
from scipy import sparse

from repro import (
    color_bgpc,
    color_d2gc,
    read_matrix_market,
    sequential_bgpc,
    validate_bgpc,
    validate_d2gc,
    write_matrix_market,
)
from repro.apps import JacobianCompressor
from repro.datasets import load_dataset
from repro.datasets.registry import load_d2gc_dataset
from repro.graph.ops import bgpc_conflict_graph, bipartite_to_graph


class TestFileToColoring:
    def test_mtx_roundtrip_then_color(self, tmp_path, rng):
        pattern = (rng.random((25, 40)) < 0.15).astype(int)
        from repro.graph import bipartite_from_dense

        bg = bipartite_from_dense(pattern)
        path = tmp_path / "instance.mtx"
        write_matrix_market(bg, path)
        loaded = read_matrix_market(path)
        result = color_bgpc(loaded, algorithm="N1-N2", threads=8)
        validate_bgpc(loaded, result.colors)
        # The coloring of the round-tripped instance is valid for the
        # original too (identical structure).
        validate_bgpc(bg, result.colors)


class TestDatasetPipelines:
    def test_bgpc_on_every_tiny_dataset(self):
        from repro.datasets import bgpc_dataset_names

        for name in bgpc_dataset_names():
            bg = load_dataset(name, "tiny")
            result = color_bgpc(bg, algorithm="N1-N2", threads=8)
            validate_bgpc(bg, result.colors)

    def test_d2gc_on_every_symmetric_tiny_dataset(self):
        from repro.datasets import d2gc_dataset_names

        for name in d2gc_dataset_names():
            g = load_d2gc_dataset(name, "tiny")
            result = color_d2gc(g, algorithm="V-N2", threads=8)
            validate_d2gc(g, result.colors)

    def test_bgpc_coloring_valid_on_derived_d2gc_instance(self):
        """For a symmetric pattern with full diagonal, a valid BGPC coloring
        is exactly a valid D2GC coloring of the derived graph."""
        bg = load_dataset("channel", "tiny")
        g = bipartite_to_graph(bg)
        result = color_bgpc(bg, algorithm="V-N2", threads=8)
        validate_d2gc(g, result.colors)


class TestJacobianOnDataset:
    def test_movielens_pattern_compression(self):
        bg = load_dataset("movielens", "tiny")
        compressor = JacobianCompressor(bg, algorithm="N1-N2", threads=8)
        assert compressor.num_colors >= bg.color_lower_bound()
        dense = np.zeros((bg.num_nets, bg.num_vertices))
        for v in range(bg.num_nets):
            dense[v, bg.vtxs(v)] = v + 1.0
        compressed = compressor.compress_product(dense)
        from repro.apps import recover_jacobian

        recovered = recover_jacobian(bg, compressor.colors, compressed)
        assert np.allclose(recovered.toarray(), dense)


class TestSimulatedVsNetworkxChromatic:
    def test_greedy_within_networkx_greedy_range(self, small_bipartite):
        """Our sequential FF and networkx's greedy should land in the same
        ballpark on the conflict graph (identical algorithm family)."""
        import networkx as nx

        cg = bgpc_conflict_graph(small_bipartite)
        G = nx.Graph()
        G.add_nodes_from(range(cg.num_vertices))
        for u in range(cg.num_vertices):
            for v in cg.nbor(u):
                G.add_edge(u, int(v))
        nx_colors = nx.coloring.greedy_color(G, strategy="largest_first")
        nx_count = max(nx_colors.values()) + 1 if nx_colors else 0
        ours = sequential_bgpc(small_bipartite).num_colors
        assert abs(ours - nx_count) <= max(3, nx_count)


class TestScalesAgree:
    def test_tiny_and_small_same_generator_family(self):
        tiny = load_dataset("kkt", "tiny")
        small = load_dataset("kkt", "small")
        assert tiny.is_structurally_symmetric() == small.is_structurally_symmetric()
        assert small.num_vertices > tiny.num_vertices


class TestBgpcD2gcEquivalence:
    def test_sequential_colors_identical_on_symmetric_pattern(self):
        """For a symmetric pattern with a full diagonal, the BGPC conflict
        structure equals the distance-2 structure of the derived graph, so
        the two sequential greedy colorers must produce *identical* colors
        (first-fit depends only on the forbidden set)."""
        bg = load_dataset("kkt", "tiny")
        g = bipartite_to_graph(bg)
        from repro import sequential_d2gc

        a = sequential_bgpc(bg)
        b = sequential_d2gc(g)
        assert np.array_equal(a.colors, b.colors)

    def test_holds_on_random_symmetric_instances(self, rng):
        from repro import sequential_d2gc
        from repro.graph import bipartite_from_dense

        for trial in range(5):
            base = (rng.random((30, 30)) < 0.12).astype(int)
            sym = ((base + base.T + np.eye(30, dtype=int)) > 0).astype(int)
            bg = bipartite_from_dense(sym)
            g = bipartite_to_graph(bg)
            a = sequential_bgpc(bg)
            b = sequential_d2gc(g)
            assert np.array_equal(a.colors, b.colors)
