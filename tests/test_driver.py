"""Tests for the speculative iteration driver and algorithm specs."""

import numpy as np
import pytest

from repro.core.bgpc.runner import BGPCAdapter, BGPC_ALGORITHMS
from repro.core.driver import (
    INF_ITERS,
    AlgorithmSpec,
    run_sequential,
    run_speculative,
)
from repro.errors import ColoringError
from repro.machine.cost import CostModel
from repro.machine.engine import QUEUE_ATOMIC, QUEUE_PRIVATE


class TestAlgorithmSpec:
    def test_paper_specs_registered(self):
        assert set(BGPC_ALGORITHMS) == {
            "V-V", "V-V-64", "V-V-64D", "V-Ninf", "V-N1", "V-N2",
            "N1-N2", "N2-N2",
        }

    def test_vv_uses_chunk1_atomic(self):
        spec = BGPC_ALGORITHMS["V-V"]
        assert spec.chunk == 1
        assert spec.queue_mode == QUEUE_ATOMIC
        assert spec.net_color_iters == 0
        assert spec.net_removal_iters == 0

    def test_64d_uses_private_queue(self):
        spec = BGPC_ALGORITHMS["V-V-64D"]
        assert spec.chunk == 64
        assert spec.queue_mode == QUEUE_PRIVATE

    def test_ninf_horizon(self):
        assert BGPC_ALGORITHMS["V-Ninf"].net_removal_iters == INF_ITERS

    def test_n1n2_horizons(self):
        spec = BGPC_ALGORITHMS["N1-N2"]
        assert spec.net_color_iters == 1
        assert spec.net_removal_iters == 2

    def test_rejects_bad_chunk(self):
        with pytest.raises(ColoringError):
            AlgorithmSpec("x", chunk=0)

    def test_rejects_bad_queue(self):
        with pytest.raises(ColoringError):
            AlgorithmSpec("x", queue_mode="shared")

    def test_rejects_negative_horizon(self):
        with pytest.raises(ColoringError):
            AlgorithmSpec("x", net_color_iters=-1)


class TestDriver:
    def test_custom_spec_runs(self, medium_bipartite):
        from repro.core.validate import validate_bgpc

        spec = AlgorithmSpec("custom", chunk=8, queue_mode=QUEUE_PRIVATE,
                             net_color_iters=1, net_removal_iters=1)
        adapter = BGPCAdapter(medium_bipartite, CostModel())
        result = run_speculative(adapter, spec, threads=8)
        validate_bgpc(medium_bipartite, result.colors)
        assert result.algorithm == "custom"

    def test_sequential_runner(self, medium_bipartite):
        adapter = BGPCAdapter(medium_bipartite, CostModel())
        result = run_sequential(adapter)
        assert result.threads == 1
        assert result.num_iterations == 1
        assert result.iterations[0].remove_timing is None

    def test_thread_count_recorded(self, small_bipartite):
        adapter = BGPCAdapter(small_bipartite, CostModel())
        result = run_speculative(adapter, BGPC_ALGORITHMS["V-N1"], threads=5)
        assert result.threads == 5
        assert all(
            len(rec.color_timing.thread_cycles) == 5
            for rec in result.iterations
        )

    def test_phase_kinds_recorded(self, small_bipartite):
        adapter = BGPCAdapter(small_bipartite, CostModel())
        result = run_speculative(adapter, BGPC_ALGORITHMS["V-V-64D"], threads=4)
        for rec in result.iterations:
            assert rec.color_timing.kind == "color"
            assert rec.remove_timing.kind == "remove"

    def test_phase_cycles_accessor(self, small_bipartite):
        from repro.types import PhaseKind

        adapter = BGPCAdapter(small_bipartite, CostModel())
        result = run_speculative(adapter, BGPC_ALGORITHMS["V-N2"], threads=4)
        total = result.phase_cycles(PhaseKind.COLOR) + result.phase_cycles(
            PhaseKind.REMOVE
        )
        assert total == pytest.approx(result.cycles)


class TestSpecSoundness:
    def test_net_coloring_must_follow_net_removal(self):
        with pytest.raises(ColoringError, match="net coloring must follow"):
            AlgorithmSpec("bad", net_color_iters=2, net_removal_iters=0)

    def test_one_extra_coloring_iteration_allowed(self):
        # N1-N2-like shapes: one net coloring before the first removal.
        spec = AlgorithmSpec("ok", net_color_iters=1, net_removal_iters=0)
        assert spec.net_color_iters == 1

    def test_registered_specs_all_sound(self):
        for spec in BGPC_ALGORITHMS.values():
            assert spec.net_color_iters <= spec.net_removal_iters + 1
