"""Tests for the observability layer (:mod:`repro.obs`).

Covers the three tracers (null / recording / jsonl), the agreement between
emitted events and the per-round :class:`~repro.types.IterationRecord`
counters on both backends, and the profile tables whose per-iteration
totals must sum to the end-to-end figures.
"""

import json

import numpy as np
import pytest

from repro import color_bgpc, color_d2gc, sequential_bgpc
from repro.datasets import random_bipartite, random_graph
from repro.obs import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    ensure_tracer,
    iteration_breakdown,
    profile_table,
    read_jsonl_trace,
)


@pytest.fixture(scope="module")
def bg():
    return random_bipartite(30, 50, density=0.1, seed=61)


@pytest.fixture(scope="module")
def g():
    return random_graph(40, 120, seed=7)


class TestNullTracer:
    def test_disabled_and_silent(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        assert tracer.counter("x", 1.0, foo=1) is None
        assert tracer.event("span", "x", 1.0) is None

    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        span_a = tracer.span("a", k=1)
        span_b = tracer.span("b")
        assert span_a is span_b  # one shared singleton, no allocation
        with span_a as s:
            s.set(anything="ignored")  # still a no-op

    def test_ensure_tracer_defaults_to_shared_null(self):
        assert ensure_tracer(None) is NULL_TRACER
        tracer = RecordingTracer()
        assert ensure_tracer(tracer) is tracer

    def test_null_tracer_does_not_change_results(self, bg):
        base = color_bgpc(bg, algorithm="N1-N2", threads=8)
        nulled = color_bgpc(bg, algorithm="N1-N2", threads=8, tracer=NullTracer())
        assert np.array_equal(base.colors, nulled.colors)
        assert base.cycles == nulled.cycles

    def test_recording_tracer_does_not_change_results(self, bg):
        base = color_bgpc(bg, algorithm="V-N2", threads=8)
        traced = color_bgpc(bg, algorithm="V-N2", threads=8, tracer=RecordingTracer())
        assert np.array_equal(base.colors, traced.colors)
        assert base.cycles == traced.cycles


class TestRecordingTracerSim:
    @pytest.fixture(scope="class")
    def traced(self, bg):
        tracer = RecordingTracer()
        result = color_bgpc(bg, algorithm="N1-N2", threads=8, tracer=tracer)
        return tracer, result

    def test_one_iteration_span_per_record(self, traced):
        tracer, result = traced
        spans = tracer.spans("iteration")
        assert len(spans) == result.num_iterations
        assert [s.attrs["iteration"] for s in spans] == [
            rec.index for rec in result.iterations
        ]

    def test_iteration_attrs_match_records(self, traced):
        tracer, result = traced
        for span, rec in zip(tracer.spans("iteration"), result.iterations):
            assert span.attrs["queue_size"] == rec.queue_size
            assert span.attrs["conflicts"] == rec.conflicts
            assert span.attrs["colors_introduced"] == rec.colors_introduced
            assert span.attrs["cycles"] == rec.cycles

    def test_phase_spans_carry_kind_and_cycles(self, traced):
        tracer, result = traced
        phases = tracer.spans("phase")
        assert len(phases) == 2 * result.num_iterations
        # N1-N2: net coloring in round 0, vertex afterwards; net removal
        # for two rounds.
        assert phases[0].attrs["kind"] == "net"
        for span, rec in zip(phases[0::2], result.iterations):
            assert span.attrs["phase"] == "color"
            assert span.attrs["cycles"] == rec.color_timing.cycles
        for span, rec in zip(phases[1::2], result.iterations):
            assert span.attrs["phase"] == "remove"
            assert span.attrs["cycles"] == rec.remove_timing.cycles

    def test_machine_counters_sum_to_total_cycles(self, traced):
        tracer, result = traced
        assert tracer.total("machine.phase_cycles") == result.cycles

    def test_run_span_totals(self, traced):
        tracer, result = traced
        (run,) = tracer.spans("run")
        assert run.attrs["cycles"] == result.cycles
        assert run.attrs["num_colors"] == result.num_colors
        assert run.attrs["iterations"] == result.num_iterations

    def test_event_ordering_phases_inside_iterations(self, traced):
        tracer, _ = traced
        names = [e.name for e in tracer.events if e.type == "span"]
        # Per round: color phase, remove phase, then the enclosing iteration
        # span closes; the run span closes last.
        assert names[-1] == "run"
        per_round = names[:-1]
        assert all(
            per_round[i : i + 3] == ["phase", "phase", "iteration"]
            for i in range(0, len(per_round), 3)
        )

    def test_sequential_run_traced(self, bg):
        tracer = RecordingTracer()
        result = sequential_bgpc(bg, tracer=tracer)
        (run,) = tracer.spans("run")
        assert run.attrs["algorithm"] == "sequential"
        assert run.attrs["cycles"] == result.cycles
        assert len(tracer.spans("phase")) == 1
        assert result.iterations[0].colors_introduced == result.num_colors


class TestRecordingTracerFastpath:
    @pytest.mark.parametrize("mode", ["exact", "speculative"])
    def test_round_events_match_records_bgpc(self, bg, mode):
        tracer = RecordingTracer()
        result = color_bgpc(bg, backend="numpy", fastpath_mode=mode, tracer=tracer)
        rounds = tracer.spans("round")
        assert len(rounds) == result.num_iterations
        for event, rec in zip(rounds, result.iterations):
            assert event.attrs["mode"] == mode
            assert event.attrs["iteration"] == rec.index
            assert event.attrs["queue_size"] == rec.queue_size
            assert event.attrs["conflicts"] == rec.conflicts
            assert event.attrs["colors_introduced"] == rec.colors_introduced
            assert event.value == rec.wall_seconds
        (setup,) = tracer.spans("setup")
        assert setup.attrs["vertices"] == bg.num_vertices
        assert setup.attrs["groups"] == bg.num_nets

    @pytest.mark.parametrize("mode", ["exact", "speculative"])
    def test_round_events_match_records_d2gc(self, g, mode):
        tracer = RecordingTracer()
        result = color_d2gc(g, backend="numpy", fastpath_mode=mode, tracer=tracer)
        rounds = tracer.spans("round")
        assert len(rounds) == result.num_iterations
        for event, rec in zip(rounds, result.iterations):
            assert event.attrs["conflicts"] == rec.conflicts
            assert event.value == rec.wall_seconds

    def test_colors_introduced_sums_to_palette(self, bg):
        for mode in ("exact", "speculative"):
            result = color_bgpc(bg, backend="numpy", fastpath_mode=mode)
            assert (
                sum(rec.colors_introduced for rec in result.iterations)
                == result.num_colors
            )

    def test_sim_colors_introduced_reaches_palette(self, bg):
        # The simulator counter tracks the palette high-water mark, which a
        # net-based removal can overshoot (reset colors are not retired).
        result = color_bgpc(bg, algorithm="N1-N2", threads=8)
        assert (
            sum(rec.colors_introduced for rec in result.iterations)
            >= result.num_colors
        )

    def test_round_walls_bounded_by_total(self, bg):
        result = color_bgpc(bg, backend="numpy")
        rounds_wall = sum(rec.wall_seconds for rec in result.iterations)
        assert 0 < rounds_wall <= result.wall_seconds


class TestJsonlTracer:
    def test_round_trips_valid_json_lines(self, bg, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(path) as tracer:
            color_bgpc(bg, algorithm="V-N2", threads=4, tracer=tracer)
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            payload = json.loads(line)  # every line is valid JSON
            assert set(payload) == {"type", "name", "value", "attrs"}
        events = list(read_jsonl_trace(path))
        assert len(events) == len(lines)
        assert all(isinstance(e, TraceEvent) for e in events)
        assert events[-1].name == "run"

    def test_matches_recording_tracer(self, bg, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = RecordingTracer()
        with JsonlTracer(path) as tracer:
            color_bgpc(bg, backend="numpy", tracer=tracer)
        color_bgpc(bg, backend="numpy", tracer=recorder)
        streamed = list(read_jsonl_trace(path))
        assert [(e.type, e.name) for e in streamed] == [
            (e.type, e.name) for e in recorder.events
        ]
        # Deterministic attributes agree event-by-event (walls differ).
        for a, b in zip(streamed, recorder.events):
            for key in ("iteration", "queue_size", "conflicts", "colors_introduced"):
                assert a.attrs.get(key) == b.attrs.get(key)

    def test_failing_run_leaves_parseable_trace(self, bg, tmp_path, monkeypatch):
        # Per-event flush: a run that dies mid-flight (here: a worker
        # process killed by fault injection) must still leave a trace whose
        # every line parses — no truncated tail, no leaked handle.
        from repro.errors import ColoringError

        monkeypatch.setenv("REPRO_PROCESS_FAULT", "kill")
        path = tmp_path / "crash.jsonl"
        with pytest.raises(ColoringError, match="worker process died"):
            with JsonlTracer(path) as tracer:
                color_bgpc(
                    bg,
                    algorithm="V-V-64D",
                    threads=2,
                    backend="process",
                    tracer=tracer,
                )
        lines = path.read_text().splitlines()
        assert lines  # open spans emit on the exception path
        for line in lines:
            payload = json.loads(line)
            assert set(payload) == {"type", "name", "value", "attrs"}

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(path)
        tracer.counter("x", 1.0)
        tracer.close()
        tracer.close()  # second close is a no-op, not an error
        assert json.loads(path.read_text())["name"] == "x"

    def test_borrowed_file_object_left_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            tracer = JsonlTracer(fh)
            tracer.counter("x", 2.0)
            tracer.close()
            assert not fh.closed  # borrowed handles are not closed
        assert json.loads(path.read_text())["value"] == 2.0


class TestProfileTables:
    def test_sim_breakdown_sums_to_cycles(self, bg):
        result = color_bgpc(bg, algorithm="N1-N2", threads=8)
        header, rows = iteration_breakdown(result)
        assert rows[-1][0] == "total"
        total_cycles = rows[-1][header.index("cycles")]
        assert total_cycles == int(result.cycles)
        per_round = sum(row[header.index("cycles")] for row in rows[:-1])
        assert per_round == total_cycles

    def test_numpy_breakdown_sums_to_wall(self, bg):
        result = color_bgpc(bg, backend="numpy")
        header, rows = iteration_breakdown(result)
        assert rows[-2][0] == "setup" and rows[-1][0] == "total"
        col = header.index("wall ms")
        assert sum(row[col] for row in rows[:-1]) == pytest.approx(rows[-1][col])
        assert rows[-1][col] == pytest.approx(result.wall_seconds * 1e3)

    def test_rendered_table_mentions_backend(self, bg):
        sim = profile_table(color_bgpc(bg, threads=4))
        fast = profile_table(color_bgpc(bg, backend="numpy"))
        assert "backend sim" in sim and "simulated cycles" in sim
        assert "backend numpy" in fast and "wall ms" in fast

    def test_bench_iteration_report_labels_rows(self, bg):
        from repro.bench.runner import iteration_report

        result = color_bgpc(bg, threads=4)
        rows = iteration_report(result, label="N1-N2/sim")
        assert all(row[0] == "N1-N2/sim" for row in rows)
        assert len(rows) == result.num_iterations + 1  # + total row


class TestWorkMetrics:
    """``work.<metric>`` counters and ``ColoringResult.work_metrics``."""

    def test_sim_counters_match_result_totals(self, bg):
        from repro.obs import WORK_METRICS

        tracer = RecordingTracer()
        result = color_bgpc(bg, algorithm="N1-N2", threads=8, tracer=tracer)
        assert set(result.work_metrics) == set(WORK_METRICS)
        for metric in WORK_METRICS:
            assert tracer.total(f"work.{metric}") == result.work_metrics[metric]
        # A speculative run always does real work in these buckets.
        assert result.work_metrics["tasks"] > 0
        assert result.work_metrics["probes"] > 0
        assert result.work_metrics["scans"] > 0
        assert result.work_metrics["conflict_checks"] > 0
        assert result.work_metrics["color_writes"] >= result.colors.size

    def test_work_events_carry_phase_attrs(self, bg):
        tracer = RecordingTracer()
        color_bgpc(bg, algorithm="N1-N2", threads=8, tracer=tracer)
        events = tracer.counters("work.tasks")
        assert events, "no work.tasks counters emitted"
        for ev in events:
            assert ev.attrs["phase"] in ("color", "remove")
            assert ev.attrs["kind"] in ("vertex", "net")
            assert ev.attrs["iteration"] >= 0

    def test_numpy_backend_attaches_work_metrics(self, bg):
        from repro.obs import WORK_METRICS
        from repro.obs.work import FASTPATH_METRICS

        tracer = RecordingTracer()
        result = color_bgpc(
            bg, backend="numpy", fastpath_mode="speculative", tracer=tracer
        )
        # The work vocabulary plus the speculative engine's bitset
        # structure extras (see FASTPATH_METRICS).
        assert set(result.work_metrics) == set(WORK_METRICS) | set(
            FASTPATH_METRICS
        )
        assert result.work_metrics["tasks"] >= result.colors.size
        for metric in WORK_METRICS:
            assert tracer.total(f"work.{metric}") == result.work_metrics[metric]

    def test_sequential_baseline_counts_work(self, bg):
        result = sequential_bgpc(bg)
        assert result.work_metrics["tasks"] == bg.num_vertices
        assert result.work_metrics["color_writes"] == bg.num_vertices
        assert result.work_metrics["conflict_checks"] == 0

    def test_d2gc_counters(self, g):
        tracer = RecordingTracer()
        result = color_d2gc(g, algorithm="N1-N2", threads=8, tracer=tracer)
        assert result.work_metrics["scans"] > 0
        assert tracer.total("work.scans") == result.work_metrics["scans"]

    def test_threaded_and_process_single_worker_match_sim(self, bg):
        """One-worker threaded/process runs follow the same schedule as the
        simulator's task order, so their work totals must agree with a
        single-thread sim run."""
        sim = color_bgpc(bg, algorithm="N1-N2", threads=1).work_metrics
        thr = color_bgpc(bg, algorithm="N1-N2", threads=1, backend="threaded").work_metrics
        assert thr == sim
