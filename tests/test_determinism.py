"""End-to-end determinism: identical outputs across repeated executions.

Determinism is a design guarantee (DESIGN.md, docs/simulator.md): every
experiment must regenerate bit-identical rows when all caches are dropped.
"""

import numpy as np
import pytest

from repro.bench import clear_cache
from repro.bench.experiments import ALL_EXPERIMENTS


@pytest.mark.parametrize("name", ["table1", "table6", "figure3"])
def test_experiment_rows_identical_across_runs(name):
    clear_cache()
    first = ALL_EXPERIMENTS[name](scale="tiny", threads=8)
    clear_cache()
    second = ALL_EXPERIMENTS[name](scale="tiny", threads=8)
    assert first.rows == second.rows


def test_dataset_rebuild_identical():
    from repro.datasets.registry import DATASETS

    for spec in DATASETS.values():
        a = spec.build("tiny")
        b = spec.build("tiny")
        assert a.net_to_vtxs.sorted() == b.net_to_vtxs.sorted(), spec.name


def test_full_run_identical_after_cache_clear():
    from repro.bench.runner import run_algorithm

    clear_cache()
    a = run_algorithm("channel", "N1-N2", 16, "tiny")
    clear_cache()
    b = run_algorithm("channel", "N1-N2", 16, "tiny")
    assert np.array_equal(a.colors, b.colors)
    assert a.cycles == b.cycles
    assert [r.conflicts for r in a.iterations] == [r.conflicts for r in b.iterations]


def test_ordering_cache_transparent():
    """Cached vs freshly computed smallest-last runs must agree."""
    from repro.bench.runner import run_sequential_baseline

    clear_cache()
    a = run_sequential_baseline("kkt", "tiny", ordering="smallest-last")
    clear_cache()
    b = run_sequential_baseline("kkt", "tiny", ordering="smallest-last")
    assert np.array_equal(a.colors, b.colors)
    assert a.num_colors == b.num_colors
