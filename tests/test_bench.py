"""Tests for the benchmark harness (runner, tables, experiments)."""

import numpy as np
import pytest

from repro.bench import Experiment, clear_cache, geomean, render_table
from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.runner import run_algorithm, run_sequential_baseline


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestHelpers:
    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([5]) == pytest.approx(5.0)
        assert np.isnan(geomean([]))

    def test_render_table_alignment(self):
        out = render_table(["a", "bbb"], [(1, 2.5), (100, 0.125)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "bbb" in lines[0]
        assert "100" in lines[3]

    def test_experiment_render(self):
        exp = Experiment(
            id="x", title="t", header=["h"], rows=[(1,)], notes="note"
        )
        text = exp.render()
        assert "== x: t ==" in text
        assert "note" in text


class TestRunnerCache:
    def test_sequential_memoized(self):
        a = run_sequential_baseline("kkt", "tiny")
        b = run_sequential_baseline("kkt", "tiny")
        assert a is b

    def test_algorithm_memoized_per_key(self):
        a = run_algorithm("kkt", "V-N1", 4, "tiny")
        b = run_algorithm("kkt", "V-N1", 4, "tiny")
        c = run_algorithm("kkt", "V-N1", 8, "tiny")
        assert a is b
        assert a is not c

    def test_d2gc_problem(self):
        result = run_algorithm("channel", "V-N1", 4, "tiny", problem="d2gc")
        assert result.num_colors > 0

    def test_ordering_parameter(self):
        nat = run_sequential_baseline("kkt", "tiny", ordering="natural")
        sl = run_sequential_baseline("kkt", "tiny", ordering="smallest-last")
        assert sl.num_colors <= nat.num_colors + 2


class TestExperimentsTinyScale:
    """Every experiment must regenerate cleanly at tiny scale."""

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "figure1", "figure2", "figure3", "ablations", "adaptive",
            "manycore", "profile", "scaling", "serve", "incremental",
            "shards",
        }

    @pytest.mark.parametrize("name", ["table1", "table2", "table6", "figure1",
                                      "figure3", "ablations", "manycore",
                                      "profile"])
    def test_runs_and_renders(self, name):
        experiment = ALL_EXPERIMENTS[name](scale="tiny", threads=8)
        assert experiment.rows
        text = experiment.render()
        assert experiment.id in text

    def test_table1_counts_bounded(self):
        exp = ALL_EXPERIMENTS["table1"](scale="tiny", threads=8)
        for row in exp.rows:
            _, total, *remaining = row
            assert all(0 <= r <= total for r in remaining)

    def test_table2_has_all_datasets(self):
        exp = ALL_EXPERIMENTS["table2"](scale="tiny")
        assert len(exp.rows) == 8

    def test_figure3_curves_sorted(self):
        exp = ALL_EXPERIMENTS["figure3"](scale="tiny", threads=8)
        for curve in exp.data["curves"].values():
            assert np.all(np.diff(curve) <= 0)

    def test_scaling_sweeps_both_wall_backends(self):
        exp = ALL_EXPERIMENTS["scaling"](scale="tiny", threads=2)
        assert {row[0] for row in exp.rows} == {"threaded", "process"}
        assert {row[1] for row in exp.rows} == {1, 2}
        assert all(row[2] > 0 for row in exp.rows)  # wall ms measured
        assert exp.data["host_cores"] >= 1
        assert "core(s)" in exp.notes

    def test_adaptive_matches_best_static(self):
        exp = ALL_EXPERIMENTS["adaptive"](scale="tiny", threads=16)
        instances = exp.data["instances"]
        assert len(instances) == 3
        beat = [k for k, v in instances.items() if v["beats_static"]]
        # The acceptance bar the CI adaptive-smoke job enforces: the
        # controller matches or beats the best static horizon on at
        # least two of the pinned instances.
        assert len(beat) >= 2
        for v in instances.values():
            assert v["adaptive_total"] > 0
            assert v["decisions"]  # one decision per iteration

    def test_incremental_beats_full_recolor(self):
        exp = ALL_EXPERIMENTS["incremental"](scale="tiny", threads=4)
        assert len(exp.rows) == 4
        for row in exp.data["rows"]:
            assert row["ratio"] is None or row["ratio"] > 1

    def test_table6_baseline_rows_are_one(self):
        exp = ALL_EXPERIMENTS["table6"](scale="tiny", threads=8)
        for row in exp.rows:
            if row[0].endswith("-U"):
                assert row[1:] == (1.0, 1.0, 1.0, 1.0)


class TestCli:
    def test_main_runs_one_experiment(self, capsys, tmp_path):
        from repro.bench.__main__ import main

        out_file = tmp_path / "out.txt"
        code = main(["table2", "--scale", "tiny", "--output", str(out_file)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "table2" in captured
        assert out_file.read_text().strip()

    def test_main_rejects_unknown(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["nope"])

    def test_csv_export_matches_rows(self, tmp_path, capsys):
        import csv

        from repro.bench.__main__ import main

        main(["table1", "--scale", "tiny", "--csv-dir", str(tmp_path)])
        capsys.readouterr()
        with open(tmp_path / "table1.csv") as fh:
            rows = list(csv.reader(fh))
        experiment = ALL_EXPERIMENTS["table1"](scale="tiny")
        assert rows[0] == experiment.header
        assert len(rows) == len(experiment.rows) + 1
        for got, expected in zip(rows[1:], experiment.rows):
            assert got == [str(v) for v in expected]


class TestSpeedupTableInvariants:
    def test_rows_cover_all_algorithms(self):
        from repro.bench.experiments.table3 import speedup_table
        from repro.core.bgpc import BGPC_ALGORITHMS

        rows, raw = speedup_table("natural", "tiny")
        assert {row[0] for row in rows} == set(BGPC_ALGORITHMS)
        assert set(raw) == set(BGPC_ALGORITHMS)

    def test_speedups_positive_and_finite(self):
        from repro.bench.experiments.table3 import speedup_table

        _, raw = speedup_table("natural", "tiny")
        for alg, entry in raw.items():
            assert all(s > 0 for s in entry["speedups"]), alg
            assert entry["colors"] > 0

    def test_vv_over_vv_is_one(self):
        from repro.bench.experiments.table3 import speedup_table

        _, raw = speedup_table("natural", "tiny")
        assert raw["V-V"]["over_vv16"] == pytest.approx(1.0)


class TestTableFormatting:
    def test_large_and_small_floats_scientific(self):
        out = render_table(["v"], [(123456.0,), (0.0001,), (0.5,), (0,)])
        assert "1.235e+05" in out
        assert "1.000e-04" in out
        assert "0.50" in out

    def test_experiment_to_csv_types(self, tmp_path):
        exp = Experiment(
            id="x", title="t", header=["a", "b"], rows=[(1, 2.5), ("s", 0)]
        )
        path = tmp_path / "x.csv"
        exp.to_csv(path)
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2.5"


class TestManycoreHelpers:
    def test_task_size_cv_square_instance(self):
        from repro.bench.experiments.manycore import task_size_cv

        v_cv, n_cv = task_size_cv("channel", "tiny")
        assert v_cv > 0 and n_cv > 0
        # On the regular mesh, net tasks are more uniform than vertex tasks.
        assert n_cv < v_cv
