"""Unit tests for the color-selection policies (FF, B1, B2)."""

import numpy as np
import pytest

from repro.core.forbidden import ForbiddenSet
from repro.core.policies import B1Policy, B2Policy, FirstFit, POLICIES, get_policy


def forb_with(*colors):
    forb = ForbiddenSet(32)
    forb.begin()
    for c in colors:
        forb.add(c)
    return forb


class TestFirstFit:
    def test_picks_smallest_free(self):
        policy = FirstFit()
        color, _ = policy.choose(forb_with(0, 1, 3), key=7, state={})
        assert color == 2

    def test_state_untouched(self):
        state = {}
        FirstFit().choose(forb_with(), key=0, state=state)
        assert state == {}


class TestB1:
    def test_odd_key_first_fit(self):
        policy = B1Policy()
        state = {"colmax": 10}
        color, _ = policy.choose(forb_with(0), key=3, state=state)
        assert color == 1

    def test_even_key_reverse_from_colmax(self):
        policy = B1Policy()
        state = {"colmax": 5}
        color, _ = policy.choose(forb_with(5, 4), key=2, state=state)
        assert color == 3

    def test_even_key_fallback_when_interval_full(self):
        """Alg. 11 line 8: if the descending scan exhausts [0, colmax],
        restart ascending from colmax + 1."""
        policy = B1Policy()
        state = {"colmax": 2}
        color, _ = policy.choose(forb_with(0, 1, 2, 3), key=0, state=state)
        assert color == 4
        assert state["colmax"] == 4

    def test_colmax_tracks_maximum(self):
        policy = B1Policy()
        state = {}
        policy.choose(forb_with(0), key=1, state=state)  # odd -> FF -> 1
        assert state.get("colmax", 0) == 1

    def test_initial_state_empty(self):
        policy = B1Policy()
        color, _ = policy.choose(forb_with(), key=0, state={})
        assert color == 0


class TestB2:
    def test_starts_at_colnext(self):
        policy = B2Policy()
        state = {"colmax": 10, "colnext": 4}
        color, _ = policy.choose(forb_with(4, 5), key=0, state=state)
        assert color == 6

    def test_wraps_to_zero_when_exceeding_colmax(self):
        policy = B2Policy()
        state = {"colmax": 3, "colnext": 3}
        color, _ = policy.choose(forb_with(3), key=0, state=state)
        assert color == 0

    def test_creates_new_color_when_interval_full(self):
        policy = B2Policy()
        state = {"colmax": 1, "colnext": 0}
        color, _ = policy.choose(forb_with(0, 1), key=0, state=state)
        assert color == 2
        assert state["colmax"] == 2

    def test_colnext_floor_is_third_of_colmax(self):
        """The prose semantics: colnext never falls below colmax//3 + 1."""
        policy = B2Policy()
        state = {"colmax": 9, "colnext": 0}
        policy.choose(forb_with(), key=0, state=state)  # picks 0
        assert state["colnext"] == 9 // 3 + 1

    def test_colnext_advances_past_pick(self):
        policy = B2Policy()
        state = {"colmax": 9, "colnext": 7}
        policy.choose(forb_with(), key=0, state=state)  # picks 7
        assert state["colnext"] == 8


class TestRegistry:
    def test_names(self):
        assert set(POLICIES) == {"U", "B1", "B2"}

    def test_get_policy(self):
        assert isinstance(get_policy("U"), FirstFit)
        assert isinstance(get_policy("B1"), B1Policy)
        assert isinstance(get_policy("B2"), B2Policy)

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            get_policy("B3")


class TestPoliciesProduceValidColors:
    """Whatever the policy, the returned color is never forbidden."""

    @pytest.mark.parametrize("name", ["U", "B1", "B2"])
    def test_never_forbidden(self, name, rng):
        policy = get_policy(name)
        state = {}
        forb = ForbiddenSet(64)
        for key in range(200):
            forb.begin()
            members = rng.choice(32, size=rng.integers(0, 20), replace=False)
            forb.add_many(members)
            color, _ = policy.choose(forb, int(key), state)
            assert color >= 0
            assert color not in forb
