"""Tests for the eight parallel BGPC algorithm variants."""

import numpy as np
import pytest

from repro import (
    BGPC_ALGORITHMS,
    color_bgpc,
    sequential_bgpc,
    validate_bgpc,
)
from repro.errors import ColoringError
from repro.machine.cost import CostModel

ALGS = sorted(BGPC_ALGORITHMS)


class TestValidity:
    @pytest.mark.parametrize("alg", ALGS)
    @pytest.mark.parametrize("threads", [1, 2, 16])
    def test_always_valid(self, medium_bipartite, alg, threads):
        result = color_bgpc(medium_bipartite, algorithm=alg, threads=threads)
        validate_bgpc(medium_bipartite, result.colors)
        assert result.num_colors >= medium_bipartite.color_lower_bound()

    @pytest.mark.parametrize("alg", ALGS)
    def test_valid_on_tiny(self, tiny_bipartite, alg):
        result = color_bgpc(tiny_bipartite, algorithm=alg, threads=4)
        validate_bgpc(tiny_bipartite, result.colors)

    def test_empty_graph(self):
        from repro.graph import bipartite_from_edges

        bg = bipartite_from_edges([], num_vertices=0, num_nets=0)
        result = color_bgpc(bg, algorithm="N1-N2", threads=4)
        assert result.num_colors == 0

    def test_isolated_vertices(self):
        from repro.graph import bipartite_from_edges

        bg = bipartite_from_edges([(0, 0)], num_vertices=5, num_nets=1)
        result = color_bgpc(bg, algorithm="V-V", threads=4)
        validate_bgpc(bg, result.colors)
        assert result.num_colors == 1  # everything can share color 0

    def test_unknown_algorithm(self, tiny_bipartite):
        from repro.errors import ColoringError

        with pytest.raises(ColoringError, match="unknown BGPC algorithm"):
            color_bgpc(tiny_bipartite, algorithm="X-Y")


class TestDeterminism:
    @pytest.mark.parametrize("alg", ["V-V", "V-V-64D", "N1-N2"])
    def test_rerun_identical(self, medium_bipartite, alg):
        a = color_bgpc(medium_bipartite, algorithm=alg, threads=8)
        b = color_bgpc(medium_bipartite, algorithm=alg, threads=8)
        assert np.array_equal(a.colors, b.colors)
        assert a.cycles == b.cycles
        assert [r.conflicts for r in a.iterations] == [
            r.conflicts for r in b.iterations
        ]


class TestSequentialEquivalence:
    def test_one_thread_no_conflicts(self, medium_bipartite):
        """A 1-thread run has no interval overlap, hence zero conflicts."""
        result = color_bgpc(medium_bipartite, algorithm="V-V-64D", threads=1)
        assert result.total_conflicts == 0
        assert result.num_iterations == 1

    def test_one_thread_matches_sequential_colors(self, medium_bipartite):
        seq = sequential_bgpc(medium_bipartite)
        par = color_bgpc(medium_bipartite, algorithm="V-V-64D", threads=1)
        assert np.array_equal(seq.colors, par.colors)


class TestRaceBehaviour:
    def test_conflicts_grow_with_threads(self, medium_bipartite):
        conflicts = [
            color_bgpc(
                medium_bipartite, algorithm="V-V-64D", threads=t
            ).total_conflicts
            for t in (1, 4, 16)
        ]
        assert conflicts[0] == 0
        assert conflicts[2] >= conflicts[1] >= 0

    def test_race_window_controls_conflicts(self, medium_bipartite):
        narrow = color_bgpc(
            medium_bipartite,
            algorithm="V-V-64D",
            threads=16,
            cost=CostModel(race_window_pct=1),
        )
        wide = color_bgpc(
            medium_bipartite,
            algorithm="V-V-64D",
            threads=16,
            cost=CostModel(race_window_pct=100),
        )
        assert wide.total_conflicts >= narrow.total_conflicts

    def test_iteration_records_consistent(self, medium_bipartite):
        result = color_bgpc(medium_bipartite, algorithm="V-N2", threads=16)
        # Each round's conflicts become the next round's queue.
        for prev, cur in zip(result.iterations, result.iterations[1:]):
            assert cur.queue_size == prev.conflicts
        assert result.iterations[-1].conflicts == 0
        assert result.iterations[0].queue_size == medium_bipartite.num_vertices


class TestTimingShape:
    def test_net_removal_cheaper_in_first_iteration(self, medium_bipartite):
        """The paper's core claim: net-based removal is linear, vertex-based
        quadratic, so V-N1's first removal phase is cheaper than V-V-64D's."""
        v_v = color_bgpc(medium_bipartite, algorithm="V-V-64D", threads=16)
        v_n = color_bgpc(medium_bipartite, algorithm="V-N1", threads=16)
        assert (
            v_n.iterations[0].remove_timing.cycles
            < v_v.iterations[0].remove_timing.cycles
        )

    def test_net_coloring_cheaper_in_first_iteration(self, medium_bipartite):
        v_n2 = color_bgpc(medium_bipartite, algorithm="V-N2", threads=16)
        n1_n2 = color_bgpc(medium_bipartite, algorithm="N1-N2", threads=16)
        assert (
            n1_n2.iterations[0].color_timing.cycles
            < v_n2.iterations[0].color_timing.cycles
        )

    def test_more_threads_faster_first_phase_fine_chunks(self, medium_bipartite):
        """With chunk-1 scheduling there is no chunk quantization, so the
        big first coloring phase must get faster with more threads."""
        t2 = color_bgpc(medium_bipartite, algorithm="V-V", threads=2)
        t16 = color_bgpc(medium_bipartite, algorithm="V-V", threads=16)
        assert t16.iterations[0].color_timing.cycles <= t2.iterations[0].color_timing.cycles

    def test_result_cycles_is_sum_of_phases(self, medium_bipartite):
        result = color_bgpc(medium_bipartite, algorithm="V-N2", threads=8)
        total = sum(rec.cycles for rec in result.iterations)
        assert result.cycles == pytest.approx(total)


class TestOrdering:
    def test_order_restored_to_original_ids(self, medium_bipartite):
        from repro.order import smallest_last_order

        order = smallest_last_order(medium_bipartite)
        result = color_bgpc(
            medium_bipartite, algorithm="N1-N2", threads=8, order=order
        )
        validate_bgpc(medium_bipartite, result.colors)


class TestConvergenceGuard:
    def test_max_iterations_raises(self, medium_bipartite):
        with pytest.raises(ColoringError, match="did not converge"):
            color_bgpc(
                medium_bipartite,
                algorithm="V-V",
                threads=16,
                max_iterations=1,
            )
