"""Extended property-based tests: distance-k, hypergraphs, reports, engine."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.distk import color_distk, validate_distk
from repro.graph import graph_from_edges
from repro.graph.hypergraph import Hypergraph
from repro.report import result_from_dict, result_to_dict

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw, max_vertices=16):
    n = draw(st.integers(2, max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=n * 2,
        )
    )
    return graph_from_edges(edges, num_vertices=n)


@st.composite
def hypergraphs(draw, max_pins=20, max_nets=12):
    num_pins = draw(st.integers(1, max_pins))
    nets = draw(
        st.lists(
            st.lists(st.integers(0, num_pins - 1), min_size=1, max_size=6),
            max_size=max_nets,
        )
    )
    return Hypergraph.from_nets(nets, num_pins=num_pins)


class TestDistKProperties:
    @SLOW
    @given(g=small_graphs(), k=st.integers(1, 4), threads=st.sampled_from([1, 4, 8]))
    def test_vertex_based_always_valid(self, g, k, threads):
        result = color_distk(g, k, algorithm="V-V-64D", threads=threads)
        validate_distk(g, k, result.colors)

    @SLOW
    @given(g=small_graphs(), k=st.sampled_from([2, 4]))
    def test_net_based_even_k_valid(self, g, k):
        result = color_distk(g, k, algorithm="N1-N2", threads=8)
        validate_distk(g, k, result.colors)

    @SLOW
    @given(g=small_graphs())
    def test_distk_nested_validity(self, g):
        """A valid distance-(k+1) coloring is a valid distance-k coloring."""
        result = color_distk(g, 3, algorithm="V-V-64D", threads=4)
        validate_distk(g, 3, result.colors)
        validate_distk(g, 2, result.colors)
        validate_distk(g, 1, result.colors)


class TestHypergraphProperties:
    @SLOW
    @given(hg=hypergraphs(), alg=st.sampled_from(["V-V", "N1-N2"]))
    def test_pin_coloring_valid(self, hg, alg):
        result = hg.color(algorithm=alg, threads=4)
        hg.validate(result.colors)

    @SLOW
    @given(hg=hypergraphs())
    def test_lower_bound(self, hg):
        result = hg.color(threads=2)
        if hg.num_pin_entries:
            assert result.num_colors >= hg.max_net_size()


class TestReportProperties:
    @SLOW
    @given(hg=hypergraphs(), threads=st.sampled_from([1, 4]))
    def test_serialization_roundtrip(self, hg, threads):
        result = hg.color(threads=threads)
        back = result_from_dict(result_to_dict(result))
        assert np.array_equal(back.colors, result.colors)
        assert back.cycles == result.cycles
        assert back.num_iterations == result.num_iterations


class TestEngineProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n_tasks=st.integers(0, 40),
        threads=st.integers(1, 8),
        chunk=st.integers(1, 16),
        costs=st.lists(st.integers(1, 50), min_size=40, max_size=40),
    )
    def test_every_task_runs_once_any_schedule(self, n_tasks, threads, chunk, costs):
        from repro.machine.cost import CostModel
        from repro.machine.engine import run_parallel_for
        from repro.machine.memory import TimestampedMemory
        from repro.machine.scheduler import Schedule

        seen = []

        def kernel(task, ctx):
            seen.append(task)
            ctx.charge_cpu(costs[task])

        memory = TimestampedMemory(np.zeros(max(n_tasks, 1), dtype=np.int64))
        timing, _ = run_parallel_for(
            n_tasks, kernel, memory, threads, CostModel(), Schedule.dynamic(chunk)
        )
        assert sorted(seen) == list(range(n_tasks))
        # Wall-clock is at least the critical path of any single task and at
        # most the serial sum plus all overheads.
        if n_tasks:
            assert timing.cycles >= max(costs[:n_tasks])

    @settings(max_examples=30, deadline=None)
    @given(
        n_tasks=st.integers(1, 30),
        costs=st.lists(st.integers(1, 50), min_size=30, max_size=30),
    )
    def test_single_thread_wall_is_serial_sum(self, n_tasks, costs):
        from repro.machine.cost import CostModel
        from repro.machine.engine import run_parallel_for
        from repro.machine.memory import TimestampedMemory
        from repro.machine.scheduler import Schedule

        cost = CostModel(
            task_overhead=0, chunk_base=0, chunk_contention=0,
            barrier_base=0, barrier_per_thread=0, coherence_pct=0,
        )

        def kernel(task, ctx):
            ctx.charge_cpu(costs[task])

        memory = TimestampedMemory(np.zeros(1, dtype=np.int64))
        timing, _ = run_parallel_for(
            n_tasks, kernel, memory, 1, cost, Schedule.static()
        )
        assert timing.cycles == sum(costs[:n_tasks])


class TestShuffleProperties:
    @SLOW
    @given(
        seed=st.integers(0, 20),
        density=st.floats(0.02, 0.15),
    )
    def test_shuffle_preserves_validity_and_palette(self, seed, density):
        from repro import sequential_bgpc, validate_bgpc
        from repro.core.balance import rebalance_shuffle
        from repro.datasets import random_bipartite

        bg = random_bipartite(25, 40, density=density, seed=seed)
        base = sequential_bgpc(bg)
        result = rebalance_shuffle(bg, base.colors)
        validate_bgpc(bg, result.colors)
        assert result.colors.max() <= base.colors.max()

    @SLOW
    @given(seed=st.integers(0, 20))
    def test_recolor_never_worse(self, seed):
        from repro import sequential_bgpc, validate_bgpc
        from repro.core.recolor import reduce_colors
        from repro.datasets import random_bipartite
        from repro.order import random_order

        bg = random_bipartite(25, 40, density=0.1, seed=seed)
        base = sequential_bgpc(bg, order=random_order(bg, seed=seed))
        result = reduce_colors(bg, base.colors)
        validate_bgpc(bg, result.colors)
        assert result.colors_after <= base.num_colors


class TestDistributedProperties:
    @SLOW
    @given(
        seed=st.integers(0, 10),
        ranks=st.integers(1, 6),
        batch=st.integers(1, 40),
    )
    def test_distributed_always_valid(self, seed, ranks, batch):
        from repro import validate_bgpc
        from repro.datasets import random_bipartite
        from repro.dist import distributed_bgpc

        bg = random_bipartite(20, 35, density=0.1, seed=seed)
        result = distributed_bgpc(bg, ranks=ranks, batch=batch)
        validate_bgpc(bg, result.colors)
