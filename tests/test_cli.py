"""Tests for the ``python -m repro`` coloring CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.graph import bipartite_from_dense, write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, rng):
    pattern = (rng.random((20, 30)) < 0.15).astype(int)
    bg = bipartite_from_dense(pattern)
    path = tmp_path / "instance.mtx"
    write_matrix_market(bg, path)
    return path


@pytest.fixture
def symmetric_mtx(tmp_path, rng):
    base = (rng.random((25, 25)) < 0.1).astype(int)
    sym = ((base + base.T + np.eye(25, dtype=int)) > 0).astype(int)
    bg = bipartite_from_dense(sym)
    path = tmp_path / "sym.mtx"
    write_matrix_market(bg, path)
    return path


class TestCli:
    def test_default_bgpc(self, mtx_file, capsys):
        assert main([str(mtx_file)]) == 0
        out = capsys.readouterr().out
        assert "colors" in out
        assert "N1-N2" in out

    def test_sequential(self, mtx_file, capsys):
        assert main([str(mtx_file), "--algorithm", "sequential"]) == 0
        assert "sequential" in capsys.readouterr().out

    def test_d2gc_problem(self, symmetric_mtx, capsys):
        assert main([str(symmetric_mtx), "--problem", "d2gc"]) == 0
        assert "d2gc" in capsys.readouterr().out

    def test_ordering_and_policy(self, mtx_file, capsys):
        code = main(
            [str(mtx_file), "--ordering", "smallest-last", "--policy", "B2"]
        )
        assert code == 0

    def test_output_file(self, mtx_file, tmp_path, capsys):
        out_path = tmp_path / "colors.txt"
        assert main([str(mtx_file), "--output", str(out_path)]) == 0
        lines = out_path.read_text().splitlines()
        assert len(lines) == 30
        assert all(int(line) >= 0 for line in lines)

    def test_unknown_algorithm_rejected(self, mtx_file, capsys):
        # Free-form --algo strings go through the schedule parser; a bad
        # name is a graceful error listing the valid schedules, not a
        # bare KeyError or argparse SystemExit.
        assert main([str(mtx_file), "--algorithm", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown BGPC algorithm 'bogus'" in err
        assert "V-V" in err

    def test_algorithm_alias_accepted(self, mtx_file, capsys):
        # Aliases normalize through the grammar: '--algo v-n∞' is V-Ninf.
        assert main([str(mtx_file), "--algo", "v-n∞"]) == 0
        assert "V-Ninf" in capsys.readouterr().out

    def test_schedule_alias_flag(self, mtx_file, capsys):
        # --schedule is an alias of --algorithm; switched specs run too.
        assert main([str(mtx_file), "--schedule", "V-V-64D-B1@2"]) == 0
        assert "V-V-64D-B1@2" in capsys.readouterr().out

    def test_schedule_adaptive(self, mtx_file, capsys):
        assert main([str(mtx_file), "--schedule", "adaptive"]) == 0
        assert "adaptive" in capsys.readouterr().out

    def test_schedule_adaptive_threshold(self, mtx_file, capsys):
        assert main([str(mtx_file), "--schedule", "adaptive:0.2"]) == 0
        assert "adaptive:0.2" in capsys.readouterr().out

    def test_malformed_switch_segment_exits_2(self, mtx_file, capsys):
        assert main([str(mtx_file), "--schedule", "V-V-B1@"]) == 2
        err = capsys.readouterr().err
        assert "bad switch segment" in err

    def test_malformed_adaptive_exits_2(self, mtx_file, capsys):
        assert main([str(mtx_file), "--schedule", "adaptive:nope"]) == 2
        assert "cannot parse adaptive" in capsys.readouterr().err

    def test_adaptive_on_numpy_backend_exits_2(self, mtx_file, capsys):
        args = [str(mtx_file), "--schedule", "adaptive", "--backend", "numpy"]
        assert main(args) == 2
        assert "cannot run adaptive" in capsys.readouterr().err

    def test_threads_flag(self, mtx_file, capsys):
        assert main([str(mtx_file), "--threads", "4"]) == 0
        assert "4 simulated threads" in capsys.readouterr().out

    def test_threaded_backend(self, mtx_file, capsys):
        # End-to-end on real threads: validated coloring, wall-clock line.
        code = main(
            [str(mtx_file), "--backend", "threaded", "--threads", "4",
             "--algorithm", "V-V-64D"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 real threads (threaded backend)" in out
        assert "wall" in out

    def test_process_backend(self, mtx_file, capsys):
        # End-to-end on the worker pool: validated coloring, wall-clock
        # line, and no shared-memory segment left behind.
        import glob

        before = set(glob.glob("/dev/shm/repro_shm_*"))
        code = main(
            [str(mtx_file), "--backend", "process", "--threads", "2",
             "--algorithm", "V-V-64D"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 worker processes (process backend, shared memory)" in out
        assert "wall" in out
        assert set(glob.glob("/dev/shm/repro_shm_*")) == before


class TestCliObservability:
    def test_profile_sim(self, mtx_file, capsys):
        assert main([str(mtx_file), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "per-iteration breakdown" in out
        assert "backend sim" in out
        assert "total" in out

    def test_profile_numpy(self, mtx_file, capsys):
        assert main([str(mtx_file), "--backend", "numpy", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "backend numpy" in out
        assert "wall ms" in out
        assert "setup" in out

    def test_trace_writes_jsonl(self, mtx_file, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.jsonl"
        assert main([str(mtx_file), "--trace", str(trace)]) == 0
        assert f"trace written to {trace}" in capsys.readouterr().out
        lines = trace.read_text().splitlines()
        assert lines
        assert all(json.loads(line)["name"] for line in lines)
        assert json.loads(lines[-1])["name"] == "run"

    def test_trace_with_sequential(self, mtx_file, tmp_path):
        trace = tmp_path / "seq.jsonl"
        code = main(
            [str(mtx_file), "--algorithm", "sequential", "--trace", str(trace)]
        )
        assert code == 0
        assert trace.exists() and trace.read_text().strip()


class TestCliErrors:
    def test_missing_file_graceful(self, capsys):
        assert main(["/nonexistent/never.mtx"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_d2gc_on_rectangular_graceful(self, mtx_file, capsys):
        # The 20x30 pattern cannot be symmetrized into a D2GC instance.
        assert main([str(mtx_file), "--problem", "d2gc"]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_mtx_graceful(self, tmp_path, capsys):
        bad = tmp_path / "bad.mtx"
        bad.write_text("not a matrix market file\n")
        assert main([str(bad)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unreadable_path_graceful(self, tmp_path, capsys):
        # A directory path raises IsADirectoryError — an OSError like
        # ENOENT: one line, exit 2 (chmod tricks don't work under root).
        assert main([str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert len(err.strip().splitlines()) == 1

    def test_unwritable_output_graceful(self, mtx_file, capsys):
        code = main(
            [str(mtx_file), "--output", "/nonexistent/dir/colors.txt"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error" in err and len(err.strip().splitlines()) == 1

    def test_unwritable_trace_graceful(self, mtx_file, capsys):
        code = main(
            [str(mtx_file), "--trace", "/nonexistent/dir/trace.jsonl"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot write trace" in err
        assert len(err.strip().splitlines()) == 1

    def test_killed_worker_graceful(self, mtx_file, capsys, monkeypatch):
        # A worker crash surfaces as a one-line coloring error, exit 2 —
        # and the parent reclaims every shared segment on the way out.
        import glob

        monkeypatch.setenv("REPRO_PROCESS_FAULT", "kill")
        before = set(glob.glob("/dev/shm/repro_shm_*"))
        code = main(
            [str(mtx_file), "--backend", "process", "--threads", "2",
             "--algorithm", "V-V-64D"]
        )
        assert code == 2
        assert "worker process died" in capsys.readouterr().err
        assert set(glob.glob("/dev/shm/repro_shm_*")) == before


class TestCliDelta:
    """``--delta``: incremental recoloring from the CLI (docs/incremental.md)."""

    @pytest.fixture
    def delta_file(self, mtx_file, tmp_path):
        import json

        from repro.graph.mmio import read_matrix_market

        bg = read_matrix_market(mtx_file)
        existing = {
            (u, int(n)) for u in range(bg.num_vertices) for n in bg.nets(u)
        }
        delete = sorted(existing)[0]
        insert = next(
            (u, n)
            for u in range(bg.num_vertices)
            for n in range(bg.num_nets)
            if (u, n) not in existing
        )
        path = tmp_path / "delta.json"
        path.write_text(
            json.dumps({"insert": [list(insert)], "delete": [list(delete)]})
        )
        return path

    def test_delta_run_prints_savings(self, mtx_file, delta_file, tmp_path, capsys):
        out_path = tmp_path / "colors.txt"
        code = main(
            [str(mtx_file), "--algo", "V-V", "--delta", str(delta_file),
             "--output", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delta    :" in out
        assert "frontier" in out
        assert "recolor  :" in out
        assert "saved    :" in out
        # --output writes the incremental colors of the mutated graph
        lines = out_path.read_text().splitlines()
        assert len(lines) == 30
        assert all(int(line) >= 0 for line in lines)

    def test_delete_only_zero_work_path(self, mtx_file, delta_file, tmp_path, capsys):
        import json

        payload = json.loads(delta_file.read_text())
        delta = tmp_path / "del.json"
        delta.write_text(json.dumps({"delete": payload["delete"]}))
        assert main([str(mtx_file), "--algo", "V-V", "--delta", str(delta)]) == 0
        assert "zero-work fast path" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flags, pattern",
        [
            (["--backend", "numpy"], "numpy"),
            (["--algorithm", "sequential"], "sequential"),
            (["--problem", "d2gc"], "bgpc"),
            (["--ordering", "smallest-last"], "natural"),
        ],
    )
    def test_incompatible_flags_exit_2(
        self, mtx_file, delta_file, capsys, flags, pattern
    ):
        code = main([str(mtx_file), "--delta", str(delta_file), *flags])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and pattern in err

    def test_bad_delta_files_exit_2(self, mtx_file, tmp_path, capsys):
        missing = main([str(mtx_file), "--delta", str(tmp_path / "nope.json")])
        assert missing == 2
        assert "cannot read delta" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text('{"bogus": []}')
        assert main([str(mtx_file), "--delta", str(bad)]) == 2
        assert "unknown delta fields" in capsys.readouterr().err
        phantom = tmp_path / "phantom.json"
        phantom.write_text('{"insert": [[0, 0], [0, 0]]}')
        # duplicate pairs canonicalize; inserting an existing edge is the
        # graceful ReproError path through _run
        code = main([str(mtx_file), "--delta", str(phantom)])
        assert code in (0, 2)
