"""Unit tests for pattern algebra (conflict graphs, symmetrization)."""

import numpy as np
import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph import bipartite_from_dense, graph_from_edges
from repro.graph.csr import CSR
from repro.graph.ops import (
    bgpc_conflict_graph,
    bipartite_to_graph,
    d2gc_conflict_graph,
    graph_to_bipartite,
    square_pattern,
    symmetrize,
)


class TestSymmetrize:
    def test_basic(self):
        csr = CSR(np.array([0, 2, 2]), np.array([0, 1]), 2)
        sym = symmetrize(csr)
        assert sorted(sym.row(0)) == [1]
        assert sorted(sym.row(1)) == [0]

    def test_drops_diagonal(self):
        csr = CSR(np.array([0, 1]), np.array([0]), 1)
        assert symmetrize(csr).nnz == 0

    def test_rejects_rectangular(self):
        csr = CSR(np.array([0, 1]), np.array([1]), 3)
        with pytest.raises(GraphError):
            symmetrize(csr)


class TestConflictGraphs:
    def test_bgpc_conflict_graph_tiny(self, tiny_bipartite):
        cg = bgpc_conflict_graph(tiny_bipartite)
        edges = {
            (min(u, int(v)), max(u, int(v)))
            for u in range(cg.num_vertices)
            for v in cg.nbor(u)
        }
        assert edges == {(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)}

    def test_bgpc_conflict_graph_matches_networkx(self, small_bipartite):
        cg = bgpc_conflict_graph(small_bipartite)
        # Independent construction through networkx bipartite projection.
        B = nx.Graph()
        for v in range(small_bipartite.num_nets):
            members = [f"u{int(u)}" for u in small_bipartite.vtxs(v)]
            B.add_node(f"n{v}")
            for m in members:
                B.add_edge(f"n{v}", m)
        proj = nx.bipartite.projected_graph(
            B, [f"u{u}" for u in range(small_bipartite.num_vertices) if B.has_node(f"u{u}")]
        )
        expected = {
            (min(int(a[1:]), int(b[1:])), max(int(a[1:]), int(b[1:])))
            for a, b in proj.edges
        }
        got = {
            (min(u, int(v)), max(u, int(v)))
            for u in range(cg.num_vertices)
            for v in cg.nbor(u)
        }
        assert got == expected

    def test_d2gc_conflict_graph_path(self, path_graph):
        sq = d2gc_conflict_graph(path_graph)
        assert sorted(sq.nbor(0)) == [1, 2]
        assert sorted(sq.nbor(2)) == [0, 1, 3, 4]

    def test_d2gc_conflict_graph_matches_networkx(self, small_graph):
        sq = d2gc_conflict_graph(small_graph)
        G = nx.Graph()
        G.add_nodes_from(range(small_graph.num_vertices))
        for u in range(small_graph.num_vertices):
            for v in small_graph.nbor(u):
                G.add_edge(u, int(v))
        P2 = nx.power(G, 2)
        got = {(min(u, int(v)), max(u, int(v)))
               for u in range(sq.num_vertices) for v in sq.nbor(u)}
        expected = {(min(a, b), max(a, b)) for a, b in P2.edges}
        assert got == expected


class TestConversions:
    def test_bipartite_to_graph_round_trip(self):
        pattern = np.array([[1, 1, 0], [1, 1, 1], [0, 1, 1]])
        bg = bipartite_from_dense(pattern)
        g = bipartite_to_graph(bg)
        assert sorted(g.nbor(0)) == [1]
        assert sorted(g.nbor(1)) == [0, 2]

    def test_bipartite_to_graph_rejects_rectangular(self, tiny_bipartite):
        with pytest.raises(GraphError):
            bipartite_to_graph(tiny_bipartite)

    def test_graph_to_bipartite(self, path_graph):
        bg = graph_to_bipartite(path_graph)
        assert bg.num_vertices == bg.num_nets == 5
        assert sorted(bg.vtxs(1)) == [0, 2]

    def test_square_pattern_is_conflict_adjacency(self, small_bipartite):
        sq = square_pattern(small_bipartite.net_to_vtxs)
        cg = bgpc_conflict_graph(small_bipartite)
        assert sq.sorted() == cg.adj.sorted()


class TestConflictGraphDegrees:
    def test_two_hop_upper_bounds_conflict_degree(self, small_bipartite):
        """The cheap two-hop walk count dominates the true conflict degree."""
        from repro.order import bgpc_two_hop_degrees

        cg = bgpc_conflict_graph(small_bipartite)
        walks = bgpc_two_hop_degrees(small_bipartite)
        true_deg = cg.adj.degrees()
        assert np.all(walks >= true_deg)

    def test_conflict_graph_empty_when_nets_singleton(self):
        from repro.graph import bipartite_from_edges

        bg = bipartite_from_edges(
            [(0, 0), (1, 1), (2, 2)], num_vertices=3, num_nets=3
        )
        cg = bgpc_conflict_graph(bg)
        assert cg.num_edges == 0
