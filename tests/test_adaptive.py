"""The adaptive conflict-rate controller: decisions, gating, determinism.

Covers the :mod:`repro.core.adaptive` contract end to end: name parsing
round-trips, the one-way heavy→tail switch as a pure function of the
observed conflict rates, reset/reuse across runs, byte-reproducibility
on the deterministic simulator, the tracer feedback counter, and the
driver/backend gating (only kernel-level backends run controllers).
"""

import numpy as np
import pytest

from repro.core.adaptive import (
    DEFAULT_THRESHOLD,
    AdaptiveSchedule,
    ScheduleController,
    is_adaptive_name,
    parse_adaptive,
)
from repro.core.bgpc import color_bgpc
from repro.core.d2gc import color_d2gc
from repro.core.plan import ScheduleSpec, resolve_schedule
from repro.core.validate import validate_bgpc, validate_d2gc
from repro.errors import ColoringError
from repro.graph import bipartite_from_dense
from repro.graph.ops import bipartite_to_graph
from repro.obs.tracer import RecordingTracer


@pytest.fixture
def bg(rng):
    return bipartite_from_dense((rng.random((25, 35)) < 0.18).astype(int))


@pytest.fixture
def sym_graph(rng):
    base = (rng.random((24, 24)) < 0.12).astype(int)
    sym = ((base + base.T + np.eye(24, dtype=int)) > 0).astype(int)
    return bipartite_to_graph(bipartite_from_dense(sym))


class TestNames:
    def test_default_name_round_trips(self):
        ctrl = parse_adaptive("adaptive")
        assert ctrl.name == "adaptive"
        assert str(ctrl) == "adaptive"
        assert ctrl.threshold == DEFAULT_THRESHOLD

    def test_threshold_name_round_trips(self):
        ctrl = parse_adaptive("adaptive:0.1")
        assert ctrl.name == "adaptive:0.1"
        assert parse_adaptive(ctrl.name).threshold == ctrl.threshold

    def test_case_insensitive(self):
        assert is_adaptive_name("Adaptive")
        assert is_adaptive_name("ADAPTIVE:0.2")
        assert not is_adaptive_name("N1-N2")
        assert not is_adaptive_name(42)

    def test_parse_returns_fresh_instances(self):
        assert parse_adaptive("adaptive") is not parse_adaptive("adaptive")

    @pytest.mark.parametrize("bad", ["adaptive:x", "adaptive:", "adaptive:0.1.2"])
    def test_malformed_threshold_rejected(self, bad):
        with pytest.raises(ColoringError, match="cannot parse adaptive"):
            parse_adaptive(bad)

    @pytest.mark.parametrize("bad", ["adaptive:1", "adaptive:1.5", "adaptive:-0.1"])
    def test_out_of_range_threshold_rejected(self, bad):
        with pytest.raises(ColoringError, match=r"must be in \[0, 1\)"):
            parse_adaptive(bad)

    def test_constructor_validates_threshold_type(self):
        with pytest.raises(ColoringError, match="must be a number"):
            AdaptiveSchedule("banana")

    def test_tail_must_be_all_vertex(self):
        with pytest.raises(ColoringError, match="must be all-vertex"):
            AdaptiveSchedule(tail="V-N1")

    def test_resolve_schedule_handles_adaptive(self):
        ctrl = resolve_schedule("adaptive:0.2")
        assert isinstance(ctrl, AdaptiveSchedule)
        assert resolve_schedule(ctrl) is ctrl

    def test_satisfies_controller_protocol(self):
        assert isinstance(AdaptiveSchedule(), ScheduleController)
        assert not isinstance(ScheduleSpec.parse("V-V"), ScheduleController)


class TestControllerDecisions:
    def test_switches_when_rate_drops(self):
        ctrl = AdaptiveSchedule(0.5)
        ctrl.reset()
        ctrl.observe(0, queue_size=100, conflicts=80)  # rate 0.8 >= 0.5
        assert ctrl.switched_at is None
        ctrl.observe(1, queue_size=80, conflicts=10)  # rate 0.125 < 0.5
        assert ctrl.switched_at == 2
        assert [d.next_regime for d in ctrl.decisions] == ["heavy", "tail"]

    def test_switch_is_one_way(self):
        ctrl = AdaptiveSchedule(0.5)
        ctrl.reset()
        ctrl.observe(0, queue_size=100, conflicts=0)
        assert ctrl.switched_at == 1
        ctrl.observe(1, queue_size=100, conflicts=100)  # rate back up
        assert ctrl.switched_at == 1  # never regrows

    def test_empty_queue_counts_as_zero_rate(self):
        ctrl = AdaptiveSchedule(0.5)
        ctrl.reset()
        ctrl.observe(0, queue_size=0, conflicts=0)
        assert ctrl.switched_at == 1
        assert ctrl.decisions[0].rate == 0.0

    def test_iteration_plan_follows_regimes(self):
        ctrl = AdaptiveSchedule(0.5, heavy="N1-Ninf", tail="V-V-64D")
        ctrl.reset()
        assert ctrl.iteration_plan(0).remove.kind == "net"
        ctrl.observe(0, queue_size=10, conflicts=9)  # stay heavy
        assert ctrl.iteration_plan(1).remove.kind == "net"
        ctrl.observe(1, queue_size=9, conflicts=0)  # collapse → tail
        assert ctrl.iteration_plan(2).remove.kind == "vertex"
        assert ctrl.iteration_plan(2).color.kind == "vertex"

    def test_reset_forgets_observations(self):
        ctrl = AdaptiveSchedule(0.5)
        ctrl.reset()
        ctrl.observe(0, queue_size=10, conflicts=0)
        assert ctrl.switched_at == 1 and ctrl.decisions
        ctrl.reset()
        assert ctrl.switched_at is None and not ctrl.decisions

    def test_decision_pins_work_counters(self):
        from repro.obs.work import WorkCounters

        work = WorkCounters()
        work.conflict_checks = 123
        ctrl = AdaptiveSchedule(0.5)
        ctrl.reset()
        ctrl.observe(0, queue_size=10, conflicts=9, work=work)
        assert ctrl.decisions[0].conflict_checks == 123

    def test_observe_emits_tracer_counter(self):
        tracer = RecordingTracer()
        ctrl = AdaptiveSchedule(0.5)
        ctrl.reset()
        ctrl.observe(0, queue_size=10, conflicts=9, tracer=tracer)
        events = tracer.counters("adaptive.conflict_rate")
        assert len(events) == 1
        assert events[0].attrs["regime"] == "heavy"
        assert events[0].value == pytest.approx(0.9)


class TestAdaptiveRuns:
    @pytest.mark.parametrize("backend", ["sim", "threaded", "process"])
    def test_valid_on_kernel_backends(self, bg, backend):
        threads = 4 if backend != "process" else 1
        result = color_bgpc(bg, "adaptive", threads=threads, backend=backend)
        validate_bgpc(bg, result.colors)
        assert result.algorithm == "adaptive"

    def test_valid_on_d2gc(self, sym_graph):
        result = color_d2gc(sym_graph, "adaptive", threads=4, backend="sim")
        validate_d2gc(sym_graph, result.colors)

    @pytest.mark.parametrize("backend", ["numpy", "sharded", "compiled"])
    def test_rejected_on_whole_array_backends(self, bg, backend):
        with pytest.raises(ColoringError, match="cannot run adaptive"):
            color_bgpc(bg, "adaptive", threads=2, backend=backend)

    def test_sim_runs_are_byte_reproducible(self, bg):
        a = color_bgpc(bg, "adaptive", threads=8, backend="sim")
        b = color_bgpc(bg, "adaptive", threads=8, backend="sim")
        assert a.colors.tobytes() == b.colors.tobytes()
        assert a.work_metrics == b.work_metrics
        assert a.cycles == b.cycles

    def test_controller_instance_is_reusable(self, bg):
        # run_plan_loop resets the controller before iteration 0, so one
        # instance can drive several runs and reach identical decisions.
        ctrl = AdaptiveSchedule()
        a = color_bgpc(bg, ctrl, threads=8, backend="sim")
        first = list(ctrl.decisions)
        b = color_bgpc(bg, ctrl, threads=8, backend="sim")
        assert ctrl.decisions == first
        assert a.colors.tobytes() == b.colors.tobytes()

    def test_decisions_trace_matches_iterations(self, bg):
        ctrl = AdaptiveSchedule()
        result = color_bgpc(bg, ctrl, threads=8, backend="sim")
        assert len(ctrl.decisions) == len(result.iterations)
        for decision, record in zip(ctrl.decisions, result.iterations):
            assert decision.queue_size == record.queue_size
            assert decision.conflicts == record.conflicts

    def test_threshold_zero_switches_only_on_no_conflicts(self, bg):
        ctrl = AdaptiveSchedule(0.0)
        color_bgpc(bg, ctrl, threads=8, backend="sim")
        for decision in ctrl.decisions:
            if decision.next_regime == "tail" and ctrl.switched_at == decision.iteration + 1:
                assert decision.conflicts == 0

    def test_tracer_stream_contains_feedback(self, bg):
        tracer = RecordingTracer()
        color_bgpc(bg, "adaptive", threads=8, backend="sim", tracer=tracer)
        events = tracer.counters("adaptive.conflict_rate")
        assert events  # one per iteration
        assert all("regime" in e.attrs for e in events)
