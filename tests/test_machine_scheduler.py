"""Unit tests for loop schedules and the chunk cursor."""

import pytest

from repro.errors import SchedulerError
from repro.machine.scheduler import ChunkCursor, Schedule


class TestSchedule:
    def test_defaults(self):
        s = Schedule()
        assert s.kind == "dynamic"
        assert s.chunk == 1

    def test_factories(self):
        assert Schedule.dynamic(64).chunk == 64
        assert Schedule.static().kind == "static"

    def test_rejects_unknown_kind(self):
        with pytest.raises(SchedulerError):
            Schedule("guided")

    def test_rejects_bad_chunk(self):
        with pytest.raises(SchedulerError):
            Schedule("dynamic", 0)


class TestDynamicCursor:
    def test_chunks_in_order(self):
        cursor = ChunkCursor(10, threads=2, schedule=Schedule.dynamic(4))
        assert cursor.next_chunk(0) == (0, 4)
        assert cursor.next_chunk(1) == (4, 8)
        assert cursor.next_chunk(0) == (8, 10)
        assert cursor.next_chunk(1) is None

    def test_all_tasks_dispensed_exactly_once(self):
        cursor = ChunkCursor(100, threads=3, schedule=Schedule.dynamic(7))
        seen = []
        exhausted = set()
        tid = 0
        while len(exhausted) < 3:
            chunk = cursor.next_chunk(tid)
            if chunk is None:
                exhausted.add(tid)
            else:
                seen.extend(range(*chunk))
            tid = (tid + 1) % 3
        assert sorted(seen) == list(range(100))
        assert cursor.dispensed == 100

    def test_empty_loop(self):
        cursor = ChunkCursor(0, threads=2, schedule=Schedule.dynamic(4))
        assert cursor.next_chunk(0) is None

    def test_rejects_negative_tasks(self):
        with pytest.raises(SchedulerError):
            ChunkCursor(-1, 1, Schedule.dynamic(1))

    def test_rejects_zero_threads(self):
        with pytest.raises(SchedulerError):
            ChunkCursor(1, 0, Schedule.dynamic(1))


class TestStaticCursor:
    def test_one_block_per_thread(self):
        cursor = ChunkCursor(10, threads=3, schedule=Schedule.static())
        blocks = [cursor.next_chunk(t) for t in range(3)]
        assert blocks == [(0, 4), (4, 7), (7, 10)]

    def test_second_call_returns_none(self):
        cursor = ChunkCursor(10, threads=2, schedule=Schedule.static())
        cursor.next_chunk(0)
        assert cursor.next_chunk(0) is None

    def test_fewer_tasks_than_threads(self):
        cursor = ChunkCursor(2, threads=4, schedule=Schedule.static())
        blocks = [cursor.next_chunk(t) for t in range(4)]
        assert blocks == [(0, 1), (1, 2), None, None]

    def test_dispensed_counts_claimed_blocks(self):
        cursor = ChunkCursor(9, threads=3, schedule=Schedule.static())
        cursor.next_chunk(1)
        assert cursor.dispensed == 3
