"""Tests for the sequential greedy BGPC baseline."""

import numpy as np
import pytest

from repro import sequential_bgpc, validate_bgpc
from repro.core.policies import B1Policy, B2Policy
from repro.order import random_order, smallest_last_order


class TestCorrectness:
    def test_valid_on_tiny(self, tiny_bipartite):
        result = sequential_bgpc(tiny_bipartite)
        validate_bgpc(tiny_bipartite, result.colors)
        assert result.num_colors == 3  # triangle in net 0 forces 3

    def test_valid_on_random(self, medium_bipartite):
        result = sequential_bgpc(medium_bipartite)
        validate_bgpc(medium_bipartite, result.colors)

    def test_greedy_matches_reference_implementation(self, small_bipartite):
        """Pure-python greedy first-fit over the conflict graph must agree
        exactly with the machine-executed kernel at t=1."""
        from repro.graph.ops import bgpc_conflict_graph

        cg = bgpc_conflict_graph(small_bipartite)
        reference = np.full(small_bipartite.num_vertices, -1, dtype=np.int64)
        for w in range(small_bipartite.num_vertices):
            forbidden = {int(reference[u]) for u in cg.nbor(w) if reference[u] >= 0}
            col = 0
            while col in forbidden:
                col += 1
            reference[w] = col
        result = sequential_bgpc(small_bipartite)
        assert np.array_equal(result.colors, reference)

    def test_no_conflict_phase(self, small_bipartite):
        result = sequential_bgpc(small_bipartite)
        assert result.num_iterations == 1
        assert result.iterations[0].remove_timing is None
        assert result.total_conflicts == 0

    def test_respects_lower_bound(self, medium_bipartite):
        result = sequential_bgpc(medium_bipartite)
        assert result.num_colors >= medium_bipartite.color_lower_bound()

    def test_first_fit_upper_bound(self, small_bipartite):
        """Greedy never exceeds max conflict degree + 1."""
        from repro.graph.ops import bgpc_conflict_graph

        cg = bgpc_conflict_graph(small_bipartite)
        result = sequential_bgpc(small_bipartite)
        assert result.num_colors <= cg.max_degree() + 1


class TestOrdering:
    def test_order_changes_processing(self, small_bipartite):
        nat = sequential_bgpc(small_bipartite)
        rnd = sequential_bgpc(
            small_bipartite, order=random_order(small_bipartite, seed=2)
        )
        validate_bgpc(small_bipartite, rnd.colors)
        # Different greedy orders are both valid but rarely identical.
        assert nat.num_colors > 0 and rnd.num_colors > 0

    def test_colors_returned_in_original_ids(self, tiny_bipartite):
        """With an ordering, the returned array is indexed by original id."""
        order = np.array([4, 3, 2, 1, 0])
        result = sequential_bgpc(tiny_bipartite, order=order)
        validate_bgpc(tiny_bipartite, result.colors)

    def test_smallest_last_not_worse_much(self, medium_bipartite):
        nat = sequential_bgpc(medium_bipartite)
        sl = sequential_bgpc(
            medium_bipartite, order=smallest_last_order(medium_bipartite)
        )
        validate_bgpc(medium_bipartite, sl.colors)
        assert sl.num_colors <= nat.num_colors + 2


class TestPolicies:
    @pytest.mark.parametrize("policy", [B1Policy(), B2Policy()])
    def test_balancing_policies_stay_valid(self, medium_bipartite, policy):
        result = sequential_bgpc(medium_bipartite, policy=policy)
        validate_bgpc(medium_bipartite, result.colors)

    def test_deterministic(self, medium_bipartite):
        a = sequential_bgpc(medium_bipartite)
        b = sequential_bgpc(medium_bipartite)
        assert np.array_equal(a.colors, b.colors)
        assert a.cycles == b.cycles
