"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.bench.plots import (
    figure1_chart,
    figure3_chart,
    hbar_chart,
    log_sparkline,
)


class TestHbarChart:
    def test_scales_to_max(self):
        out = hbar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        out = hbar_chart([("long-label", 1.0), ("x", 1.0)])
        lines = out.splitlines()
        assert lines[0].index("│") == lines[1].index("│")

    def test_empty(self):
        assert "empty" in hbar_chart([])

    def test_zero_values_render(self):
        out = hbar_chart([("z", 0.0), ("a", 4.0)], width=8)
        assert "z" in out

    def test_explicit_max(self):
        out = hbar_chart([("a", 5.0)], width=10, max_value=10.0)
        assert out.count("█") == 5

    def test_deterministic(self):
        rows = [("a", 3.3), ("b", 7.7)]
        assert hbar_chart(rows) == hbar_chart(rows)


class TestSparkline:
    def test_length_capped_to_width(self):
        out = log_sparkline(list(range(1, 200)), width=50)
        assert len(out) == 50

    def test_short_series_uncompressed(self):
        out = log_sparkline([1, 10, 100], width=60)
        assert len(out) == 3

    def test_monotone_series_monotone_blocks(self):
        out = log_sparkline([1, 10, 100, 1000])
        heights = ["▁▂▃▄▅▆▇█".index(c) for c in out]
        assert heights == sorted(heights)

    def test_zeros_render_as_spaces(self):
        out = log_sparkline([0, 5, 0])
        assert out[0] == " " and out[2] == " "

    def test_all_zero(self):
        assert log_sparkline([0, 0, 0]).strip() == ""

    def test_empty(self):
        assert "empty" in log_sparkline([])


class TestFigureCharts:
    def test_figure1_chart_skips_empty_rounds(self):
        series = {"X": [(10.0, 5.0), (0.0, 0.0)]}
        out = figure1_chart(series)
        assert "X r1 color" in out
        assert "r2" not in out

    def test_figure3_chart_from_experiment_data(self):
        from repro.bench.experiments import ALL_EXPERIMENTS

        exp = ALL_EXPERIMENTS["figure3"](scale="tiny", threads=8)
        out = figure3_chart(exp.data["curves"])
        assert "V-N2-U" in out
        assert "│" in out

    def test_figure3_chart_empty(self):
        assert "no curves" in figure3_chart({})
