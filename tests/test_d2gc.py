"""Tests for the distance-2 coloring algorithms (sequential and parallel)."""

import numpy as np
import pytest

from repro import (
    D2GC_ALGORITHMS,
    color_d2gc,
    sequential_d2gc,
    validate_d2gc,
)
from repro.core.d2gc.net import make_net_color_kernel, make_net_removal_kernel
from repro.graph import graph_from_edges
from repro.machine.cost import CostModel
from repro.machine.engine import TaskContext

TABLE5 = ("V-V-64D", "V-N1", "V-N2", "N1-N2")


class TestSequential:
    def test_path(self, path_graph):
        result = sequential_d2gc(path_graph)
        validate_d2gc(path_graph, result.colors)
        assert result.num_colors == 3

    def test_star_uses_n_colors(self, star_graph):
        result = sequential_d2gc(star_graph)
        validate_d2gc(star_graph, result.colors)
        assert result.num_colors == 7

    def test_lower_bound(self, small_graph):
        result = sequential_d2gc(small_graph)
        assert result.num_colors >= small_graph.color_lower_bound()

    def test_matches_reference_greedy(self, small_graph):
        """Greedy FF on the materialized square graph must agree exactly."""
        from repro.graph.ops import d2gc_conflict_graph

        sq = d2gc_conflict_graph(small_graph)
        reference = np.full(small_graph.num_vertices, -1, dtype=np.int64)
        for w in range(small_graph.num_vertices):
            forbidden = {int(reference[u]) for u in sq.nbor(w) if reference[u] >= 0}
            col = 0
            while col in forbidden:
                col += 1
            reference[w] = col
        result = sequential_d2gc(small_graph)
        assert np.array_equal(result.colors, reference)


class TestParallel:
    @pytest.mark.parametrize("alg", TABLE5)
    @pytest.mark.parametrize("threads", [1, 2, 16])
    def test_always_valid(self, small_graph, alg, threads):
        result = color_d2gc(small_graph, algorithm=alg, threads=threads)
        validate_d2gc(small_graph, result.colors)

    @pytest.mark.parametrize("alg", sorted(D2GC_ALGORITHMS))
    def test_all_specs_valid_on_path(self, path_graph, alg):
        result = color_d2gc(path_graph, algorithm=alg, threads=4)
        validate_d2gc(path_graph, result.colors)

    def test_one_thread_matches_sequential(self, small_graph):
        seq = sequential_d2gc(small_graph)
        par = color_d2gc(small_graph, algorithm="V-V-64D", threads=1)
        assert np.array_equal(seq.colors, par.colors)

    def test_deterministic(self, small_graph):
        a = color_d2gc(small_graph, algorithm="N1-N2", threads=8)
        b = color_d2gc(small_graph, algorithm="N1-N2", threads=8)
        assert np.array_equal(a.colors, b.colors)
        assert a.cycles == b.cycles

    def test_unknown_algorithm(self, path_graph):
        from repro.errors import ColoringError

        with pytest.raises(ColoringError, match="unknown D2GC algorithm"):
            color_d2gc(path_graph, algorithm="nope")

    def test_ordering_roundtrip(self, small_graph):
        from repro.order import smallest_last_order

        order = smallest_last_order(small_graph)
        result = color_d2gc(small_graph, algorithm="V-N2", threads=8, order=order)
        validate_d2gc(small_graph, result.colors)

    def test_balancing_policies_valid(self, small_graph):
        from repro.core.policies import B1Policy, B2Policy

        for policy in (B1Policy(), B2Policy()):
            result = color_d2gc(
                small_graph, algorithm="N1-N2", threads=16, policy=policy
            )
            validate_d2gc(small_graph, result.colors)


class TestNetKernels:
    """Alg. 9 / Alg. 10 semantics on crafted closed neighbourhoods."""

    def _run(self, kernel, vertex, colors):
        ctx = TaskContext()
        ctx.reset(np.asarray(colors, dtype=np.int64), 0, {})
        kernel(vertex, ctx)
        return ctx

    def test_alg9_reverse_start_is_degree(self, star_graph):
        kernel = make_net_color_kernel(star_graph, CostModel())
        ctx = self._run(kernel, 0, [-1] * 7)
        writes = dict(ctx.writes)
        # closed neighbourhood of the hub: all 7 vertices; reverse FF starts
        # at deg(0) = 6 (not 5): colors 6..0 in group order (hub first).
        assert writes[0] == 6
        assert sorted(writes.values()) == list(range(7))

    def test_alg9_middle_vertex_processed_first(self, path_graph):
        kernel = make_net_color_kernel(path_graph, CostModel())
        ctx = self._run(kernel, 1, [-1, -1, -1, -1, -1])
        writes = dict(ctx.writes)
        # group = [1, 0, 2], deg(1)=2 -> colors 2, 1, 0 in that order.
        assert writes[1] == 2
        assert writes[0] == 1
        assert writes[2] == 0

    def test_alg10_middle_keeps_color(self, star_graph):
        kernel = make_net_removal_kernel(star_graph, CostModel())
        ctx = self._run(kernel, 0, [3, 3, 1, 2, 4, 5, 6])
        # the hub (group head) keeps color 3; leaf 1 clashes and resets.
        assert dict(ctx.writes) == {1: -1}

    def test_alg10_duplicate_leaves_reset(self, star_graph):
        kernel = make_net_removal_kernel(star_graph, CostModel())
        ctx = self._run(kernel, 0, [0, 1, 1, 1, 2, 3, 4])
        assert dict(ctx.writes) == {2: -1, 3: -1}


class TestDistance1Included:
    def test_adjacent_vertices_differ(self):
        """D2GC validity includes distance-1 pairs; the drivers must too."""
        g = graph_from_edges([(0, 1)], num_vertices=2)
        for alg in TABLE5:
            result = color_d2gc(g, algorithm=alg, threads=4)
            assert result.colors[0] != result.colors[1]

    def test_triangle_needs_three(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=3)
        result = color_d2gc(g, algorithm="N1-N2", threads=4)
        validate_d2gc(g, result.colors)
        assert result.num_colors == 3
