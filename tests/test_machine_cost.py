"""Unit tests for the cycle-cost model."""

import pytest

from repro.machine.cost import CostModel


class TestFees:
    def test_chunk_fee_single_thread_no_contention(self):
        cost = CostModel(chunk_base=10, chunk_contention=100)
        assert cost.chunk_fee(1) == 10

    def test_chunk_fee_scales_with_threads(self):
        cost = CostModel(chunk_base=10, chunk_contention=5)
        assert cost.chunk_fee(2) == 15
        assert cost.chunk_fee(16) == 10 + 5 * 15

    def test_atomic_fee(self):
        cost = CostModel(atomic_base=7, atomic_contention=3)
        assert cost.atomic_fee(1) == 7
        assert cost.atomic_fee(4) == 7 + 9

    def test_barrier_free_for_one_thread(self):
        assert CostModel().barrier_cost(1) == 0

    def test_barrier_scales(self):
        cost = CostModel(barrier_base=100, barrier_per_thread=10)
        assert cost.barrier_cost(4) == 140


class TestMemoryInflation:
    def test_single_thread_uninflated(self):
        assert CostModel().inflate_memory(1000, 1) == 1000

    def test_coherence_applies_from_two_threads(self):
        cost = CostModel(coherence_pct=10, bandwidth_threads=8)
        assert cost.inflate_memory(1000, 2) == 1100

    def test_bandwidth_stacks_on_coherence(self):
        cost = CostModel(
            coherence_pct=10, bandwidth_threads=8, bandwidth_slope_pct=5
        )
        # 16 threads: 8 over the knee -> +40%, plus 10% coherence.
        assert cost.inflate_memory(1000, 16) == 1500

    def test_rounds_up(self):
        cost = CostModel(coherence_pct=10, bandwidth_threads=8)
        assert cost.inflate_memory(1, 2) == 2  # ceil(1.1) via integer formula

    def test_monotone_in_threads(self):
        cost = CostModel()
        values = [cost.inflate_memory(10_000, t) for t in (1, 2, 4, 8, 16, 32)]
        assert values == sorted(values)


class TestRaceWindow:
    def test_full_window(self):
        cost = CostModel(race_window_pct=100)
        assert cost.write_visibility_delay(200) == 200

    def test_partial_window(self):
        cost = CostModel(race_window_pct=25)
        assert cost.write_visibility_delay(200) == 50

    def test_minimum_one_cycle(self):
        cost = CostModel(race_window_pct=1)
        assert cost.write_visibility_delay(5) == 1


class TestValidation:
    def test_rejects_negative_charge(self):
        with pytest.raises(ValueError):
            CostModel(edge_cost=-1)

    def test_rejects_zero_bandwidth_threads(self):
        with pytest.raises(ValueError):
            CostModel(bandwidth_threads=0)

    def test_rejects_bad_race_window(self):
        with pytest.raises(ValueError):
            CostModel(race_window_pct=0)
        with pytest.raises(ValueError):
            CostModel(race_window_pct=101)

    def test_with_overrides(self):
        cost = CostModel().with_overrides(edge_cost=99)
        assert cost.edge_cost == 99
        assert cost.write_cost == CostModel().write_cost
