"""Unit tests for the marker-based forbidden color set."""

import numpy as np

from repro.core.forbidden import ForbiddenSet


class TestMembership:
    def test_add_and_contains(self):
        forb = ForbiddenSet(8)
        forb.begin()
        forb.add(3)
        assert 3 in forb
        assert 4 not in forb

    def test_begin_resets_without_clearing(self):
        forb = ForbiddenSet(8)
        forb.begin()
        forb.add(3)
        forb.begin()
        assert 3 not in forb

    def test_add_many(self):
        forb = ForbiddenSet(8)
        forb.begin()
        forb.add_many(np.array([1, 5, 2]))
        assert all(c in forb for c in (1, 2, 5))
        assert 0 not in forb

    def test_add_many_empty(self):
        forb = ForbiddenSet(4)
        forb.begin()
        forb.add_many(np.array([], dtype=np.int64))
        assert 0 not in forb

    def test_negative_or_oob_never_member(self):
        forb = ForbiddenSet(4)
        forb.begin()
        assert -1 not in forb
        assert 1000 not in forb

    def test_growth(self):
        forb = ForbiddenSet(2)
        forb.begin()
        forb.add(100)
        assert 100 in forb
        assert forb.capacity >= 101

    def test_growth_preserves_members(self):
        forb = ForbiddenSet(2)
        forb.begin()
        forb.add(1)
        forb.add_many(np.array([50]))
        assert 1 in forb
        assert 50 in forb

    def test_min_capacity_one(self):
        assert ForbiddenSet(0).capacity == 1


class TestScans:
    def test_first_fit_empty(self):
        forb = ForbiddenSet(8)
        forb.begin()
        assert forb.first_fit() == (0, 1)

    def test_first_fit_skips_members(self):
        forb = ForbiddenSet(8)
        forb.begin()
        forb.add_many(np.array([0, 1, 3]))
        color, steps = forb.first_fit()
        assert color == 2
        assert steps == 3

    def test_first_fit_with_start(self):
        forb = ForbiddenSet(8)
        forb.begin()
        forb.add(5)
        assert forb.first_fit(5)[0] == 6

    def test_reverse_first_fit(self):
        forb = ForbiddenSet(8)
        forb.begin()
        forb.add_many(np.array([4, 3]))
        color, _ = forb.reverse_first_fit(4)
        assert color == 2

    def test_reverse_first_fit_exhausted(self):
        forb = ForbiddenSet(8)
        forb.begin()
        forb.add_many(np.array([0, 1, 2]))
        color, _ = forb.reverse_first_fit(2)
        assert color == -1

    def test_probe_counter(self):
        forb = ForbiddenSet(8)
        forb.begin()
        before = forb.probes
        forb.first_fit()
        assert forb.probes == before + 1
