"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    color_bgpc,
    color_d2gc,
    is_valid_bgpc,
    sequential_bgpc,
    validate_bgpc,
    validate_d2gc,
)
from repro.core.forbidden import ForbiddenSet
from repro.graph import bipartite_from_edges, graph_from_edges
from repro.machine.memory import TimestampedMemory
from repro.order import smallest_last_order

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def bipartite_graphs(draw, max_vertices=40, max_nets=30):
    num_vertices = draw(st.integers(1, max_vertices))
    num_nets = draw(st.integers(1, max_nets))
    num_edges = draw(st.integers(0, num_vertices * 3))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1), st.integers(0, num_nets - 1)
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return bipartite_from_edges(edges, num_vertices=num_vertices, num_nets=num_nets)


@st.composite
def unipartite_graphs(draw, max_vertices=30):
    n = draw(st.integers(2, max_vertices))
    num_edges = draw(st.integers(0, min(n * 2, n * (n - 1) // 2)))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return graph_from_edges(edges, num_vertices=n)


class TestColoringProperties:
    @SLOW
    @given(
        bg=bipartite_graphs(),
        alg=st.sampled_from(["V-V", "V-V-64D", "V-N1", "N1-N2", "N2-N2"]),
        threads=st.sampled_from([1, 3, 16]),
    )
    def test_bgpc_always_valid(self, bg, alg, threads):
        result = color_bgpc(bg, algorithm=alg, threads=threads)
        validate_bgpc(bg, result.colors)

    @SLOW
    @given(
        g=unipartite_graphs(),
        alg=st.sampled_from(["V-V-64D", "V-N2", "N1-N2"]),
        threads=st.sampled_from([1, 4, 16]),
    )
    def test_d2gc_always_valid(self, g, alg, threads):
        result = color_d2gc(g, algorithm=alg, threads=threads)
        validate_d2gc(g, result.colors)

    @SLOW
    @given(bg=bipartite_graphs())
    def test_colors_at_least_lower_bound(self, bg):
        result = sequential_bgpc(bg)
        if bg.num_edges:
            assert result.num_colors >= bg.color_lower_bound()

    @SLOW
    @given(bg=bipartite_graphs(), policy=st.sampled_from(["B1", "B2"]))
    def test_balancing_preserves_validity(self, bg, policy):
        from repro.core.policies import get_policy

        result = color_bgpc(
            bg, algorithm="V-N2", threads=8, policy=get_policy(policy)
        )
        validate_bgpc(bg, result.colors)

    @SLOW
    @given(bg=bipartite_graphs())
    def test_smallest_last_is_permutation_and_valid(self, bg):
        order = smallest_last_order(bg)
        assert sorted(order) == list(range(bg.num_vertices))
        result = sequential_bgpc(bg, order=order)
        validate_bgpc(bg, result.colors)

    @SLOW
    @given(bg=bipartite_graphs(), seed=st.integers(0, 3))
    def test_random_coloring_validity_oracle(self, bg, seed):
        """Cross-check is_valid_bgpc against a brute-force pair scan."""
        rng = np.random.default_rng(seed)
        colors = rng.integers(0, 5, size=bg.num_vertices)
        brute = True
        for v in range(bg.num_nets):
            members = bg.vtxs(v)
            vals = colors[members]
            if np.unique(vals).size != vals.size:
                brute = False
                break
        assert is_valid_bgpc(bg, colors) == brute


class TestForbiddenSetModel:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("add"), st.integers(0, 100)),
                st.tuples(st.just("begin"), st.just(0)),
            ),
            max_size=60,
        )
    )
    def test_matches_python_set(self, ops):
        forb = ForbiddenSet(4)
        model: set[int] = set()
        for op, value in ops:
            if op == "add":
                forb.add(value)
                model.add(value)
            else:
                forb.begin()
                model.clear()
        for c in range(0, 105, 7):
            assert (c in forb) == (c in model)
        ff, _ = forb.first_fit()
        expected = 0
        while expected in model:
            expected += 1
        assert ff == expected


class TestMemoryModel:
    @settings(max_examples=60, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(0, 7),      # index
                st.integers(0, 50),     # value
                st.integers(0, 100),    # commit time
            ),
            max_size=30,
        ),
        read_time=st.integers(0, 120),
    )
    def test_happens_before_visibility(self, writes, read_time):
        """A read at time T sees exactly the latest write committing <= T
        (ties: later submission wins)."""
        mem = TimestampedMemory(np.full(8, -1, dtype=np.int64))
        for index, value, t in writes:
            mem.write(index, value, t)
        mem.commit_until(read_time)
        for index in range(8):
            visible = [
                (t, seq, value)
                for seq, (idx, value, t) in enumerate(writes)
                if idx == index and t <= read_time
            ]
            expected = max(visible)[2] if visible else -1
            assert mem.read(index) == expected


class TestCsrProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 11)), max_size=80
        )
    )
    def test_transpose_involution(self, edges):
        bg = bipartite_from_edges(edges, num_vertices=15, num_nets=12)
        csr = bg.vtx_to_nets
        assert csr.transpose().transpose() == csr.sorted()

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 14), st.integers(0, 11)), max_size=80
        ),
        seed=st.integers(0, 5),
    )
    def test_permutation_roundtrip(self, edges, seed):
        bg = bipartite_from_edges(edges, num_vertices=15, num_nets=12)
        perm = np.random.default_rng(seed).permutation(15)
        inverse = np.empty(15, dtype=np.int64)
        inverse[perm] = np.arange(15)
        back = bg.permute_vertices(perm).permute_vertices(inverse)
        assert back.vtx_to_nets.sorted() == bg.vtx_to_nets.sorted()
