"""Unit tests for color-class statistics."""

import numpy as np
import pytest

from repro.core.metrics import (
    color_cardinalities,
    color_stats,
    skewness,
    sorted_cardinality_curve,
    tiny_class_count,
)
from repro.errors import ColoringError


class TestCardinalities:
    def test_basic(self):
        card = color_cardinalities(np.array([0, 0, 1, 2, 2, 2]))
        assert list(card) == [2, 1, 3]

    def test_gap_colors_count_as_empty(self):
        card = color_cardinalities(np.array([0, 3]))
        assert list(card) == [1, 0, 0, 1]

    def test_rejects_partial(self):
        with pytest.raises(ColoringError):
            color_cardinalities(np.array([0, -1]))

    def test_empty(self):
        assert color_cardinalities(np.array([], dtype=np.int64)).size == 0


class TestStats:
    def test_values(self):
        stats = color_stats(np.array([0, 0, 0, 1]))
        assert stats.num_colors == 2
        assert stats.mean == 2.0
        assert stats.min == 1
        assert stats.max == 3
        assert stats.std == 1.0

    def test_imbalance_and_cv(self):
        stats = color_stats(np.array([0, 0, 0, 1]))
        assert stats.imbalance == 1.5
        assert stats.cv == 0.5

    def test_empty(self):
        stats = color_stats(np.array([], dtype=np.int64))
        assert stats.num_colors == 0
        assert stats.imbalance == 1.0


class TestCurveAndSkew:
    def test_sorted_curve_descending(self):
        curve = sorted_cardinality_curve(np.array([0, 1, 1, 2, 2, 2]))
        assert list(curve) == [3, 2, 1]

    def test_skewness_sign(self):
        # one huge class + many tiny ones -> positive skew
        colors = np.concatenate([np.zeros(100, dtype=np.int64), np.arange(1, 11)])
        assert skewness(colors) > 0
        # perfectly equitable -> zero skew
        assert skewness(np.array([0, 0, 1, 1, 2, 2])) == 0.0

    def test_skewness_degenerate(self):
        assert skewness(np.array([0, 0, 0])) == 0.0

    def test_tiny_class_count(self):
        colors = np.array([0, 0, 0, 1, 2, 2])
        assert tiny_class_count(colors, threshold=2) == 1
        assert tiny_class_count(colors, threshold=3) == 2


class TestSummary:
    def test_coloring_result_summary_mentions_rounds(self):
        from repro import color_bgpc
        from repro.datasets import random_bipartite

        bg = random_bipartite(15, 25, density=0.15, seed=8)
        result = color_bgpc(bg, threads=4)
        text = result.summary()
        assert "colors" in text
        assert f"rounds: {result.num_iterations}" in text
