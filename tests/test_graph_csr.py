"""Unit tests for the CSR adjacency container."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSR


def make(ptr, idx, ncols):
    return CSR(np.asarray(ptr), np.asarray(idx), ncols)


class TestConstruction:
    def test_basic(self):
        csr = make([0, 2, 3], [1, 4, 0], 5)
        assert csr.nrows == 2
        assert csr.ncols == 5
        assert csr.nnz == 3

    def test_empty_rows_allowed(self):
        csr = make([0, 0, 0, 2], [1, 2], 3)
        assert csr.degree(0) == 0
        assert csr.degree(2) == 2

    def test_zero_rows(self):
        csr = make([0], [], 4)
        assert csr.nrows == 0
        assert csr.max_degree() == 0

    def test_rejects_bad_first_ptr(self):
        with pytest.raises(GraphError, match="ptr\\[0\\]"):
            make([1, 2], [0, 0], 3)

    def test_rejects_decreasing_ptr(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            make([0, 3, 2], [0, 0, 0], 3)

    def test_rejects_ptr_idx_mismatch(self):
        with pytest.raises(GraphError, match="len\\(idx\\)"):
            make([0, 2], [1], 3)

    def test_rejects_out_of_range_column(self):
        with pytest.raises(GraphError, match="out of range"):
            make([0, 1], [5], 3)

    def test_rejects_negative_column(self):
        with pytest.raises(GraphError, match="out of range"):
            make([0, 1], [-1], 3)

    def test_rejects_2d_arrays(self):
        with pytest.raises(GraphError, match="1-D"):
            CSR(np.zeros((2, 2), dtype=np.int64), np.zeros(0, dtype=np.int64), 1)

    def test_arrays_are_read_only(self):
        csr = make([0, 1], [0], 1)
        with pytest.raises(ValueError):
            csr.ptr[0] = 5
        with pytest.raises(ValueError):
            csr.idx[0] = 0


class TestAccessors:
    def test_row_view(self):
        csr = make([0, 2, 5], [3, 1, 0, 2, 4], 5)
        assert list(csr.row(0)) == [3, 1]
        assert list(csr.row(1)) == [0, 2, 4]

    def test_degrees(self):
        csr = make([0, 2, 5], [3, 1, 0, 2, 4], 5)
        assert list(csr.degrees()) == [2, 3]
        assert csr.max_degree() == 3

    def test_iter_rows(self):
        csr = make([0, 1, 3], [2, 0, 1], 3)
        rows = {i: list(r) for i, r in csr.iter_rows()}
        assert rows == {0: [2], 1: [0, 1]}

    def test_has_sorted_rows(self):
        assert make([0, 2], [0, 1], 2).has_sorted_rows()
        assert not make([0, 2], [1, 0], 2).has_sorted_rows()
        assert not make([0, 2], [1, 1], 2).has_sorted_rows()

    def test_has_duplicates(self):
        assert make([0, 2], [1, 1], 2).has_duplicates()
        assert not make([0, 2], [0, 1], 2).has_duplicates()


class TestTransforms:
    def test_sorted(self):
        csr = make([0, 3], [2, 0, 1], 3)
        assert list(csr.sorted().row(0)) == [0, 1, 2]

    def test_transpose_shape(self):
        csr = make([0, 2, 3], [1, 2, 0], 3)
        t = csr.transpose()
        assert t.nrows == 3
        assert t.ncols == 2
        assert t.nnz == csr.nnz

    def test_transpose_content(self):
        # row 0 -> {1, 2}, row 1 -> {0}
        csr = make([0, 2, 3], [1, 2, 0], 3)
        t = csr.transpose()
        assert list(t.row(0)) == [1]
        assert list(t.row(1)) == [0]
        assert list(t.row(2)) == [0]

    def test_transpose_involution(self, rng):
        mask = rng.random((13, 17)) < 0.25
        rows, cols = np.nonzero(mask)
        counts = np.bincount(rows, minlength=13)
        ptr = np.zeros(14, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        csr = CSR(ptr, cols.astype(np.int64), 17)
        double = csr.transpose().transpose()
        assert double == csr.sorted()

    def test_permute_rows(self):
        csr = make([0, 1, 3], [2, 0, 1], 3)
        permuted = csr.permute_rows(np.array([1, 0]))
        assert list(permuted.row(0)) == [0, 1]
        assert list(permuted.row(1)) == [2]

    def test_permute_rows_rejects_non_permutation(self):
        csr = make([0, 1, 2], [0, 1], 2)
        with pytest.raises(GraphError):
            csr.permute_rows(np.array([0, 0]))

    def test_relabel_cols(self):
        csr = make([0, 2], [0, 1], 2)
        relabeled = csr.relabel_cols(np.array([1, 0]))
        assert sorted(relabeled.row(0)) == [0, 1]
        assert list(relabeled.row(0)) == [1, 0]

    def test_relabel_cols_rejects_wrong_length(self):
        csr = make([0, 1], [0], 2)
        with pytest.raises(GraphError):
            csr.relabel_cols(np.array([0]))

    def test_equality(self):
        a = make([0, 1], [0], 2)
        b = make([0, 1], [0], 2)
        c = make([0, 1], [1], 2)
        assert a == b
        assert a != c
        assert a != "not a csr"
