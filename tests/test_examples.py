"""Smoke tests that every example script runs to completion.

The examples double as integration tests: each asserts its own correctness
conditions (exact recovery, decreasing loss) and raises on failure.  The
Table-III sweep example is exercised on the tiny registry scale elsewhere
(benchmarks), so it is excluded here to keep the suite fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "jacobian_compression.py",
    "hessian_recovery.py",
    "movielens_sgd.py",
    "distance_k.py",
    "hypergraph_coloring.py",
    "distributed_coloring.py",
    "coloring_service.py",
    "incremental_recolor.py",
    "sharded_coloring.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST_EXAMPLES) <= present
    assert "speedup_sweep.py" in present
