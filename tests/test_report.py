"""Tests for JSON run-report serialization."""

import json

import numpy as np
import pytest

from repro import color_bgpc, sequential_bgpc
from repro.datasets import random_bipartite
from repro.report import (
    MEASURED_FIELDS,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def run_result():
    bg = random_bipartite(30, 50, density=0.1, seed=61)
    return color_bgpc(bg, algorithm="V-N2", threads=8)


class TestRoundTrip:
    def test_dict_round_trip(self, run_result):
        back = result_from_dict(result_to_dict(run_result))
        assert np.array_equal(back.colors, run_result.colors)
        assert back.num_colors == run_result.num_colors
        assert back.cycles == run_result.cycles
        assert back.algorithm == run_result.algorithm
        assert back.threads == run_result.threads
        assert back.num_iterations == run_result.num_iterations
        for a, b in zip(back.iterations, run_result.iterations):
            assert a.queue_size == b.queue_size
            assert a.conflicts == b.conflicts
            assert a.color_timing.cycles == b.color_timing.cycles
            assert a.color_timing.thread_cycles == b.color_timing.thread_cycles

    def test_file_round_trip(self, run_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(run_result, path)
        back = load_result(path)
        assert np.array_equal(back.colors, run_result.colors)
        assert back.cycles == run_result.cycles

    def test_sequential_result_with_null_removal(self, tmp_path):
        bg = random_bipartite(10, 15, density=0.2, seed=3)
        result = sequential_bgpc(bg)
        path = tmp_path / "seq.json"
        save_result(result, path)
        back = load_result(path)
        assert back.iterations[0].remove_timing is None

    def test_archives_are_byte_identical(self, run_result, tmp_path):
        """Determinism end to end: same run -> same JSON bytes."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_result(run_result, a)
        bg = random_bipartite(30, 50, density=0.1, seed=61)
        rerun = color_bgpc(bg, algorithm="V-N2", threads=8)
        save_result(rerun, b)
        assert a.read_bytes() == b.read_bytes()

    def test_json_is_plain(self, run_result, tmp_path):
        path = tmp_path / "run.json"
        save_result(run_result, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert isinstance(payload["colors"][0], int)

    def test_unknown_version_rejected(self, run_result):
        payload = result_to_dict(run_result)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            result_from_dict(payload)


def _all_keys(payload):
    """Every dict key reachable anywhere in a JSON payload."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield key
            yield from _all_keys(value)
    elif isinstance(payload, list):
        for item in payload:
            yield from _all_keys(item)


class TestMeasuredFieldStripping:
    """Archives must carry no measured-time data, on any backend."""

    @pytest.fixture(scope="class")
    def fast_result(self):
        bg = random_bipartite(30, 50, density=0.1, seed=61)
        return color_bgpc(bg, backend="numpy", fastpath_mode="speculative")

    def test_no_measured_fields_anywhere(self, fast_result):
        payload = result_to_dict(fast_result)
        assert MEASURED_FIELDS.isdisjoint(_all_keys(payload))

    def test_numpy_archives_are_byte_identical(self, fast_result, tmp_path):
        """Two runs have different wall clocks but identical archives."""
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_result(fast_result, a)
        bg = random_bipartite(30, 50, density=0.1, seed=61)
        rerun = color_bgpc(bg, backend="numpy", fastpath_mode="speculative")
        assert rerun.wall_seconds != fast_result.wall_seconds
        save_result(rerun, b)
        assert a.read_bytes() == b.read_bytes()

    def test_colors_introduced_round_trips(self, fast_result):
        back = result_from_dict(result_to_dict(fast_result))
        assert [r.colors_introduced for r in back.iterations] == [
            r.colors_introduced for r in fast_result.iterations
        ]
        assert all(r.wall_seconds == 0.0 for r in back.iterations)

    def test_legacy_payload_without_colors_introduced(self, run_result):
        payload = result_to_dict(run_result)
        for rec in payload["iterations"]:
            rec.pop("colors_introduced", None)
        back = result_from_dict(payload)
        assert all(r.colors_introduced == -1 for r in back.iterations)


class TestReportWithDistributedResults:
    def test_summary_of_loaded_result(self, run_result, tmp_path):
        path = tmp_path / "r.json"
        save_result(run_result, path)
        back = load_result(path)
        assert back.summary() == run_result.summary()
