"""The vectorized NumPy backend: parity, validity, determinism, dispatch.

The contract under test (docs/backends.md):

* ``exact`` mode is byte-identical to the sequential reference — same
  colors, same palette size — on every fixture, both problems;
* ``speculative`` mode is conflict-free and deterministic;
* ``run_speculative(..., backend="numpy")`` (default exact mode) is
  conflict-free and never uses more colors than the sequential reference;
* the backend-selection layer rejects what the fast path cannot honour
  (unknown backends/modes, B1/B2 balancing policies).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    color_bgpc,
    color_d2gc,
    fastpath_color_bgpc,
    fastpath_color_d2gc,
    sequential_bgpc,
    sequential_d2gc,
)
from repro.core.bgpc.runner import BGPC_ALGORITHMS, BGPCAdapter
from repro.core.d2gc.runner import D2GCAdapter
from repro.core.driver import run_speculative
from repro.core.fastpath import d2gc_groups_csr, run_fastpath
from repro.core.policies import B1Policy
from repro.core.validate import validate_bgpc, validate_d2gc
from repro.errors import ColoringError
from repro.graph.build import bipartite_from_dense
from repro.machine.cost import CostModel

BIPARTITE_FIXTURES = ["tiny_bipartite", "small_bipartite", "medium_bipartite"]
GRAPH_FIXTURES = ["path_graph", "star_graph", "small_graph"]


# ---------------------------------------------------------------------------
# parity: exact mode reproduces the sequential reference byte-for-byte
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fixture", BIPARTITE_FIXTURES)
def test_bgpc_exact_matches_sequential(fixture, request):
    bg = request.getfixturevalue(fixture)
    seq = sequential_bgpc(bg)
    fast = fastpath_color_bgpc(bg, mode="exact")
    validate_bgpc(bg, fast.colors)
    assert np.array_equal(fast.colors, seq.colors)
    assert fast.num_colors == seq.num_colors


@pytest.mark.parametrize("fixture", GRAPH_FIXTURES)
def test_d2gc_exact_matches_sequential(fixture, request):
    g = request.getfixturevalue(fixture)
    seq = sequential_d2gc(g)
    fast = fastpath_color_d2gc(g, mode="exact")
    validate_d2gc(g, fast.colors)
    assert np.array_equal(fast.colors, seq.colors)
    assert fast.num_colors == seq.num_colors


@pytest.mark.parametrize("fixture", BIPARTITE_FIXTURES)
def test_backend_numpy_conflict_free_and_no_more_colors(fixture, request):
    """The ISSUE acceptance shape: conflict-free, <= sequential palette."""
    bg = request.getfixturevalue(fixture)
    seq = sequential_bgpc(bg)
    result = color_bgpc(bg, backend="numpy")
    validate_bgpc(bg, result.colors)
    assert result.num_colors <= seq.num_colors
    assert result.backend == "numpy"
    assert result.cycles == 0.0
    assert result.wall_seconds >= 0.0


@pytest.mark.parametrize("fixture", GRAPH_FIXTURES)
def test_backend_numpy_d2gc_conflict_free_and_no_more_colors(fixture, request):
    g = request.getfixturevalue(fixture)
    seq = sequential_d2gc(g)
    result = color_d2gc(g, backend="numpy")
    validate_d2gc(g, result.colors)
    assert result.num_colors <= seq.num_colors
    assert result.backend == "numpy"


# ---------------------------------------------------------------------------
# speculative mode: valid, terminating, deterministic
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("fixture", BIPARTITE_FIXTURES)
def test_bgpc_speculative_valid(fixture, request):
    bg = request.getfixturevalue(fixture)
    result = fastpath_color_bgpc(bg, mode="speculative")
    validate_bgpc(bg, result.colors)
    assert result.algorithm == "fastpath-speculative"
    # the last round must report zero conflicts (that is why it was last)
    assert result.iterations[-1].conflicts == 0


@pytest.mark.parametrize("fixture", GRAPH_FIXTURES)
def test_d2gc_speculative_valid(fixture, request):
    g = request.getfixturevalue(fixture)
    result = fastpath_color_d2gc(g, mode="speculative")
    validate_d2gc(g, result.colors)


@pytest.mark.parametrize("mode", ["exact", "speculative"])
def test_deterministic_across_runs(medium_bipartite, mode):
    """Same input, same mode -> bit-identical colors and round records."""
    a = fastpath_color_bgpc(medium_bipartite, mode=mode)
    b = fastpath_color_bgpc(medium_bipartite, mode=mode)
    assert np.array_equal(a.colors, b.colors)
    assert [(r.queue_size, r.conflicts) for r in a.iterations] == [
        (r.queue_size, r.conflicts) for r in b.iterations
    ]


def test_speculative_fewer_rounds_than_exact(medium_bipartite):
    """The optimistic template converges in a handful of rounds."""
    exact = fastpath_color_bgpc(medium_bipartite, mode="exact")
    spec = fastpath_color_bgpc(medium_bipartite, mode="speculative")
    assert spec.num_iterations < exact.num_iterations


# ---------------------------------------------------------------------------
# orderings and edge cases
# ---------------------------------------------------------------------------


def test_exact_with_ordering_matches_ordered_sequential(medium_bipartite):
    order = np.arange(medium_bipartite.num_vertices)[::-1].copy()
    seq = sequential_bgpc(medium_bipartite, order=order)
    fast = color_bgpc(medium_bipartite, backend="numpy", order=order)
    validate_bgpc(medium_bipartite, fast.colors)
    assert np.array_equal(fast.colors, seq.colors)


def test_degree_zero_vertices_get_color_zero():
    # vertex 2 touches no net; sequential greedy gives it color 0
    pattern = np.array([[1, 1, 0, 0], [0, 0, 0, 1]])
    bg = bipartite_from_dense(pattern)
    seq = sequential_bgpc(bg)
    for mode in ("exact", "speculative"):
        fast = fastpath_color_bgpc(bg, mode=mode)
        validate_bgpc(bg, fast.colors)
        assert fast.colors[2] == 0
    assert np.array_equal(fastpath_color_bgpc(bg, mode="exact").colors, seq.colors)


def test_unsorted_member_lists_are_handled():
    """run_fastpath must not rely on member lists arriving sorted."""
    from repro.graph.csr import CSR

    # two groups with deliberately descending member lists
    groups = CSR(np.array([0, 3, 5]), np.array([4, 2, 0, 3, 1]), 5)
    for mode in ("exact", "speculative"):
        colors, _ = run_fastpath(groups, mode=mode)
        assert colors.min() >= 0
        assert len(set(colors[[4, 2, 0]].tolist())) == 3
        assert len(set(colors[[3, 1]].tolist())) == 2
    exact_colors, _ = run_fastpath(groups, mode="exact")
    # sequential natural order over the same constraints
    assert exact_colors.tolist() == [0, 0, 1, 1, 2]


def test_d2gc_groups_csr_shape(path_graph):
    groups = d2gc_groups_csr(path_graph)
    assert groups.nrows == path_graph.num_vertices
    assert groups.ncols == path_graph.num_vertices
    # row v holds {v} U nbor(v)
    row1 = sorted(groups.idx[groups.ptr[1] : groups.ptr[2]].tolist())
    assert row1 == [0, 1, 2]


# ---------------------------------------------------------------------------
# backend-selection layer
# ---------------------------------------------------------------------------


def test_driver_dispatch_numpy(small_bipartite):
    adapter = BGPCAdapter(small_bipartite, CostModel())
    result = run_speculative(
        adapter, BGPC_ALGORITHMS["N1-N2"], threads=8, backend="numpy"
    )
    validate_bgpc(small_bipartite, result.colors)
    assert result.backend == "numpy"
    assert result.algorithm == "N1-N2"
    seq = sequential_bgpc(small_bipartite)
    assert np.array_equal(result.colors, seq.colors)


def test_driver_dispatch_d2gc_adapter(small_graph):
    adapter = D2GCAdapter(small_graph, CostModel())
    result = run_speculative(
        adapter, BGPC_ALGORITHMS["V-V"], threads=4, backend="numpy"
    )
    validate_d2gc(small_graph, result.colors)
    assert result.backend == "numpy"


def test_sim_backend_unchanged(small_bipartite):
    """backend='sim' must be the default and keep producing cycles."""
    default = color_bgpc(small_bipartite, threads=4)
    explicit = color_bgpc(small_bipartite, threads=4, backend="sim")
    assert default.backend == explicit.backend == "sim"
    assert default.cycles == explicit.cycles > 0
    assert np.array_equal(default.colors, explicit.colors)


def test_unknown_backend_rejected(small_bipartite):
    with pytest.raises(ColoringError, match="unknown backend"):
        color_bgpc(small_bipartite, backend="cuda")


def test_unknown_mode_rejected(small_bipartite):
    with pytest.raises(ColoringError, match="unknown fastpath mode"):
        color_bgpc(small_bipartite, backend="numpy", fastpath_mode="bogus")


def test_balancing_policy_rejected_on_numpy_backend(small_bipartite):
    with pytest.raises(ColoringError, match="first-fit"):
        color_bgpc(small_bipartite, backend="numpy", policy=B1Policy())


def test_bench_runner_backend_in_cache_key():
    from repro.bench import clear_cache
    from repro.bench.runner import run_algorithm

    clear_cache()
    sim = run_algorithm("channel", "N1-N2", 8, "tiny")
    fast = run_algorithm("channel", "N1-N2", 8, "tiny", backend="numpy")
    assert sim.backend == "sim" and fast.backend == "numpy"
    assert sim.cycles > 0 and fast.cycles == 0
    clear_cache()


def test_cli_backend_flag(tmp_path, capsys):
    from repro.cli import main
    from repro.datasets import random_bipartite
    from repro.graph.mmio import write_matrix_market

    mtx = tmp_path / "inst.mtx"
    write_matrix_market(random_bipartite(30, 40, density=0.1, seed=1), str(mtx))
    assert main([str(mtx), "--backend", "numpy"]) == 0
    out = capsys.readouterr().out
    assert "numpy backend" in out
    assert "wall" in out


class TestScipyFree:
    """The bitset rewrite removed scipy from the hot path entirely: both
    fastpath modes must run with scipy neither imported nor importable."""

    def test_speculative_runs_without_scipy(
        self, medium_bipartite, monkeypatch
    ):
        import builtins
        import sys

        for name in [m for m in sys.modules if m.split(".")[0] == "scipy"]:
            monkeypatch.delitem(sys.modules, name)
        real_import = builtins.__import__

        def guarded(name, *args, **kwargs):
            if name.split(".")[0] == "scipy":
                raise ImportError(f"scipy is forbidden in this test ({name})")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", guarded)
        for mode in ("exact", "speculative"):
            result = fastpath_color_bgpc(medium_bipartite, mode=mode)
            validate_bgpc(medium_bipartite, result.colors)


class TestRankDtype:
    """Rank/prefix-sum arrays must widen to int64 before a >=2^31-entry
    groups CSR can overflow the cumulative count (mirrors GroupLayout's
    ``small`` check for the member-index dtype)."""

    def test_boundary_selection(self):
        from repro.core.fastpath.engine import rank_dtype

        assert rank_dtype(0) == np.int32
        assert rank_dtype(2**31 - 2) == np.int32
        # At exactly intmax the exclusive prefix sum's last value can be
        # intmax itself, which int32 cannot hold as a *count* — widen.
        assert rank_dtype(2**31 - 1) == np.int64
        assert rank_dtype(2**31) == np.int64

    def test_layout_uses_small_dtype_for_small_instances(
        self, medium_bipartite
    ):
        from repro.core.fastpath.engine import GroupLayout

        lay = GroupLayout(medium_bipartite.net_to_vtxs)
        assert lay.rank_dtype == np.int32
