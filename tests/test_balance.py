"""Tests for the B1/B2 balancing heuristics at the algorithm level."""

import numpy as np
import pytest

from repro import color_bgpc, color_d2gc, validate_bgpc, validate_d2gc
from repro.core.metrics import color_stats
from repro.core.policies import B1Policy, B2Policy
from repro.datasets import random_bipartite, random_graph


@pytest.fixture(scope="module")
def dense_bipartite():
    """Dense enough that first-fit produces a skewed class profile."""
    return random_bipartite(120, 300, density=0.05, seed=21)


class TestValidity:
    @pytest.mark.parametrize("policy", [B1Policy(), B2Policy()])
    @pytest.mark.parametrize("alg", ["V-N2", "N1-N2"])
    def test_bgpc_valid(self, dense_bipartite, policy, alg):
        result = color_bgpc(
            dense_bipartite, algorithm=alg, threads=16, policy=policy
        )
        validate_bgpc(dense_bipartite, result.colors)

    @pytest.mark.parametrize("policy", [B1Policy(), B2Policy()])
    def test_d2gc_valid(self, policy):
        g = random_graph(120, 400, seed=2)
        result = color_d2gc(g, algorithm="V-N2", threads=16, policy=policy)
        validate_d2gc(g, result.colors)


class TestBalancingEffect:
    def test_b1_reduces_std(self, dense_bipartite):
        base = color_bgpc(dense_bipartite, algorithm="V-N2", threads=16)
        b1 = color_bgpc(
            dense_bipartite, algorithm="V-N2", threads=16, policy=B1Policy()
        )
        assert color_stats(b1.colors).std < color_stats(base.colors).std

    def test_b2_reduces_std(self, dense_bipartite):
        base = color_bgpc(dense_bipartite, algorithm="V-N2", threads=16)
        b2 = color_bgpc(
            dense_bipartite, algorithm="V-N2", threads=16, policy=B2Policy()
        )
        assert color_stats(b2.colors).std < color_stats(base.colors).std

    def test_b2_shrinks_largest_class(self, dense_bipartite):
        base = color_bgpc(dense_bipartite, algorithm="V-N2", threads=16)
        b2 = color_bgpc(
            dense_bipartite, algorithm="V-N2", threads=16, policy=B2Policy()
        )
        assert color_stats(b2.colors).max <= color_stats(base.colors).max

    def test_colors_increase_bounded(self, dense_bipartite):
        """Balancing may add colors, but only a modest fraction (paper: ~10%)."""
        base = color_bgpc(dense_bipartite, algorithm="V-N2", threads=16)
        for policy in (B1Policy(), B2Policy()):
            balanced = color_bgpc(
                dense_bipartite, algorithm="V-N2", threads=16, policy=policy
            )
            assert balanced.num_colors <= int(base.num_colors * 1.35) + 2

    def test_balancing_is_nearly_free(self, dense_bipartite):
        """Table VI's headline: no significant runtime overhead."""
        base = color_bgpc(dense_bipartite, algorithm="V-N2", threads=16)
        b1 = color_bgpc(
            dense_bipartite, algorithm="V-N2", threads=16, policy=B1Policy()
        )
        assert b1.cycles <= base.cycles * 1.25


class TestThreadPrivacy:
    def test_policy_state_is_per_thread(self, dense_bipartite):
        """Two different thread counts must both converge and stay valid —
        the thread-private colmax/colnext state never leaks across runs."""
        for threads in (2, 7, 16):
            result = color_bgpc(
                dense_bipartite,
                algorithm="N1-N2",
                threads=threads,
                policy=B2Policy(),
            )
            validate_bgpc(dense_bipartite, result.colors)

    def test_policy_instance_reusable(self, dense_bipartite):
        """Policies hold no instance state; reusing one is safe."""
        policy = B1Policy()
        a = color_bgpc(dense_bipartite, algorithm="V-N2", threads=8, policy=policy)
        b = color_bgpc(dense_bipartite, algorithm="V-N2", threads=8, policy=policy)
        assert np.array_equal(a.colors, b.colors)
