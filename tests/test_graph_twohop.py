"""Unit tests for the flattened two-hop traversal caches."""

import numpy as np

from repro.datasets import random_bipartite, random_graph
from repro.graph.twohop import bgpc_twohop, d2gc_twohop


class TestBgpcTwoHop:
    def test_entries_match_loop_traversal(self, small_bipartite):
        two = bgpc_twohop(small_bipartite)
        assert two is not None
        for w in range(small_bipartite.num_vertices):
            expected = []
            for v in small_bipartite.nets(w):
                expected.extend(int(u) for u in small_bipartite.vtxs(int(v)))
            assert list(two.slice(w)) == expected

    def test_segments_cover_slice(self, small_bipartite):
        two = bgpc_twohop(small_bipartite)
        for w in range(small_bipartite.num_vertices):
            segs = two.segments(w)
            size = two.slice(w).size
            assert segs.size == small_bipartite.nets(w).size
            if segs.size:
                assert segs[-1] == size
                assert np.all(np.diff(segs) >= 0)

    def test_scanned_until_net_granularity(self, tiny_bipartite):
        two = bgpc_twohop(tiny_bipartite)
        # vertex 2 belongs to nets 0 (3 members) and 1 (2 members).
        segs = list(two.segments(2))
        assert segs == [3, 5]
        assert two.scanned_until(2, 0) == 3  # stop inside first net
        assert two.scanned_until(2, 2) == 3
        assert two.scanned_until(2, 3) == 5  # stop inside second net

    def test_memoized(self, small_bipartite):
        assert bgpc_twohop(small_bipartite) is bgpc_twohop(small_bipartite)

    def test_total_entries_equal_quadratic_work(self, small_bipartite):
        two = bgpc_twohop(small_bipartite)
        assert two.entries == small_bipartite.neighborhood_work()


class TestD2gcTwoHop:
    def test_entries_match_loop_traversal(self, small_graph):
        two = d2gc_twohop(small_graph)
        assert two is not None
        for w in range(small_graph.num_vertices):
            expected = [int(u) for u in small_graph.nbor(w)]
            for u in small_graph.nbor(w):
                expected.extend(int(x) for x in small_graph.nbor(int(u)))
            assert list(two.slice(w)) == expected

    def test_segment_layout(self, path_graph):
        two = d2gc_twohop(path_graph)
        # vertex 1: ring1 = [0, 2] (one segment), then nbor(0), nbor(2).
        segs = list(two.segments(1))
        assert segs[0] == 2  # ring-1 segment end
        assert segs[-1] == two.slice(1).size

    def test_memoized(self, small_graph):
        assert d2gc_twohop(small_graph) is d2gc_twohop(small_graph)


class TestSizeCap:
    def test_cap_returns_none(self, monkeypatch):
        import repro.graph.twohop as mod

        monkeypatch.setattr(mod, "MAX_CACHE_ENTRIES", 1)
        bg = random_bipartite(10, 12, density=0.3, seed=0)
        assert mod.bgpc_twohop(bg) is None
        g = random_graph(12, 20, seed=0)
        assert mod.d2gc_twohop(g) is None

    def test_kernels_agree_with_and_without_cache(self, monkeypatch):
        """The loop fallback and the cached path must color identically."""
        from repro import color_bgpc, color_d2gc
        import repro.graph.twohop as mod

        bg = random_bipartite(30, 40, density=0.1, seed=5)
        g = random_graph(40, 90, seed=5)
        with_cache_b = color_bgpc(bg, algorithm="V-V-64D", threads=8)
        with_cache_g = color_d2gc(g, algorithm="V-N1", threads=8)
        monkeypatch.setattr(mod, "MAX_CACHE_ENTRIES", 1)
        mod._bgpc_cache.clear()
        mod._d2gc_cache.clear()
        without_b = color_bgpc(bg, algorithm="V-V-64D", threads=8)
        without_g = color_d2gc(g, algorithm="V-N1", threads=8)
        assert np.array_equal(with_cache_b.colors, without_b.colors)
        assert with_cache_b.cycles == without_b.cycles
        assert np.array_equal(with_cache_g.colors, without_g.colors)
