"""Golden regression tests pinning exact simulated outputs.

The whole system is deterministic, so these exact values (colors, conflict
counts, simulated cycles, even the color-sum fingerprint) must never change
unless the algorithms or the cost model change *on purpose*.  If a refactor
trips one of these, either it altered behaviour (fix the refactor) or it
intentionally changed the model (update the goldens and EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro import color_bgpc, color_d2gc, sequential_bgpc
from repro.datasets import random_bipartite, random_graph


@pytest.fixture(scope="module")
def golden_bipartite():
    return random_bipartite(80, 120, density=0.06, seed=101)


@pytest.fixture(scope="module")
def golden_graph():
    return random_graph(100, 300, seed=101)


def test_sequential_golden(golden_bipartite):
    result = sequential_bgpc(golden_bipartite)
    assert result.num_colors == 19
    assert result.cycles == 30744.0


def test_vv_golden(golden_bipartite):
    result = color_bgpc(golden_bipartite, algorithm="V-V", threads=4)
    assert result.num_colors == 19
    assert result.total_conflicts == 2
    assert result.cycles == 42832.0
    assert int(result.colors.sum()) == 769


def test_vv64d_golden(golden_bipartite):
    result = color_bgpc(golden_bipartite, algorithm="V-V-64D", threads=8)
    assert result.num_colors == 19
    assert result.total_conflicts == 2
    assert result.cycles == 43925.0
    assert int(result.colors.sum()) == 736


def test_n1n2_golden(golden_bipartite):
    result = color_bgpc(golden_bipartite, algorithm="N1-N2", threads=16)
    assert result.num_colors == 21
    assert result.total_conflicts == 50
    assert result.cycles == 44779.0
    assert int(result.colors.sum()) == 894


def test_d2gc_golden(golden_graph):
    result = color_d2gc(golden_graph, algorithm="V-N2", threads=8)
    assert result.num_colors == 19
    assert result.total_conflicts == 1
    assert result.cycles == 33102.0
    assert int(result.colors.sum()) == 663
