"""Tests for the iterative-recoloring extension."""

import numpy as np
import pytest

from repro import color_bgpc, sequential_bgpc, validate_bgpc
from repro.core.recolor import reduce_colors
from repro.datasets import random_bipartite
from repro.errors import InvalidColoringError
from repro.order import random_order


@pytest.fixture(scope="module")
def instance():
    return random_bipartite(90, 200, density=0.06, seed=37)


class TestReduceColors:
    def test_output_valid(self, instance):
        base = sequential_bgpc(instance)
        result = reduce_colors(instance, base.colors)
        validate_bgpc(instance, result.colors)

    def test_never_increases_colors(self, instance):
        base = sequential_bgpc(instance)
        result = reduce_colors(instance, base.colors)
        assert result.colors_after <= result.colors_before

    def test_improves_a_bad_order(self, instance):
        """A random-order greedy coloring usually wastes colors; iterative
        recoloring must claw some back."""
        bad = sequential_bgpc(
            instance, order=random_order(instance, seed=99)
        )
        good = sequential_bgpc(instance)
        worst = max(bad.num_colors, good.num_colors)
        result = reduce_colors(instance, bad.colors, max_passes=8,
                               top_fraction=0.8)
        assert result.colors_after <= worst

    def test_palette_compacted(self, instance):
        base = color_bgpc(instance, algorithm="N1-N2", threads=16)
        result = reduce_colors(instance, base.colors)
        used = np.unique(result.colors)
        assert np.array_equal(used, np.arange(used.size))

    def test_input_not_mutated(self, instance):
        base = sequential_bgpc(instance)
        original = base.colors.copy()
        reduce_colors(instance, base.colors)
        assert np.array_equal(base.colors, original)

    def test_fixpoint_stops_early(self, instance):
        base = sequential_bgpc(instance)
        first = reduce_colors(instance, base.colors, max_passes=10)
        second = reduce_colors(instance, first.colors, max_passes=10)
        assert second.moves == 0 or second.colors_after <= first.colors_after

    def test_rejects_invalid_input(self, instance):
        with pytest.raises(InvalidColoringError):
            reduce_colors(
                instance, np.zeros(instance.num_vertices, dtype=np.int64)
            )

    def test_rejects_bad_fraction(self, instance):
        base = sequential_bgpc(instance)
        with pytest.raises(ValueError):
            reduce_colors(instance, base.colors, top_fraction=0.0)

    def test_single_color_noop(self):
        bg = random_bipartite(4, 6, density=0.0, seed=0)
        colors = np.zeros(6, dtype=np.int64)
        result = reduce_colors(bg, colors)
        assert result.colors_after == 1
        assert result.moves == 0
