"""Tests for the shared result types, dataset stats and the Machine facade."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.graph.stats import dataset_properties
from repro.machine import CostModel, Machine
from repro.machine.scheduler import Schedule
from repro.machine.trace import RunTrace
from repro.types import (
    ColoringResult,
    IterationRecord,
    PhaseKind,
    PhaseTiming,
    UNCOLORED,
    as_vertex_array,
)


class TestPhaseTiming:
    def test_imbalance_even(self):
        t = PhaseTiming("color", 100.0, (50.0, 50.0), 10)
        assert t.imbalance == 1.0

    def test_imbalance_skewed(self):
        t = PhaseTiming("color", 100.0, (90.0, 10.0), 10)
        assert t.imbalance == pytest.approx(1.8)

    def test_imbalance_idle_machine(self):
        t = PhaseTiming("color", 0.0, (0.0, 0.0), 0)
        assert t.imbalance == 1.0


class TestIterationRecord:
    def test_cycles_sums_phases(self):
        color = PhaseTiming(PhaseKind.COLOR, 10.0, (10.0,), 1)
        remove = PhaseTiming(PhaseKind.REMOVE, 5.0, (5.0,), 1)
        rec = IterationRecord(0, 4, 1, color, remove)
        assert rec.cycles == 15.0

    def test_cycles_without_removal(self):
        color = PhaseTiming(PhaseKind.COLOR, 10.0, (10.0,), 1)
        rec = IterationRecord(0, 4, 0, color, None)
        assert rec.cycles == 10.0


class TestColoringResult:
    def _result(self):
        color = PhaseTiming(PhaseKind.COLOR, 10.0, (10.0,), 2)
        remove = PhaseTiming(PhaseKind.REMOVE, 4.0, (4.0,), 2)
        recs = [
            IterationRecord(0, 2, 1, color, remove),
            IterationRecord(1, 1, 0, color, remove),
        ]
        return ColoringResult(
            colors=np.array([0, 1]), num_colors=2, iterations=recs,
            algorithm="X", threads=1, cycles=28.0,
        )

    def test_totals(self):
        r = self._result()
        assert r.num_iterations == 2
        assert r.total_conflicts == 1
        assert r.phase_cycles(PhaseKind.COLOR) == 20.0
        assert r.phase_cycles(PhaseKind.REMOVE) == 8.0


class TestHelpers:
    def test_uncolored_sentinel(self):
        assert UNCOLORED == -1

    def test_as_vertex_array(self):
        arr = as_vertex_array([1, 2, 3])
        assert arr.dtype == np.int64

    def test_as_vertex_array_rejects_2d(self):
        with pytest.raises(ValueError):
            as_vertex_array(np.zeros((2, 2)))


class TestDatasetProperties:
    def test_columns(self, tiny_bipartite):
        props = dataset_properties("tiny", tiny_bipartite)
        assert props.num_rows == 3
        assert props.num_cols == 5
        assert props.nnz == 7
        assert props.max_row_degree == 3  # the BGPC lower bound
        assert not props.structurally_symmetric

    def test_row_rendering(self, tiny_bipartite):
        row = dataset_properties("tiny", tiny_bipartite).row()
        assert row[0] == "tiny"
        assert len(row) == 6


class TestMachineFacade:
    def test_rejects_zero_threads(self):
        with pytest.raises(MachineError):
            Machine(0)

    def test_trace_accumulates(self):
        machine = Machine(2)
        memory = machine.make_memory(np.full(4, -1, dtype=np.int64))

        def kernel(task, ctx):
            ctx.charge_cpu(1)

        machine.parallel_for(4, kernel, memory)
        machine.parallel_for(4, kernel, memory, phase_kind="remove")
        assert len(machine.trace.phases) == 2
        assert machine.trace.cycles_by_kind("color") > 0
        assert machine.trace.cycles_by_kind("remove") > 0
        assert machine.trace.total_cycles == sum(
            p.cycles for p in machine.trace.phases
        )

    def test_extra_wall_added(self):
        machine = Machine(1)
        memory = machine.make_memory(np.full(2, -1, dtype=np.int64))

        def kernel(task, ctx):
            ctx.charge_cpu(1)

        base, _ = machine.parallel_for(2, kernel, memory)
        padded, _ = machine.parallel_for(2, kernel, memory, extra_wall=500)
        assert padded.cycles == base.cycles + 500

    def test_scan_cost_positive_and_divides(self):
        one = Machine(1).parallel_scan_cost(1000)
        sixteen = Machine(16).parallel_scan_cost(1000)
        assert 0 < sixteen < one

    def test_thread_states_reset(self):
        machine = Machine(2)
        machine.thread_states[0]["x"] = 1
        machine.reset_thread_states()
        assert machine.thread_states[0] == {}

    def test_static_schedule_supported(self):
        machine = Machine(2)
        memory = machine.make_memory(np.full(4, -1, dtype=np.int64))
        seen = []

        def kernel(task, ctx):
            seen.append(task)

        machine.parallel_for(4, kernel, memory, schedule=Schedule.static())
        assert sorted(seen) == [0, 1, 2, 3]


class TestRunTrace:
    def test_clear(self):
        trace = RunTrace(threads=2)
        trace.add(PhaseTiming("color", 5.0, (5.0, 0.0), 1))
        trace.clear()
        assert trace.total_cycles == 0.0
