"""Unit tests for the net-based BGPC kernels on crafted inputs.

These pin down the exact semantics of paper Algs. 6, 7 and 8 by running a
single kernel invocation against hand-built color states (no machine, no
races — a plain TaskContext with a fixed committed array).
"""

import numpy as np
import pytest

from repro.core.bgpc.net import (
    make_net_color_kernel,
    make_net_color_kernel_v1,
    make_net_removal_kernel,
)
from repro.errors import ColoringError
from repro.graph import bipartite_from_edges
from repro.machine.cost import CostModel
from repro.machine.engine import TaskContext


def one_net(members, num_vertices=None):
    """A bipartite graph with a single net over the given members."""
    edges = [(m, 0) for m in members]
    return bipartite_from_edges(
        edges, num_vertices=num_vertices or (max(members) + 1), num_nets=1
    )


def run_kernel(kernel, net, colors):
    ctx = TaskContext()
    ctx.reset(np.asarray(colors, dtype=np.int64), 0, {})
    kernel(net, ctx)
    return ctx


class TestAlg8:
    def test_colors_all_uncolored_reverse(self):
        bg = one_net([0, 1, 2, 3])
        kernel = make_net_color_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [-1, -1, -1, -1])
        writes = dict(ctx.writes)
        # Reverse first-fit from |vtxs|-1 = 3 downwards, in member order.
        assert writes == {0: 3, 1: 2, 2: 1, 3: 0}

    def test_keeps_valid_existing_colors(self):
        bg = one_net([0, 1, 2])
        kernel = make_net_color_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [5, -1, 7])
        writes = dict(ctx.writes)
        assert 0 not in writes and 2 not in writes
        assert writes[1] == 2  # reverse FF from |vtxs|-1=2; 2 is free

    def test_first_occurrence_keeps_duplicate_recolored(self):
        bg = one_net([0, 1, 2])
        kernel = make_net_color_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [4, 4, -1])
        writes = dict(ctx.writes)
        assert 0 not in writes  # first occurrence of color 4 keeps it
        assert 1 in writes and 2 in writes
        assert writes[1] != 4 and writes[2] != 4
        assert writes[1] != writes[2]

    def test_never_negative_lemma1(self):
        """All colors already small: budget still suffices (Lemma 1)."""
        bg = one_net([0, 1, 2, 3])
        kernel = make_net_color_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [0, 1, -1, -1])
        writes = dict(ctx.writes)
        assert all(c >= 0 for c in writes.values())
        assigned = set(writes.values()) | {0, 1}
        assert len(assigned) == 4  # all distinct within the net

    def test_never_exceeds_net_bound(self):
        """Lemma 1: reverse first-fit never uses a color > |vtxs(v)| - 1."""
        bg = one_net(list(range(6)))
        kernel = make_net_color_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [-1] * 6)
        assert max(c for _, c in ctx.writes) <= 5

    def test_empty_net(self):
        bg = bipartite_from_edges([(0, 0)], num_vertices=1, num_nets=2)
        kernel = make_net_color_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 1, [-1])
        assert ctx.writes == []

    def test_policy_variant_adds_assigned_to_forbidden(self):
        """With a policy, intra-net distinctness must still hold."""
        from repro.core.policies import B2Policy

        bg = one_net(list(range(5)))
        kernel = make_net_color_kernel(bg, CostModel(), policy=B2Policy())
        ctx = run_kernel(kernel, 0, [-1] * 5)
        colors = [c for _, c in ctx.writes]
        assert len(set(colors)) == 5


class TestAlg6:
    def test_forward_first_fit(self):
        bg = one_net([0, 1, 2])
        kernel = make_net_color_kernel_v1(bg, CostModel(), reverse=False)
        ctx = run_kernel(kernel, 0, [-1, -1, -1])
        assert dict(ctx.writes) == {0: 0, 1: 1, 2: 2}

    def test_recolors_in_place_on_clash(self):
        bg = one_net([0, 1])
        kernel = make_net_color_kernel_v1(bg, CostModel(), reverse=False)
        ctx = run_kernel(kernel, 0, [3, 3])
        # member 0 keeps 3 (added to F), member 1 clashes -> recolored to 0.
        assert dict(ctx.writes) == {1: 0}

    def test_reverse_variant(self):
        bg = one_net([0, 1, 2])
        kernel = make_net_color_kernel_v1(bg, CostModel(), reverse=True)
        ctx = run_kernel(kernel, 0, [-1, -1, -1])
        assert dict(ctx.writes) == {0: 2, 1: 1, 2: 0}

    def test_cursor_monotone_within_net(self):
        bg = one_net(list(range(4)))
        kernel = make_net_color_kernel_v1(bg, CostModel(), reverse=False)
        ctx = run_kernel(kernel, 0, [-1, 0, -1, -1])
        # member 0 takes 0; member 1 holds 0 already -> clash -> takes 1;
        # member 2 takes 2; member 3 takes 3.
        assert dict(ctx.writes) == {0: 0, 1: 1, 2: 2, 3: 3}


class TestAlg7Removal:
    def test_keeps_first_occurrence(self):
        bg = one_net([0, 1, 2, 3])
        kernel = make_net_removal_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [5, 5, 5, 1])
        assert dict(ctx.writes) == {1: -1, 2: -1}

    def test_no_conflicts_no_writes(self):
        bg = one_net([0, 1, 2])
        kernel = make_net_removal_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [0, 1, 2])
        assert ctx.writes == []

    def test_ignores_uncolored(self):
        bg = one_net([0, 1, 2])
        kernel = make_net_removal_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [-1, 2, 2])
        assert dict(ctx.writes) == {2: -1}

    def test_multiple_color_groups(self):
        bg = one_net([0, 1, 2, 3, 4])
        kernel = make_net_removal_kernel(bg, CostModel())
        ctx = run_kernel(kernel, 0, [7, 9, 7, 9, 7])
        assert dict(ctx.writes) == {2: -1, 3: -1, 4: -1}


class TestLemma1:
    """Paper Lemma 1: Alg. 8 never uses a color above the lower bound L."""

    @pytest.mark.parametrize("threads", [1, 4, 16])
    def test_net_coloring_round_bounded_by_L(self, threads):
        import numpy as np

        from repro.datasets import random_bipartite
        from repro.machine.machine import Machine
        from repro.machine.cost import CostModel
        from repro.machine.scheduler import Schedule
        from repro.core.bgpc.net import make_net_color_kernel

        bg = random_bipartite(50, 80, density=0.12, seed=77)
        L = bg.color_lower_bound()
        machine = Machine(threads, CostModel())
        memory = machine.make_memory(np.full(bg.num_vertices, -1, dtype=np.int64))
        kernel = make_net_color_kernel(bg, CostModel())
        machine.parallel_for(
            bg.num_nets, kernel, memory, schedule=Schedule.dynamic(8)
        )
        colored = memory.values[memory.values >= 0]
        assert colored.size  # something was colored
        assert colored.max() <= L - 1

    def test_full_n1n2_round0_colors_bounded(self):
        """Colors surviving the first N1-N2 round never exceed L - 1."""
        from repro.datasets import random_bipartite
        from repro import color_bgpc

        bg = random_bipartite(50, 80, density=0.12, seed=78)
        L = bg.color_lower_bound()
        result = color_bgpc(bg, algorithm="N1-N2", threads=16)
        # Later vertex-based rounds may exceed L, but the bulk colored by
        # the net round stays within the bound: at least 60% of vertices.
        within = int((result.colors <= L - 1).sum())
        assert within >= int(0.6 * bg.num_vertices)
