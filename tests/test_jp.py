"""Tests for the Jones–Plassmann independent-set baseline."""

import numpy as np
import pytest

from repro import color_bgpc, validate_bgpc, validate_d2gc
from repro.core.jp import jones_plassmann_bgpc, jones_plassmann_d2gc
from repro.datasets import random_bipartite, random_graph
from repro.errors import ColoringError


@pytest.fixture(scope="module")
def instance():
    return random_bipartite(60, 100, density=0.08, seed=47)


class TestJpBgpc:
    def test_valid(self, instance):
        result = jones_plassmann_bgpc(instance, threads=8)
        validate_bgpc(instance, result.colors)

    @pytest.mark.parametrize("threads", [1, 4, 16])
    def test_valid_any_thread_count(self, instance, threads):
        result = jones_plassmann_bgpc(instance, threads=threads)
        validate_bgpc(instance, result.colors)

    def test_no_conflicts_by_construction(self, instance):
        """JP never produces a conflict: every round's partial coloring is
        already valid (only local-maximum vertices color themselves)."""
        from repro.core.validate import find_bgpc_conflict

        result = jones_plassmann_bgpc(instance, threads=16)
        # Re-play: colors from earlier rounds never get reset -> if the
        # final coloring is valid and nothing was ever overwritten, every
        # prefix was valid too.
        assert find_bgpc_conflict(instance, result.colors) is None

    def test_deterministic_given_seed(self, instance):
        a = jones_plassmann_bgpc(instance, threads=8, seed=3)
        b = jones_plassmann_bgpc(instance, threads=8, seed=3)
        assert np.array_equal(a.colors, b.colors)
        assert a.cycles == b.cycles

    def test_seed_changes_priorities(self, instance):
        a = jones_plassmann_bgpc(instance, threads=8, seed=3)
        b = jones_plassmann_bgpc(instance, threads=8, seed=4)
        # Different priority permutations nearly always color differently.
        assert a.num_colors > 0 and b.num_colors > 0

    def test_takes_more_rounds_than_speculative(self, instance):
        """The paper's motivation for optimism: JP needs many rounds."""
        jp = jones_plassmann_bgpc(instance, threads=16)
        spec = color_bgpc(instance, algorithm="V-V-64D", threads=16)
        assert jp.num_iterations > spec.num_iterations

    def test_rounds_guard(self, instance):
        with pytest.raises(ColoringError, match="converge"):
            jones_plassmann_bgpc(instance, threads=8, max_rounds=1)

    def test_empty_instance(self):
        bg = random_bipartite(3, 5, density=0.0, seed=0)
        result = jones_plassmann_bgpc(bg, threads=4)
        assert result.num_colors == 1  # no conflicts: everyone color 0


class TestJpD2gc:
    def test_valid(self):
        g = random_graph(80, 200, seed=48)
        result = jones_plassmann_d2gc(g, threads=8)
        validate_d2gc(g, result.colors)

    def test_valid_single_thread(self):
        g = random_graph(40, 80, seed=49)
        result = jones_plassmann_d2gc(g, threads=1)
        validate_d2gc(g, result.colors)

    def test_deferral_counts_monotone(self):
        g = random_graph(60, 150, seed=50)
        result = jones_plassmann_d2gc(g, threads=8)
        deferred = [rec.conflicts for rec in result.iterations]
        assert deferred == sorted(deferred, reverse=True)
        assert deferred[-1] == 0
