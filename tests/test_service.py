"""Tests for the coloring service: fingerprints, cache, router, server.

The acceptance bar for the service layer: a repeated request must be
served from cache with zero backend work (and the ``cache.hit`` counter
must be visible in a recorded trace), cached and fresh colorings must be
byte-identical across every registered backend, and concurrent duplicates
must coalesce to a single backend run.
"""

import asyncio
import json
import os
import socket
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.backends import backend_names
from repro.core.compiled import PURE_ENV, numba_available
from repro.errors import ServiceError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import bipartite_from_edges
from repro.graph.csr import CSR
from repro.obs.tracer import RecordingTracer
from repro.obs.work import WORK_METRICS
from repro.graph.delta import GraphDelta
from repro.service import (
    ColoringCache,
    ColoringRequest,
    ColoringServer,
    ColoringService,
    DeltaRequest,
    ServiceClient,
    SizeRouter,
    graph_fingerprint,
    request_key,
)
from repro.service.protocol import (
    delta_from_wire,
    graph_from_wire,
    graph_to_wire,
    parse_request,
)
from repro.types import ColoringResult

EDGES = [(0, 0), (1, 0), (1, 1), (2, 1), (3, 2), (0, 2), (2, 3), (3, 3)]


@pytest.fixture
def bg():
    return bipartite_from_edges(EDGES)


def _result(tag: int = 0) -> ColoringResult:
    return ColoringResult(
        colors=np.array([0, 1, tag], dtype=np.int64), num_colors=2 + tag
    )


def _run(coro):
    return asyncio.run(coro)


# -- fingerprints -----------------------------------------------------------


class TestFingerprint:
    def test_stable_across_equivalent_constructions(self, bg):
        # Same edge set built from the opposite orientation.
        other = BipartiteGraph.from_net_to_vtxs(bg.vtx_to_nets.transpose())
        assert graph_fingerprint(bg) == graph_fingerprint(other)

    def test_stable_across_row_order(self, bg):
        # Rebuild with each vertex's net list reversed: same content.
        rows = [list(bg.nets(u))[::-1] for u in range(bg.num_vertices)]
        ptr = np.zeros(len(rows) + 1, dtype=np.int64)
        ptr[1:] = np.cumsum([len(r) for r in rows])
        idx = np.array([v for r in rows for v in r], dtype=np.int64)
        shuffled = BipartiteGraph.from_vtx_to_nets(
            CSR(ptr, idx, bg.num_nets)
        )
        assert graph_fingerprint(bg) == graph_fingerprint(shuffled)

    def test_different_graphs_differ(self, bg):
        other = bipartite_from_edges(EDGES[:-1])
        assert graph_fingerprint(bg) != graph_fingerprint(other)

    def test_dimensions_matter(self, bg):
        # Same edges, one extra isolated net: different instance.
        padded = bipartite_from_edges(EDGES, num_nets=bg.num_nets + 1)
        assert graph_fingerprint(bg) != graph_fingerprint(padded)

    def test_request_key_canonicalizes_algorithm(self, bg):
        a = request_key(bg, algorithm="N1-N2")
        b = request_key(bg, algorithm="n1-n2")
        assert a == b

    def test_request_key_separates_configs(self, bg):
        base = request_key(bg, algorithm="N1-N2")
        assert request_key(bg, algorithm="V-V") != base
        assert request_key(bg, algorithm="N1-N2", threads=2) != base
        assert request_key(bg, algorithm="N1-N2", backend="numpy") != base
        assert request_key(bg, algorithm="N1-N2", policy="B1") != base


# -- cache ------------------------------------------------------------------


class TestCache:
    def test_lru_eviction_order(self):
        cache = ColoringCache(capacity=2)
        cache.put("a", _result())
        cache.put("b", _result())
        assert cache.get("a") is not None  # refresh "a": now b is LRU
        cache.put("c", _result())
        assert "b" not in cache
        assert cache.keys() == ["a", "c"]
        assert cache.stats()["evictions"] == 1

    def test_capacity_zero_disables(self):
        cache = ColoringCache(capacity=0)
        cache.put("a", _result())
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ColoringCache(capacity=-1)

    def test_counters_traced(self):
        tracer = RecordingTracer()
        cache = ColoringCache(capacity=1, tracer=tracer)
        cache.get("a")
        cache.put("a", _result())
        cache.get("a")
        cache.put("b", _result())
        names = [e.name for e in tracer.counters()]
        assert names == ["cache.miss", "cache.hit", "cache.eviction"]
        assert tracer.counters("cache.eviction")[0].attrs["key"] == "a"


# -- router -----------------------------------------------------------------


class TestRouter:
    def test_size_threshold(self, bg):
        router = SizeRouter(edge_threshold=bg.num_edges + 1)
        assert router.route(bg) == "numpy"
        router = SizeRouter(edge_threshold=bg.num_edges)
        assert router.route(bg) == "process"

    def test_policy_falls_back_to_sim(self, bg):
        router = SizeRouter(edge_threshold=1)
        assert router.route(bg, policy="B1") == "sim"

    def test_explicit_backend_wins(self, bg):
        router = SizeRouter(edge_threshold=1)
        assert router.route(bg, backend="threaded") == "threaded"

    def test_unknown_backend_rejected(self, bg):
        with pytest.raises(ServiceError, match="unknown backend"):
            SizeRouter().route(bg, backend="gpu")

    def test_adaptive_small_routes_to_policy_backend(self, bg):
        router = SizeRouter(edge_threshold=bg.num_edges + 1)
        assert router.route(bg, adaptive=True) == "sim"

    def test_adaptive_large_routes_to_process_never_sharded(self, bg):
        router = SizeRouter(edge_threshold=1, sharded_threshold=1)
        # Even past the sharded threshold, adaptive stays on the process
        # tier: the sharded backend has no kernel-level plan loop.
        assert router.route(bg, adaptive=True) == "process"

    def test_adaptive_pinned_controller_backend_ok(self, bg):
        assert SizeRouter().route(bg, backend="sim", adaptive=True) == "sim"

    def test_adaptive_pinned_whole_array_rejected(self, bg):
        with pytest.raises(ServiceError, match="cannot run adaptive"):
            SizeRouter().route(bg, backend="numpy", adaptive=True)
        with pytest.raises(ServiceError, match="cannot run adaptive"):
            SizeRouter().route(bg, backend="sharded", adaptive=True)


# -- in-process service -----------------------------------------------------


class TestColoringService:
    def test_repeat_served_from_cache_zero_work(self, bg):
        async def run():
            tracer = RecordingTracer()
            async with ColoringService(tracer=tracer) as service:
                req = ColoringRequest(graph=bg, backend="sim", threads=4)
                fresh = await service.submit(req)
                hit = await service.submit(req)
                return fresh, hit, tracer

        fresh, hit, tracer = _run(run())
        assert not fresh.cached and hit.cached
        assert any(v > 0 for v in fresh.work_metrics.values())
        assert set(hit.work_metrics) == set(WORK_METRICS)
        assert all(v == 0 for v in hit.work_metrics.values())
        assert hit.result.colors.tobytes() == fresh.result.colors.tobytes()
        assert len(tracer.counters("cache.hit")) == 1

    @pytest.mark.parametrize("backend", backend_names())
    def test_cached_identical_across_backends(self, bg, backend, monkeypatch):
        if backend == "compiled" and not numba_available():
            # Pinned compiled without numba is a ServiceError by design;
            # exercise the cache path via the plain-Python kernel hook.
            monkeypatch.setenv(PURE_ENV, "1")
        async def run():
            async with ColoringService() as service:
                req = ColoringRequest(
                    graph=bg, algorithm="N1-N2", backend=backend, threads=2
                )
                fresh = await service.submit(req)
                hit = await service.submit(req)
                return fresh, hit

        fresh, hit = _run(run())
        assert hit.cached
        assert hit.backend == backend
        assert hit.result.colors.tobytes() == fresh.result.colors.tobytes()

    def test_concurrent_duplicates_coalesce(self, bg):
        async def run():
            async with ColoringService() as service:
                req = ColoringRequest(graph=bg, backend="sim")
                responses = await asyncio.gather(
                    *(service.submit(req) for _ in range(5))
                )
                return responses, service

        responses, service = _run(run())
        assert service.executed == 1
        assert sum(r.coalesced for r in responses) == 4
        blobs = {r.result.colors.tobytes() for r in responses}
        assert len(blobs) == 1
        for r in responses:
            if r.coalesced:
                assert all(v == 0 for v in r.work_metrics.values())

    def test_work_accounting(self, bg):
        async def run():
            async with ColoringService() as service:
                req = ColoringRequest(graph=bg, backend="sim")
                await service.submit(req)
                await service.submit(req)
                return service.stats()

        stats = _run(run())
        assert stats["requests"] == 2
        assert stats["executed"] == 1
        assert stats["cache"]["hits"] == 1
        assert stats["work_saved"] == stats["work_executed"]
        assert sum(stats["work_executed"].values()) > 0

    def test_backend_request_accounting(self, bg):
        # Every request is tallied under the backend that (would have)
        # served it — cached, coalesced or fresh — so size-based routing
        # decisions are observable per backend through stats().
        async def run():
            async with ColoringService() as service:
                pinned = ColoringRequest(graph=bg, backend="sim")
                await service.submit(pinned)
                await service.submit(pinned)  # cache hit, still counted
                await service.submit(ColoringRequest(graph=bg, backend="numpy"))
                await service.submit(ColoringRequest(graph=bg))  # routed
                return service.stats(), service.router.route(bg)

        stats, routed = _run(run())
        backends = stats["backends"]
        assert backends["sim"] == 2
        assert sum(backends.values()) == stats["requests"] == 4
        # The unpinned request lands on whatever the router chose for it.
        assert backends[routed] >= 1

    def test_invalid_requests_rejected(self, bg):
        async def run():
            async with ColoringService() as service:
                for req, pattern in (
                    (ColoringRequest(graph=bg, algorithm="W-W"), "schedule"),
                    (ColoringRequest(graph=bg, policy="B9"), "policy"),
                    (ColoringRequest(graph=bg, ordering="sorted"), "ordering"),
                    (ColoringRequest(graph=bg, threads=0), "threads"),
                    (ColoringRequest(graph="nope"), "BipartiteGraph"),
                ):
                    with pytest.raises(ServiceError, match=pattern):
                        await service.submit(req)

        _run(run())

    def test_submit_before_start_rejected(self, bg):
        async def run():
            service = ColoringService()
            with pytest.raises(ServiceError, match="not started"):
                await service.submit(ColoringRequest(graph=bg))

        _run(run())

    def test_router_used_when_backend_unpinned(self, bg):
        async def run():
            router = SizeRouter(edge_threshold=bg.num_edges + 1)
            async with ColoringService(router=router) as service:
                resp = await service.submit(ColoringRequest(graph=bg))
                return resp

        resp = _run(run())
        assert resp.backend == "numpy"

    def test_adaptive_algorithm_served(self, bg):
        async def run():
            # Small unpinned instance would route to numpy, but adaptive
            # needs a kernel-level backend: the router must pick sim.
            router = SizeRouter(edge_threshold=bg.num_edges + 1)
            async with ColoringService(router=router) as service:
                return await service.submit(
                    ColoringRequest(graph=bg, algorithm="adaptive")
                )

        resp = _run(run())
        assert resp.backend == "sim"
        assert resp.result.num_colors > 0

    def test_adaptive_threshold_normalized_in_cache_key(self, bg):
        async def run():
            async with ColoringService() as service:
                a = await service.submit(
                    ColoringRequest(graph=bg, algorithm="adaptive:0.10")
                )
                b = await service.submit(
                    ColoringRequest(graph=bg, algorithm="ADAPTIVE:0.1")
                )
                return a, b, service.stats()

        a, b, stats = _run(run())
        assert np.array_equal(a.result.colors, b.result.colors)
        assert stats["cache"]["hits"] >= 1

    def test_malformed_adaptive_rejected(self, bg):
        async def run():
            async with ColoringService() as service:
                with pytest.raises(ServiceError, match="cannot parse adaptive"):
                    await service.submit(
                        ColoringRequest(graph=bg, algorithm="adaptive:nope")
                    )

        _run(run())

    def test_sequential_algorithm(self, bg):
        async def run():
            async with ColoringService() as service:
                resp = await service.submit(
                    ColoringRequest(graph=bg, algorithm="sequential")
                )
                return resp

        resp = _run(run())
        assert resp.result.num_colors >= 1


# -- wire protocol ----------------------------------------------------------


class TestProtocol:
    def test_parse_request_rejects_garbage(self):
        with pytest.raises(ServiceError, match="not valid JSON"):
            parse_request(b"{nope")
        with pytest.raises(ServiceError, match="JSON object"):
            parse_request(b"[1, 2]")
        with pytest.raises(ServiceError, match="unknown op"):
            parse_request(b'{"op": "fly"}')
        with pytest.raises(ServiceError, match="UTF-8"):
            parse_request(b"\xff\xfe")

    def test_graph_round_trip(self, bg):
        rebuilt = graph_from_wire(graph_to_wire(bg))
        assert graph_fingerprint(rebuilt) == graph_fingerprint(bg)

    def test_coo_form(self, bg):
        rebuilt = graph_from_wire({"format": "coo", "edges": EDGES})
        assert graph_fingerprint(rebuilt) == graph_fingerprint(bg)

    def test_bad_graphs_rejected(self):
        with pytest.raises(ServiceError, match="missing 'ptr'"):
            graph_from_wire({"format": "csr", "idx": [], "num_nets": 1})
        with pytest.raises(ServiceError, match="bad csr graph"):
            graph_from_wire(
                {"format": "csr", "ptr": [0, 1], "idx": [5], "num_nets": 2}
            )
        with pytest.raises(ServiceError, match="unknown graph format"):
            graph_from_wire({"format": "parquet"})
        with pytest.raises(ServiceError, match="JSON object"):
            graph_from_wire([1, 2])


# -- TCP server -------------------------------------------------------------


class TestServer:
    def _serve(self, bg, client_work, **service_kw):
        async def run():
            service = ColoringService(**service_kw)
            server = ColoringServer(service, host="127.0.0.1", port=0)
            await server.start()
            try:
                return await asyncio.to_thread(
                    client_work, server.host, server.port
                )
            finally:
                await server.close()

        return _run(run())

    def test_duplicate_request_hits_cache(self, bg):
        def work(host, port):
            with ServiceClient(host, port) as client:
                first = client.color(bg, backend="sim", id=1)
                second = client.color(bg, backend="sim", id=2)
                return first, second

        first, second = self._serve(bg, work)
        assert first["ok"] and not first["cached"]
        assert second["ok"] and second["cached"]
        assert second["colors"] == first["colors"]
        assert all(v == 0 for v in second["work_metrics"].values())
        assert second["id"] == 2

    def test_malformed_line_answered_not_dropped(self, bg):
        def work(host, port):
            with ServiceClient(host, port) as client:
                bad = client.raw_request(b"{not json")
                alive = client.ping()
                return bad, alive

        bad, alive = self._serve(bg, work)
        assert bad["ok"] is False and "JSON" in bad["error"]
        assert alive["ok"] and alive["pong"]

    def test_color_error_paths(self, bg):
        def work(host, port):
            with ServiceClient(host, port) as client:
                missing = client.request({"op": "color", "id": 9})
                bad_alg = client.color(bg, algorithm="W-W")
                bad_threads = client.color(bg, threads="many")
                return missing, bad_alg, bad_threads

        missing, bad_alg, bad_threads = self._serve(bg, work)
        assert missing["ok"] is False and "graph" in missing["error"]
        assert missing["id"] == 9
        assert bad_alg["ok"] is False
        assert bad_threads["ok"] is False and "integer" in bad_threads["error"]

    def test_stats_and_shutdown(self, bg):
        async def run():
            service = ColoringService()
            server = ColoringServer(service, host="127.0.0.1", port=0)
            await server.start()

            def work(host, port):
                with ServiceClient(host, port) as client:
                    client.color(bg, backend="sim")
                    stats = client.stats()
                    ack = client.shutdown()
                    return stats, ack

            stats, ack = await asyncio.to_thread(
                work, server.host, server.port
            )
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=10)
            return stats, ack

        stats, ack = _run(run())
        assert ack["ok"] and ack["shutting_down"]
        assert stats["stats"]["requests"] == 1
        # The stats op surfaces the per-backend request tally.
        assert stats["stats"]["backends"] == {"sim": 1}


# -- delta op: incremental recoloring over the service ----------------------


class TestDeltaOp:
    """The service `delta` path (docs/incremental.md).

    Regression bar: empty and delete-only deltas must short-circuit
    without dispatching a batch — `executed` stays flat and the charged
    work is zero.
    """

    CONFIG = dict(algorithm="V-V", backend="sim", threads=2)

    def _delta_req(self, fingerprint, delta):
        return DeltaRequest(fingerprint=fingerprint, delta=delta, **self.CONFIG)

    def test_empty_delta_is_pure_cache_hit(self, bg):
        async def run():
            async with ColoringService() as service:
                base = await service.submit(
                    ColoringRequest(graph=bg, **self.CONFIG)
                )
                resp = await service.submit_delta(
                    self._delta_req(graph_fingerprint(bg), GraphDelta())
                )
                return base, resp, service

        base, resp, service = _run(run())
        assert resp.cached and resp.frontier_size == 0
        assert service.executed == 1  # regression: nothing dispatched
        assert resp.result.colors.tobytes() == base.result.colors.tobytes()

    def test_delete_only_short_circuits_and_recaches(self, bg):
        async def run():
            async with ColoringService() as service:
                base = await service.submit(
                    ColoringRequest(graph=bg, **self.CONFIG)
                )
                delta = GraphDelta(delete=[(2, 3)])
                first = await service.submit_delta(
                    self._delta_req(graph_fingerprint(bg), delta)
                )
                repeat = await service.submit_delta(
                    self._delta_req(graph_fingerprint(bg), delta)
                )
                return base, first, repeat, service

        base, first, repeat, service = _run(run())
        assert service.executed == 1  # regression: no batch for deletions
        assert not first.cached and first.frontier_size == 0
        assert all(v == 0 for v in first.work_metrics.values())
        assert first.key != base.key  # cached under the mutated fingerprint
        assert first.result.colors.tobytes() == base.result.colors.tobytes()
        assert repeat.cached  # the synchronous result was re-cached

    def test_insert_delta_runs_incrementally_and_chains(self, bg):
        async def run():
            async with ColoringService() as service:
                base = await service.submit(
                    ColoringRequest(graph=bg, **self.CONFIG)
                )
                fwd = await service.submit_delta(
                    self._delta_req(
                        graph_fingerprint(bg), GraphDelta(insert=[(0, 1)])
                    )
                )
                back = await service.submit_delta(
                    self._delta_req(
                        fwd.key.split(":", 1)[0],
                        GraphDelta(delete=[(0, 1)]),
                    )
                )
                return base, fwd, back, service

        base, fwd, back, service = _run(run())
        assert service.executed == 2 and service.delta_requests == 2
        assert fwd.frontier_size > 0
        assert sum(fwd.work_metrics.values()) > 0
        work = lambda m: m.get("probes", 0) + m.get("conflict_checks", 0)
        assert work(fwd.work_metrics) < work(base.work_metrics)
        # deleting the inserted edge chains back to the base fingerprint
        assert back.key.split(":", 1)[0] == graph_fingerprint(bg)
        assert service.stats()["graphs_remembered"] >= 2

    def test_unknown_fingerprint_and_config_mismatch(self, bg):
        async def run():
            async with ColoringService() as service:
                with pytest.raises(ServiceError, match="unknown graph"):
                    await service.submit_delta(
                        self._delta_req("feedbeef", GraphDelta(insert=[(0, 1)]))
                    )
                # base colored under V-V; ask the delta under N1-N2
                await service.submit(ColoringRequest(graph=bg, **self.CONFIG))
                with pytest.raises(ServiceError, match="no cached coloring"):
                    await service.submit_delta(
                        DeltaRequest(
                            fingerprint=graph_fingerprint(bg),
                            delta=GraphDelta(insert=[(0, 1)]),
                            algorithm="N1-N2", backend="sim", threads=2,
                        )
                    )

        _run(run())

    def test_sequential_and_bad_delta_rejected(self, bg):
        async def run():
            async with ColoringService() as service:
                await service.submit(ColoringRequest(graph=bg, **self.CONFIG))
                with pytest.raises(ServiceError, match="sequential"):
                    await service.submit_delta(
                        DeltaRequest(
                            fingerprint=graph_fingerprint(bg),
                            delta=GraphDelta(insert=[(0, 1)]),
                            algorithm="sequential",
                        )
                    )
                with pytest.raises(ServiceError, match="GraphDelta"):
                    await service.submit_delta(
                        DeltaRequest(
                            fingerprint=graph_fingerprint(bg),
                            delta={"insert": [[0, 1]]},
                        )
                    )
                # a phantom deletion surfaces as a ServiceError, not a crash
                with pytest.raises(ServiceError, match="missing edge"):
                    await service.submit_delta(
                        self._delta_req(
                            graph_fingerprint(bg), GraphDelta(delete=[(0, 1)])
                        )
                    )

        _run(run())

    def test_numpy_request_rerouted_to_resumable_backend(self, bg):
        async def run():
            async with ColoringService() as service:
                await service.submit(ColoringRequest(graph=bg, **self.CONFIG))
                resp = await service.submit_delta(
                    DeltaRequest(
                        fingerprint=graph_fingerprint(bg),
                        delta=GraphDelta(insert=[(0, 1)]),
                        algorithm="V-V", backend="numpy", threads=2,
                    )
                )
                return resp

        resp = _run(run())
        assert resp.backend == "sim"  # numpy cannot resume partial colorings

    def test_delta_from_wire_validation(self):
        delta = delta_from_wire({"insert": [[0, 1]], "delete": [[2, 3]]})
        assert isinstance(delta, GraphDelta)
        assert delta.num_insertions == delta.num_deletions == 1
        for bad, pattern in (
            ([["not", "a", "dict"]], "JSON object"),
            ({"insert": [[0, 1]], "bogus": 1}, "unknown delta fields"),
            ({"insert": [[0, 1, 2]]}, "bad delta"),
            ({"insert": [[0, 1]], "delete": [[0, 1]]}, "bad delta"),
        ):
            with pytest.raises(ServiceError, match=pattern):
                delta_from_wire(bad)

    def test_wire_round_trip(self, bg):
        def work(host, port):
            with ServiceClient(host, port) as client:
                base = client.color(bg, **self.CONFIG)
                fwd = client.delta(
                    base["fingerprint"], insert=[(0, 1)], **self.CONFIG
                )
                back = client.delta(
                    fwd["fingerprint"], delete=[(0, 1)], **self.CONFIG
                )
                missing = client.request({"op": "delta", "id": 5})
                no_delta = client.request(
                    {"op": "delta", "fingerprint": "ab", "id": 6}
                )
                bad_field = client.request(
                    {"op": "delta", "fingerprint": base["fingerprint"],
                     "delta": {"bogus": []}, "id": 7}
                )
                return base, fwd, back, missing, no_delta, bad_field

        async def run():
            service = ColoringService()
            server = ColoringServer(service, host="127.0.0.1", port=0)
            await server.start()
            try:
                return await asyncio.to_thread(work, server.host, server.port)
            finally:
                await server.close()

        base, fwd, back, missing, no_delta, bad_field = _run(run())
        assert base["ok"] and "fingerprint" in base
        assert fwd["ok"] and fwd["frontier_size"] > 0
        assert fwd["fingerprint"] != base["fingerprint"]
        assert fwd["num_colors"] >= 1 and len(fwd["colors"]) == len(base["colors"])
        assert back["ok"] and back["fingerprint"] == base["fingerprint"]
        assert missing["ok"] is False and "fingerprint" in missing["error"]
        assert missing["id"] == 5
        assert no_delta["ok"] is False and "delta" in no_delta["error"]
        assert (
            bad_field["ok"] is False
            and "unknown delta fields" in bad_field["error"]
        )


# -- python -m repro.serve --------------------------------------------------


class TestServeCli:
    def test_bad_flags_exit_2(self, capsys):
        from repro.serve import main

        for argv in (
            ["--threads", "0"],
            ["--cache-size", "-1"],
            ["--max-batch", "0"],
            ["--edge-threshold", "-5"],
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert err.startswith("error:") and err.count("\n") == 1

    def test_unwritable_trace_exits_2(self, capsys):
        from repro.serve import main

        assert main(["--trace", "/nonexistent/dir/t.jsonl"]) == 2
        assert "cannot write trace" in capsys.readouterr().err

    def test_bind_failure_exits_2(self, capsys):
        from repro.serve import main

        # Occupy a port, then ask the server to bind it.
        with socket.socket() as blocker:
            blocker.bind(("127.0.0.1", 0))
            port = blocker.getsockname()[1]
            assert main(["--port", str(port)]) == 2
        assert "cannot bind" in capsys.readouterr().err

    def test_subprocess_round_trip(self, bg, tmp_path):
        env_path = str(Path(__file__).resolve().parent.parent / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--backend", "sim", "--trace", str(tmp_path / "serve.jsonl")],
            stdout=subprocess.PIPE,
            text=True,
            env=dict(os.environ, PYTHONPATH=env_path),
        )
        try:
            banner = proc.stdout.readline()
            assert banner.startswith("serving on 127.0.0.1:"), banner
            port = int(banner.rsplit(":", 1)[1])
            with ServiceClient("127.0.0.1", port) as client:
                first = client.color(bg)
                second = client.color(bg)
                client.shutdown()
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert second["cached"] and second["colors"] == first["colors"]
        assert "served 2 requests" in out
        trace = (tmp_path / "serve.jsonl").read_text()
        names = [json.loads(line)["name"] for line in trace.splitlines()]
        assert "cache.hit" in names


# -- serve bench experiment -------------------------------------------------


class TestServeExperiment:
    def test_replay_reports_hit_rate(self):
        from repro.bench.experiments.serve import REQUEST_MIX, run

        experiment = run(scale="tiny", threads=2)
        assert experiment.id == "serve"
        assert len(experiment.rows) == len(REQUEST_MIX)
        served = [row[3] for row in experiment.rows]
        assert served.count("cache") == 7  # 12 requests, 5 distinct
        for row in experiment.rows:
            if row[3] == "cache":
                assert row[5] == 0
            else:
                assert row[5] > 0
        assert "hit rate 7/12" in experiment.notes
        stats = experiment.data["stats"]
        assert stats["executed"] == 5
