"""Unit tests for the undirected Graph container."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import GraphBuildError, GraphError
from repro.graph import Graph, graph_from_dense, graph_from_edges, graph_from_scipy
from repro.graph.csr import CSR


class TestConstruction:
    def test_from_edges(self, path_graph):
        assert path_graph.num_vertices == 5
        assert path_graph.num_edges == 4
        assert sorted(path_graph.nbor(1)) == [0, 2]

    def test_self_loops_dropped(self):
        g = graph_from_edges([(0, 0), (0, 1)], num_vertices=2)
        assert g.num_edges == 1

    def test_parallel_edges_dedup(self):
        g = graph_from_edges([(0, 1), (1, 0), (0, 1)], num_vertices=2)
        assert g.num_edges == 1

    def test_rejects_asymmetric_adjacency(self):
        bad = CSR(np.array([0, 1, 1]), np.array([1]), 2)
        with pytest.raises(GraphError, match="symmetric"):
            Graph(bad)

    def test_rejects_self_loop_adjacency(self):
        bad = CSR(np.array([0, 1, 1]), np.array([0]), 2)
        with pytest.raises(GraphError, match="self-loop"):
            Graph(bad)

    def test_rejects_rectangular(self):
        bad = CSR(np.array([0, 1]), np.array([1]), 3)
        with pytest.raises(GraphError, match="square"):
            Graph(bad)

    def test_from_scipy_symmetrizes(self):
        mat = sparse.csr_matrix(np.array([[1, 1, 0], [0, 0, 1], [0, 0, 0]]))
        g = graph_from_scipy(mat)
        assert sorted(g.nbor(0)) == [1]
        assert sorted(g.nbor(1)) == [0, 2]

    def test_from_scipy_rejects_rectangular(self):
        with pytest.raises(GraphBuildError):
            graph_from_scipy(sparse.csr_matrix(np.ones((2, 3))))

    def test_from_dense(self):
        g = graph_from_dense(np.array([[0, 1], [1, 0]]))
        assert g.num_edges == 1


class TestNeighborhoods:
    def test_degrees(self, star_graph):
        assert star_graph.degree(0) == 6
        assert star_graph.degree(1) == 1
        assert star_graph.max_degree() == 6

    def test_color_lower_bound(self, star_graph):
        assert star_graph.color_lower_bound() == 7

    def test_distance2_path(self, path_graph):
        assert sorted(path_graph.distance2_neighbors(0)) == [1, 2]
        assert sorted(path_graph.distance2_neighbors(2)) == [0, 1, 3, 4]

    def test_distance2_star(self, star_graph):
        # every leaf reaches all other leaves through the hub
        assert sorted(star_graph.distance2_neighbors(1)) == [0, 2, 3, 4, 5, 6]

    def test_distance2_isolated(self):
        g = graph_from_edges([(0, 1)], num_vertices=3)
        assert g.distance2_neighbors(2).size == 0


class TestPermute:
    def test_permute_preserves_adjacency(self, small_graph):
        n = small_graph.num_vertices
        perm = np.random.default_rng(4).permutation(n)
        permuted = small_graph.permute(perm)
        inverse = np.empty(n, dtype=np.int64)
        inverse[perm] = np.arange(n)
        for k in range(0, n, 11):
            expected = sorted(inverse[u] for u in small_graph.nbor(perm[k]))
            assert sorted(permuted.nbor(k)) == expected

    def test_permute_preserves_counts(self, small_graph):
        perm = np.random.default_rng(5).permutation(small_graph.num_vertices)
        permuted = small_graph.permute(perm)
        assert permuted.num_edges == small_graph.num_edges
        assert permuted.max_degree() == small_graph.max_degree()
