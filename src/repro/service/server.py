"""Asyncio NDJSON server wrapping a :class:`ColoringService`.

One :class:`ColoringServer` owns one service instance and speaks the
protocol in :mod:`repro.service.protocol` over ``asyncio.start_server``
streams: one JSON object per line in, one response line per request out,
in request order per connection.  Multiple connections are served
concurrently, and because they share the service they share its cache and
in-flight dedup — two clients asking for the same coloring at the same
time cost one backend run.

Malformed lines are answered with an error response (the connection stays
open); a ``shutdown`` request is acknowledged and then stops the accept
loop so :meth:`ColoringServer.serve_until_shutdown` returns cleanly.
"""

from __future__ import annotations

import asyncio

from repro.errors import ServiceError
from repro.service.protocol import (
    delta_from_wire,
    encode,
    error_response,
    graph_from_wire,
    ok_response,
    parse_request,
)
from repro.service.service import (
    ColoringRequest,
    ColoringService,
    DeltaRequest,
)

__all__ = ["ColoringServer", "STREAM_LIMIT"]

#: Per-connection stream buffer: request lines carry whole graphs, so the
#: asyncio default of 64 KiB would reject moderate instances.
STREAM_LIMIT = 2**26


class ColoringServer:
    """Serve a :class:`ColoringService` over newline-delimited JSON.

    Parameters
    ----------
    service:
        The (started or not-yet-started) service to expose.
    host / port:
        Bind address; ``port=0`` picks a free port, readable from
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        service: ColoringService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self.connections = 0

    async def start(self) -> "ColoringServer":
        """Start the service and begin accepting connections."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=STREAM_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Stop accepting, drop the listener, and close the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` request (or :meth:`close`) arrives."""
        await self._shutdown.wait()
        await self.close()

    async def __aenter__(self) -> "ColoringServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    # -- connection handling ------------------------------------------------

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Line over STREAM_LIMIT or peer reset: drop connection.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._respond(line)
                writer.write(encode(response))
                await writer.drain()
                if self._shutdown.is_set():
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, line: bytes) -> dict:
        try:
            request = parse_request(line)
        except ServiceError as exc:
            return error_response(None, str(exc))
        request_id = request.get("id")
        try:
            return await self._dispatch(request_id, request)
        except ServiceError as exc:
            return error_response(request_id, str(exc))

    async def _dispatch(self, request_id, request: dict) -> dict:
        op = request["op"]
        if op == "ping":
            return ok_response(request_id, pong=True)
        if op == "stats":
            return ok_response(request_id, stats=self.service.stats())
        if op == "shutdown":
            self._shutdown.set()
            return ok_response(request_id, shutting_down=True)
        if op == "delta":
            if "fingerprint" not in request:
                raise ServiceError("delta request is missing 'fingerprint'")
            if "delta" not in request:
                raise ServiceError("delta request is missing 'delta'")
            delta_request = DeltaRequest(
                fingerprint=request["fingerprint"],
                delta=delta_from_wire(request["delta"]),
                algorithm=request.get("algorithm", "V-V"),
                backend=request.get("backend"),
                threads=request.get("threads"),
                policy=request.get("policy", "U"),
            )
            delta_request.threads = self._coerce_threads(delta_request.threads)
            response = await self.service.submit_delta(delta_request)
            result = response.result
            return ok_response(
                request_id,
                colors=result.colors.tolist(),
                num_colors=result.num_colors,
                iterations=result.num_iterations,
                backend=response.backend,
                threads=response.threads,
                cached=response.cached,
                coalesced=response.coalesced,
                work_metrics=response.work_metrics,
                key=response.key,
                # The mutated graph's fingerprint: chain the next delta
                # off this value.
                fingerprint=response.key.split(":", 1)[0],
                frontier_size=response.frontier_size,
            )
        # op == "color"
        if "graph" not in request:
            raise ServiceError("color request is missing 'graph'")
        graph = graph_from_wire(request["graph"])
        coloring_request = ColoringRequest(
            graph=graph,
            algorithm=request.get("algorithm", "N1-N2"),
            backend=request.get("backend"),
            threads=request.get("threads"),
            policy=request.get("policy", "U"),
            ordering=request.get("ordering", "natural"),
            fastpath_mode=request.get("fastpath_mode", "exact"),
        )
        coloring_request.threads = self._coerce_threads(
            coloring_request.threads
        )
        response = await self.service.submit(coloring_request)
        result = response.result
        return ok_response(
            request_id,
            colors=result.colors.tolist(),
            num_colors=result.num_colors,
            iterations=result.num_iterations,
            backend=response.backend,
            threads=response.threads,
            cached=response.cached,
            coalesced=response.coalesced,
            work_metrics=response.work_metrics,
            key=response.key,
            # The graph's content fingerprint: send edge changes as delta
            # requests against this value (docs/incremental.md).
            fingerprint=response.key.split(":", 1)[0],
        )

    @staticmethod
    def _coerce_threads(threads):
        if threads is None:
            return None
        try:
            return int(threads)
        except (TypeError, ValueError):
            raise ServiceError(
                f"threads must be an integer, got {threads!r}"
            ) from None
