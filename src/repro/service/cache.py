"""LRU cache of :class:`~repro.types.ColoringResult` by request key.

The service's core economy: a coloring is deterministic given its request
key (see :mod:`repro.service.fingerprint`), so serving a repeat from cache
costs zero backend work.  The cache is a plain ``OrderedDict`` LRU —
bounded entries, hit refreshes recency, insert beyond capacity evicts the
least recently used — with hit/miss/eviction counters kept locally *and*
emitted through the :class:`~repro.obs.tracer.Tracer` protocol as
``cache.hit`` / ``cache.miss`` / ``cache.eviction`` counter events, so a
recorded trace of a served workload shows exactly which requests paid.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.tracer import ensure_tracer
from repro.types import ColoringResult

__all__ = ["ColoringCache"]


class ColoringCache:
    """Bounded LRU mapping request keys to coloring results.

    Parameters
    ----------
    capacity:
        Maximum number of cached results; ``0`` disables caching entirely
        (every lookup misses, nothing is stored).
    tracer:
        Optional tracer receiving ``cache.hit`` / ``cache.miss`` /
        ``cache.eviction`` counter events (key attached as an attribute).
    """

    def __init__(self, capacity: int = 128, tracer=None):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.tracer = ensure_tracer(tracer)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[str, ColoringResult] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> ColoringResult | None:
        """The cached result for ``key`` (refreshing recency), or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self.tracer.enabled:
                self.tracer.counter("cache.miss", 1, key=key)
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        if self.tracer.enabled:
            self.tracer.counter("cache.hit", 1, key=key)
        return entry

    def put(self, key: str, result: ColoringResult) -> None:
        """Store ``result`` under ``key``, evicting LRU entries beyond capacity."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if self.tracer.enabled:
                self.tracer.counter("cache.eviction", 1, key=evicted)

    def keys(self) -> list[str]:
        """Cached keys from least to most recently used."""
        return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> dict:
        """Counter snapshot: size, capacity, hits, misses, evictions."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
