"""The coloring service's newline-delimited JSON wire protocol.

One request per line, one response line per request, in order.  A request
is a JSON object with an ``op`` (default ``"color"``) and an optional
``id`` the server echoes back:

``color``
    ``{"id": 1, "op": "color", "graph": {...}, "algorithm": "N1-N2",
    "backend": null, "threads": 2, "policy": "U", "ordering": "natural",
    "fastpath_mode": "exact"}`` — every field except ``graph`` is
    optional; ``backend: null`` asks the size router to choose.
``delta``
    ``{"id": 2, "op": "delta", "fingerprint": "<sha256>", "delta":
    {"insert": [[u, v], ...], "delete": [[u, v], ...]}, "algorithm":
    "V-V", "backend": null, "threads": 2, "policy": "U"}`` — recolor a
    previously colored graph (named by its content fingerprint) after an
    edge change, touching only the invalidated frontier; see
    ``docs/incremental.md``.
``stats``
    Service counters (requests, cache hits/misses/evictions, work totals).
``ping``
    Liveness probe.
``shutdown``
    Acknowledge, then stop the server loop cleanly.

Graphs travel in one of two forms:

* ``{"format": "csr", "ptr": [...], "idx": [...], "num_nets": N}`` — the
  vertex→net CSR orientation;
* ``{"format": "coo", "edges": [[u, v], ...], "num_vertices": M,
  "num_nets": N}`` — ``(vertex, net)`` pairs (cardinalities optional,
  inferred as max id + 1).

Responses are ``{"id": ..., "ok": true, ...payload}`` on success and
``{"id": ..., "ok": false, "error": "one-line message"}`` on failure; a
malformed line gets an error *response* (id ``null``), never a dropped
connection.  See ``docs/service.md`` for worked examples.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import GraphError, ServiceError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import bipartite_from_edges
from repro.graph.csr import CSR
from repro.graph.delta import GraphDelta

__all__ = [
    "OPS",
    "delta_from_wire",
    "delta_to_wire",
    "encode",
    "error_response",
    "graph_from_wire",
    "graph_to_wire",
    "ok_response",
    "parse_request",
]

#: Operations a request line may name.
OPS = ("color", "delta", "stats", "ping", "shutdown")


def parse_request(line: str | bytes) -> dict:
    """Parse one request line into a validated request dict.

    Raises :class:`~repro.errors.ServiceError` on malformed JSON, a
    non-object payload, or an unknown ``op``.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ServiceError(f"request is not valid UTF-8: {exc}") from None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ServiceError(f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ServiceError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op", "color")
    if op not in OPS:
        raise ServiceError(f"unknown op {op!r}; choose from {list(OPS)}")
    payload["op"] = op
    return payload


def graph_from_wire(obj) -> BipartiteGraph:
    """Build a :class:`BipartiteGraph` from its wire form.

    Raises :class:`~repro.errors.ServiceError` on structural problems
    (missing fields, inconsistent arrays, bad indices).
    """
    if not isinstance(obj, dict):
        raise ServiceError(
            f"graph must be a JSON object, got {type(obj).__name__}"
        )
    fmt = obj.get("format", "csr")
    try:
        if fmt == "csr":
            for field in ("ptr", "idx", "num_nets"):
                if field not in obj:
                    raise ServiceError(f"csr graph is missing {field!r}")
            csr = CSR(
                np.asarray(obj["ptr"], dtype=np.int64),
                np.asarray(obj["idx"], dtype=np.int64),
                int(obj["num_nets"]),
            )
            return BipartiteGraph.from_vtx_to_nets(csr)
        if fmt == "coo":
            if "edges" not in obj:
                raise ServiceError("coo graph is missing 'edges'")
            return bipartite_from_edges(
                [(int(u), int(v)) for u, v in obj["edges"]],
                num_vertices=obj.get("num_vertices"),
                num_nets=obj.get("num_nets"),
            )
    except ServiceError:
        raise
    except (GraphError, TypeError, ValueError) as exc:
        raise ServiceError(f"bad {fmt} graph: {exc}") from None
    raise ServiceError(
        f"unknown graph format {fmt!r}; choose from ['csr', 'coo']"
    )


def graph_to_wire(bg: BipartiteGraph) -> dict:
    """The CSR wire form of ``bg`` (vertex→net orientation)."""
    return {
        "format": "csr",
        "ptr": bg.vtx_to_nets.ptr.tolist(),
        "idx": bg.vtx_to_nets.idx.tolist(),
        "num_nets": bg.num_nets,
    }


def delta_from_wire(obj) -> GraphDelta:
    """Build a :class:`~repro.graph.delta.GraphDelta` from its wire form.

    The wire form is ``{"insert": [[u, v], ...], "delete": [[u, v], ...]}``
    with both lists optional (an omitted list means no change of that
    kind).  Raises :class:`~repro.errors.ServiceError` on structural
    problems.
    """
    if not isinstance(obj, dict):
        raise ServiceError(
            f"delta must be a JSON object, got {type(obj).__name__}"
        )
    unknown = set(obj) - {"insert", "delete"}
    if unknown:
        raise ServiceError(
            f"unknown delta fields {sorted(unknown)}; "
            "expected 'insert' and/or 'delete'"
        )
    try:
        return GraphDelta(
            insert=[(int(u), int(v)) for u, v in obj.get("insert", [])],
            delete=[(int(u), int(v)) for u, v in obj.get("delete", [])],
        )
    except (GraphError, TypeError, ValueError) as exc:
        raise ServiceError(f"bad delta: {exc}") from None


def delta_to_wire(delta: GraphDelta) -> dict:
    """The wire form of ``delta`` (canonical order, plain int lists)."""
    return {
        "insert": delta.insert.tolist(),
        "delete": delta.delete.tolist(),
    }


def ok_response(request_id, **payload) -> dict:
    """A success response echoing ``request_id``."""
    return {"id": request_id, "ok": True, **payload}


def error_response(request_id, message: str) -> dict:
    """A failure response echoing ``request_id``; one-line message."""
    return {"id": request_id, "ok": False, "error": str(message)}


def encode(obj: dict) -> bytes:
    """One response/request as a newline-terminated UTF-8 JSON line."""
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
