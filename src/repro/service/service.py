"""The in-process coloring service: dedup, batching, cache, accounting.

:class:`ColoringService` is the asyncio front end over the execution-backend
registry that the NDJSON server (:mod:`repro.service.server`) — and any
in-process caller — submits coloring requests to.  The request path:

1. **Resolve** — the request's schedule is canonicalized, the backend is
   chosen (explicit pin, else the :class:`~repro.service.router.SizeRouter`)
   and the full cache key is computed
   (:func:`~repro.service.fingerprint.request_key`).
2. **Cache** — a key already in the :class:`~repro.service.cache.ColoringCache`
   is served immediately: zero backend work, the request's own
   ``work_metrics`` are all zero, and the saved work is banked in the
   service's accounting.
3. **Coalesce** — a key currently *in flight* attaches to the running
   computation's future instead of starting a second one: concurrent
   duplicates cost one backend run.
4. **Batch** — fresh keys are queued; a dispatcher drains up to
   ``max_batch`` requests at a time and runs them concurrently on worker
   threads (each coloring call releases the event loop via
   ``asyncio.to_thread``), populating the cache on completion.

Per-request cost accounting rides on the ``work_metrics`` of each
:class:`~repro.types.ColoringResult`: every response carries
the deterministic work *this* request caused (zeros for hits and coalesced
joins), and :meth:`ColoringService.stats` totals executed vs saved work.
Counter events (``cache.*``, ``service.request``, ``service.batch``) flow
through the standard :class:`~repro.obs.tracer.Tracer` protocol.

**Delta requests** (:meth:`ColoringService.submit_delta`) extend the
economy to evolving graphs: the service remembers the graphs it has
colored (a bounded fingerprint → graph store), so a client can send just
an edge delta against a cached fingerprint instead of re-uploading and
re-coloring the whole graph.  The mutated graph is re-fingerprinted, the
frontier is recolored incrementally
(:func:`repro.core.incremental.recolor_incremental`), and the result is
cached under the *new* key — the next epoch chains off it.  Empty deltas
are pure cache hits and delete-only deltas (empty frontier) are answered
synchronously at zero kernel work; neither dispatches a batch.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.bgpc import color_bgpc, sequential_bgpc
from repro.core.incremental import recolor_incremental
from repro.core.adaptive import is_adaptive_name, parse_adaptive
from repro.core.plan import normalize_schedule_name
from repro.core.policies import POLICIES, get_policy
from repro.errors import GraphError, ReproError, ServiceError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.delta import GraphDelta, apply_delta, delta_frontier
from repro.obs.tracer import ensure_tracer
from repro.obs.work import WORK_METRICS, WorkCounters
from repro.order import ORDERINGS, get_ordering
from repro.service.cache import ColoringCache
from repro.service.fingerprint import request_key
from repro.service.router import SizeRouter
from repro.types import ColoringResult

__all__ = [
    "ColoringRequest",
    "ColoringService",
    "DeltaRequest",
    "ServiceResponse",
]


def _zero_work() -> dict[str, int]:
    return {metric: 0 for metric in WORK_METRICS}


@dataclass
class ColoringRequest:
    """One BGPC coloring request (the in-process twin of a ``color`` line).

    ``backend=None`` asks the router to choose; ``threads=None`` takes the
    service default.
    """

    graph: BipartiteGraph
    algorithm: str = "N1-N2"
    backend: str | None = None
    threads: int | None = None
    policy: str = "U"
    ordering: str = "natural"
    fastpath_mode: str = "exact"


@dataclass
class DeltaRequest:
    """One incremental-recoloring request (the twin of a ``delta`` line).

    ``fingerprint`` names a graph the service has colored before
    (:func:`~repro.service.fingerprint.graph_fingerprint` — returned in
    every color/delta response's ``key`` prefix); ``delta`` is the edge
    change set.  The configuration fields must match a cached base
    coloring; ordering is always ``natural`` and ``fastpath_mode`` always
    ``"exact"`` for delta requests (incremental runs resume kernel loops,
    which the numpy fast path cannot do — an explicit or routed ``numpy``
    backend is remapped to the deterministic ``sim``).
    """

    fingerprint: str
    delta: GraphDelta
    algorithm: str = "V-V"
    backend: str | None = None
    threads: int | None = None
    policy: str = "U"


@dataclass
class ServiceResponse:
    """What :meth:`ColoringService.submit` resolves to.

    ``work_metrics`` is the per-request cost: the run's deterministic
    counters for a fresh execution, all zeros when the response came from
    cache (``cached``) or attached to an in-flight duplicate
    (``coalesced``).  ``frontier_size`` is set on delta responses only:
    how many vertices the delta invalidated (0 for empty and delete-only
    deltas).
    """

    result: ColoringResult
    key: str
    backend: str
    threads: int
    cached: bool = False
    coalesced: bool = False
    work_metrics: dict[str, int] = field(default_factory=_zero_work)
    frontier_size: int | None = None


@dataclass
class _DeltaJob:
    """Internal queue entry for a fresh incremental run."""

    base: BipartiteGraph
    base_colors: object
    delta: GraphDelta
    algorithm: str
    policy: str
    mutated: BipartiteGraph


class ColoringService:
    """Async coloring front end with dedup, micro-batching and an LRU cache.

    Parameters
    ----------
    backend:
        Default backend for requests that do not pin one; ``None`` (default)
        routes by size (see :class:`~repro.service.router.SizeRouter`).
    threads:
        Default worker/thread count handed to the backend (default 1, the
        deterministic choice).
    cache_size:
        LRU capacity in results; 0 disables caching.
    max_batch:
        Most requests the dispatcher drains into one concurrent batch.
    router:
        Router override (default: a fresh ``SizeRouter``).
    tracer:
        Optional tracer receiving ``cache.*`` and ``service.*`` counters.
    max_iterations:
        Speculative-loop bound forwarded to the drivers.

    Use as an async context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        threads: int = 1,
        cache_size: int = 128,
        max_batch: int = 8,
        router: SizeRouter | None = None,
        tracer=None,
        max_iterations: int = 200,
    ):
        if threads < 1:
            raise ServiceError(f"threads must be >= 1, got {threads}")
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.default_backend = backend
        self.default_threads = threads
        self.max_batch = max_batch
        self.max_iterations = max_iterations
        self.tracer = ensure_tracer(tracer)
        self.router = router if router is not None else SizeRouter()
        self.cache = ColoringCache(cache_size, tracer=tracer)
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        # Fingerprint → graph store backing delta requests: every colored
        # graph is remembered (bounded LRU) so a client can send just an
        # edge delta against the fingerprint instead of the whole graph.
        self._graph_capacity = max(cache_size, 16)
        self._graphs: OrderedDict[str, BipartiteGraph] = OrderedDict()
        self.requests = 0
        self.executed = 0
        self.errors = 0
        self.coalesced = 0
        self.delta_requests = 0
        # Per-request chosen-backend counts: which backend the router (or
        # an explicit pin) selected, for every response — cached, coalesced
        # or fresh.  Makes size-based routing (e.g. sharded for huge
        # graphs) observable through the ``stats`` op.
        self.backend_requests: dict[str, int] = {}
        self.work_executed = WorkCounters()
        self.work_saved = WorkCounters()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "ColoringService":
        """Start the dispatcher (idempotent); returns ``self``."""
        if self._dispatcher is None:
            self._queue = asyncio.Queue()
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def close(self) -> None:
        """Stop the dispatcher and fail any still-queued requests."""
        if self._dispatcher is None:
            return
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        while self._queue is not None and not self._queue.empty():
            _, _, _, _, fut = self._queue.get_nowait()
            if not fut.done():
                fut.set_exception(ServiceError("service closed"))
        self._inflight.clear()

    async def __aenter__(self) -> "ColoringService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    # -- request path -------------------------------------------------------

    def resolve(self, request: ColoringRequest) -> tuple[str, str, int]:
        """Validate ``request`` and return ``(key, backend, threads)``."""
        if not isinstance(request.graph, BipartiteGraph):
            raise ServiceError(
                "request.graph must be a BipartiteGraph, got "
                f"{type(request.graph).__name__}"
            )
        if request.policy not in POLICIES:
            raise ServiceError(
                f"unknown policy {request.policy!r}; choose from "
                f"{sorted(POLICIES)}"
            )
        if request.ordering not in ORDERINGS:
            raise ServiceError(
                f"unknown ordering {request.ordering!r}; choose from "
                f"{sorted(ORDERINGS)}"
            )
        if request.fastpath_mode not in ("exact", "speculative"):
            raise ServiceError(
                f"unknown fastpath_mode {request.fastpath_mode!r}; choose "
                "from ['exact', 'speculative']"
            )
        algorithm = request.algorithm
        adaptive = is_adaptive_name(algorithm)
        if algorithm != "sequential":
            try:
                # Adaptive names normalize through their own grammar
                # ("adaptive[:threshold]"); everything else through the
                # schedule grammar.
                algorithm = (
                    parse_adaptive(algorithm).name
                    if adaptive
                    else normalize_schedule_name(algorithm)
                )
            except ReproError as exc:
                raise ServiceError(str(exc)) from None
        backend = self.router.route(
            request.graph,
            request.backend
            if request.backend is not None
            else self.default_backend,
            request.policy,
            adaptive=adaptive,
        )
        threads = (
            request.threads
            if request.threads is not None
            else self.default_threads
        )
        if threads < 1:
            raise ServiceError(f"threads must be >= 1, got {threads}")
        key = request_key(
            request.graph,
            algorithm=algorithm,
            policy=request.policy,
            ordering=request.ordering,
            backend=backend,
            threads=threads,
            fastpath_mode=request.fastpath_mode,
        )
        return key, backend, threads

    async def submit(self, request: ColoringRequest) -> ServiceResponse:
        """Serve one request: cache hit, coalesced join, or fresh run.

        Raises :class:`~repro.errors.ServiceError` on invalid requests and
        on backend failures (one exception per waiter, cache untouched).
        """
        if self._dispatcher is None:
            raise ServiceError(
                "service is not started; use 'async with ColoringService(...)'"
            )
        self.requests += 1
        key, backend, threads = self.resolve(request)
        self._remember_graph(key.split(":", 1)[0], request.graph)

        cached = self.cache.get(key)
        if cached is not None:
            self.work_saved.merge(cached.work_metrics)
            self._emit_request(backend, cached=True, coalesced=False)
            return ServiceResponse(
                result=cached,
                key=key,
                backend=backend,
                threads=threads,
                cached=True,
            )

        inflight = self._inflight.get(key)
        if inflight is not None:
            self.coalesced += 1
            result = await asyncio.shield(inflight)
            self.work_saved.merge(result.work_metrics)
            self._emit_request(backend, cached=False, coalesced=True)
            return ServiceResponse(
                result=result,
                key=key,
                backend=backend,
                threads=threads,
                coalesced=True,
            )

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        await self._queue.put((key, request, backend, threads, future))
        result = await asyncio.shield(future)
        self.work_executed.merge(result.work_metrics)
        self._emit_request(backend, cached=False, coalesced=False)
        return ServiceResponse(
            result=result,
            key=key,
            backend=backend,
            threads=threads,
            work_metrics=dict(result.work_metrics),
        )

    # -- delta path ---------------------------------------------------------

    def _remember_graph(self, fingerprint: str, graph: BipartiteGraph) -> None:
        """Register ``graph`` under its fingerprint (bounded LRU)."""
        if fingerprint in self._graphs:
            self._graphs.move_to_end(fingerprint)
        self._graphs[fingerprint] = graph
        while len(self._graphs) > self._graph_capacity:
            self._graphs.popitem(last=False)

    def resolve_delta(
        self, request: DeltaRequest
    ) -> tuple[BipartiteGraph, str, str, int]:
        """Validate ``request``; return ``(base, algorithm, backend, threads)``."""
        if not isinstance(request.delta, GraphDelta):
            raise ServiceError(
                "request.delta must be a GraphDelta, got "
                f"{type(request.delta).__name__}"
            )
        if not isinstance(request.fingerprint, str) or not request.fingerprint:
            raise ServiceError("request.fingerprint must be a non-empty string")
        if request.policy not in POLICIES:
            raise ServiceError(
                f"unknown policy {request.policy!r}; choose from "
                f"{sorted(POLICIES)}"
            )
        if request.algorithm == "sequential":
            raise ServiceError(
                "delta requests cannot use 'sequential' (there is no "
                "speculative loop to resume); name a schedule such as V-V"
            )
        adaptive = is_adaptive_name(request.algorithm)
        try:
            algorithm = (
                parse_adaptive(request.algorithm).name
                if adaptive
                else normalize_schedule_name(request.algorithm)
            )
        except ReproError as exc:
            raise ServiceError(str(exc)) from None
        base = self._graphs.get(request.fingerprint)
        if base is None:
            raise ServiceError(
                f"unknown graph fingerprint {request.fingerprint[:12]}…; "
                "submit a color request for the base graph first (the "
                f"service remembers the last {self._graph_capacity} graphs)"
            )
        self._graphs.move_to_end(request.fingerprint)
        backend = self.router.route(
            base,
            request.backend
            if request.backend is not None
            else self.default_backend,
            request.policy,
            adaptive=adaptive,
        )
        if backend == "numpy":
            # The numpy engine cannot resume a partial coloring; remap to
            # the deterministic kernel-level backend instead of erroring.
            backend = self.router.policy_backend
        threads = (
            request.threads
            if request.threads is not None
            else self.default_threads
        )
        if threads < 1:
            raise ServiceError(f"threads must be >= 1, got {threads}")
        return base, algorithm, backend, threads

    def _delta_key(self, graph: BipartiteGraph, algorithm: str,
                   request: DeltaRequest, backend: str, threads: int) -> str:
        return request_key(
            graph,
            algorithm=algorithm,
            policy=request.policy,
            ordering="natural",
            backend=backend,
            threads=threads,
            fastpath_mode="exact",
        )

    async def submit_delta(self, request: DeltaRequest) -> ServiceResponse:
        """Recolor a remembered graph after an edge delta.

        Requires a cached base coloring under the same configuration
        (algorithm/policy/backend/threads); raises
        :class:`~repro.errors.ServiceError` otherwise.  Empty deltas are
        answered from cache and delete-only deltas synchronously at zero
        kernel work (the base coloring is still valid — deletions only
        remove constraints); only genuine insertions dispatch a frontier
        run, whose result is cached under the mutated graph's key.
        """
        if self._dispatcher is None:
            raise ServiceError(
                "service is not started; use 'async with ColoringService(...)'"
            )
        self.requests += 1
        self.delta_requests += 1
        base, algorithm, backend, threads = self.resolve_delta(request)
        base_key = self._delta_key(base, algorithm, request, backend, threads)
        base_result = self.cache.get(base_key)
        if base_result is None:
            raise ServiceError(
                "no cached coloring for fingerprint "
                f"{request.fingerprint[:12]}… under "
                f"{base_key.split(':', 1)[1]!r}; submit a color request "
                "with the same algorithm/policy/backend/threads first"
            )
        delta = request.delta

        if delta.is_empty:
            # Short-circuit: the graph is unchanged, so this is a pure
            # cache hit — never dispatch a batch for it.
            self.work_saved.merge(base_result.work_metrics)
            self._emit_request(backend, cached=True, coalesced=False)
            return ServiceResponse(
                result=base_result,
                key=base_key,
                backend=backend,
                threads=threads,
                cached=True,
                frontier_size=0,
            )

        try:
            mutated = apply_delta(base, delta)
        except GraphError as exc:
            raise ServiceError(str(exc)) from None
        frontier_size = int(delta_frontier(mutated, delta).size)
        new_key = self._delta_key(mutated, algorithm, request, backend, threads)
        self._remember_graph(new_key.split(":", 1)[0], mutated)

        cached = self.cache.get(new_key)
        if cached is not None:
            self.work_saved.merge(cached.work_metrics)
            self._emit_request(backend, cached=True, coalesced=False)
            return ServiceResponse(
                result=cached,
                key=new_key,
                backend=backend,
                threads=threads,
                cached=True,
                frontier_size=frontier_size,
            )

        if delta.is_delete_only:
            # Frontier-empty fast return: deletions only remove
            # constraints, so the base colors are already valid on the
            # mutated graph.  Re-cache them under the new fingerprint
            # synchronously — no batch, no kernel work, full base work
            # banked as saved.
            result = ColoringResult(
                colors=base_result.colors.copy(),
                num_colors=base_result.num_colors,
                iterations=[],
                algorithm=base_result.algorithm,
                threads=threads,
                cycles=0.0,
                backend=backend,
                wall_seconds=0.0,
                work_metrics=_zero_work(),
            )
            self.cache.put(new_key, result)
            self.work_saved.merge(base_result.work_metrics)
            self._emit_request(backend, cached=False, coalesced=False)
            return ServiceResponse(
                result=result,
                key=new_key,
                backend=backend,
                threads=threads,
                frontier_size=0,
            )

        inflight = self._inflight.get(new_key)
        if inflight is not None:
            self.coalesced += 1
            result = await asyncio.shield(inflight)
            self.work_saved.merge(result.work_metrics)
            self._emit_request(backend, cached=False, coalesced=True)
            return ServiceResponse(
                result=result,
                key=new_key,
                backend=backend,
                threads=threads,
                coalesced=True,
                frontier_size=frontier_size,
            )

        job = _DeltaJob(
            base=base,
            base_colors=base_result.colors,
            delta=delta,
            algorithm=algorithm,
            policy=request.policy,
            mutated=mutated,
        )
        future = asyncio.get_running_loop().create_future()
        self._inflight[new_key] = future
        await self._queue.put((new_key, job, backend, threads, future))
        result = await asyncio.shield(future)
        self.work_executed.merge(result.work_metrics)
        self._emit_request(backend, cached=False, coalesced=False)
        return ServiceResponse(
            result=result,
            key=new_key,
            backend=backend,
            threads=threads,
            work_metrics=dict(result.work_metrics),
            frontier_size=frontier_size,
        )

    # -- dispatcher ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if self.tracer.enabled:
                self.tracer.counter("service.batch", len(batch))
            await asyncio.gather(
                *(self._run_one(*entry) for entry in batch)
            )

    async def _run_one(self, key, request, backend, threads, future) -> None:
        try:
            result = await asyncio.to_thread(
                self._execute, request, backend, threads
            )
        except ReproError as exc:
            self.errors += 1
            if not future.done():
                future.set_exception(ServiceError(str(exc)))
        else:
            self.executed += 1
            self.cache.put(key, result)
            if not future.done():
                future.set_result(result)
        finally:
            self._inflight.pop(key, None)

    def _execute(self, request, backend: str,
                 threads: int) -> ColoringResult:
        """Run one coloring on a worker thread (CPU-bound, loop released)."""
        if isinstance(request, _DeltaJob):
            # Base colors come from our own cache, so skip re-validating
            # them; the incremental result is still always validated.
            inc = recolor_incremental(
                request.base,
                request.base_colors,
                request.delta,
                algorithm=request.algorithm,
                threads=threads,
                backend=backend,
                policy=(
                    None if request.policy == "U" else get_policy(request.policy)
                ),
                max_iterations=self.max_iterations,
                validate=False,
                mutated=request.mutated,
            )
            return inc.result
        order = (
            None
            if request.ordering == "natural"
            else get_ordering(request.ordering)(request.graph)
        )
        policy = (
            None if request.policy == "U" else get_policy(request.policy)
        )
        if request.algorithm == "sequential":
            return sequential_bgpc(
                request.graph, policy=policy, order=order
            )
        return color_bgpc(
            request.graph,
            algorithm=request.algorithm,
            threads=threads,
            policy=policy,
            order=order,
            max_iterations=self.max_iterations,
            backend=backend,
            fastpath_mode=request.fastpath_mode,
        )

    # -- accounting ---------------------------------------------------------

    def _emit_request(self, backend: str, *, cached: bool,
                      coalesced: bool) -> None:
        self.backend_requests[backend] = self.backend_requests.get(backend, 0) + 1
        if self.tracer.enabled:
            self.tracer.counter(
                "service.request",
                1,
                backend=backend,
                cached=cached,
                coalesced=coalesced,
            )

    def stats(self) -> dict:
        """Counter snapshot: requests, cache, coalescing, work totals."""
        return {
            "requests": self.requests,
            "executed": self.executed,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "delta_requests": self.delta_requests,
            "backends": dict(sorted(self.backend_requests.items())),
            "graphs_remembered": len(self._graphs),
            "cache": self.cache.stats(),
            "work_executed": self.work_executed.as_dict(),
            "work_saved": self.work_saved.as_dict(),
        }
