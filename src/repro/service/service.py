"""The in-process coloring service: dedup, batching, cache, accounting.

:class:`ColoringService` is the asyncio front end over the execution-backend
registry that the NDJSON server (:mod:`repro.service.server`) — and any
in-process caller — submits coloring requests to.  The request path:

1. **Resolve** — the request's schedule is canonicalized, the backend is
   chosen (explicit pin, else the :class:`~repro.service.router.SizeRouter`)
   and the full cache key is computed
   (:func:`~repro.service.fingerprint.request_key`).
2. **Cache** — a key already in the :class:`~repro.service.cache.ColoringCache`
   is served immediately: zero backend work, the request's own
   ``work_metrics`` are all zero, and the saved work is banked in the
   service's accounting.
3. **Coalesce** — a key currently *in flight* attaches to the running
   computation's future instead of starting a second one: concurrent
   duplicates cost one backend run.
4. **Batch** — fresh keys are queued; a dispatcher drains up to
   ``max_batch`` requests at a time and runs them concurrently on worker
   threads (each coloring call releases the event loop via
   ``asyncio.to_thread``), populating the cache on completion.

Per-request cost accounting rides on the ``work_metrics`` of each
:class:`~repro.types.ColoringResult`: every response carries
the deterministic work *this* request caused (zeros for hits and coalesced
joins), and :meth:`ColoringService.stats` totals executed vs saved work.
Counter events (``cache.*``, ``service.request``, ``service.batch``) flow
through the standard :class:`~repro.obs.tracer.Tracer` protocol.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.core.bgpc import color_bgpc, sequential_bgpc
from repro.core.plan import normalize_schedule_name
from repro.core.policies import POLICIES, get_policy
from repro.errors import ReproError, ServiceError
from repro.graph.bipartite import BipartiteGraph
from repro.obs.tracer import ensure_tracer
from repro.obs.work import WORK_METRICS, WorkCounters
from repro.order import ORDERINGS, get_ordering
from repro.service.cache import ColoringCache
from repro.service.fingerprint import request_key
from repro.service.router import SizeRouter
from repro.types import ColoringResult

__all__ = ["ColoringRequest", "ColoringService", "ServiceResponse"]


def _zero_work() -> dict[str, int]:
    return {metric: 0 for metric in WORK_METRICS}


@dataclass
class ColoringRequest:
    """One BGPC coloring request (the in-process twin of a ``color`` line).

    ``backend=None`` asks the router to choose; ``threads=None`` takes the
    service default.
    """

    graph: BipartiteGraph
    algorithm: str = "N1-N2"
    backend: str | None = None
    threads: int | None = None
    policy: str = "U"
    ordering: str = "natural"
    fastpath_mode: str = "exact"


@dataclass
class ServiceResponse:
    """What :meth:`ColoringService.submit` resolves to.

    ``work_metrics`` is the per-request cost: the run's deterministic
    counters for a fresh execution, all zeros when the response came from
    cache (``cached``) or attached to an in-flight duplicate
    (``coalesced``).
    """

    result: ColoringResult
    key: str
    backend: str
    threads: int
    cached: bool = False
    coalesced: bool = False
    work_metrics: dict[str, int] = field(default_factory=_zero_work)


class ColoringService:
    """Async coloring front end with dedup, micro-batching and an LRU cache.

    Parameters
    ----------
    backend:
        Default backend for requests that do not pin one; ``None`` (default)
        routes by size (see :class:`~repro.service.router.SizeRouter`).
    threads:
        Default worker/thread count handed to the backend (default 1, the
        deterministic choice).
    cache_size:
        LRU capacity in results; 0 disables caching.
    max_batch:
        Most requests the dispatcher drains into one concurrent batch.
    router:
        Router override (default: a fresh ``SizeRouter``).
    tracer:
        Optional tracer receiving ``cache.*`` and ``service.*`` counters.
    max_iterations:
        Speculative-loop bound forwarded to the drivers.

    Use as an async context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        *,
        backend: str | None = None,
        threads: int = 1,
        cache_size: int = 128,
        max_batch: int = 8,
        router: SizeRouter | None = None,
        tracer=None,
        max_iterations: int = 200,
    ):
        if threads < 1:
            raise ServiceError(f"threads must be >= 1, got {threads}")
        if max_batch < 1:
            raise ServiceError(f"max_batch must be >= 1, got {max_batch}")
        self.default_backend = backend
        self.default_threads = threads
        self.max_batch = max_batch
        self.max_iterations = max_iterations
        self.tracer = ensure_tracer(tracer)
        self.router = router if router is not None else SizeRouter()
        self.cache = ColoringCache(cache_size, tracer=tracer)
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: asyncio.Queue | None = None
        self._dispatcher: asyncio.Task | None = None
        self.requests = 0
        self.executed = 0
        self.errors = 0
        self.coalesced = 0
        self.work_executed = WorkCounters()
        self.work_saved = WorkCounters()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "ColoringService":
        """Start the dispatcher (idempotent); returns ``self``."""
        if self._dispatcher is None:
            self._queue = asyncio.Queue()
            self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def close(self) -> None:
        """Stop the dispatcher and fail any still-queued requests."""
        if self._dispatcher is None:
            return
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except asyncio.CancelledError:
            pass
        self._dispatcher = None
        while self._queue is not None and not self._queue.empty():
            _, _, _, _, fut = self._queue.get_nowait()
            if not fut.done():
                fut.set_exception(ServiceError("service closed"))
        self._inflight.clear()

    async def __aenter__(self) -> "ColoringService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    # -- request path -------------------------------------------------------

    def resolve(self, request: ColoringRequest) -> tuple[str, str, int]:
        """Validate ``request`` and return ``(key, backend, threads)``."""
        if not isinstance(request.graph, BipartiteGraph):
            raise ServiceError(
                "request.graph must be a BipartiteGraph, got "
                f"{type(request.graph).__name__}"
            )
        if request.policy not in POLICIES:
            raise ServiceError(
                f"unknown policy {request.policy!r}; choose from "
                f"{sorted(POLICIES)}"
            )
        if request.ordering not in ORDERINGS:
            raise ServiceError(
                f"unknown ordering {request.ordering!r}; choose from "
                f"{sorted(ORDERINGS)}"
            )
        if request.fastpath_mode not in ("exact", "speculative"):
            raise ServiceError(
                f"unknown fastpath_mode {request.fastpath_mode!r}; choose "
                "from ['exact', 'speculative']"
            )
        algorithm = request.algorithm
        if algorithm != "sequential":
            try:
                algorithm = normalize_schedule_name(algorithm)
            except ReproError as exc:
                raise ServiceError(str(exc)) from None
        backend = self.router.route(
            request.graph,
            request.backend
            if request.backend is not None
            else self.default_backend,
            request.policy,
        )
        threads = (
            request.threads
            if request.threads is not None
            else self.default_threads
        )
        if threads < 1:
            raise ServiceError(f"threads must be >= 1, got {threads}")
        key = request_key(
            request.graph,
            algorithm=algorithm,
            policy=request.policy,
            ordering=request.ordering,
            backend=backend,
            threads=threads,
            fastpath_mode=request.fastpath_mode,
        )
        return key, backend, threads

    async def submit(self, request: ColoringRequest) -> ServiceResponse:
        """Serve one request: cache hit, coalesced join, or fresh run.

        Raises :class:`~repro.errors.ServiceError` on invalid requests and
        on backend failures (one exception per waiter, cache untouched).
        """
        if self._dispatcher is None:
            raise ServiceError(
                "service is not started; use 'async with ColoringService(...)'"
            )
        self.requests += 1
        key, backend, threads = self.resolve(request)

        cached = self.cache.get(key)
        if cached is not None:
            self.work_saved.merge(cached.work_metrics)
            self._emit_request(backend, cached=True, coalesced=False)
            return ServiceResponse(
                result=cached,
                key=key,
                backend=backend,
                threads=threads,
                cached=True,
            )

        inflight = self._inflight.get(key)
        if inflight is not None:
            self.coalesced += 1
            result = await asyncio.shield(inflight)
            self.work_saved.merge(result.work_metrics)
            self._emit_request(backend, cached=False, coalesced=True)
            return ServiceResponse(
                result=result,
                key=key,
                backend=backend,
                threads=threads,
                coalesced=True,
            )

        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        await self._queue.put((key, request, backend, threads, future))
        result = await asyncio.shield(future)
        self.work_executed.merge(result.work_metrics)
        self._emit_request(backend, cached=False, coalesced=False)
        return ServiceResponse(
            result=result,
            key=key,
            backend=backend,
            threads=threads,
            work_metrics=dict(result.work_metrics),
        )

    # -- dispatcher ---------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            batch = [item]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            if self.tracer.enabled:
                self.tracer.counter("service.batch", len(batch))
            await asyncio.gather(
                *(self._run_one(*entry) for entry in batch)
            )

    async def _run_one(self, key, request, backend, threads, future) -> None:
        try:
            result = await asyncio.to_thread(
                self._execute, request, backend, threads
            )
        except ReproError as exc:
            self.errors += 1
            if not future.done():
                future.set_exception(ServiceError(str(exc)))
        else:
            self.executed += 1
            self.cache.put(key, result)
            if not future.done():
                future.set_result(result)
        finally:
            self._inflight.pop(key, None)

    def _execute(self, request: ColoringRequest, backend: str,
                 threads: int) -> ColoringResult:
        """Run one coloring on a worker thread (CPU-bound, loop released)."""
        order = (
            None
            if request.ordering == "natural"
            else get_ordering(request.ordering)(request.graph)
        )
        policy = (
            None if request.policy == "U" else get_policy(request.policy)
        )
        if request.algorithm == "sequential":
            return sequential_bgpc(
                request.graph, policy=policy, order=order
            )
        return color_bgpc(
            request.graph,
            algorithm=request.algorithm,
            threads=threads,
            policy=policy,
            order=order,
            max_iterations=self.max_iterations,
            backend=backend,
            fastpath_mode=request.fastpath_mode,
        )

    # -- accounting ---------------------------------------------------------

    def _emit_request(self, backend: str, *, cached: bool,
                      coalesced: bool) -> None:
        if self.tracer.enabled:
            self.tracer.counter(
                "service.request",
                1,
                backend=backend,
                cached=cached,
                coalesced=coalesced,
            )

    def stats(self) -> dict:
        """Counter snapshot: requests, cache, coalescing, work totals."""
        return {
            "requests": self.requests,
            "executed": self.executed,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "cache": self.cache.stats(),
            "work_executed": self.work_executed.as_dict(),
            "work_saved": self.work_saved.as_dict(),
        }
