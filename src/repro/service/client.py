"""Blocking socket client for the coloring server.

:class:`ServiceClient` is the test/CI/example counterpart of
:class:`~repro.service.server.ColoringServer`: a plain synchronous socket
speaking one JSON line per request.  It needs no asyncio on the caller's
side, which keeps examples and the CI smoke driver honest — they exercise
the server over a real TCP connection exactly as an external client would.
"""

from __future__ import annotations

import json
import socket

from repro.errors import ServiceError
from repro.graph.bipartite import BipartiteGraph
from repro.service.protocol import encode, graph_to_wire

__all__ = ["ServiceClient"]


class ServiceClient:
    """Synchronous NDJSON client; usable as a context manager.

    Parameters
    ----------
    host / port:
        Server address.
    timeout:
        Socket timeout in seconds for connect and each response.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def request(self, payload: dict) -> dict:
        """Send one request object, return the decoded response object."""
        self._sock.sendall(encode(payload))
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    def raw_request(self, line: bytes) -> dict:
        """Send pre-encoded bytes verbatim (for malformed-input tests)."""
        if not line.endswith(b"\n"):
            line += b"\n"
        self._sock.sendall(line)
        response = self._file.readline()
        if not response:
            raise ServiceError("server closed the connection")
        return json.loads(response)

    def color(self, graph, **options) -> dict:
        """Submit a ``color`` request.

        ``graph`` may be a :class:`BipartiteGraph` (sent in CSR wire form)
        or an already-encoded wire dict.  Keyword options (``algorithm``,
        ``backend``, ``threads``, ``policy``, ``ordering``,
        ``fastpath_mode``, ``id``) pass through to the request object.
        """
        wire = (
            graph_to_wire(graph)
            if isinstance(graph, BipartiteGraph)
            else graph
        )
        return self.request({"op": "color", "graph": wire, **options})

    def delta(self, fingerprint: str, insert=(), delete=(),
              **options) -> dict:
        """Submit a ``delta`` request against a previously colored graph.

        ``fingerprint`` is the value returned in a prior ``color`` (or
        ``delta``) response; ``insert`` / ``delete`` are iterables of
        ``(vertex, net)`` pairs.  Keyword options (``algorithm``,
        ``backend``, ``threads``, ``policy``, ``id``) pass through.  The
        response carries the mutated graph's ``fingerprint`` for chaining
        the next epoch.
        """
        wire = {
            "insert": [[int(u), int(v)] for u, v in insert],
            "delete": [[int(u), int(v)] for u, v in delete],
        }
        return self.request(
            {"op": "delta", "fingerprint": fingerprint, "delta": wire,
             **options}
        )

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
