"""Size-threshold backend routing for unpinned requests.

A request may pin its backend explicitly; when it does not, the router
picks from the :mod:`repro.core.backends` registry by instance size:

* **small** graphs go to the vectorized ``numpy`` fast path — per-request
  process-pool setup would dwarf the coloring itself;
* **large** graphs (at least ``edge_threshold`` bipartite edges) go to the
  shared-memory ``process`` pool, where true parallelism pays for its
  setup;
* **huge** graphs (at least ``sharded_threshold`` edges) go to the
  partitioned ``sharded`` backend (see ``docs/sharding.md``), whose
  interior/boundary split keeps cross-worker traffic to the frontier;
* requests using a balancing policy other than plain first-fit fall back
  to the deterministic ``sim`` backend — the numpy and sharded engines
  support only first-fit, and routing must never change what a request
  computes.

Backends with optional dependencies (``compiled`` needs numba) declare an
``available()`` probe and a ``fallback`` name; a size-routed pick that is
unavailable degrades to its fallback (e.g. ``compiled`` → ``numpy``), but
a request that *pins* an unavailable backend fails with a
:class:`~repro.errors.ServiceError` — the router never silently changes
an explicit choice.

The decision is pure (graph size + request parameters + registry state
in, backend name out), so routed keys stay deterministic and cacheable.
"""

from __future__ import annotations

from repro.core.backends import backend_names, get_backend
from repro.errors import ServiceError
from repro.graph.bipartite import BipartiteGraph

__all__ = ["DEFAULT_EDGE_THRESHOLD", "DEFAULT_SHARDED_THRESHOLD", "SizeRouter"]

#: Default boundary between "small" (numpy) and "large" (process) graphs,
#: in bipartite edges.
DEFAULT_EDGE_THRESHOLD = 50_000

#: Default boundary between "large" (process) and "huge" (sharded) graphs,
#: in bipartite edges.
DEFAULT_SHARDED_THRESHOLD = 500_000


class SizeRouter:
    """Route a request to a registered backend by instance size.

    Parameters
    ----------
    edge_threshold:
        Requests on graphs with at least this many edges route to
        ``large_backend``; smaller ones to ``small_backend``.
    sharded_threshold:
        Requests on graphs with at least this many edges route to
        ``huge_backend`` (must be >= ``edge_threshold``).
    small_backend / large_backend / huge_backend:
        Registered backend names for the three size classes.
    policy_backend:
        Backend for non-first-fit policies (``B1``/``B2``), which the
        vectorized fast path cannot run.
    """

    def __init__(
        self,
        edge_threshold: int = DEFAULT_EDGE_THRESHOLD,
        small_backend: str = "numpy",
        large_backend: str = "process",
        policy_backend: str = "sim",
        sharded_threshold: int = DEFAULT_SHARDED_THRESHOLD,
        huge_backend: str = "sharded",
    ):
        if edge_threshold < 0:
            raise ValueError(
                f"edge_threshold must be >= 0, got {edge_threshold}"
            )
        if sharded_threshold < edge_threshold:
            raise ValueError(
                f"sharded_threshold ({sharded_threshold}) must be >= "
                f"edge_threshold ({edge_threshold})"
            )
        self.edge_threshold = edge_threshold
        self.sharded_threshold = sharded_threshold
        self.small_backend = small_backend
        self.large_backend = large_backend
        self.huge_backend = huge_backend
        self.policy_backend = policy_backend

    def route(
        self,
        bg: BipartiteGraph,
        backend: str | None = None,
        policy: str = "U",
        adaptive: bool = False,
    ) -> str:
        """The backend name a request should run on.

        An explicit ``backend`` wins (validated against the registry);
        otherwise the size/policy rules above decide.  ``adaptive`` marks a
        request for an adaptive controller schedule (``"adaptive[:t]"``),
        which only kernel-level backends can run: a pinned whole-array or
        sharded backend is rejected, and the size rules pick
        ``policy_backend`` for small instances or ``large_backend`` (never
        the sharded tier) once real parallelism pays.
        """
        if backend is not None:
            if backend not in backend_names():
                raise ServiceError(
                    f"unknown backend {backend!r}; choose from "
                    f"{list(backend_names())}"
                )
            if not _is_available(backend):
                raise ServiceError(
                    f"backend {backend!r} is not available on this host "
                    "(missing optional dependency); unpin the backend or "
                    "install it"
                )
            if adaptive and not _supports_controller(backend):
                raise ServiceError(
                    f"backend {backend!r} cannot run adaptive schedules "
                    "(no kernel-level plan loop); pin sim, threaded or "
                    "process, or unpin the backend"
                )
            return backend
        if policy != "U":
            return self.policy_backend
        if adaptive:
            if bg.num_edges >= self.edge_threshold and _supports_controller(
                self.large_backend
            ):
                return self._degrade(self.large_backend)
            return self.policy_backend
        if bg.num_edges >= self.sharded_threshold:
            return self._degrade(self.huge_backend)
        if bg.num_edges >= self.edge_threshold:
            return self._degrade(self.large_backend)
        return self._degrade(self.small_backend)

    @staticmethod
    def _degrade(name: str) -> str:
        """Follow ``fallback`` links until an available backend is found."""
        seen = set()
        while not _is_available(name):
            seen.add(name)
            name = getattr(get_backend(name), "fallback", None)
            if name is None or name in seen:
                raise ServiceError(
                    "no available backend in the fallback chain "
                    f"{sorted(seen)}"
                )
        return name


def _is_available(name: str) -> bool:
    """A backend is available unless it declares ``available() -> False``."""
    probe = getattr(get_backend(name), "available", None)
    return True if probe is None else bool(probe())


def _supports_controller(name: str) -> bool:
    """Whether a backend can run adaptive ``ScheduleController`` schedules."""
    return bool(getattr(get_backend(name), "supports_controller", False))
