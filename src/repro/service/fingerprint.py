"""Canonical content fingerprints: the coloring cache's key space.

Two requests must share a cache entry exactly when they would produce the
same :class:`~repro.types.ColoringResult`, so the key is built from

* a **graph fingerprint** — sha256 over the canonicalized CSR bytes of the
  vertex→net orientation (rows sorted, ``int64`` ``ptr``/``idx`` buffers)
  plus the side cardinalities, so equivalent constructions (built from
  either orientation, rows in any order) fingerprint identically; and
* the **run configuration** — canonical schedule name, balancing policy,
  ordering, resolved backend, thread count and fastpath mode — everything
  that steers the computed colors.

Fingerprints are hex strings: stable across processes and platforms
(``int64`` little-endian on every supported target), safe to log, and
cheap to compare.
"""

from __future__ import annotations

import hashlib

from repro.graph.bipartite import BipartiteGraph

__all__ = ["graph_fingerprint", "request_key"]

#: Bumped when the canonical byte layout changes (invalidates old keys).
_FINGERPRINT_VERSION = b"bgpc-csr-v1"


def graph_fingerprint(bg: BipartiteGraph) -> str:
    """sha256 content hash of the canonical CSR form of ``bg``.

    Canonicalization: the vertex→net orientation with every adjacency row
    sorted ascending.  :meth:`BipartiteGraph.from_vtx_to_nets` and
    :meth:`BipartiteGraph.from_net_to_vtxs` over the same edge set — with
    rows in any order — therefore hash identically.
    """
    csr = bg.vtx_to_nets.sorted()
    h = hashlib.sha256()
    h.update(_FINGERPRINT_VERSION)
    h.update(f"{csr.nrows}x{csr.ncols}".encode("ascii"))
    h.update(csr.ptr.tobytes())
    h.update(csr.idx.tobytes())
    return h.hexdigest()


def request_key(
    bg: BipartiteGraph,
    *,
    algorithm: str,
    policy: str = "U",
    ordering: str = "natural",
    backend: str = "sim",
    threads: int = 1,
    fastpath_mode: str = "exact",
) -> str:
    """The full cache key of one coloring request.

    ``algorithm`` is canonicalized through the schedule grammar
    (``"v-n∞"`` and ``"V-Ninf"`` share a key); adaptive controller names
    canonicalize through :func:`repro.core.adaptive.parse_adaptive`
    (``"ADAPTIVE:0.10"`` and ``"adaptive:0.1"`` share a key);
    ``"sequential"`` passes through.  Everything else is included verbatim — the key must separate
    any two configurations that can color differently, including
    nondeterministic backends at different thread counts.
    """
    from repro.core.adaptive import is_adaptive_name, parse_adaptive
    from repro.core.plan import normalize_schedule_name

    if is_adaptive_name(algorithm):
        # Canonical controller spelling ("ADAPTIVE:0.10" == "adaptive:0.1").
        algorithm = parse_adaptive(algorithm).name
    elif algorithm != "sequential":
        algorithm = normalize_schedule_name(algorithm)
    config = "|".join(
        (
            algorithm,
            policy,
            ordering,
            backend,
            str(int(threads)),
            fastpath_mode,
        )
    )
    return f"{graph_fingerprint(bg)}:{config}"
