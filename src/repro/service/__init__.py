"""The BGPC coloring service: cache, router, batching, NDJSON server.

This package turns the one-shot coloring pipeline into a long-lived
front end (see ``docs/service.md``):

* :mod:`repro.service.fingerprint` — canonical CSR content fingerprints
  and full request keys;
* :mod:`repro.service.cache` — LRU result cache with traced
  hit/miss/eviction counters;
* :mod:`repro.service.router` — size-threshold backend routing for
  unpinned requests;
* :mod:`repro.service.service` — the in-process async
  :class:`ColoringService` (dedup, coalescing, micro-batching, work
  accounting);
* :mod:`repro.service.protocol` / :mod:`repro.service.server` — the
  newline-delimited JSON wire protocol and its asyncio server
  (``python -m repro.serve``);
* :mod:`repro.service.client` — a blocking socket client for tests,
  examples and CI.
"""

from repro.service.cache import ColoringCache
from repro.service.client import ServiceClient
from repro.service.fingerprint import graph_fingerprint, request_key
from repro.service.router import (
    DEFAULT_EDGE_THRESHOLD,
    DEFAULT_SHARDED_THRESHOLD,
    SizeRouter,
)
from repro.service.server import ColoringServer
from repro.service.service import (
    ColoringRequest,
    ColoringService,
    DeltaRequest,
    ServiceResponse,
)

__all__ = [
    "DEFAULT_EDGE_THRESHOLD",
    "DEFAULT_SHARDED_THRESHOLD",
    "ColoringCache",
    "ColoringRequest",
    "ColoringServer",
    "ColoringService",
    "DeltaRequest",
    "ServiceClient",
    "ServiceResponse",
    "SizeRouter",
    "graph_fingerprint",
    "request_key",
]
