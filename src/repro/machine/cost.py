"""Cycle-cost model of the simulated multicore.

All charges are integers (cycles) so the whole simulation is exact and
deterministic.  The default constants were calibrated so the eight BGPC
algorithm variants reproduce the relative ordering and approximate speedup
magnitudes of the paper's Tables III–V (see EXPERIMENTS.md); they are *not*
microarchitectural measurements.

The model separates **compute** cycles (always divide perfectly across
threads) from **memory** cycles (inflated once aggregate bandwidth
saturates), because the coloring kernels are memory-bound and that is what
caps their 16-thread efficiency on the paper's machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Cycle charges of the simulated machine.

    Attributes
    ----------
    task_overhead:
        Fixed compute cycles per parallel-for task (loop bookkeeping).
    edge_cost:
        Memory cycles per adjacency entry touched (one index load plus one
        color-array load).
    forbid_cost:
        Compute cycles per forbidden-set probe/insert (the marker-array
        operations of Section III's implementation notes).
    write_cost:
        Memory cycles per color-array store.
    atomic_base, atomic_contention:
        Cycles for one atomic append to the shared next-iteration queue:
        ``atomic_base + atomic_contention * (threads - 1)``.  This is what
        the V-V-64D lazy private queues avoid.
    chunk_base, chunk_contention:
        Cycles for one dynamic-scheduling chunk grab from the central
        counter: ``chunk_base + chunk_contention * (threads - 1)``.  With
        chunk size 1 (plain ``V-V``) this fee is paid per task — the reason
        chunk size 64 helps in the paper.
    barrier_base, barrier_per_thread:
        End-of-phase barrier cost: ``barrier_base + barrier_per_thread * p``.
    bandwidth_threads:
        Number of threads the memory system feeds at full speed; beyond it,
        memory cycles inflate linearly (saturating-bandwidth model).
    bandwidth_slope_pct:
        Percentage inflation of memory cycles per thread beyond
        ``bandwidth_threads`` (integer percent to stay in exact arithmetic).
    coherence_pct:
        Flat inflation of memory cycles whenever more than one thread runs:
        cache-coherence traffic on the shared color array, paid from the
        second thread on (independent of the bandwidth ceiling).
    socket_threads, numa_penalty_pct:
        Optional NUMA model (off by default: ``socket_threads = 0``).  When
        set, threads beyond one socket's capacity inflate memory cycles by
        ``numa_penalty_pct`` scaled by the remote-thread fraction — the
        paper's dual-socket 2×15-core testbed straddles sockets from 16
        threads up.  Not part of the calibrated defaults; the ``manycore``
        experiment enables it.
    race_window_pct:
        When a task's color stores become visible to other threads, as a
        percentage of the task's duration after its start.  100 means
        "visible only at task end" (maximal blindness — every overlapping
        task races); real hardware publishes stores within a cache-line
        transfer of issuing them, a small fraction of a task, so smaller
        values model the true vulnerability window between a thread reading
        a neighbour's cell and the neighbour's store landing.
    """

    task_overhead: int = 6
    edge_cost: int = 4
    forbid_cost: int = 1
    write_cost: int = 6
    atomic_base: int = 30
    atomic_contention: int = 14
    chunk_base: int = 24
    chunk_contention: int = 110
    barrier_base: int = 400
    barrier_per_thread: int = 120
    bandwidth_threads: int = 8
    bandwidth_slope_pct: int = 2
    coherence_pct: int = 10
    race_window_pct: int = 15
    socket_threads: int = 0
    numa_penalty_pct: int = 25

    def __post_init__(self) -> None:
        for name in (
            "task_overhead",
            "edge_cost",
            "forbid_cost",
            "write_cost",
            "atomic_base",
            "atomic_contention",
            "chunk_base",
            "chunk_contention",
            "barrier_base",
            "barrier_per_thread",
            "bandwidth_slope_pct",
            "coherence_pct",
            "socket_threads",
            "numa_penalty_pct",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.bandwidth_threads < 1:
            raise ValueError("bandwidth_threads must be >= 1")
        if not 1 <= self.race_window_pct <= 100:
            raise ValueError("race_window_pct must be in [1, 100]")

    # -- derived fees ------------------------------------------------------

    def chunk_fee(self, threads: int) -> int:
        """Cycles to grab one chunk from the central work counter."""
        if threads <= 1:
            # A single thread never contends; it still pays the base fee.
            return self.chunk_base
        return self.chunk_base + self.chunk_contention * (threads - 1)

    def atomic_fee(self, threads: int) -> int:
        """Cycles for one atomic append to a shared queue."""
        if threads <= 1:
            return self.atomic_base
        return self.atomic_base + self.atomic_contention * (threads - 1)

    def barrier_cost(self, threads: int) -> int:
        """Cycles charged to the phase wall-clock for the closing barrier."""
        if threads <= 1:
            return 0
        return self.barrier_base + self.barrier_per_thread * threads

    def inflate_memory(self, mem_cycles: int, threads: int) -> int:
        """Apply coherence and saturating-bandwidth inflation to memory cycles.

        Any multi-threaded run pays the flat ``coherence_pct`` (shared color
        array cache-line traffic); beyond ``bandwidth_threads`` concurrent
        threads, every extra thread adds ``bandwidth_slope_pct`` percent on
        top.  Integer arithmetic keeps the simulation exact.
        """
        if threads <= 1:
            return mem_cycles
        pct = 100 + self.coherence_pct
        over = threads - self.bandwidth_threads
        if over > 0:
            pct += self.bandwidth_slope_pct * over
        if self.socket_threads > 0 and threads > self.socket_threads:
            remote = threads - self.socket_threads
            # Remote-socket fraction of accesses pays the NUMA penalty.
            pct += (self.numa_penalty_pct * remote) // threads
        return (mem_cycles * pct + 99) // 100

    def write_visibility_delay(self, duration: int) -> int:
        """Cycles after a task's start at which its stores become visible."""
        if self.race_window_pct >= 100:
            return duration
        return max(1, (duration * self.race_window_pct) // 100)

    def with_overrides(self, **kwargs) -> "CostModel":
        """Return a copy with some charges replaced (for ablation benches)."""
        return replace(self, **kwargs)
