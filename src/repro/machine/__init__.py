"""Deterministic simulated shared-memory multicore machine.

This package is the substitute for the paper's 30-core Xeon testbed (see
DESIGN.md, Substitution 1).  It executes parallel-for phases the way an
OpenMP runtime would — dynamic chunk scheduling over hardware threads — but
in a discrete-event simulation with

* per-thread virtual cycle clocks,
* a *happens-before* shared memory: a task observes exactly the writes that
  committed before the task started, so optimistic-coloring races genuinely
  occur and grow with the thread count,
* explicit cycle charges for memory traffic, chunk grabs (with central-queue
  contention), atomic queue appends and barriers, and
* a saturating memory-bandwidth term producing realistic sub-linear scaling.

Everything is integer-cycle arithmetic and deterministic: the same program
on the same input always produces the same colors and the same timings.
"""

from repro.machine.cost import CostModel
from repro.machine.memory import TimestampedMemory
from repro.machine.scheduler import Schedule
from repro.machine.machine import Machine
from repro.machine.trace import RunTrace

__all__ = ["CostModel", "TimestampedMemory", "Schedule", "Machine", "RunTrace"]
