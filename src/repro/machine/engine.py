"""Discrete-event execution engine for one parallel-for phase.

The engine is the heart of the multicore substitution (DESIGN.md): it plays
an OpenMP ``parallel for`` over ``n_tasks`` tasks on ``threads`` virtual
hardware threads, with

* **dynamic chunk scheduling** — chunks are dispensed from a central cursor
  in the exact time order threads become idle, each grab paying a
  contention-scaled fee;
* **happens-before memory** — a task's kernel sees the committed state as of
  the task's *start* cycle; its own writes commit at its *end* cycle, so
  concurrently executing tasks race exactly like unsynchronized OpenMP
  threads;
* **cost accounting** — kernels charge compute and memory cycles; memory
  cycles are inflated by the saturating-bandwidth model.

Determinism: every heap entry carries a monotone sequence number, so ties in
virtual time resolve identically on every run.  With ``threads == 1`` the
simulation degenerates to plain sequential execution with zero races.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import MachineError, SchedulerError
from repro.machine.cost import CostModel
from repro.machine.memory import TimestampedMemory
from repro.machine.scheduler import ChunkCursor, Schedule
from repro.types import PhaseTiming

__all__ = ["TaskContext", "run_parallel_for", "QUEUE_NONE", "QUEUE_ATOMIC", "QUEUE_PRIVATE"]

#: Queue modes for the next-iteration work queue.
QUEUE_NONE = "none"
QUEUE_ATOMIC = "atomic"  # immediate shared-queue appends (ColPack default)
QUEUE_PRIVATE = "private"  # lazy thread-private queues merged at the barrier

_GRAB = 0
_EXEC = 1


class TaskContext:
    """Mutable per-task view handed to kernels.

    A kernel reads shared state through :attr:`colors` (the committed color
    array as of its start cycle), records color writes with :meth:`write`,
    queue appends with :meth:`append`, and charges its own cycle costs with
    :meth:`charge_cpu` / :meth:`charge_mem`.

    Attributes
    ----------
    colors:
        Committed shared color array (treat as read-only inside kernels).
    thread_id:
        Executing virtual thread.
    thread_state:
        Dict that persists across all tasks run by this thread within the
        current coloring run — used by the B1/B2 heuristics for their
        thread-private ``colmax`` / ``colnext``.
    probes / scans / conflict_checks:
        Deterministic work-metric counts for this task (see
        :mod:`repro.obs.work`): forbidden-set probe steps, adjacency
        entries touched while coloring, and entries examined during
        conflict detection.  Kernels record them with :meth:`count_probes`
        / :meth:`count_scans` / :meth:`count_checks`; engines fold them
        into per-phase :class:`~repro.obs.work.WorkCounters`.
    """

    __slots__ = (
        "colors",
        "thread_id",
        "thread_state",
        "writes",
        "appends",
        "cpu",
        "mem",
        "probes",
        "scans",
        "conflict_checks",
    )

    def __init__(self) -> None:
        self.colors = None
        self.thread_id = -1
        self.thread_state: dict = {}
        self.writes: list[tuple[int, int]] = []
        self.appends: list[int] = []
        self.cpu = 0
        self.mem = 0
        self.probes = 0
        self.scans = 0
        self.conflict_checks = 0

    def reset(self, colors, thread_id: int, thread_state: dict) -> None:
        self.colors = colors
        self.thread_id = thread_id
        self.thread_state = thread_state
        self.writes.clear()
        self.appends.clear()
        self.cpu = 0
        self.mem = 0
        self.probes = 0
        self.scans = 0
        self.conflict_checks = 0

    def write(self, index: int, value: int) -> None:
        """Buffer a color write; commits at this task's end cycle."""
        self.writes.append((index, value))

    def append(self, item: int) -> None:
        """Append to the next-iteration work queue."""
        self.appends.append(item)

    def charge_cpu(self, cycles: int) -> None:
        self.cpu += cycles

    def charge_mem(self, cycles: int) -> None:
        self.mem += cycles

    def count_probes(self, n: int) -> None:
        """Record ``n`` forbidden-set probe steps (work metric)."""
        self.probes += n

    def count_scans(self, n: int) -> None:
        """Record ``n`` adjacency entries touched while coloring."""
        self.scans += n

    def count_checks(self, n: int) -> None:
        """Record ``n`` entries examined during conflict detection."""
        self.conflict_checks += n


def run_parallel_for(
    n_tasks: int,
    kernel: Callable[[int, TaskContext], None],
    memory: TimestampedMemory,
    threads: int,
    cost: CostModel,
    schedule: Schedule,
    queue_mode: str = QUEUE_NONE,
    thread_states: list[dict] | None = None,
    phase_kind: str = "color",
    task_ids=None,
    tracer=None,
    work=None,
) -> tuple[PhaseTiming, list[int]]:
    """Simulate one parallel-for phase and return its timing and queue.

    Parameters
    ----------
    n_tasks:
        Loop trip count.  Task ``i`` maps to ``task_ids[i]`` when given,
        else to ``i`` itself.
    kernel:
        ``kernel(task_id, ctx)`` — performs reads via ``ctx.colors``,
        buffers writes/appends and charges cycles.
    memory:
        The shared color array (flushed and time-reset by this call's
        closing barrier).
    queue_mode:
        ``QUEUE_NONE`` | ``QUEUE_ATOMIC`` | ``QUEUE_PRIVATE``; controls the
        cost and ordering semantics of ``ctx.append``.
    thread_states:
        Optional per-thread persistent dicts (length ``threads``).
    tracer:
        Optional :class:`repro.obs.Tracer`; when given (and enabled), the
        phase's simulated cycle count is emitted as a
        ``machine.phase_cycles`` counter with kind/tasks/threads attributes.
    work:
        Optional :class:`repro.obs.work.WorkCounters`; every finished
        task's deterministic operation counts (probes, scans, queue pushes,
        color writes — see :mod:`repro.obs.work`) are folded into it.

    Returns
    -------
    (timing, queue_items):
        The phase timing (including the closing barrier) and the merged
        next-iteration queue in deterministic order: commit-time order for
        the atomic queue, thread-id order for private queues.
    """
    if threads < 1:
        raise MachineError(f"threads must be >= 1, got {threads}")
    if queue_mode not in (QUEUE_NONE, QUEUE_ATOMIC, QUEUE_PRIVATE):
        raise MachineError(f"unknown queue mode {queue_mode!r}")
    if thread_states is not None and len(thread_states) != threads:
        raise MachineError("thread_states must have one dict per thread")

    memory.reset_clock()
    cursor = ChunkCursor(n_tasks, threads, schedule)
    dynamic = schedule.kind == "dynamic"
    chunk_fee = cost.chunk_fee(threads) if dynamic else 0
    atomic_fee = cost.atomic_fee(threads)

    thread_clock = [0] * threads
    thread_busy = [0] * threads
    # Per-thread current chunk: [next_index, hi) or None.
    current: list[list[int] | None] = [None] * threads
    states = thread_states if thread_states is not None else [{} for _ in range(threads)]

    events: list[tuple[int, int, int, int]] = []  # (time, seq, kind, tid)
    seq = 0
    for tid in range(threads):
        heapq.heappush(events, (0, seq, _GRAB, tid))
        seq += 1

    ctx = TaskContext()
    atomic_queue: list[tuple[int, int, int]] = []  # (commit_time, seq, item)
    private_queues: list[list[int]] = [[] for _ in range(threads)]
    executed = 0

    while events:
        time, _, kind, tid = heapq.heappop(events)
        if kind == _GRAB:
            chunk = cursor.next_chunk(tid)
            if chunk is None:
                thread_clock[tid] = max(thread_clock[tid], time)
                continue
            lo, hi = chunk
            current[tid] = [lo, hi]
            start = time + chunk_fee
            thread_busy[tid] += chunk_fee
            heapq.heappush(events, (start, seq, _EXEC, tid))
            seq += 1
            continue

        # _EXEC: run the next task of this thread's current chunk.
        chunk = current[tid]
        if chunk is None:  # pragma: no cover - defensive
            raise SchedulerError("exec event for thread without a chunk")
        index = chunk[0]
        chunk[0] += 1
        task_id = int(task_ids[index]) if task_ids is not None else index

        memory.commit_until(time)
        ctx.reset(memory.values, tid, states[tid])
        kernel(task_id, ctx)
        executed += 1
        if work is not None:
            work.add_task(ctx)

        cycles = cost.task_overhead + ctx.cpu + cost.inflate_memory(ctx.mem, threads)
        if ctx.appends:
            if queue_mode == QUEUE_NONE:
                raise MachineError("kernel appended to queue but queue_mode is 'none'")
            if queue_mode == QUEUE_ATOMIC:
                cycles += atomic_fee * len(ctx.appends)
            else:
                cycles += len(ctx.appends)  # lazy private push: ~1 cycle each
        end = time + cycles
        # Stores become globally visible a race-window fraction into the
        # task, not at its very end — see CostModel.race_window_pct.
        commit_at = time + cost.write_visibility_delay(cycles)
        for index_w, value in ctx.writes:
            memory.write(index_w, value, commit_at)
        if ctx.appends:
            if queue_mode == QUEUE_ATOMIC:
                for item in ctx.appends:
                    atomic_queue.append((end, seq, item))
                    seq += 1
            else:
                private_queues[tid].extend(ctx.appends)
        thread_busy[tid] += cycles
        thread_clock[tid] = end

        if chunk[0] < chunk[1]:
            heapq.heappush(events, (end, seq, _EXEC, tid))
        else:
            current[tid] = None
            heapq.heappush(events, (end, seq, _GRAB, tid))
        seq += 1

    if executed != n_tasks:
        raise SchedulerError(f"executed {executed} of {n_tasks} tasks")

    memory.flush()
    wall = max(thread_clock) if thread_clock else 0
    wall += cost.barrier_cost(threads)

    if queue_mode == QUEUE_ATOMIC:
        atomic_queue.sort()
        queue_items = [item for _, _, item in atomic_queue]
    elif queue_mode == QUEUE_PRIVATE:
        queue_items = [item for q in private_queues for item in q]
    else:
        queue_items = []

    timing = PhaseTiming(
        kind=phase_kind,
        cycles=float(wall),
        thread_cycles=tuple(float(b) for b in thread_busy),
        tasks=n_tasks,
    )
    if tracer is not None and tracer.enabled:
        tracer.counter(
            "machine.phase_cycles",
            timing.cycles,
            kind=phase_kind,
            tasks=n_tasks,
            threads=threads,
        )
    return timing, queue_items
