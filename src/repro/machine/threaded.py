"""Real-thread backend for race sanity checks.

The simulated machine models races via happens-before intervals; this module
runs the *same kernels* on genuine Python threads with a shared numpy color
array and immediate writes.  Under the GIL the interleaving is
nondeterministic at bytecode granularity, which is exactly what we want for
a sanity check: the speculative color/remove loop must converge to a valid
coloring no matter how threads interleave.

No timing is collected here — the GIL makes wall-clock meaningless for
shared-memory speedup claims (the very reason the simulator exists).
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro.errors import MachineError
from repro.machine.engine import TaskContext

__all__ = ["ThreadedExecutor"]


class ThreadedExecutor:
    """Executes phase kernels on real Python threads.

    The kernel protocol is identical to the simulated engine's
    (:class:`TaskContext`), so coloring kernels run unchanged; writes are
    applied to the shared array as soon as the kernel returns (per task),
    and queue appends go to thread-private lists merged afterwards.
    """

    def __init__(self, threads: int):
        if threads < 1:
            raise MachineError(f"threads must be >= 1, got {threads}")
        self.threads = threads
        self._thread_states = [{} for _ in range(threads)]

    def parallel_for(
        self,
        n_tasks: int,
        kernel: Callable[[int, TaskContext], None],
        colors: np.ndarray,
        chunk: int = 64,
        task_ids=None,
        work=None,
    ) -> list[int]:
        """Run ``kernel`` over ``n_tasks`` tasks on real threads.

        Returns the merged queue appends (thread order).  ``colors`` is
        mutated in place.  ``work`` is an optional
        :class:`repro.obs.work.WorkCounters` accumulating the phase's
        operation counts (each thread counts privately; the per-thread
        totals are merged in thread-id order at the join — deterministic
        only with one thread, since races change the counts).
        """
        lock = threading.Lock()
        counter = [0]
        queues: list[list[int]] = [[] for _ in range(self.threads)]
        errors: list[BaseException] = []
        local_work = [None if work is None else type(work)() for _ in range(self.threads)]

        def worker(tid: int) -> None:
            ctx = TaskContext()
            meter = local_work[tid]
            try:
                while True:
                    with lock:
                        lo = counter[0]
                        if lo >= n_tasks:
                            return
                        hi = min(lo + chunk, n_tasks)
                        counter[0] = hi
                    for index in range(lo, hi):
                        task_id = int(task_ids[index]) if task_ids is not None else index
                        ctx.reset(colors, tid, self._thread_states[tid])
                        kernel(task_id, ctx)
                        # Immediate, unsynchronized writes — real races.
                        for where, value in ctx.writes:
                            colors[where] = value
                        queues[tid].extend(ctx.appends)
                        if meter is not None:
                            meter.add_task(ctx)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        workers = [
            threading.Thread(target=worker, args=(tid,), daemon=True)
            for tid in range(self.threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        if errors:
            raise errors[0]
        if work is not None:
            for meter in local_work:
                work.merge(meter)
        return [item for q in queues for item in q]
