"""The :class:`Machine` facade tying cost model, memory and engine together.

A ``Machine`` is "a multicore with ``p`` threads": coloring runners create
one per run, execute their phases through :meth:`Machine.parallel_for`, and read the
accumulated :class:`~repro.machine.trace.RunTrace` afterwards.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import MachineError
from repro.machine.cost import CostModel
from repro.machine.engine import (
    QUEUE_ATOMIC,
    QUEUE_NONE,
    QUEUE_PRIVATE,
    TaskContext,
    run_parallel_for,
)
from repro.machine.memory import TimestampedMemory
from repro.machine.scheduler import Schedule
from repro.machine.trace import RunTrace
from repro.types import PhaseTiming

__all__ = ["Machine"]


class Machine:
    """A simulated shared-memory multicore.

    Parameters
    ----------
    threads:
        Number of virtual hardware threads (``>= 1``).
    cost:
        Cycle-cost model; defaults to the calibrated :class:`CostModel`.
    tracer:
        Optional :class:`repro.obs.Tracer`; every phase the machine runs
        emits a ``machine.phase_cycles`` counter through it.  ``None``
        (default) means no tracing overhead at all.
    """

    def __init__(self, threads: int, cost: CostModel | None = None, tracer=None):
        if threads < 1:
            raise MachineError(f"threads must be >= 1, got {threads}")
        self.threads = int(threads)
        self.cost = cost if cost is not None else CostModel()
        self.trace = RunTrace(threads=self.threads)
        self.tracer = tracer
        self._thread_states: list[dict] = [{} for _ in range(self.threads)]

    # -- shared state -------------------------------------------------------

    def make_memory(self, initial: np.ndarray) -> TimestampedMemory:
        """Wrap an initial array as this machine's shared memory."""
        return TimestampedMemory(initial)

    @property
    def thread_states(self) -> list[dict]:
        """Per-thread persistent dicts (B1/B2 keep ``colmax``/``colnext`` here)."""
        return self._thread_states

    def reset_thread_states(self) -> None:
        """Clear all per-thread persistent dicts (fresh run)."""
        for state in self._thread_states:
            state.clear()

    # -- execution ------------------------------------------------------------

    def parallel_for(
        self,
        n_tasks: int,
        kernel: Callable[[int, TaskContext], None],
        memory: TimestampedMemory,
        schedule: Schedule | None = None,
        queue_mode: str = QUEUE_NONE,
        phase_kind: str = "color",
        task_ids=None,
        extra_wall: int = 0,
        work=None,
    ) -> tuple[PhaseTiming, list[int]]:
        """Run one parallel-for phase; record and return its timing.

        ``extra_wall`` adds fixed cycles to the phase wall-clock — used by
        runners to account for auxiliary vectorizable sweeps (e.g. collecting
        the uncolored vertices after a net-based conflict removal).
        ``work`` is an optional :class:`repro.obs.work.WorkCounters` that
        accumulates the phase's deterministic operation counts.
        """
        timing, queue = run_parallel_for(
            n_tasks=n_tasks,
            kernel=kernel,
            memory=memory,
            threads=self.threads,
            cost=self.cost,
            schedule=schedule if schedule is not None else Schedule.dynamic(1),
            queue_mode=queue_mode,
            thread_states=self._thread_states,
            phase_kind=phase_kind,
            task_ids=task_ids,
            work=work,
        )
        if extra_wall:
            timing = PhaseTiming(
                kind=timing.kind,
                cycles=timing.cycles + float(extra_wall),
                thread_cycles=timing.thread_cycles,
                tasks=timing.tasks,
            )
        self.trace.add(timing)
        # Emitted here, not in run_parallel_for, so the counter includes the
        # extra_wall adjustment and always equals the recorded phase timing.
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.counter(
                "machine.phase_cycles",
                timing.cycles,
                kind=timing.kind,
                tasks=timing.tasks,
                threads=self.threads,
            )
        return timing, queue

    # -- auxiliary cost helpers -----------------------------------------------

    def parallel_scan_cost(self, n_items: int) -> int:
        """Wall cycles of a perfectly parallel vectorized sweep of ``n_items``.

        Models the cheap "collect the uncolored vertices" pass that follows
        a net-based conflict removal: a bandwidth-bound streaming scan that
        parallelizes evenly.
        """
        mem = self.cost.inflate_memory(n_items * self.cost.edge_cost, self.threads)
        return -(-mem // self.threads)  # ceil division

    def __repr__(self) -> str:
        return f"Machine(threads={self.threads})"


# Re-exported for runner convenience.
Machine.QUEUE_NONE = QUEUE_NONE
Machine.QUEUE_ATOMIC = QUEUE_ATOMIC
Machine.QUEUE_PRIVATE = QUEUE_PRIVATE
