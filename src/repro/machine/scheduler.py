"""OpenMP-style loop scheduling for the simulated machine.

Only the pieces the paper exercises are modelled: ``schedule(dynamic, c)``
with a central chunk counter (the default for all ColPack loops, chunk 1
unless stated; the paper's ``-64`` variants use chunk 64) and
``schedule(static)`` for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError

__all__ = ["Schedule", "ChunkCursor"]


@dataclass(frozen=True)
class Schedule:
    """A loop schedule: ``dynamic`` (central counter) or ``static`` (pre-split).

    Attributes
    ----------
    kind:
        ``"dynamic"`` or ``"static"``.
    chunk:
        Chunk size for dynamic scheduling; ignored for static (each thread
        receives one contiguous block).
    """

    kind: str = "dynamic"
    chunk: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("dynamic", "static"):
            raise SchedulerError(f"unknown schedule kind {self.kind!r}")
        if self.chunk < 1:
            raise SchedulerError(f"chunk must be >= 1, got {self.chunk}")

    @staticmethod
    def dynamic(chunk: int = 1) -> "Schedule":
        """OpenMP ``schedule(dynamic, chunk)``."""
        return Schedule("dynamic", chunk)

    @staticmethod
    def static() -> "Schedule":
        """OpenMP ``schedule(static)``: one contiguous block per thread."""
        return Schedule("static", 1)


class ChunkCursor:
    """Dispenses task-index ranges according to a :class:`Schedule`.

    For dynamic scheduling this models the central shared counter: chunks
    are handed out in request order, so the engine's deterministic event
    ordering fully determines which thread runs which tasks.  For static
    scheduling the ranges are fixed up front and ``next_chunk`` simply
    returns thread ``tid``'s single block on its first call.
    """

    def __init__(self, n_tasks: int, threads: int, schedule: Schedule):
        if n_tasks < 0:
            raise SchedulerError("n_tasks must be non-negative")
        if threads < 1:
            raise SchedulerError("threads must be >= 1")
        self.n_tasks = n_tasks
        self.threads = threads
        self.schedule = schedule
        self._next = 0
        self._static_done = [False] * threads
        if schedule.kind == "static":
            base, extra = divmod(n_tasks, threads)
            bounds = [0]
            for tid in range(threads):
                bounds.append(bounds[-1] + base + (1 if tid < extra else 0))
            self._static_bounds = bounds
        else:
            self._static_bounds = None

    def next_chunk(self, tid: int) -> tuple[int, int] | None:
        """Return the next ``[lo, hi)`` task range for thread ``tid``.

        Returns ``None`` when the thread has no more work.  Dynamic chunks
        incur a scheduling fee charged by the engine; the cursor itself only
        tracks assignment.
        """
        if self.schedule.kind == "static":
            if self._static_done[tid]:
                return None
            self._static_done[tid] = True
            lo = self._static_bounds[tid]
            hi = self._static_bounds[tid + 1]
            return (lo, hi) if hi > lo else None
        if self._next >= self.n_tasks:
            return None
        lo = self._next
        hi = min(lo + self.schedule.chunk, self.n_tasks)
        self._next = hi
        return lo, hi

    @property
    def dispensed(self) -> int:
        """Number of task indices handed out so far (dynamic only)."""
        if self.schedule.kind == "static":
            return sum(
                self._static_bounds[t + 1] - self._static_bounds[t]
                for t in range(self.threads)
                if self._static_done[t]
            )
        return self._next
