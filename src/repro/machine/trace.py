"""Execution traces of simulated runs.

The benchmark harness needs per-iteration, per-phase simulated timings to
regenerate Figure 1 (iteration breakdown) and Figure 2 (total times), so the
machine records every phase it executes into a :class:`RunTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import PhaseTiming

__all__ = ["RunTrace"]


@dataclass
class RunTrace:
    """Ordered record of the phases executed by one :class:`Machine` run.

    Attributes
    ----------
    threads:
        Simulated thread count.
    phases:
        Phase timings in execution order.
    """

    threads: int
    phases: list[PhaseTiming] = field(default_factory=list)

    def add(self, timing: PhaseTiming) -> None:
        """Append one phase timing in execution order."""
        self.phases.append(timing)

    @property
    def total_cycles(self) -> float:
        return float(sum(p.cycles for p in self.phases))

    def cycles_by_kind(self, kind: str) -> float:
        return float(sum(p.cycles for p in self.phases if p.kind == kind))

    def clear(self) -> None:
        """Forget all recorded phases."""
        self.phases.clear()
