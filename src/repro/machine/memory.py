"""Happens-before shared memory for the simulated machine.

The coloring algorithms of the paper are *optimistic*: threads read the
shared color array without synchronization, so a thread may miss writes made
by concurrently running threads — that is exactly where coloring conflicts
come from.  :class:`TimestampedMemory` models this at task granularity:

* a write performed by a task becomes *committed* at the task's end cycle;
* a task reads the state as of its start cycle — committed writes only.

Two tasks whose execution intervals overlap therefore cannot see each
other's writes, just like two OpenMP threads racing on ``c[]``.  With one
thread, intervals never overlap and the simulation degenerates to exact
sequential semantics (zero conflicts), matching the paper's observation that
sequential runs need no conflict-removal phase.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import MachineError

__all__ = ["TimestampedMemory"]


class TimestampedMemory:
    """An integer array with commit-time-ordered buffered writes.

    Parameters
    ----------
    values:
        Initial committed state.  Copied; dtype is preserved.

    Notes
    -----
    ``commit_until`` must be called with non-decreasing times (the engine
    pops tasks in start-time order, which guarantees this).  Writes with
    equal commit times are applied in submission order, making "last writer
    wins" deterministic.
    """

    __slots__ = ("values", "_pending", "_seq", "_clock")

    def __init__(self, values: np.ndarray):
        self.values = np.array(values, copy=True)
        self._pending: list[tuple[int, int, int, int]] = []
        self._seq = 0
        self._clock = 0

    # -- engine interface -----------------------------------------------------

    def write(self, index: int, value: int, commit_time: int) -> None:
        """Buffer a write that becomes visible at ``commit_time``."""
        if commit_time < self._clock:
            raise MachineError(
                f"write commits at {commit_time} but memory clock is {self._clock}"
            )
        heapq.heappush(self._pending, (commit_time, self._seq, index, value))
        self._seq += 1

    def commit_until(self, time: int) -> int:
        """Apply every buffered write with ``commit_time <= time``.

        Returns the number of writes applied.  ``time`` must be
        non-decreasing across calls.
        """
        if time < self._clock:
            raise MachineError(
                f"commit_until({time}) after clock already at {self._clock}"
            )
        self._clock = time
        applied = 0
        pending = self._pending
        values = self.values
        while pending and pending[0][0] <= time:
            _, _, index, value = heapq.heappop(pending)
            values[index] = value
            applied += 1
        return applied

    def flush(self) -> int:
        """Commit everything outstanding (used at phase barriers)."""
        applied = 0
        pending = self._pending
        values = self.values
        while pending:
            _, _, index, value = heapq.heappop(pending)
            values[index] = value
            applied += 1
        return applied

    def reset_clock(self) -> None:
        """Restart time at zero for a new phase (pending must be empty)."""
        if self._pending:
            raise MachineError("cannot reset clock with uncommitted writes")
        self._clock = 0

    # -- reads -------------------------------------------------------------------

    def read(self, index: int) -> int:
        """Committed value at ``index`` (engine has already advanced time)."""
        return int(self.values[index])

    def snapshot(self) -> np.ndarray:
        """Copy of the committed state (pending writes excluded)."""
        return self.values.copy()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def __len__(self) -> int:
        return int(self.values.size)
