"""Run the coloring service as a long-lived TCP server.

Usage::

    python -m repro.serve --port 4077
    python -m repro.serve --backend process --threads 4 --cache-size 256
    python -m repro.serve --port 0 --trace serve.jsonl

Speaks the newline-delimited JSON protocol in
:mod:`repro.service.protocol` (one request object per line, one response
line per request; see ``docs/service.md``).  ``--port 0`` binds a free
port and prints the actual one.  A ``shutdown`` request — or Ctrl-C —
stops the server cleanly; ``--trace`` streams ``cache.*`` and
``service.*`` counter events to a JSONL file.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.core.backends import backend_names


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro.serve``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve BGPC coloring requests over newline-delimited "
        "JSON, with request dedup, micro-batching and an LRU result cache "
        "(see docs/service.md).",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=4077,
        help="TCP port; 0 picks a free one and prints it (default 4077)",
    )
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help="pin every unpinned request to this backend instead of "
        "routing by graph size (default: route small graphs to numpy, "
        "large ones to process); see docs/backends.md",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=1,
        help="default thread/worker count for requests that do not set "
        "their own (default 1)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=128,
        help="LRU result-cache capacity in entries; 0 disables caching "
        "(default 128)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="most queued requests dispatched concurrently per batch "
        "(default 8)",
    )
    parser.add_argument(
        "--small-backend",
        choices=backend_names(),
        default=None,
        help="backend the size router uses for small graphs (default "
        "numpy; pass compiled to serve the small tier from the numba-JIT "
        "engine — it degrades back to numpy when numba is missing); "
        "ignored with --backend",
    )
    parser.add_argument(
        "--edge-threshold",
        type=int,
        default=None,
        help="bipartite-edge count at which the size router switches from "
        "the small-tier backend to the process backend (default 50000; "
        "ignored with --backend)",
    )
    parser.add_argument(
        "--sharded-threshold",
        type=int,
        default=None,
        help="bipartite-edge count at which the size router switches from "
        "the process to the sharded backend (default 500000; ignored with "
        "--backend); see docs/sharding.md",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream cache.* / service.* counter events to FILE as JSON "
        "lines; see docs/observability.md",
    )
    return parser


async def _serve(args, tracer) -> int:
    from repro.service import ColoringServer, ColoringService, SizeRouter

    router_kwargs = {}
    if args.edge_threshold is not None:
        router_kwargs["edge_threshold"] = args.edge_threshold
    if args.sharded_threshold is not None:
        router_kwargs["sharded_threshold"] = args.sharded_threshold
    if args.small_backend is not None:
        router_kwargs["small_backend"] = args.small_backend
    router = SizeRouter(**router_kwargs) if router_kwargs else None
    service = ColoringService(
        backend=args.backend,
        threads=args.threads,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        router=router,
        tracer=tracer,
    )
    server = ColoringServer(service, host=args.host, port=args.port)
    await server.start()
    print(f"serving on {server.host}:{server.port}", flush=True)
    try:
        await server.serve_until_shutdown()
    finally:
        await server.close()
    stats = service.stats()
    cache = stats["cache"]
    print(
        f"served {stats['requests']} requests: {stats['executed']} executed, "
        f"{cache['hits']} cache hits, {stats['coalesced']} coalesced, "
        f"{stats['errors']} errors",
        flush=True,
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    if args.threads < 1:
        print(f"error: --threads must be >= 1, got {args.threads}",
              file=sys.stderr)
        return 2
    if args.backend is not None:
        # Fail at startup, not per request, when the pinned backend cannot
        # run here (e.g. --backend compiled without numba installed).
        from repro.core.backends import get_backend

        probe = getattr(get_backend(args.backend), "available", None)
        if probe is not None and not probe():
            print(
                f"error: --backend {args.backend} is not available on this "
                "host (missing optional dependency)",
                file=sys.stderr,
            )
            return 2
    if args.cache_size < 0:
        print(f"error: --cache-size must be >= 0, got {args.cache_size}",
              file=sys.stderr)
        return 2
    if args.max_batch < 1:
        print(f"error: --max-batch must be >= 1, got {args.max_batch}",
              file=sys.stderr)
        return 2
    if args.edge_threshold is not None and args.edge_threshold < 0:
        print(
            f"error: --edge-threshold must be >= 0, got "
            f"{args.edge_threshold}",
            file=sys.stderr,
        )
        return 2
    if args.sharded_threshold is not None:
        from repro.service.router import DEFAULT_EDGE_THRESHOLD

        edge = (
            args.edge_threshold
            if args.edge_threshold is not None
            else DEFAULT_EDGE_THRESHOLD
        )
        if args.sharded_threshold < edge:
            print(
                f"error: --sharded-threshold must be >= the edge "
                f"threshold ({edge}), got {args.sharded_threshold}",
                file=sys.stderr,
            )
            return 2

    tracer = None
    try:
        if args.trace:
            from repro.obs import JsonlTracer

            try:
                tracer = JsonlTracer(args.trace)
            except OSError as exc:
                print(f"error: cannot write trace {args.trace}: {exc}",
                      file=sys.stderr)
                return 2
        try:
            return asyncio.run(_serve(args, tracer))
        except KeyboardInterrupt:
            return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # e.g. the port is taken or the bind address is bogus.
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
