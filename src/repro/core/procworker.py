"""Worker-process side of the ``process`` execution backend.

The :class:`~repro.core.backends.ProcessBackend` runs the speculative
color → detect → repeat loop on a persistent pool of *worker processes*
(no GIL), with the color array, the next-iteration work queue and the CSR
graph arrays placed in ``multiprocessing.shared_memory`` segments.
Workers mutate the **same** physical color palette optimistically, so
conflicts are genuine cross-process races resolved — as always — by the
speculative template's conflict-removal rounds.

This module is everything that executes *inside* a worker:

* :func:`create_segment` / :func:`attach_segment` — the shared-memory
  array plumbing.  Segments carry a recognizable ``repro_shm_`` name
  prefix so tests and CI can scan ``/dev/shm`` for leaks.
* :func:`init_worker` — the pool initializer: attaches every segment,
  rebuilds the problem graph as zero-copy views over shared memory, and
  caches the four phase kernels.  Runs once per worker; its cost (CSR
  validation, two-hop cache) is amortized over the whole run by the
  persistent pool.
* :func:`run_chunk` — executes one dynamic chunk of tasks (the paper's
  chunk-size-64 dispatch unit), applying color writes straight into the
  shared segment and returning queue appends plus per-worker counters.
* Fault injection (:func:`parse_fault`) — a worker can be told to
  ``SIGKILL`` itself after N chunks, which is how the leak tests and the
  CI smoke step simulate a mid-iteration worker crash.

Segment lifetime is owned entirely by the parent engine: workers only
attach (their re-registration lands in the same resource-tracker set the
parent already populated, so it is a harmless duplicate) and the parent
closes + unlinks every segment exactly once, on every exit path — clean
return, convergence failure, or a worker killed mid-phase.
"""

from __future__ import annotations

import os
import signal
import time
import uuid
from multiprocessing import shared_memory

import numpy as np

from repro.machine.engine import TaskContext

__all__ = [
    "SEGMENT_PREFIX",
    "SegmentSpec",
    "attach_segment",
    "create_segment",
    "init_worker",
    "parse_fault",
    "run_batch",
    "run_chunk",
    "run_frontier",
    "warmup",
]

#: Name prefix of every shared-memory segment this backend creates;
#: ``/dev/shm`` entries with this prefix after a run are leaks.
SEGMENT_PREFIX = "repro_shm_"


class SegmentSpec(tuple):
    """Picklable handle for one shared array: ``(name, shape, dtype_str)``."""

    __slots__ = ()

    def __new__(cls, name: str, shape: tuple, dtype: str):
        return super().__new__(cls, (name, tuple(shape), dtype))

    @property
    def name(self) -> str:
        return self[0]

    @property
    def shape(self) -> tuple:
        return self[1]

    @property
    def dtype(self) -> str:
        return self[2]


def create_segment(array: np.ndarray):
    """Copy ``array`` into a fresh named segment owned by the caller.

    Returns ``(shm, view, spec)``: the :class:`SharedMemory` handle (close
    *and* unlink it when done), a writable ndarray view over the segment,
    and the picklable :class:`SegmentSpec` workers attach with.
    """
    array = np.ascontiguousarray(array)
    name = SEGMENT_PREFIX + uuid.uuid4().hex[:16]
    shm = shared_memory.SharedMemory(create=True, name=name, size=max(array.nbytes, 1))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
    view[...] = array
    return shm, view, SegmentSpec(name, array.shape, array.dtype.str)


def attach_segment(spec: SegmentSpec):
    """Attach an existing segment; returns ``(shm, view)``.

    Pool workers share the parent's resource-tracker process (its cache is
    a set), so the attach-time re-registration is a harmless duplicate and
    the parent's single ``unlink`` unregisters the name exactly once — no
    worker-side unregister, which would race the parent's (Python < 3.13
    has no ``track=False`` to skip registration altogether).
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return shm, view


def parse_fault(text: str | None) -> dict | None:
    """Parse a fault-injection directive (``REPRO_PROCESS_FAULT``).

    ``"kill:N"`` makes each worker ``SIGKILL`` itself after processing
    ``N`` chunks (``"kill"`` alone means ``N = 1``).  Returns ``None`` for
    empty/absent directives; raises ``ValueError`` on malformed ones.
    """
    if not text:
        return None
    head, _, tail = text.partition(":")
    if head != "kill":
        raise ValueError(f"unknown process fault directive {text!r}")
    after = int(tail) if tail else 1
    if after < 1:
        raise ValueError(f"fault chunk count must be >= 1, got {after}")
    return {"kind": "kill", "after_chunks": after}


class _WorkerState:
    """Per-worker-process state: shared views, rebuilt graph, kernel cache."""

    def __init__(self, spec: dict):
        self.segments = []  # keep SharedMemory handles alive for the worker
        arrays = {}
        for key, seg in spec["segments"].items():
            shm, view = attach_segment(seg)
            self.segments.append(shm)
            arrays[key] = view
        self.colors = arrays.pop("colors")
        self.work = arrays.pop("work")
        self.ctrl = arrays.pop("ctrl")
        self.adapter = _rebuild_adapter(spec["problem"], arrays, spec["cost"])
        self.policy = spec["policy"]
        self.fault = spec.get("fault")
        self.ctx = TaskContext()
        # Worker-private state dict: the process-pool analogue of the
        # simulator's per-thread state (B1/B2 colmax/colnext, forbidden set).
        self.thread_state: dict = {}
        self.chunks_done = 0
        self._kernels: dict[str, object] = {}

    def kernel(self, phase_key: str):
        kern = self._kernels.get(phase_key)
        if kern is None:
            kern = self._build_kernel(phase_key)
            self._kernels[phase_key] = kern
        return kern

    def _build_kernel(self, phase_key: str):
        from repro.core.policies import FirstFit, get_policy

        # Keys are "<phase>:<kind>" or "<phase>:<kind>:<balancing>" — the
        # parent appends the active balancing label when a schedule switches
        # policies mid-run, so each label gets (and caches) its own coloring
        # kernel.  An explicit run-wide policy (spec["policy"]) still wins.
        phase, _, rest = phase_key.partition(":")
        kind, _, label = rest.partition(":")
        policy = self.policy
        if policy is None and label in ("B1", "B2"):
            policy = get_policy(label)
        vertex_policy = policy if policy is not None else FirstFit()
        net_policy = None if policy is None or isinstance(policy, FirstFit) else policy
        if (phase, kind) == ("color", "vertex"):
            return self.adapter.make_vertex_color_kernel(vertex_policy)
        if (phase, kind) == ("color", "net"):
            return self.adapter.make_net_color_kernel(net_policy)
        if (phase, kind) == ("remove", "vertex"):
            return self.adapter.make_vertex_removal_kernel()
        if (phase, kind) == ("remove", "net"):
            return self.adapter.make_net_removal_kernel()
        raise ValueError(f"unknown phase key {phase_key!r}")

    def maybe_fault(self) -> None:
        if self.fault is None:
            return
        if self.fault["kind"] == "kill" and self.chunks_done + 1 >= self.fault["after_chunks"]:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies


def _shared_twohop(arrays: dict):
    """Reconstruct the parent's flattened two-hop cache from shared views.

    Returns ``None`` when the parent skipped the build (structure above the
    entry cap) — seeding ``None`` then stops the worker from re-deriving
    that same verdict the expensive way.
    """
    from repro.graph.twohop import TwoHop

    if "two_ptr" not in arrays:
        return None
    return TwoHop(
        arrays["two_ptr"],
        arrays["two_idx"],
        arrays["two_sptr"],
        arrays["two_send"],
    )


def _rebuild_adapter(problem: str, arrays: dict, cost):
    """Zero-copy problem adapter over the shared CSR arrays.

    Also seeds the two-hop memo for the rebuilt graph object: the parent
    ships its flattened cache as shared segments, so kernel construction in
    the worker is O(1) instead of an O(entries) re-flatten per process.
    """
    from repro.graph.csr import CSR

    if problem == "bgpc":
        from repro.core.bgpc.runner import BGPCAdapter
        from repro.graph.bipartite import BipartiteGraph
        from repro.graph.twohop import seed_bgpc_twohop

        num_vertices = int(arrays["vptr"].size - 1)
        num_nets = int(arrays["nptr"].size - 1)
        bg = BipartiteGraph(
            CSR(arrays["vptr"], arrays["vidx"], ncols=num_nets),
            CSR(arrays["nptr"], arrays["nidx"], ncols=num_vertices),
        )
        seed_bgpc_twohop(bg, _shared_twohop(arrays))
        return BGPCAdapter(bg, cost)
    if problem == "d2gc":
        from repro.core.d2gc.runner import D2GCAdapter
        from repro.graph.twohop import seed_d2gc_twohop
        from repro.graph.unipartite import Graph

        num_vertices = int(arrays["aptr"].size - 1)
        adj = CSR(arrays["aptr"], arrays["aidx"], ncols=num_vertices)
        # Known symmetric by construction in the parent; skip the O(E log E)
        # re-check in every worker.
        g = Graph(adj, check=False)
        seed_d2gc_twohop(g, _shared_twohop(arrays))
        return D2GCAdapter(g, cost)
    raise ValueError(f"unknown problem kind {problem!r}")


#: The worker's state, set once by :func:`init_worker` (one per process).
_STATE: _WorkerState | None = None


def init_worker(spec: dict) -> None:
    """Pool initializer: attach segments, rebuild the graph, cache kernels."""
    global _STATE
    _STATE = _WorkerState(spec)


def warmup(args: tuple) -> int:
    """Pool pre-warm barrier task: ``(slot, total)``.

    The executor spawns workers lazily, one per submitted item with no
    idle worker available — so the engine submits ``total`` of these, and
    each spins (flagging its slot in the shared control segment) until all
    ``total`` slots are flagged.  A spinning worker is not idle, so every
    submit forces a fresh spawn: after the barrier releases, the whole pool
    is up with segments attached, *before* the timed loop starts.  The
    deadline keeps a failed spawn from hanging the barrier forever.
    """
    state = _STATE
    if state is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("process worker used before init_worker")
    slot, total = args
    ctrl = state.ctrl
    ctrl[slot] = 1
    deadline = time.monotonic() + 10.0
    while int(ctrl[:total].sum()) < total:  # pragma: no branch
        if time.monotonic() > deadline:  # pragma: no cover - spawn failure
            break
        time.sleep(0.001)
    return os.getpid()


def run_chunk(args: tuple) -> tuple:
    """Execute one dynamic chunk: ``(phase_key, lo, hi, use_work)``.

    Tasks are ``work[lo:hi]`` when ``use_work`` (vertex phases consume the
    shared work queue) or the raw ids ``lo..hi`` (net phases).  Writes land
    in the shared color segment immediately — real cross-process races —
    and queue appends are returned to the parent for the barrier merge.

    Returns ``(pid, tasks_done, appends, work_dict)`` where ``work_dict``
    is the chunk's deterministic operation counts (see
    :mod:`repro.obs.work`), merged phase-wide by the parent engine.
    """
    from repro.obs.work import WorkCounters

    state = _STATE
    if state is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("process worker used before init_worker")
    phase_key, lo, hi, use_work = args
    state.maybe_fault()
    kernel = state.kernel(phase_key)
    ctx = state.ctx
    colors = state.colors
    meter = WorkCounters()
    # tolist() bulk-converts to Python ints in C — cheaper than a per-task
    # int() on numpy scalars in the hot loop.
    task_source = state.work[lo:hi].tolist() if use_work else range(lo, hi)
    appends: list[int] = []
    for task in task_source:
        ctx.reset(colors, 0, state.thread_state)
        kernel(task, ctx)
        # Immediate, unsynchronized stores into the shared segment.
        for where, value in ctx.writes:
            colors[where] = value
        appends.extend(ctx.appends)
        meter.add_task(ctx)
    state.chunks_done += 1
    return os.getpid(), hi - lo, appends, meter.as_dict()


def run_frontier(args: tuple) -> tuple:
    """Color one rank's slice of boundary vertices against a private overlay.

    ``args`` is ``(lo, hi)``: the tasks are ``work[lo:hi]`` (this rank's
    boundary vertices for the superstep, in ascending global id).  Unlike
    :func:`run_chunk`, nothing is written into the shared color segment:
    the worker snapshots the committed colors, applies its own tentative
    picks to the *private* copy (so later vertices in the slice see earlier
    same-rank choices, exactly like the per-rank overlay of
    :func:`repro.dist.distributed_bgpc`), and ships the picks back as two
    packed int64 arrays — the sharded backend's actual frontier exchange,
    which the parent commits and conflict-checks at the superstep barrier.

    Returns ``(pid, ids, colors, work_dict)``.
    """
    from repro.obs.work import WorkCounters

    state = _STATE
    if state is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("process worker used before init_worker")
    lo, hi = args
    state.maybe_fault()
    kernel = state.kernel("color:vertex")
    ctx = state.ctx
    local = state.colors.copy()
    meter = WorkCounters()
    ids: list[int] = []
    cols: list[int] = []
    for task in state.work[lo:hi].tolist():
        ctx.reset(local, 0, state.thread_state)
        kernel(task, ctx)
        for where, value in ctx.writes:
            local[where] = value
            ids.append(where)
            cols.append(value)
        meter.add_task(ctx)
    state.chunks_done += 1
    return (
        os.getpid(),
        np.asarray(ids, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        meter.as_dict(),
    )


def run_batch(chunks: list) -> tuple:
    """Execute several chunks in one IPC message; aggregate the results.

    The chunk (``plan.chunk``, 64 for the engineered specs) stays the
    *execution* granularity — fault injection still counts per chunk — but
    shipping a batch per message divides dispatch and result-pickling
    round-trips by the batch factor, which dominates on small phases.

    Returns ``(pid, tasks_done, appends, work_dict)`` summed over the batch.
    """
    from repro.obs.work import WorkCounters

    done = 0
    appends: list[int] = []
    meter = WorkCounters()
    for chunk in chunks:
        _, chunk_done, chunk_appends, chunk_work = run_chunk(chunk)
        done += chunk_done
        appends.extend(chunk_appends)
        meter.merge(chunk_work)
    return os.getpid(), done, appends, meter.as_dict()
