"""Vertex-based D2GC kernels.

The paper only lists the net-based D2GC pseudo-codes (Algs. 9–10) and notes
that the vertex-based versions "can be implemented along the lines of the
BGPC algorithms ... with a single difference: distance-1 neighbors must also
be considered".  These kernels are exactly that: the Alg. 4/5 traversals
with the distance-1 ring added to the forbidden/conflict scan.
"""

from __future__ import annotations

import numpy as np

from repro.core.bgpc.vertex import thread_forbidden
from repro.graph.unipartite import Graph
from repro.machine.cost import CostModel

__all__ = [
    "d2gc_color_upper_bound",
    "make_vertex_color_kernel",
    "make_vertex_removal_kernel",
]


def d2gc_color_upper_bound(g: Graph) -> int:
    """Safe forbidden-set capacity: max distance-≤2 walk count + 2."""
    degs = g.degrees()
    walk2 = np.zeros(g.num_vertices, dtype=np.int64)
    contributions = degs[g.adj.idx]
    np.add.at(
        walk2,
        np.repeat(np.arange(g.num_vertices), degs),
        contributions,
    )
    total = walk2 + degs
    return int(total.max(initial=0)) + 2


def make_vertex_color_kernel(g: Graph, policy, cost: CostModel):
    """Vertex-based D2GC coloring: forbid the colors of ``nbor(w)`` and of
    every ``nbor(u) \\ {w}`` for ``u ∈ nbor(w)``, then apply the policy."""
    from repro.graph.twohop import d2gc_twohop

    ptr, idx = g.adj.ptr, g.adj.idx
    capacity = d2gc_color_upper_bound(g)
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost
    two = d2gc_twohop(g)

    if two is not None:
        tptr, tidx = two.ptr, two.idx

        def kernel(w: int, ctx) -> None:
            forb = thread_forbidden(ctx.thread_state, capacity)
            forb.begin()
            entries = tidx[tptr[w] : tptr[w + 1]]
            cvals = ctx.colors[entries]
            mask = (cvals >= 0) & (entries != w)
            forb.add_many(cvals[mask])
            touched = entries.size + 1
            col, steps = policy.choose(forb, w, ctx.thread_state)
            ctx.write(w, col)
            ctx.count_scans(int(touched))
            ctx.count_probes(steps)
            ctx.charge_mem(int(touched) * edge + write)
            ctx.charge_cpu((int(touched) + steps) * forbid)

        return kernel

    def kernel(w: int, ctx) -> None:
        forb = thread_forbidden(ctx.thread_state, capacity)
        forb.begin()
        colors = ctx.colors
        ring1 = idx[ptr[w] : ptr[w + 1]]
        c1 = colors[ring1]
        forb.add_many(c1[c1 >= 0])
        touched = ring1.size + 1
        for u in ring1:
            ring2 = idx[ptr[u] : ptr[u + 1]]
            c2 = colors[ring2]
            mask = (c2 >= 0) & (ring2 != w)
            forb.add_many(c2[mask])
            touched += ring2.size
        col, steps = policy.choose(forb, w, ctx.thread_state)
        ctx.write(w, col)
        ctx.count_scans(touched)
        ctx.count_probes(steps)
        ctx.charge_mem(touched * edge + write)
        ctx.charge_cpu((touched + steps) * forbid)

    return kernel


def make_vertex_removal_kernel(g: Graph, cost: CostModel):
    """Vertex-based D2GC conflict removal with the ``w > u`` requeue rule.

    ``w`` requeues itself iff a smaller-id vertex within distance ≤ 2 holds
    the same color; the scan terminates at the first conflict.
    """
    from repro.graph.twohop import d2gc_twohop

    ptr, idx = g.adj.ptr, g.adj.idx
    edge, forbid = cost.edge_cost, cost.forbid_cost
    two = d2gc_twohop(g)

    if two is not None:
        tptr, tidx = two.ptr, two.idx

        def kernel(w: int, ctx) -> None:
            cw = ctx.colors[w]
            if cw < 0:
                ctx.append(w)
                ctx.charge_cpu(1)
                return
            entries = tidx[tptr[w] : tptr[w + 1]]
            cvals = ctx.colors[entries]
            hits = np.nonzero((cvals == cw) & (entries != w) & (entries < w))[0]
            if hits.size:
                ctx.append(w)
                scanned = two.scanned_until(w, int(hits[0])) + 1
            else:
                scanned = entries.size + 1
            ctx.count_checks(int(scanned))
            ctx.charge_mem(int(scanned) * edge)
            ctx.charge_cpu(int(scanned) * forbid)

        return kernel

    def kernel(w: int, ctx) -> None:
        colors = ctx.colors
        cw = colors[w]
        touched = 0
        conflict = cw < 0
        if not conflict:
            ring1 = idx[ptr[w] : ptr[w + 1]]
            c1 = colors[ring1]
            touched += ring1.size + 1
            same1 = ring1[c1 == cw]
            if same1.size and int(same1.min()) < w:
                conflict = True
            else:
                for u in ring1:
                    ring2 = idx[ptr[u] : ptr[u + 1]]
                    c2 = colors[ring2]
                    touched += ring2.size
                    same2 = ring2[(c2 == cw) & (ring2 != w)]
                    if same2.size and int(same2.min()) < w:
                        conflict = True
                        break
        if conflict:
            ctx.append(w)
        ctx.count_checks(touched)
        ctx.charge_mem(touched * edge)
        ctx.charge_cpu(touched * forbid)

    return kernel
