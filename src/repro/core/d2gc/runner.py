"""D2GC driver and the four algorithm variants of paper Table V.

The D2GC experiments evaluate ``V-V-64D``, ``V-N1``, ``V-N2`` and ``N1-N2``
(the variants that did well for BGPC); the full BGPC matrix is nevertheless
accepted here since the specs are problem-agnostic.
"""

from __future__ import annotations

import numpy as np

from repro.core.bgpc.runner import BGPC_ALGORITHMS
from repro.core.d2gc.net import make_net_color_kernel, make_net_removal_kernel
from repro.core.d2gc.vertex import (
    make_vertex_color_kernel,
    make_vertex_removal_kernel,
)
from repro.core.driver import run_sequential, run_speculative
from repro.core.plan import resolve_schedule
from repro.graph.unipartite import Graph
from repro.machine.cost import CostModel
from repro.types import ColoringResult

__all__ = ["D2GC_ALGORITHMS", "D2GCAdapter", "color_d2gc", "sequential_d2gc"]

#: Same specs as BGPC — Table V evaluates this subset.
D2GC_ALGORITHMS = dict(BGPC_ALGORITHMS)

#: The variants the paper actually reports for D2GC (Table V rows).
TABLE5_VARIANTS = ("V-V-64D", "V-N1", "V-N2", "N1-N2")


class D2GCAdapter:
    """Adapts a unipartite :class:`Graph` to the speculative driver.

    For D2GC the "nets" of the net-based kernels are the closed
    neighbourhoods, so a net-based phase runs one task per vertex.
    """

    def __init__(self, g: Graph, cost: CostModel):
        self.g = g
        self.cost = cost
        self.n_targets = g.num_vertices
        self.n_nets = g.num_vertices

    def make_vertex_color_kernel(self, policy):
        return make_vertex_color_kernel(self.g, policy, self.cost)

    def make_net_color_kernel(self, policy):
        return make_net_color_kernel(self.g, self.cost, policy=policy)

    def make_vertex_removal_kernel(self):
        return make_vertex_removal_kernel(self.g, self.cost)

    def make_net_removal_kernel(self):
        return make_net_removal_kernel(self.g, self.cost)

    def fastpath_groups(self):
        """Constraint groups for the NumPy backend: closed neighborhoods."""
        from repro.core.fastpath.d2gc import d2gc_groups_csr

        return d2gc_groups_csr(self.g)

    def process_spec(self):
        """Shared-memory layout for the process backend.

        The adjacency CSR — plus the flattened two-hop cache when it
        exists — is copied into shared segments once per run; workers
        rebuild a zero-copy :class:`Graph` over them (symmetry is known
        good by construction, so the re-check is skipped) and seed their
        two-hop memo from the shared arrays (see
        :mod:`repro.core.procworker`).
        """
        from repro.graph.twohop import d2gc_twohop

        arrays = {
            "aptr": self.g.adj.ptr,
            "aidx": self.g.adj.idx,
        }
        two = d2gc_twohop(self.g)
        if two is not None:
            arrays["two_ptr"] = two.ptr
            arrays["two_idx"] = two.idx
            arrays["two_sptr"] = two.seg_ptr
            arrays["two_send"] = two.seg_end
        return {"problem": "d2gc", "arrays": arrays, "cost": self.cost}


def _apply_order(g: Graph, order: np.ndarray | None):
    if order is None:
        return g, None
    order = np.asarray(order, dtype=np.int64)
    return g.permute(order), order


def _restore_order(result: ColoringResult, order: np.ndarray | None) -> ColoringResult:
    if order is None:
        return result
    restored = np.empty_like(result.colors)
    restored[order] = result.colors
    result.colors = restored
    return result


def color_d2gc(
    g: Graph,
    algorithm: str = "N1-N2",
    threads: int = 16,
    cost: CostModel | None = None,
    policy=None,
    order: np.ndarray | None = None,
    max_iterations: int = 200,
    backend: str = "sim",
    fastpath_mode: str = "exact",
    tracer=None,
    **backend_options,
) -> ColoringResult:
    """Distance-2 color ``g`` with one of the paper's parallel algorithms.

    Same parameters and guarantees as :func:`repro.core.bgpc.color_bgpc`,
    over a unipartite graph — including the ``backend`` switch between the
    simulated machine and the vectorized NumPy fast path, and the
    ``tracer`` hook into :mod:`repro.obs`.
    """
    spec = resolve_schedule(algorithm, D2GC_ALGORITHMS, problem="D2GC")
    cost = cost if cost is not None else CostModel()
    work_graph, perm = _apply_order(g, order)
    adapter = D2GCAdapter(work_graph, cost)
    result = run_speculative(
        adapter,
        spec,
        threads=threads,
        cost=cost,
        policy=policy,
        max_iterations=max_iterations,
        backend=backend,
        fastpath_mode=fastpath_mode,
        tracer=tracer,
        **backend_options,
    )
    return _restore_order(result, perm)


def sequential_d2gc(
    g: Graph,
    cost: CostModel | None = None,
    policy=None,
    order: np.ndarray | None = None,
    tracer=None,
) -> ColoringResult:
    """Sequential greedy D2GC baseline (ColPack ships only this flavour)."""
    cost = cost if cost is not None else CostModel()
    work_graph, perm = _apply_order(g, order)
    adapter = D2GCAdapter(work_graph, cost)
    result = run_sequential(
        adapter, cost=cost, policy=policy, name="sequential", tracer=tracer
    )
    return _restore_order(result, perm)
