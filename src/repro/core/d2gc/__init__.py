"""Distance-2 graph coloring (paper Section IV)."""

from repro.core.d2gc.runner import (
    D2GC_ALGORITHMS,
    D2GCAdapter,
    color_d2gc,
    sequential_d2gc,
)

__all__ = ["D2GC_ALGORITHMS", "D2GCAdapter", "color_d2gc", "sequential_d2gc"]
