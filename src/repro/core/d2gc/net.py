"""Net-based D2GC kernels (paper Algs. 9–10).

For D2GC the "net" of vertex ``v`` is the closed neighbourhood
``{v} ∪ nbor(v)``: all its members are mutually within distance 2, so — as
in BGPC — a conflict is a repeated color inside one such group, and a sweep
over all groups both colors and verifies in Θ(|V|+|E|).

Difference from the BGPC kernels (per Section IV): the group includes the
middle vertex ``v`` itself, processed first, and the reverse first-fit
cursor starts at ``|nbor(v)|`` (not ``|nbor(v)| − 1``) because the thread
may have to color ``deg(v) + 1`` vertices.
"""

from __future__ import annotations

import numpy as np

from repro.core.bgpc.vertex import thread_forbidden
from repro.core.d2gc.vertex import d2gc_color_upper_bound
from repro.errors import ColoringError
from repro.graph.unipartite import Graph
from repro.machine.cost import CostModel
from repro.types import UNCOLORED

__all__ = ["make_net_color_kernel", "make_net_removal_kernel"]


def make_net_color_kernel(g: Graph, cost: CostModel, policy=None):
    """D2GC-COLORWORKQUEUE-NET (Alg. 9) with optional B1/B2 policy.

    Pass 1 scans ``v`` then ``nbor(v)``, marking first-seen colors and
    queueing uncolored/duplicate members into ``W_local``; pass 2 assigns
    reverse first-fit from ``|nbor(v)|`` (or asks the policy).
    """
    ptr, idx = g.adj.ptr, g.adj.idx
    capacity = d2gc_color_upper_bound(g)
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

    def kernel(v: int, ctx) -> None:
        ring = idx[ptr[v] : ptr[v + 1]]
        group = np.concatenate(([v], ring))
        colors = ctx.colors
        cvals = colors[group]
        forb = thread_forbidden(ctx.thread_state, capacity)
        forb.begin()

        colored_pos = np.nonzero(cvals >= 0)[0]
        vals = cvals[colored_pos]
        uniq, first = np.unique(vals, return_index=True)
        forb.add_many(uniq)
        keep = np.zeros(colored_pos.size, dtype=bool)
        keep[first] = True
        dup_pos = colored_pos[~keep]
        unc_pos = np.nonzero(cvals < 0)[0]
        if dup_pos.size:
            local = np.sort(np.concatenate((unc_pos, dup_pos)))
        else:
            local = unc_pos

        steps = 0
        if policy is None:
            col = ring.size  # |nbor(v)|: the middle vertex needs a slot too
            for pos in local:
                while forb.contains(col):
                    col -= 1
                    steps += 1
                if col < 0:
                    raise ColoringError(
                        f"reverse first-fit exhausted colors at vertex {v}"
                    )
                ctx.write(int(group[pos]), col)
                col -= 1
                steps += 1
        else:
            for pos in local:
                u = int(group[pos])
                col, more = policy.choose(forb, u, ctx.thread_state)
                forb.add(col)
                ctx.write(u, col)
                steps += more

        ctx.count_scans(int(group.size))
        ctx.count_probes(steps)
        ctx.charge_mem(group.size * edge + int(local.size) * write)
        ctx.charge_cpu((group.size + steps) * forbid)

    return kernel


def make_net_removal_kernel(g: Graph, cost: CostModel):
    """D2GC-REMOVECONFLICTS-NET (Alg. 10).

    The middle vertex is scanned first, so it always keeps its color; later
    group members clashing with an already-seen color are reset.
    """
    ptr, idx = g.adj.ptr, g.adj.idx
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

    def kernel(v: int, ctx) -> None:
        ring = idx[ptr[v] : ptr[v + 1]]
        group = np.concatenate(([v], ring))
        colors = ctx.colors
        cvals = colors[group]
        colored_pos = np.nonzero(cvals >= 0)[0]
        resets = 0
        if colored_pos.size > 1:
            vals = cvals[colored_pos]
            _, first = np.unique(vals, return_index=True)
            if first.size != colored_pos.size:
                keep = np.zeros(colored_pos.size, dtype=bool)
                keep[first] = True
                for pos in colored_pos[~keep]:
                    ctx.write(int(group[pos]), UNCOLORED)
                    resets += 1
        ctx.count_checks(int(group.size))
        ctx.charge_mem(group.size * edge + resets * write)
        ctx.charge_cpu(group.size * forbid)

    return kernel
