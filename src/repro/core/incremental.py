"""Incremental recoloring for evolving graphs.

Production graphs change; recoloring from scratch throws away everything a
valid coloring already knows.  :func:`recolor_incremental` takes a valid
BGPC coloring, a :class:`~repro.graph.delta.GraphDelta` (edge insertions
and deletions), and re-runs the speculative color → remove loop **only on
the invalidated frontier** — the insertion endpoints plus every member of
every inserted-into net (the two-hop rule; see
:func:`repro.graph.delta.delta_frontier` for why that set is sufficient).
Deletions never invalidate a valid coloring, so a delete-only delta costs
zero kernel work.

The frontier run goes through the normal
:class:`~repro.core.backends.ExecutionBackend` registry: the engine is
seeded with the surviving colors (``initial_colors``) and the loop's first
work queue is the frontier (``initial_work``), so every non-frontier
vertex keeps its color and every frontier vertex is greedily re-colored
against the full, updated two-hop forbidden set.  The ``numpy`` backend
cannot resume a partial coloring and is rejected by the backend itself.

Work accounting rides on the standard counters: the returned result's
``work_metrics`` cover only the frontier run, so comparing them against a
full recolor of the mutated graph quantifies the savings (the
``incremental`` bench experiment and the regress suite pin exactly that).

Determinism: under the deterministic backends (``sim``; ``threaded`` /
``process`` at one worker) the incremental colors are a pure function of
(base graph, base colors, delta, schedule, threads) — golden-pinned in
``tests/test_incremental.py``.

Note on palettes: incremental runs may leave the palette *larger* than a
from-scratch recolor would produce (deletions can strand high colors, and
frontier vertices respect all surviving neighbors).  When palette size
matters more than latency, follow up with
:func:`repro.core.recolor.reduce_colors`, which compacts a valid coloring
in place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backends import get_backend
from repro.core.plan import ScheduleSpec
from repro.core.policies import get_policy
from repro.core.validate import validate_bgpc
from repro.errors import ColoringError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.delta import GraphDelta, apply_delta, delta_frontier
from repro.machine.cost import CostModel
from repro.obs.work import WORK_METRICS
from repro.types import ColoringResult, UNCOLORED

__all__ = ["IncrementalResult", "recolor_incremental"]


@dataclass(frozen=True)
class IncrementalResult:
    """Outcome of one incremental recoloring epoch.

    Attributes
    ----------
    result:
        The frontier run's :class:`~repro.types.ColoringResult` — valid on
        the mutated graph; its ``work_metrics`` cover only the frontier.
    graph:
        The mutated :class:`~repro.graph.bipartite.BipartiteGraph`
        (``apply_delta(bg, delta)``) — feed it, with :attr:`colors`, into
        the next epoch.
    frontier:
        Sorted vertex ids that were reset and re-colored.
    num_insertions / num_deletions:
        Canonical delta sizes (after deduplication).
    """

    result: ColoringResult
    graph: BipartiteGraph
    frontier: np.ndarray
    num_insertions: int
    num_deletions: int

    @property
    def colors(self) -> np.ndarray:
        return self.result.colors

    @property
    def num_colors(self) -> int:
        return self.result.num_colors

    @property
    def frontier_size(self) -> int:
        return int(self.frontier.size)

    @property
    def work_metrics(self) -> dict:
        return self.result.work_metrics


def _zero_work_result(
    colors: np.ndarray, name: str, threads: int, backend: str
) -> ColoringResult:
    return ColoringResult(
        colors=colors,
        num_colors=int(colors.max()) + 1 if colors.size else 0,
        iterations=[],
        algorithm=name,
        threads=threads,
        cycles=0.0,
        backend=backend,
        wall_seconds=0.0,
        work_metrics={metric: 0 for metric in WORK_METRICS},
    )


def recolor_incremental(
    bg: BipartiteGraph,
    colors: np.ndarray,
    delta: GraphDelta,
    *,
    algorithm: str = "V-V",
    threads: int = 1,
    backend: str = "sim",
    cost: CostModel | None = None,
    policy=None,
    max_iterations: int = 200,
    tracer=None,
    validate: bool = True,
    mutated: BipartiteGraph | None = None,
) -> IncrementalResult:
    """Re-color only the frontier that ``delta`` invalidates in ``bg``.

    Parameters
    ----------
    bg:
        The base graph ``colors`` is valid on.
    colors:
        A valid coloring of ``bg`` (validated unless ``validate=False``;
        never mutated).
    delta:
        The change set.  Inserted edges may grow either side; ids stay
        stable, so ``colors`` indexes the mutated graph's vertices too
        (new vertices start uncolored).
    algorithm:
        Schedule for the frontier run (default ``"V-V"``).  Vertex-based
        phases cost work proportional to the *frontier*; net-based phases
        sweep every net each round regardless of the queue, forfeiting the
        savings — prefer ``V-*`` schedules here.
    threads / backend / cost / policy / max_iterations / tracer:
        As in :func:`repro.core.bgpc.color_bgpc`; ``backend="numpy"`` is
        rejected (it cannot resume a partial coloring).
    validate:
        Skip the O(E·d) base-coloring validation when the caller already
        guarantees it (the service trusts its own cache).  The *result* is
        always validated against the mutated graph.
    mutated:
        Pass ``apply_delta(bg, delta)`` if already materialized (the
        service builds it for re-fingerprinting) to avoid applying the
        delta twice.

    Returns
    -------
    IncrementalResult
        Valid coloring of the mutated graph, the mutated graph itself, the
        frontier, and frontier-only work metrics.
    """
    colors = np.asarray(colors, dtype=np.int64)
    if colors.shape != (bg.num_vertices,):
        raise ColoringError(
            f"colors must have shape ({bg.num_vertices},), got {colors.shape}"
        )
    if validate:
        validate_bgpc(bg, colors)
    if mutated is None:
        mutated = apply_delta(bg, delta)
    frontier = delta_frontier(mutated, delta)

    schedule = ScheduleSpec.parse(algorithm)
    name = schedule.name
    resolved_policy = policy
    if resolved_policy is None and schedule.balancing != "U":
        resolved_policy = get_policy(schedule.balancing)
    cost = cost if cost is not None else CostModel()

    initial = np.full(mutated.num_vertices, UNCOLORED, dtype=np.int64)
    initial[: colors.size] = colors
    if frontier.size:
        initial[frontier] = UNCOLORED
        from repro.core.bgpc.runner import BGPCAdapter

        adapter = BGPCAdapter(mutated, cost)
        result = get_backend(backend).run(
            adapter,
            schedule,
            name=name,
            threads=threads,
            cost=cost,
            policy=resolved_policy,
            max_iterations=max_iterations,
            tracer=tracer,
            initial_colors=initial,
            initial_work=frontier,
        )
    else:
        # Deletions only removed constraints: the old colors are already
        # valid on the mutated graph, at zero kernel work.
        result = _zero_work_result(initial, name, threads, backend)

    validate_bgpc(mutated, result.colors)
    return IncrementalResult(
        result=result,
        graph=mutated,
        frontier=frontier,
        num_insertions=delta.num_insertions,
        num_deletions=delta.num_deletions,
    )
