"""Adaptive schedules: a conflict-rate controller picking kernels live.

The paper hand-picks its net-removal horizons — ``V-N1`` and ``V-N2``
sweep every net for exactly one or two leading iterations, because a
net-based removal costs O(|E|) regardless of the queue while a
vertex-based removal scans the queued vertices' two-hop neighborhoods.
Which horizon wins depends on how fast the conflict rate collapses, and
that is instance- and thread-count-dependent.  This module stops guessing:
an :class:`AdaptiveSchedule` watches the per-iteration conflict counts the
observability layer already records (``IterationRecord.conflicts``, the
``work.conflict_checks`` counters on the engine's ``last_work`` — see
:class:`repro.core.backends.PhaseEngine`) and keeps the expensive net-based
removal only while the conflict rate stays at or above a configurable
threshold — effectively choosing the paper's ``k`` in ``V-Nk`` live.

The hook is the :class:`ScheduleController` protocol: anything with
``iteration_plan(i)`` (like a plain :class:`~repro.core.plan.ScheduleSpec`)
plus ``observe(...)``/``reset()`` feedback methods can drive
:func:`~repro.core.backends.run_plan_loop`.  Only kernel-level backends
(``sim``, ``threaded``, ``process``) run the plan loop; the whole-array
and sharded backends reject controllers with a one-line error.

**Determinism contract:** controller decisions are pure functions of the
observed queue sizes and conflict counts — no wall clock, no randomness.
On the clocked simulator those counters are themselves deterministic, so
an adaptive run is byte-reproducible and safe to pin in
``BENCH_baseline.json`` exactly like a static schedule.  See
``docs/adaptive.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.plan import IterationPlan, ScheduleSpec
from repro.errors import ColoringError

__all__ = [
    "DEFAULT_THRESHOLD",
    "AdaptiveDecision",
    "AdaptiveSchedule",
    "ScheduleController",
    "is_adaptive_name",
    "parse_adaptive",
]

#: Conflict rate (conflicts / queue size) below which the controller
#: abandons net-based removal for the cheap vertex-based tail.
DEFAULT_THRESHOLD = 0.05


@runtime_checkable
class ScheduleController(Protocol):
    """A schedule that adapts itself from per-iteration feedback.

    ``run_plan_loop`` duck-types this: any schedule object exposing
    ``observe`` receives the loop's feedback after every iteration, and
    ``reset`` (called once before iteration 0) must return the controller
    to its initial state so one instance can drive several runs.  A plain
    :class:`~repro.core.plan.ScheduleSpec` has neither method and is
    simply consulted statically.
    """

    name: str

    def iteration_plan(self, iteration: int) -> IterationPlan:
        """The phase plans iteration ``iteration`` should run."""
        ...

    def reset(self) -> None:
        """Forget all observations (start of a new run)."""
        ...

    def observe(
        self,
        iteration: int,
        *,
        queue_size: int,
        conflicts: int,
        work=None,
        tracer=None,
    ) -> None:
        """Feedback after iteration ``iteration``.

        ``queue_size`` is the number of vertices the iteration attempted,
        ``conflicts`` how many of them lost a race and re-enter the queue,
        ``work`` the engine's :class:`~repro.obs.work.WorkCounters` for the
        iteration's removal phase (``None`` on engines without counters),
        and ``tracer`` the run's tracer for emitting decision events.
        """
        ...


@dataclass(frozen=True)
class AdaptiveDecision:
    """One iteration's observation and the regime chosen for the next.

    ``conflict_checks`` mirrors the removal phase's
    ``work.conflict_checks`` counter (0 when the engine reports none) —
    the same number the tracer emits — so a decision trace documents both
    *what* was decided and *from which pinned counters*.
    """

    iteration: int
    queue_size: int
    conflicts: int
    rate: float
    conflict_checks: int
    next_regime: str  # "heavy" or "tail"


class AdaptiveSchedule:
    """Conflict-rate feedback controller (:class:`ScheduleController`).

    Starts in the *heavy* regime (default ``"N1-Ninf"``: net-based
    coloring for iteration 0, O(|E|) net-based removal every iteration)
    and drops to the *tail* regime (default ``"V-V-64D"``: all-vertex
    phases on the shrunk queue) from the first iteration whose conflict
    rate ``conflicts / queue_size`` falls below ``threshold``.  In other
    words: where the paper hand-picks the removal horizon ``k`` in
    ``N1-Nk``/``V-Nk``, the controller measures it — the net-based sweep
    keeps its flat O(|E|) price exactly as long as the conflict rate says
    the queue is still heavy.  The switch is one-way: once the frontier
    has collapsed it never regrows, because every queued vertex either
    keeps its color or re-enters the queue.

    Both regimes are ordinary :class:`~repro.core.plan.ScheduleSpec` specs,
    so the tail can also switch *balancing policy* (e.g.
    ``tail="V-V-64D-B1"`` colors the tail with the paper's B1 heuristic,
    or use ``@`` segments for finer control).  The tail must be all-vertex
    — it exists to stop paying the O(|E|) sweeps, and an all-vertex tail
    keeps the net-color/net-removal horizon invariant intact no matter
    which iteration the controller cuts over at (a valid heavy prefix
    truncated at any point stays valid).

    ``decisions`` holds one :class:`AdaptiveDecision` per observed
    iteration for inspection after a run (reset per run).
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        *,
        heavy: "str | ScheduleSpec" = "N1-Ninf",
        tail: "str | ScheduleSpec" = "V-V-64D",
    ):
        try:
            self.threshold = float(threshold)
        except (TypeError, ValueError):
            raise ColoringError(
                f"adaptive threshold must be a number in [0, 1), got "
                f"{threshold!r}"
            ) from None
        if not 0.0 <= self.threshold < 1.0:
            raise ColoringError(
                f"adaptive threshold must be in [0, 1), got {self.threshold:g}"
            )
        self.heavy = ScheduleSpec.parse(heavy)
        self.tail = ScheduleSpec.parse(tail)
        if self.tail.net_color_iters != 0 or self.tail.net_removal_iters != 0:
            raise ColoringError(
                f"adaptive tail spec {self.tail.name!r} must be all-vertex "
                "(the tail regime exists to stop paying O(|E|) net sweeps)"
            )
        self._switch_at: int | None = None
        self.decisions: list[AdaptiveDecision] = []

    # -- naming ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """Canonical controller name (round-trips via :func:`parse_adaptive`)."""
        if self.threshold == DEFAULT_THRESHOLD:
            return "adaptive"
        return f"adaptive:{self.threshold:g}"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveSchedule(threshold={self.threshold:g}, "
            f"heavy={self.heavy.name!r}, tail={self.tail.name!r})"
        )

    # -- the controller -------------------------------------------------------

    @property
    def switched_at(self) -> int | None:
        """First iteration run in the tail regime (``None`` = still heavy)."""
        return self._switch_at

    def reset(self) -> None:
        self._switch_at = None
        self.decisions = []

    def iteration_plan(self, iteration: int) -> IterationPlan:
        if self._switch_at is not None and iteration >= self._switch_at:
            return self.tail.iteration_plan(iteration)
        return self.heavy.iteration_plan(iteration)

    def observe(
        self,
        iteration: int,
        *,
        queue_size: int,
        conflicts: int,
        work=None,
        tracer=None,
    ) -> None:
        rate = conflicts / queue_size if queue_size else 0.0
        if self._switch_at is None and rate < self.threshold:
            self._switch_at = iteration + 1
        regime = "tail" if self._switch_at is not None else "heavy"
        self.decisions.append(
            AdaptiveDecision(
                iteration=iteration,
                queue_size=int(queue_size),
                conflicts=int(conflicts),
                rate=rate,
                conflict_checks=int(getattr(work, "conflict_checks", 0) or 0),
                next_regime=regime,
            )
        )
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.counter(
                "adaptive.conflict_rate",
                rate,
                iteration=iteration,
                regime=regime,
                threshold=self.threshold,
            )


# -- names ---------------------------------------------------------------------


def is_adaptive_name(name: str) -> bool:
    """Whether ``name`` is in the adaptive grammar ``adaptive[:threshold]``."""
    if not isinstance(name, str):
        return False
    low = name.strip().lower()
    return low == "adaptive" or low.startswith("adaptive:")


def parse_adaptive(name: str) -> AdaptiveSchedule:
    """Parse ``"adaptive"`` / ``"adaptive:<threshold>"`` into a controller.

    Returns a *fresh* controller each call — controllers are stateful
    within a run, so sharing one parsed instance across concurrent runs
    would entangle their decisions.  Raises
    :class:`~repro.errors.ColoringError` (one line) for a malformed or
    out-of-range threshold.
    """
    low = name.strip().lower()
    if low == "adaptive":
        return AdaptiveSchedule()
    body = low.partition(":")[2]
    try:
        threshold = float(body)
    except ValueError:
        raise ColoringError(
            f"cannot parse adaptive schedule {name!r}; expected 'adaptive' "
            "or 'adaptive:<threshold>' with a threshold in [0, 1) "
            "(e.g. 'adaptive:0.1')"
        ) from None
    return AdaptiveSchedule(threshold)
