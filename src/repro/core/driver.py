"""The speculative color → remove iteration driver (paper Algs. 1–3).

One driver serves both problems: a :class:`ProblemAdapter` supplies the four
phase kernels (vertex/net × color/remove) and the driver wires them into the
iterate-until-conflict-free loop on a simulated :class:`Machine`, honouring
an :class:`AlgorithmSpec` that says *which* kernel runs at *which* iteration
— the paper's ``X-Y`` naming scheme (Section VI):

* coloring is net-based for the first ``spec.net_color_iters`` iterations,
  vertex-based afterwards;
* conflict removal is net-based for the first ``spec.net_removal_iters``
  iterations, vertex-based afterwards;
* vertex-based removal feeds the next work queue through either the shared
  atomic queue (ColPack default) or lazy thread-private queues (the ``D``
  engineering fix);
* net-based removal resets clashing colors to ``UNCOLORED`` and the next
  work queue is collected by a cheap vectorized sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.core.policies import FirstFit
from repro.errors import ColoringError
from repro.machine.engine import QUEUE_ATOMIC, QUEUE_PRIVATE
from repro.machine.machine import Machine
from repro.machine.scheduler import Schedule
from repro.types import (
    ColoringResult,
    IterationRecord,
    PhaseKind,
    UNCOLORED,
)

__all__ = [
    "AlgorithmSpec",
    "BACKENDS",
    "ProblemAdapter",
    "run_speculative",
    "run_sequential",
]

#: Effectively-infinite iteration horizon (the paper's ``∞`` suffix).
INF_ITERS = 10**9

#: Execution backends accepted by :func:`run_speculative`: the
#: cycle-accurate simulated machine, or the vectorized NumPy fast path
#: (:mod:`repro.core.fastpath`).  See ``docs/backends.md``.
BACKENDS = ("sim", "numpy")


@dataclass(frozen=True)
class AlgorithmSpec:
    """Configuration of one named algorithm variant.

    Attributes
    ----------
    name:
        Display name, e.g. ``"N1-N2"``.
    chunk:
        Dynamic-scheduling chunk size (1 for plain ``V-V``, 64 otherwise).
    queue_mode:
        ``"atomic"`` (immediate shared queue) or ``"private"`` (lazy
        thread-private queues, the ``D`` variants) — only relevant for
        vertex-based removal iterations.
    net_color_iters:
        Number of leading iterations that use net-based coloring (Alg. 8).
    net_removal_iters:
        Number of leading iterations that use net-based removal (Alg. 7);
        ``INF_ITERS`` reproduces ``V-N∞``.
    """

    name: str
    chunk: int = 64
    queue_mode: str = QUEUE_PRIVATE
    net_color_iters: int = 0
    net_removal_iters: int = 0

    def __post_init__(self) -> None:
        if self.chunk < 1:
            raise ColoringError(f"chunk must be >= 1, got {self.chunk}")
        if self.queue_mode not in (QUEUE_ATOMIC, QUEUE_PRIVATE):
            raise ColoringError(f"bad queue mode {self.queue_mode!r}")
        if self.net_color_iters < 0 or self.net_removal_iters < 0:
            raise ColoringError("iteration horizons must be non-negative")
        # Net-based coloring finds its work by c[u] == UNCOLORED, so every
        # net-coloring iteration after the first must follow a net-based
        # removal (which resets losers to UNCOLORED).  Vertex-based removal
        # only queues losers without resetting them, which would starve a
        # subsequent net-coloring pass.
        if self.net_color_iters > self.net_removal_iters + 1:
            raise ColoringError(
                f"{self.name}: net_color_iters ({self.net_color_iters}) may "
                f"exceed net_removal_iters ({self.net_removal_iters}) by at "
                "most 1 — net coloring must follow a net-based removal"
            )


class ProblemAdapter(Protocol):
    """What a problem (BGPC / D2GC) must provide to the driver."""

    #: Number of vertices to color (|V_A| for BGPC, |V| for D2GC).
    n_targets: int
    #: Number of tasks in a net-based phase (|V_B| for BGPC, |V| for D2GC).
    n_nets: int

    def make_vertex_color_kernel(self, policy) -> Callable: ...

    def make_net_color_kernel(self, policy) -> Callable: ...

    def make_vertex_removal_kernel(self) -> Callable: ...

    def make_net_removal_kernel(self) -> Callable: ...

    def fastpath_groups(self):
        """Constraint-groups CSR for the NumPy backend.

        Nets × vertices for BGPC, closed neighborhoods × vertices for
        D2GC.  Only required when running with ``backend="numpy"``.
        """
        ...


def _run_fastpath_backend(
    adapter: ProblemAdapter,
    spec: AlgorithmSpec,
    policy,
    fastpath_mode: str,
    tracer=None,
) -> ColoringResult:
    """Dispatch target for ``backend="numpy"``: one vectorized run."""
    import time

    from repro.core.fastpath.engine import run_fastpath
    from repro.obs.tracer import ensure_tracer

    if policy is not None and not isinstance(policy, FirstFit):
        raise ColoringError(
            "backend='numpy' supports only the first-fit policy (U); "
            f"got {type(policy).__name__} — run B1/B2 on the simulator"
        )
    tracer = ensure_tracer(tracer)
    groups = adapter.fastpath_groups()
    t0 = time.perf_counter()
    with tracer.span(
        "run", algorithm=spec.name, backend="numpy", mode=fastpath_mode
    ) as run_span:
        colors, records = run_fastpath(groups, mode=fastpath_mode, tracer=tracer)
        run_span.set(
            num_colors=int(colors.max()) + 1 if colors.size else 0,
            iterations=len(records),
        )
    wall = time.perf_counter() - t0
    return ColoringResult(
        colors=colors,
        num_colors=int(colors.max()) + 1 if colors.size else 0,
        iterations=records,
        algorithm=spec.name,
        threads=1,
        cycles=0.0,
        backend="numpy",
        wall_seconds=wall,
    )


def run_speculative(
    adapter: ProblemAdapter,
    spec: AlgorithmSpec,
    threads: int,
    cost=None,
    policy=None,
    max_iterations: int = 200,
    backend: str = "sim",
    fastpath_mode: str = "exact",
    tracer=None,
) -> ColoringResult:
    """Run the full speculative loop of ``spec`` on a ``threads``-core machine.

    ``policy`` selects the color-choice heuristic for vertex-based coloring
    and, when it is B1/B2, also replaces the reverse-first-fit cursor inside
    net-based coloring (the paper's "net-based variants are also similar").
    ``None`` or :class:`FirstFit` keeps the paper's default behaviour.

    ``backend`` selects the execution vehicle (see ``docs/backends.md``):
    ``"sim"`` (default) runs ``spec``'s kernels task-by-task on the
    cycle-accurate :class:`Machine`; ``"numpy"`` runs the same speculative
    template as whole-array passes in :mod:`repro.core.fastpath`, ignoring
    ``threads``, ``cost``, ``max_iterations`` and ``spec``'s kernel
    schedule (it is bounded by a provable ``n + 1`` rounds instead) and
    honouring ``fastpath_mode`` — ``"exact"`` for byte-identical
    sequential-greedy colors, ``"speculative"`` for the fastest few-round
    variant.

    ``tracer`` hooks the run into the observability layer
    (:mod:`repro.obs`): per-iteration and per-phase spans with queue sizes,
    conflicts, palette growth and cycle counts.  ``None`` (default) routes
    through the zero-overhead :class:`repro.obs.NullTracer`.

    Raises :class:`ColoringError` if the loop fails to converge within
    ``max_iterations`` rounds (cannot happen for the paper's specs on finite
    graphs, but guards pathological custom kernels).
    """
    from repro.obs.tracer import ensure_tracer

    if backend not in BACKENDS:
        raise ColoringError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    if backend == "numpy":
        return _run_fastpath_backend(
            adapter, spec, policy, fastpath_mode, tracer=tracer
        )
    tracer = ensure_tracer(tracer)
    machine = Machine(threads, cost, tracer=tracer)
    machine.reset_thread_states()
    colors = np.full(adapter.n_targets, UNCOLORED, dtype=np.int64)
    memory = machine.make_memory(colors)
    schedule = Schedule.dynamic(spec.chunk)

    vertex_policy = policy if policy is not None else FirstFit()
    net_policy = None if policy is None or isinstance(policy, FirstFit) else policy

    vertex_color = adapter.make_vertex_color_kernel(vertex_policy)
    net_color = adapter.make_net_color_kernel(net_policy)
    vertex_remove = adapter.make_vertex_removal_kernel()
    net_remove = adapter.make_net_removal_kernel()

    work = np.arange(adapter.n_targets, dtype=np.int64)
    records: list[IterationRecord] = []
    iteration = 0
    palette = 0

    with tracer.span(
        "run", algorithm=spec.name, backend="sim", threads=threads
    ) as run_span:
        while work.size:
            if iteration >= max_iterations:
                raise ColoringError(
                    f"{spec.name} did not converge in {max_iterations} iterations "
                    f"({work.size} vertices still queued)"
                )
            with tracer.span(
                "iteration", iteration=iteration, queue_size=int(work.size)
            ) as iter_span:
                # ---- coloring phase -----------------------------------------
                color_kind = "net" if iteration < spec.net_color_iters else "vertex"
                with tracer.span(
                    "phase",
                    iteration=iteration,
                    phase=PhaseKind.COLOR,
                    kind=color_kind,
                ) as phase_span:
                    if color_kind == "net":
                        color_timing, _ = machine.parallel_for(
                            adapter.n_nets,
                            net_color,
                            memory,
                            schedule=schedule,
                            phase_kind=PhaseKind.COLOR,
                        )
                    else:
                        color_timing, _ = machine.parallel_for(
                            work.size,
                            vertex_color,
                            memory,
                            schedule=schedule,
                            phase_kind=PhaseKind.COLOR,
                            task_ids=work,
                        )
                    phase_span.set(
                        items=color_timing.tasks, cycles=color_timing.cycles
                    )
                # ---- conflict-removal phase ---------------------------------
                remove_kind = "net" if iteration < spec.net_removal_iters else "vertex"
                with tracer.span(
                    "phase",
                    iteration=iteration,
                    phase=PhaseKind.REMOVE,
                    kind=remove_kind,
                ) as phase_span:
                    if remove_kind == "net":
                        remove_timing, _ = machine.parallel_for(
                            adapter.n_nets,
                            net_remove,
                            memory,
                            schedule=schedule,
                            phase_kind=PhaseKind.REMOVE,
                            extra_wall=machine.parallel_scan_cost(adapter.n_targets),
                        )
                        next_work = np.nonzero(memory.values == UNCOLORED)[0].astype(
                            np.int64
                        )
                    else:
                        remove_timing, queued = machine.parallel_for(
                            work.size,
                            vertex_remove,
                            memory,
                            schedule=schedule,
                            queue_mode=spec.queue_mode,
                            phase_kind=PhaseKind.REMOVE,
                            task_ids=work,
                        )
                        next_work = np.asarray(queued, dtype=np.int64)
                    phase_span.set(
                        items=remove_timing.tasks,
                        cycles=remove_timing.cycles,
                        conflicts=int(next_work.size),
                    )

                # Palette growth: the high-water color count is monotone (a
                # net-based removal may reset colors, never retire them).
                committed_max = int(memory.values.max()) if memory.values.size else -1
                colors_introduced = max(0, committed_max + 1 - palette)
                palette = max(palette, committed_max + 1)

                records.append(
                    IterationRecord(
                        index=iteration,
                        queue_size=int(work.size),
                        conflicts=int(next_work.size),
                        color_timing=color_timing,
                        remove_timing=remove_timing,
                        colors_introduced=colors_introduced,
                    )
                )
                iter_span.set(
                    conflicts=int(next_work.size),
                    colors_introduced=colors_introduced,
                    cycles=color_timing.cycles + remove_timing.cycles,
                )
            work = next_work
            iteration += 1

        final = memory.snapshot()
        run_span.set(
            iterations=iteration,
            cycles=machine.trace.total_cycles,
            num_colors=int(final.max()) + 1 if final.size else 0,
        )
    if final.size and final.min() < 0:
        raise ColoringError(
            f"{spec.name} finished with {int((final < 0).sum())} uncolored vertices"
        )
    return ColoringResult(
        colors=final,
        num_colors=int(final.max()) + 1 if final.size else 0,
        iterations=records,
        algorithm=spec.name,
        threads=threads,
        cycles=machine.trace.total_cycles,
    )


def run_sequential(
    adapter: ProblemAdapter,
    cost=None,
    policy=None,
    name: str = "sequential",
    tracer=None,
) -> ColoringResult:
    """Sequential greedy baseline: one thread, one pass, no verification.

    The paper's Table II notes that sequential executions skip the conflict
    detection phase entirely; we reproduce that by running the vertex-based
    coloring kernel once, statically scheduled on one thread (no chunk fees,
    no races).  ``tracer`` hooks the single pass into :mod:`repro.obs`.
    """
    from repro.obs.tracer import ensure_tracer

    tracer = ensure_tracer(tracer)
    machine = Machine(1, cost, tracer=tracer)
    colors = np.full(adapter.n_targets, UNCOLORED, dtype=np.int64)
    memory = machine.make_memory(colors)
    kernel = adapter.make_vertex_color_kernel(policy if policy is not None else FirstFit())
    with tracer.span("run", algorithm=name, backend="sim", threads=1) as run_span:
        with tracer.span(
            "phase", iteration=0, phase=PhaseKind.COLOR, kind="vertex"
        ) as phase_span:
            timing, _ = machine.parallel_for(
                adapter.n_targets,
                kernel,
                memory,
                schedule=Schedule.static(),
                phase_kind=PhaseKind.COLOR,
            )
            phase_span.set(items=timing.tasks, cycles=timing.cycles)
        final = memory.snapshot()
        run_span.set(
            iterations=1,
            cycles=machine.trace.total_cycles,
            num_colors=int(final.max()) + 1 if final.size else 0,
        )
    record = IterationRecord(
        index=0,
        queue_size=adapter.n_targets,
        conflicts=0,
        color_timing=timing,
        remove_timing=None,
        colors_introduced=int(final.max()) + 1 if final.size else 0,
    )
    return ColoringResult(
        colors=final,
        num_colors=int(final.max()) + 1 if final.size else 0,
        iterations=[record],
        algorithm=name,
        threads=1,
        cycles=machine.trace.total_cycles,
    )
