"""The speculative color → remove iteration driver (paper Algs. 1–3).

One driver serves both problems and every backend: a
:class:`ProblemAdapter` supplies the four phase kernels (vertex/net ×
color/remove), a :class:`~repro.core.plan.ScheduleSpec` says *which*
kernel runs at *which* iteration — the paper's ``X-Y`` naming scheme
(Section VI) — and an :class:`~repro.core.backends.ExecutionBackend`
from the registry says *where* the phases execute.  The loop itself
lives in :func:`repro.core.backends.run_plan_loop`; this module is the
user-facing dispatch plus the sequential baseline.

* coloring is net-based for the first ``spec.net_color_iters``
  iterations, vertex-based afterwards;
* conflict removal is net-based for the first ``spec.net_removal_iters``
  iterations, vertex-based afterwards;
* vertex-based removal feeds the next work queue through either the shared
  atomic queue (ColPack default) or lazy thread-private queues (the ``D``
  engineering fix);
* net-based removal resets clashing colors to ``UNCOLORED`` and the next
  work queue is collected by a cheap vectorized sweep.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.backends import backend_names, get_backend
from repro.core.plan import INF_ITERS, AlgorithmSpec, ScheduleSpec
from repro.core.policies import FirstFit, get_policy
from repro.errors import ColoringError
from repro.machine.machine import Machine
from repro.machine.scheduler import Schedule
from repro.types import ColoringResult, IterationRecord, PhaseKind, UNCOLORED

__all__ = [
    "AlgorithmSpec",
    "ScheduleSpec",
    "BACKENDS",
    "INF_ITERS",
    "ProblemAdapter",
    "run_speculative",
    "run_sequential",
]

#: Snapshot of the registered backend names at import time, kept for
#: backward compatibility.  Prefer :func:`repro.core.backends.backend_names`
#: (live) or :func:`repro.core.backends.get_backend`; see
#: ``docs/backends.md``.
BACKENDS = backend_names()


class ProblemAdapter(Protocol):
    """What a problem (BGPC / D2GC) must provide to the driver."""

    #: Number of vertices to color (|V_A| for BGPC, |V| for D2GC).
    n_targets: int
    #: Number of tasks in a net-based phase (|V_B| for BGPC, |V| for D2GC).
    n_nets: int

    def make_vertex_color_kernel(self, policy) -> Callable: ...

    def make_net_color_kernel(self, policy) -> Callable: ...

    def make_vertex_removal_kernel(self) -> Callable: ...

    def make_net_removal_kernel(self) -> Callable: ...

    def fastpath_groups(self):
        """Constraint-groups CSR for the NumPy backend.

        Nets × vertices for BGPC, closed neighborhoods × vertices for
        D2GC.  Only required when running with ``backend="numpy"``.
        """
        ...


def run_speculative(
    adapter: ProblemAdapter,
    spec: "str | ScheduleSpec | AlgorithmSpec",
    threads: int,
    cost=None,
    policy=None,
    max_iterations: int = 200,
    backend: str = "sim",
    fastpath_mode: str = "exact",
    tracer=None,
    **backend_options,
) -> ColoringResult:
    """Run the full speculative loop of ``spec`` on the chosen backend.

    ``spec`` may be a schedule name in the paper's grammar (``"N1-N2"``,
    ``"v-n∞"``, ``"N1-Ninf-B2"``, ``"V-V-64D-B1@2"`` — see
    :meth:`ScheduleSpec.parse <repro.core.plan.ScheduleSpec.parse>`), a
    structured :class:`~repro.core.plan.ScheduleSpec`, a legacy
    :class:`~repro.core.plan.AlgorithmSpec` (still supported; its display
    name is preserved), an adaptive name (``"adaptive"``,
    ``"adaptive:0.1"``) or :class:`~repro.core.adaptive.AdaptiveSchedule`
    controller — adaptive schedules require a kernel-level backend
    (``sim``/``threaded``/``process``; see ``docs/adaptive.md``).

    ``policy`` selects the color-choice heuristic for vertex-based coloring
    and, when it is B1/B2, also replaces the reverse-first-fit cursor inside
    net-based coloring (the paper's "net-based variants are also similar").
    ``None`` keeps the paper's default behaviour — unless the schedule
    itself carries a balancing suffix (``"N1-N2-B1"``), which resolves the
    matching policy automatically.  An explicit ``policy`` argument wins.

    ``backend`` names any registered :class:`~repro.core.backends.ExecutionBackend`
    (see ``docs/backends.md``): ``"sim"`` (default) runs the kernels
    task-by-task on the cycle-accurate :class:`Machine`; ``"threaded"``
    runs the same kernels on real Python threads (wall-clock,
    nondeterministic but always valid); ``"numpy"`` runs the speculative
    template as whole-array passes in :mod:`repro.core.fastpath`, ignoring
    ``threads``, ``cost``, ``max_iterations`` and the kernel schedule (it
    is bounded by a provable ``n + 1`` rounds instead) and honouring
    ``fastpath_mode`` — ``"exact"`` for byte-identical sequential-greedy
    colors, ``"speculative"`` for the fastest few-round variant.

    Extra keyword arguments are forwarded to the backend verbatim
    (``backend_options``): the sharded backend takes ``partitioner`` /
    ``batch`` / ``seed`` this way (see ``docs/sharding.md``).  Backends
    reject options they do not understand with :class:`ColoringError`.

    ``tracer`` hooks the run into the observability layer
    (:mod:`repro.obs`): per-iteration and per-phase spans with queue sizes,
    conflicts, palette growth and cycle counts.  ``None`` (default) routes
    through the zero-overhead :class:`repro.obs.NullTracer`.

    Raises :class:`ColoringError` for unknown backends or schedules (the
    message lists the valid names), and if the loop fails to converge
    within ``max_iterations`` rounds (cannot happen for the paper's specs
    on finite graphs, but guards pathological custom kernels).
    """
    engine_backend = get_backend(backend)
    if isinstance(spec, str):
        from repro.core.adaptive import is_adaptive_name, parse_adaptive

        if is_adaptive_name(spec):
            spec = parse_adaptive(spec)
    if hasattr(spec, "observe"):
        # An adaptive ScheduleController: it picks kernels and balancing
        # per iteration from the loop's feedback, so only backends that
        # actually drive run_plan_loop can honor it.
        if not getattr(engine_backend, "supports_controller", False):
            raise ColoringError(
                f"backend={backend!r} cannot run adaptive schedules (it "
                "does not drive the kernel-level plan loop); use sim, "
                "threaded or process"
            )
        schedule = spec
        name = spec.name
    else:
        schedule = ScheduleSpec.parse(spec)
        name = (
            spec.name
            if isinstance(spec, (AlgorithmSpec, ScheduleSpec))
            else schedule.name
        )
        # A static balancing suffix resolves one policy for the whole run;
        # schedules with "@" switch segments leave policy=None so the plan
        # loop can resolve the active label per iteration.
        if policy is None and schedule.balancing != "U" and not schedule.switches:
            policy = get_policy(schedule.balancing)
    return engine_backend.run(
        adapter,
        schedule,
        name=name,
        threads=threads,
        cost=cost,
        policy=policy,
        max_iterations=max_iterations,
        fastpath_mode=fastpath_mode,
        tracer=tracer,
        **backend_options,
    )


def run_sequential(
    adapter: ProblemAdapter,
    cost=None,
    policy=None,
    name: str = "sequential",
    tracer=None,
) -> ColoringResult:
    """Sequential greedy baseline: one thread, one pass, no verification.

    The paper's Table II notes that sequential executions skip the conflict
    detection phase entirely; we reproduce that by running the vertex-based
    coloring kernel once, statically scheduled on one thread (no chunk fees,
    no races).  ``tracer`` hooks the single pass into :mod:`repro.obs`.
    """
    from repro.obs.tracer import ensure_tracer
    from repro.obs.work import WorkCounters

    tracer = ensure_tracer(tracer)
    machine = Machine(1, cost, tracer=tracer)
    colors = np.full(adapter.n_targets, UNCOLORED, dtype=np.int64)
    memory = machine.make_memory(colors)
    kernel = adapter.make_vertex_color_kernel(policy if policy is not None else FirstFit())
    run_work = WorkCounters()
    with tracer.span("run", algorithm=name, backend="sim", threads=1) as run_span:
        with tracer.span(
            "phase", iteration=0, phase=PhaseKind.COLOR, kind="vertex"
        ) as phase_span:
            timing, _ = machine.parallel_for(
                adapter.n_targets,
                kernel,
                memory,
                schedule=Schedule.static(),
                phase_kind=PhaseKind.COLOR,
                work=run_work,
            )
            phase_span.set(items=timing.tasks, cycles=timing.cycles)
        if tracer.enabled:
            run_work.emit(tracer, iteration=0, phase=PhaseKind.COLOR, kind="vertex")
        final = memory.snapshot()
        run_span.set(
            iterations=1,
            cycles=machine.trace.total_cycles,
            num_colors=int(final.max()) + 1 if final.size else 0,
        )
    record = IterationRecord(
        index=0,
        queue_size=adapter.n_targets,
        conflicts=0,
        color_timing=timing,
        remove_timing=None,
        colors_introduced=int(final.max()) + 1 if final.size else 0,
    )
    return ColoringResult(
        colors=final,
        num_colors=int(final.max()) + 1 if final.size else 0,
        iterations=[record],
        algorithm=name,
        threads=1,
        cycles=machine.trace.total_cycles,
        work_metrics=run_work.as_dict(),
    )
