"""NumPy fast-path BGPC: color ``V_A`` at wall-clock speed.

For BGPC the constraint groups are exactly the nets, so the bipartite
instance's ``net_to_vtxs`` CSR feeds :func:`repro.core.fastpath.run_fastpath`
directly.  Ordering support mirrors :func:`repro.core.bgpc.color_bgpc`:
the graph is permuted up front and the colors are mapped back to original
vertex ids afterwards.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fastpath.engine import run_fastpath
from repro.graph.bipartite import BipartiteGraph
from repro.types import ColoringResult

__all__ = ["fastpath_color_bgpc"]


def fastpath_color_bgpc(
    bg: BipartiteGraph,
    mode: str = "exact",
    order: np.ndarray | None = None,
    max_rounds: int | None = None,
    tracer=None,
) -> ColoringResult:
    """Color the ``V_A`` side of ``bg`` with the vectorized NumPy backend.

    ``mode="exact"`` returns the byte-identical sequential-greedy palette;
    ``mode="speculative"`` runs the paper's optimistic template in a few
    whole-array rounds.  The result carries ``backend="numpy"``, measured
    ``wall_seconds``, and zero simulated cycles.  ``tracer`` streams
    per-round events through :mod:`repro.obs`.
    """
    t0 = time.perf_counter()
    work = bg if order is None else bg.permute_vertices(
        np.asarray(order, dtype=np.int64)
    )
    colors, records = run_fastpath(
        work.net_to_vtxs, mode=mode, max_rounds=max_rounds, tracer=tracer
    )
    if order is not None:
        restored = np.empty_like(colors)
        restored[np.asarray(order, dtype=np.int64)] = colors
        colors = restored
    return ColoringResult(
        colors=colors,
        num_colors=int(colors.max()) + 1 if colors.size else 0,
        iterations=records,
        algorithm=f"fastpath-{mode}",
        threads=1,
        cycles=0.0,
        backend="numpy",
        wall_seconds=time.perf_counter() - t0,
    )
