"""Vectorized NumPy execution backend (``backend="numpy"``).

Runs the speculative color → detect → repeat template as whole-array
NumPy passes instead of per-task simulated kernels — see
``docs/backends.md`` for when to prefer it over the simulator.

Public entry points:

* :func:`repro.core.fastpath.run_fastpath` — generic groups-CSR engine
* :func:`repro.core.fastpath.fastpath_color_bgpc` /
  :func:`repro.core.fastpath.fastpath_color_d2gc` — per-problem wrappers
* :func:`repro.core.fastpath.d2gc_groups_csr` — the closed-neighborhood
  reduction that lets one engine serve both problems
* :data:`repro.core.fastpath.FASTPATH_MODES` — ``("exact", "speculative")``
"""

from repro.core.fastpath.bgpc import fastpath_color_bgpc
from repro.core.fastpath.d2gc import d2gc_groups_csr, fastpath_color_d2gc
from repro.core.fastpath.engine import FASTPATH_MODES, GroupLayout, run_fastpath

__all__ = [
    "FASTPATH_MODES",
    "GroupLayout",
    "run_fastpath",
    "fastpath_color_bgpc",
    "fastpath_color_d2gc",
    "d2gc_groups_csr",
]
