"""Packed uint64 color bitsets for the speculative fast path.

The speculative round needs, per queue vertex, the set of colors already
committed in any of its groups — and then the ``(r+1)``-th color *not* in
that set (the rank-offset first fit).  Materializing the sets as a dense
``(n_groups × palette)`` float matrix (the pre-bitset engine) costs
O(n_groups · palette) bytes per round plus a scipy sparse matvec; packing
64 colors per uint64 word cuts the memory ~32x, turns the per-vertex OR
into a single ``np.bitwise_or.reduceat`` over the transposed layout, and
answers the first fit with a vectorized find-``(r+1)``-th-zero-bit — all
plain NumPy, no scipy.

The packed width is ``ceil(cap / 64)`` words where ``cap`` bounds the
colors any vertex can pick this round (``cmax + rmax + 3``); Lemma 1's
``L = max_v |vtxs(v)|`` bounds the palette globally, so the width never
grows past ``ceil((L + 1) / 64)`` words.

Three primitives, each pure NumPy and loop-free:

:func:`pack_color_masks`
    Scatter committed ``(group, color)`` pairs into per-group packed
    masks via a sort + segmented OR (``np.bitwise_or.reduceat``).
:func:`or_reduce_segments`
    OR together contiguous runs of mask rows — the per-queue-vertex
    union over the vertex's groups.
:func:`nth_free_color`
    The ``(r+1)``-th zero bit of each row: per-word free counts
    (popcount), a cumulative sum to find the word, then a six-step
    binary search inside it.

``popcount`` uses ``numpy.bitwise_count`` when available (NumPy ≥ 2.0)
and falls back to a SWAR (SIMD-within-a-register) implementation on the
older NumPy the CI floor allows.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "mask_words",
    "nth_free_color",
    "or_reduce_segments",
    "pack_color_masks",
    "popcount",
]

#: Bits per packed word (uint64).
WORD_BITS = 64

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def _popcount_swar(words: np.ndarray) -> np.ndarray:
    """Branch-free 64-bit popcount (Hacker's Delight 5-2), vectorized."""
    x = words.astype(np.uint64, copy=True)
    x -= (x >> np.uint64(1)) & _M1
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return ((x * _H01) >> np.uint64(56)).astype(np.int64)


if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def popcount(words: np.ndarray) -> np.ndarray:
        """Set-bit count of each uint64 word, as int64."""
        return np.bitwise_count(words).astype(np.int64)

else:  # pragma: no cover - exercised only on the NumPy 1.x CI floor
    popcount = _popcount_swar


def mask_words(cap: int) -> int:
    """Packed words needed to hold colors ``0 .. cap-1`` (≥ 1)."""
    return max(1, (int(cap) + WORD_BITS - 1) // WORD_BITS)


def pack_color_masks(
    group_ids: np.ndarray, colors: np.ndarray, n_groups: int, words: int
) -> np.ndarray:
    """Packed per-group forbidden sets from committed ``(group, color)`` pairs.

    Returns a ``(n_groups, words)`` uint64 array whose row ``g`` has bit
    ``c`` set exactly when some pair ``(g, c)`` was given.  Duplicate
    pairs are fine (OR is idempotent).  Built without ``np.bitwise_or.at``
    (slow scatter-reduce): pairs are keyed by ``group * words + word``,
    sorted, OR-reduced per key run with ``np.bitwise_or.reduceat``, and
    scattered once into the flat mask array.
    """
    flat = np.zeros(int(n_groups) * words, dtype=np.uint64)
    if group_ids.size:
        col = colors.astype(np.int64)
        key = group_ids.astype(np.int64) * words + (col >> 6)
        bits = np.uint64(1) << (col & 63).astype(np.uint64)
        order = np.argsort(key, kind="stable")
        sk = key[order]
        sb = bits[order]
        starts = np.nonzero(np.concatenate(([True], sk[1:] != sk[:-1])))[0]
        flat[sk[starts]] = np.bitwise_or.reduceat(sb, starts)
    return flat.reshape(int(n_groups), words)


def or_reduce_segments(rows: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """OR together contiguous runs of mask rows.

    ``rows`` is ``(sum(lengths), words)`` uint64; segment ``i`` covers the
    next ``lengths[i]`` rows.  Returns ``(lengths.size, words)`` with the
    OR of each segment; zero-length segments (which
    ``np.bitwise_or.reduceat`` cannot express) yield all-zero rows.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    out = np.zeros((lengths.size, rows.shape[1]), dtype=np.uint64)
    nonempty = lengths > 0
    if rows.shape[0] and np.any(nonempty):
        segptr = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=segptr[1:])
        out[nonempty] = np.bitwise_or.reduceat(
            rows, segptr[:-1][nonempty], axis=0
        )
    return out


def nth_free_color(forbidden: np.ndarray, ranks: np.ndarray) -> np.ndarray:
    """Index of the ``(ranks[i]+1)``-th zero bit of ``forbidden[i]``.

    ``forbidden`` is ``(q, words)`` uint64; bit ``c`` of row ``i`` set
    means color ``c`` is taken for queue vertex ``i``.  Bits past the last
    packed word are implicitly free: the caller sizes ``words`` so the
    answer always lands inside the packed range (``cap`` colors cover the
    worst case ``forbidden-count + rank + 1``), but even at the boundary
    the virtual free tail keeps the search total.

    The word holding the answer is found by a cumulative free-bit count
    (popcount of the complement); the bit inside it by a six-step binary
    search narrowing 64 → 1 bits with popcounts of the low halves.
    """
    q, words = forbidden.shape
    r = np.asarray(ranks, dtype=np.int64)
    free = ~forbidden
    counts = popcount(free.reshape(q * words)).reshape(q, words)
    cum = np.cumsum(counts, axis=1)
    in_pack = cum[:, -1] > r if words else np.zeros(q, dtype=bool)
    # First word whose cumulative free count exceeds r (clamped for the
    # overflow rows, whose search result is discarded below).
    w = np.minimum((cum <= r[:, None]).sum(axis=1), max(words - 1, 0))
    rows_ix = np.arange(q)
    before = np.where(w > 0, cum[rows_ix, np.maximum(w - 1, 0)], 0)
    k = r - before
    word = free[rows_ix, w] if words else np.zeros(q, dtype=np.uint64)
    # Binary search inside the 64-bit word for the (k+1)-th set bit.
    pos = np.zeros(q, dtype=np.int64)
    cur = word.astype(np.uint64)
    kk = np.maximum(k, 0)
    for shift in (32, 16, 8, 4, 2, 1):
        low = cur & np.uint64((1 << shift) - 1)
        c = popcount(low)
        go_high = c <= kk
        kk = np.where(go_high, kk - c, kk)
        pos += np.where(go_high, shift, 0)
        cur = np.where(go_high, cur >> np.uint64(shift), low)
    tail = words * WORD_BITS + (r - (cum[:, -1] if words else 0))
    return np.where(in_pack, w * WORD_BITS + pos, tail)
