"""NumPy fast-path D2GC via the closed-neighborhood groups reduction.

Two vertices are within distance 2 exactly when they share a closed
neighborhood ``{v} ∪ nbor(v)``, so distance-2 coloring is group coloring
over one group per vertex.  :func:`d2gc_groups_csr` builds that groups CSR
in a couple of array passes (each row interleaves the middle vertex before
its adjacency slice), after which the generic engine applies unchanged.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fastpath.engine import run_fastpath
from repro.graph.csr import CSR
from repro.graph.unipartite import Graph
from repro.types import ColoringResult

__all__ = ["d2gc_groups_csr", "fastpath_color_d2gc"]


def d2gc_groups_csr(g: Graph) -> CSR:
    """Closed-neighborhood groups CSR: row ``v`` holds ``{v} ∪ nbor(v)``."""
    n = g.num_vertices
    ptr, idx = g.adj.ptr, g.adj.idx
    gptr = ptr + np.arange(n + 1, dtype=np.int64)
    gidx = np.empty(idx.size + n, dtype=np.int64)
    mask = np.ones(gidx.size, dtype=bool)
    mask[gptr[:-1]] = False
    gidx[gptr[:-1]] = np.arange(n, dtype=np.int64)
    gidx[mask] = idx
    return CSR(gptr, gidx, n)


def fastpath_color_d2gc(
    g: Graph,
    mode: str = "exact",
    order: np.ndarray | None = None,
    max_rounds: int | None = None,
    tracer=None,
) -> ColoringResult:
    """Distance-2 color ``g`` with the vectorized NumPy backend.

    Same modes, result shape and ``tracer`` hook as
    :func:`repro.core.fastpath.fastpath_color_bgpc`.
    """
    t0 = time.perf_counter()
    work = g if order is None else g.permute(np.asarray(order, dtype=np.int64))
    groups = d2gc_groups_csr(work)
    colors, records = run_fastpath(groups, mode=mode, max_rounds=max_rounds, tracer=tracer)
    if order is not None:
        restored = np.empty_like(colors)
        restored[np.asarray(order, dtype=np.int64)] = colors
        colors = restored
    return ColoringResult(
        colors=colors,
        num_colors=int(colors.max()) + 1 if colors.size else 0,
        iterations=records,
        algorithm=f"fastpath-{mode}",
        threads=1,
        cycles=0.0,
        backend="numpy",
        wall_seconds=time.perf_counter() - t0,
    )
