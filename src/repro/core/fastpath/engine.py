"""Vectorized speculative-coloring engine: whole-array NumPy passes.

The simulated machine executes the paper's kernels one task at a time to
count cycles; this module executes the *same* speculative
color → detect-conflicts → repeat template (paper Algs. 1–3) as a handful
of whole-array NumPy passes per round, so a coloring finishes at real
hardware speed.  One engine serves both problems because both reduce to
the same structure: a "groups" CSR mapping each constraint group to its
member vertices — the nets of a bipartite instance for BGPC, the closed
neighborhoods for D2GC (see :func:`repro.core.fastpath.d2gc.d2gc_groups_csr`).
Two members of a group must not share a color.

Two modes are provided:

``exact``
    Level-synchronous greedy.  Per round the frontier is every uncolored
    vertex with no smaller-id uncolored co-member; frontier vertices take
    the smallest color unused among their (necessarily already colored)
    smaller co-members.  Because the co-membership relation is symmetric,
    this is byte-identical to the sequential natural-order greedy — same
    colors, same count — at the price of one round per level of the
    dependency DAG.
``speculative``
    The paper's optimistic template.  Every uncolored vertex tentatively
    picks a color in one pass (rank-offset first fit: the ``(r+1)``-th
    free color, where ``r`` counts smaller uncolored co-members, so the
    members of a clique spread over distinct colors immediately), then a
    net-based detection sweep (Alg. 7: first member of a net keeps each
    color) demotes all but the smallest-id claimant of every
    ``(group, color)`` pair.  Converges in a handful of rounds and is
    deterministic, but — exactly like the paper's parallel runs — the
    palette may differ from the sequential one.

Everything here is pure NumPy on int32/int64 arrays; no simulated machine,
no cycle counts.  The per-round records report queue sizes, conflicts,
palette growth (``colors_introduced``) and measured per-round
``wall_seconds``, with ``None`` phase timings; pass a
:class:`repro.obs.Tracer` to stream the same numbers as structured
``setup``/``round`` events (see ``docs/observability.md``).

This engine is wrapped by :class:`repro.core.backends.NumpyBackend` and
registered as ``"numpy"`` in the execution-backend registry, which is how
``run_speculative``/``color_bgpc``/``color_d2gc`` and the CLI reach it
(see ``docs/backends.md``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.fastpath.bitset import (
    mask_words,
    nth_free_color,
    or_reduce_segments,
    pack_color_masks,
)
from repro.errors import ColoringError
from repro.graph.csr import CSR
from repro.obs.tracer import NULL_TRACER, ensure_tracer
from repro.obs.work import WorkCounters
from repro.types import IterationRecord, UNCOLORED

__all__ = ["FASTPATH_MODES", "GroupLayout", "rank_dtype", "run_fastpath"]

#: Engine modes: ``exact`` (byte-identical to sequential) and
#: ``speculative`` (paper-style optimistic rounds).
FASTPATH_MODES = ("exact", "speculative")


def _ragged_take(values: np.ndarray, starts: np.ndarray, lengths: np.ndarray):
    """Concatenate ``values[starts[i] : starts[i] + lengths[i]]`` slices.

    Returns the gathered values and, aligned with them, the index ``i`` of
    the slice each element came from.  The workhorse for expanding per-
    vertex group lists and per-group member prefixes without Python loops.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, values.dtype), np.empty(0, np.int64)
    owner = np.repeat(np.arange(starts.size, dtype=np.int64), lengths)
    offs = np.concatenate(([0], np.cumsum(lengths)))[:-1]
    pos = np.arange(total, dtype=np.int64) - offs[owner] + starts[owner]
    return values[pos], owner


def rank_dtype(n_entries: int):
    """Accumulator dtype for cumulative counts over ``n_entries`` entries.

    The speculative rank pass runs ``np.cumsum`` over every CSR entry; its
    values are bounded by the entry count, so int32 is safe — and cheaper —
    exactly while ``n_entries`` stays under the int32 guard that
    :class:`GroupLayout` already applies to its index arrays.  At ≥2³¹
    entries the cumsum would silently wrap, so the accumulator widens to
    int64 in lockstep.
    """
    return np.int32 if n_entries < np.iinfo(np.int32).max else np.int64


class GroupLayout:
    """Sorted-member CSR layout shared by both engine modes.

    Built once per instance from the groups CSR (groups × vertices):

    * ``gptr``/``gidx`` — the groups CSR with each member list sorted
      ascending (sorting never changes greedy results: min/mex/first-
      occurrence are order-free, but sortedness is what makes ranks and
      colored prefixes expressible as array slices);
    * ``tptr``/``tgroups`` — the transposed view: the groups containing
      each vertex, in group order;
    * ``prefix_len`` — aligned with ``tgroups``: how many members of that
      group have a smaller id than this vertex, i.e. the length of the
      vertex's sorted-prefix in the group's member list.
    """

    def __init__(self, groups: CSR):
        gptr = np.asarray(groups.ptr, dtype=np.int64)
        n_groups = groups.nrows
        n = groups.ncols
        small = n < np.iinfo(np.int32).max and groups.idx.size < np.iinfo(np.int32).max
        itype = np.int32 if small else np.int64
        gidx = np.asarray(groups.idx, dtype=itype)
        gdeg = np.diff(gptr)
        group_of_entry = np.repeat(np.arange(n_groups, dtype=itype), gdeg)
        if gidx.size > 1:
            seg_start = np.zeros(gidx.size, dtype=bool)
            seg_start[gptr[:-1][gdeg > 0]] = True
            if np.any((np.diff(gidx) < 0) & ~seg_start[1:]):
                gidx = gidx[np.lexsort((gidx, group_of_entry))]
        self.n = n
        self.n_groups = n_groups
        self.itype = itype
        self.rank_dtype = rank_dtype(gidx.size)
        self.gptr = gptr
        self.gidx = gidx
        self.gdeg = gdeg
        self.group_of_entry = group_of_entry
        # Transpose: stable sort by member id keeps, per vertex, ascending
        # group order (gidx is laid out group-major).
        order = np.argsort(gidx, kind="stable")
        self.tdeg = np.bincount(gidx, minlength=n).astype(np.int64)
        self.tptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self.tdeg, out=self.tptr[1:])
        self.tgroups = group_of_entry[order]
        self.gpos = order
        self.prefix_len = order - gptr[self.tgroups]


def _emit_round_work(tracer, work: WorkCounters | None, rounds: int, mode: str,
                     tasks: int, scans: int, checks: int, pushes: int,
                     writes: int) -> None:
    """Record one vectorized round's work deltas (counter parity with the
    per-task backends: a "task" here is one vertex processed by the round's
    whole-array pass)."""
    if work is None and not tracer.enabled:
        return
    delta = WorkCounters()
    delta.tasks = tasks
    delta.scans = scans
    delta.conflict_checks = checks
    delta.queue_pushes = pushes
    delta.color_writes = writes
    if work is not None:
        work.merge(delta)
    if tracer.enabled:
        delta.emit(tracer, iteration=rounds, mode=mode)


def _color_exact(lay: GroupLayout, max_rounds: int, tracer=NULL_TRACER, work=None):
    """Level-synchronous rounds; byte-identical to sequential greedy.

    Invariant: a vertex is frontier exactly when every uncolored member of
    each of its groups has a larger id — so the already-colored members of
    a group are precisely the sorted-prefix before the frontier vertex,
    and their colors can be gathered as a slice (``prefix_len``).  Per
    group a cursor walks the sorted member list; the frontier is detected
    by counting, per vertex, how many of its groups have their cursor
    parked on it.
    """
    n, gptr, gidx = lay.n, lay.gptr, lay.gidx
    colors = np.full(n, UNCOLORED, dtype=np.int32)
    cur = gptr[:-1].copy()
    alive = lay.gdeg > 0
    count = np.zeros(n, dtype=np.int64)
    if np.any(alive):
        count = np.bincount(gidx[cur[alive]], minlength=n).astype(np.int64)
    frontier = np.nonzero(count == lay.tdeg)[0]
    cmax = -1
    records: list[IterationRecord] = []
    colored = 0
    rounds = 0
    while colored < n:
        if rounds >= max_rounds:
            raise ColoringError(
                f"fastpath exact mode did not converge in {max_rounds} rounds"
            )
        t_round = time.perf_counter()
        cmax_before = cmax
        F = frontier
        flat_idx, own1 = _ragged_take(
            np.arange(lay.tgroups.size, dtype=np.int64), lay.tptr[F], lay.tdeg[F]
        )
        gl = lay.tgroups[flat_idx]
        pl = lay.prefix_len[flat_idx]
        mem, own2 = _ragged_take(gidx, gptr[gl], pl)
        pair_owner = own1[own2]
        used = np.zeros((F.size, cmax + 2), dtype=bool)
        used[pair_owner, colors[mem]] = True
        t = used.argmin(axis=1)
        colors[F] = t
        if t.size:
            cmax = max(cmax, int(t.max()))
        colored += F.size
        # Advance the cursor of every affected group past colored members.
        # Each group holds at most one frontier vertex per round, so ``gl``
        # is duplicate-free and total advances are bounded by the entries.
        active = np.asarray(gl, dtype=np.int64)
        new_front_src = []
        while active.size:
            cur[active] += 1
            active = active[cur[active] < gptr[active + 1]]
            if not active.size:
                break
            m = gidx[cur[active]]
            is_colored = colors[m] >= 0
            settled = m[~is_colored]
            if settled.size:
                new_front_src.append(settled)
            active = active[is_colored]
        # First-fit colors are introduced in order (the used set is always a
        # prefix of 0..cmax), so palette growth is exactly the cmax delta.
        introduced = cmax - cmax_before
        _emit_round_work(
            tracer, work, rounds, "exact",
            tasks=int(F.size), scans=int(mem.size), checks=0,
            pushes=0, writes=int(F.size),
        )
        round_wall = time.perf_counter() - t_round
        records.append(
            IterationRecord(
                index=rounds,
                queue_size=int(F.size),
                conflicts=0,
                color_timing=None,
                remove_timing=None,
                colors_introduced=introduced,
                wall_seconds=round_wall,
            )
        )
        if tracer.enabled:
            tracer.event(
                "span",
                "round",
                round_wall,
                mode="exact",
                iteration=rounds,
                queue_size=int(F.size),
                items=int(F.size),
                conflicts=0,
                colors_introduced=introduced,
            )
        if new_front_src:
            mvals = np.concatenate(new_front_src).astype(np.int64)
            np.add.at(count, mvals, 1)
            cand = np.unique(mvals)
            frontier = cand[count[cand] == lay.tdeg[cand]]
        else:
            frontier = np.empty(0, dtype=np.int64)
        rounds += 1
    return colors.astype(np.int64), records


def _color_speculative(lay: GroupLayout, max_rounds: int, tracer=NULL_TRACER,
                       work=None, extras=None):
    """Optimistic rounds: rank-offset first fit + net-based detection.

    The per-round forbidden sets are packed uint64 bitsets (64 colors per
    word, see :mod:`repro.core.fastpath.bitset`): per-group masks built by
    a sort + segmented OR, OR-combined per queue vertex with
    ``np.bitwise_or.reduceat`` over the transposed layout, and the
    rank-offset first fit answered by a vectorized find-``(r+1)``-th-zero-
    bit — no scipy, and ~32x less per-round memory than the dense float
    indicator matrix this replaces (colors are byte-identical: both
    compute the same ``(r+1)``-th free color).
    """
    n, gptr, gidx = lay.n, lay.gptr, lay.gidx
    gdeg, n_groups = lay.gdeg, lay.n_groups
    goe = lay.group_of_entry
    t_nonempty = lay.tdeg > 0
    t_ne_starts = lay.tptr[:-1][t_nonempty]
    colors = np.full(n, UNCOLORED, dtype=np.int32)
    records: list[IterationRecord] = []
    cmax = -1
    rounds = 0
    uncolored = n
    palette = 0
    palette_words = 0
    mask_or_words = 0
    while uncolored:
        if rounds >= max_rounds:
            raise ColoringError(
                f"fastpath speculative mode did not converge in {max_rounds} rounds"
            )
        t_round = time.perf_counter()
        entry_col = colors[gidx]
        unc_entry = entry_col < 0
        # rank = max over the vertex's groups of the number of *smaller*
        # uncolored co-members (an exclusive running count over the sorted
        # member lists, then a per-vertex segmented max).  The accumulator
        # widens to int64 past 2**31 entries (see :func:`rank_dtype`).
        pre = np.cumsum(unc_entry, dtype=lay.rank_dtype) - unc_entry
        rep = np.repeat(pre[gptr[:-1]], gdeg) if gidx.size else pre[:0]
        rank_entry = pre - rep
        rank_v = np.zeros(n, dtype=lay.rank_dtype)
        if t_ne_starts.size:
            rank_v[t_nonempty] = np.maximum.reduceat(rank_entry[lay.gpos], t_ne_starts)
        queue = np.nonzero(colors == UNCOLORED)[0]
        r = rank_v[queue]
        if cmax < 0:
            # First round: nothing is colored, the (r+1)-th free color is r.
            t = r
        else:
            # cap bounds the colors any pick can reach this round: at most
            # cmax+1 distinct forbidden colors plus the rank offset.
            rmax = int(r.max(initial=0))
            cap = cmax + 2 + rmax + 1
            words = mask_words(cap)
            ce = ~unc_entry
            gmask = pack_color_masks(goe[ce], entry_col[ce], n_groups, words)
            qg, _ = _ragged_take(lay.tgroups, lay.tptr[queue], lay.tdeg[queue])
            forbidden = or_reduce_segments(
                gmask[qg.astype(np.int64)], lay.tdeg[queue]
            )
            t = nth_free_color(forbidden, r)
            palette_words = max(palette_words, words)
            mask_or_words += int(qg.size) * words
            if tracer.enabled:
                tracer.counter(
                    "fastpath.palette_words", words,
                    iteration=rounds, mode="speculative",
                )
        colors[queue] = t
        cmax = max(cmax, int(t.max(initial=-1)))
        # Detection (Alg. 7 semantics): within each group the smallest-id
        # claimant of each color wins; everyone else is reset.  Entries are
        # group-major with ascending member ids, so a stable sort on the
        # (group, color) key alone leaves winners first in each run.
        tv = gidx[unc_entry]
        tg = goe[unc_entry]
        tc = colors[gidx][unc_entry]
        key = tg.astype(np.int64) * (cmax + 2) + tc
        if key.size and (int(tg[-1]) + 1) * (cmax + 2) < np.iinfo(np.int32).max:
            key = key.astype(np.int32)
        order = np.argsort(key, kind="stable")
        sk = key[order]
        sv = tv[order]
        dup = np.concatenate(([False], sk[1:] == sk[:-1]))
        losers = np.unique(sv[dup]).astype(np.int64)
        colors[losers] = UNCOLORED
        # Palette growth measured on the *committed* state (post-demotion):
        # a tentative color whose every claimant lost does not count yet.
        committed_max = int(colors.max(initial=-1)) if n else -1
        introduced = max(0, committed_max + 1 - palette)
        palette = max(palette, committed_max + 1)
        _emit_round_work(
            tracer, work, rounds, "speculative",
            tasks=int(queue.size), scans=int(unc_entry.sum()),
            checks=int(tv.size), pushes=int(losers.size),
            writes=int(queue.size) + int(losers.size),
        )
        round_wall = time.perf_counter() - t_round
        records.append(
            IterationRecord(
                index=rounds,
                queue_size=int(queue.size),
                conflicts=int(losers.size),
                color_timing=None,
                remove_timing=None,
                colors_introduced=introduced,
                wall_seconds=round_wall,
            )
        )
        if tracer.enabled:
            tracer.event(
                "span",
                "round",
                round_wall,
                mode="speculative",
                iteration=rounds,
                queue_size=int(queue.size),
                items=int(queue.size),
                conflicts=int(losers.size),
                colors_introduced=introduced,
            )
        uncolored = int(losers.size)
        rounds += 1
    if extras is not None:
        extras["fastpath.palette_words"] = palette_words
        extras["fastpath.mask_or_words"] = mask_or_words
    return colors.astype(np.int64), records


def run_fastpath(
    groups: CSR,
    mode: str = "exact",
    max_rounds: int | None = None,
    tracer=None,
    work=None,
    extras=None,
):
    """Color the vertices of a groups CSR with whole-array NumPy passes.

    Parameters
    ----------
    groups:
        Constraint groups × vertices CSR: two vertices sharing a group
        must receive different colors.  Nets for BGPC, closed
        neighborhoods for D2GC.
    mode:
        ``"exact"`` (default) for the byte-identical level-synchronous
        greedy, ``"speculative"`` for the few-round optimistic template.
    max_rounds:
        Safety bound on rounds; defaults to ``n + 1``, which both modes
        provably never exceed (the globally smallest uncolored vertex
        always makes progress).
    tracer:
        Optional :class:`repro.obs.Tracer`: a ``setup`` span for the
        :class:`GroupLayout` build and one ``round`` span per vectorized
        round (queue size, conflicts, palette growth, wall seconds).
        ``None`` (default) is the zero-overhead null tracer.
    work:
        Optional :class:`repro.obs.work.WorkCounters` accumulating the
        run's deterministic work totals (one "task" per vertex processed
        by a round's whole-array pass; probes stay 0 — the vectorized
        first fit has no per-color cursor).  ``None`` skips the
        bookkeeping.
    extras:
        Optional dict the speculative mode fills with its packed-bitset
        structure metrics (see :data:`repro.obs.work.FASTPATH_METRICS`):
        ``fastpath.palette_words`` (widest per-round mask, in uint64
        words) and ``fastpath.mask_or_words`` (total words OR-combined
        across rounds).  Deterministic; left untouched in exact mode.

    Returns
    -------
    (colors, records):
        ``colors`` is a dense int64 array with no ``UNCOLORED`` entries;
        ``records`` are per-round :class:`~repro.types.IterationRecord`
        entries with ``None`` timings (there is no simulated clock here)
        but measured per-round ``wall_seconds`` and ``colors_introduced``.
    """
    if mode not in FASTPATH_MODES:
        raise ColoringError(
            f"unknown fastpath mode {mode!r}; choose from {FASTPATH_MODES}"
        )
    tracer = ensure_tracer(tracer)
    with tracer.span("setup", mode=mode) as setup_span:
        lay = GroupLayout(groups)
        setup_span.set(vertices=lay.n, groups=lay.n_groups, entries=int(lay.gidx.size))
    bound = max_rounds if max_rounds is not None else lay.n + 1
    if mode == "exact":
        return _color_exact(lay, bound, tracer, work)
    return _color_speculative(lay, bound, tracer, work, extras)
