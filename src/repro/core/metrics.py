"""Color-class statistics (paper Table VI and Figure 3).

The balancing experiments measure the *cardinality profile* of the color
classes: how many vertices each color holds, the mean/std of that
distribution, and its sorted curve.  This module computes those from a
finished color array.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ColoringError
from repro.types import ColorStats, UNCOLORED

__all__ = [
    "color_cardinalities",
    "color_stats",
    "sorted_cardinality_curve",
    "skewness",
    "tiny_class_count",
]


def color_cardinalities(colors: np.ndarray) -> np.ndarray:
    """Vertices per color, indexed by color id.

    Raises :class:`ColoringError` if any vertex is uncolored — statistics
    on partial colorings are not meaningful for the balancing study.
    """
    colors = np.asarray(colors)
    if colors.size == 0:
        return np.zeros(0, dtype=np.int64)
    if colors.min() <= UNCOLORED:
        raise ColoringError("cannot compute cardinalities of a partial coloring")
    return np.bincount(colors).astype(np.int64)


def color_stats(colors: np.ndarray) -> ColorStats:
    """Full cardinality statistics of a complete coloring."""
    card = color_cardinalities(colors)
    if card.size == 0:
        return ColorStats(
            num_colors=0, cardinalities=card, mean=0.0, std=0.0, min=0, max=0
        )
    return ColorStats(
        num_colors=int(card.size),
        cardinalities=card,
        mean=float(card.mean()),
        std=float(card.std()),
        min=int(card.min()),
        max=int(card.max()),
    )


def sorted_cardinality_curve(colors: np.ndarray) -> np.ndarray:
    """Cardinalities sorted non-increasingly — the Figure 3 series."""
    card = color_cardinalities(colors)
    return np.sort(card)[::-1].copy()


def skewness(colors: np.ndarray) -> float:
    """Fisher skewness of the cardinality distribution (0 == symmetric).

    The paper motivates B1/B2 by the heavy skew first-fit produces ("a few
    large color sets ... and thousands with less than 2 elements").
    """
    card = color_cardinalities(colors).astype(np.float64)
    if card.size < 2:
        return 0.0
    mean = card.mean()
    std = card.std()
    if std == 0:
        return 0.0
    return float(np.mean(((card - mean) / std) ** 3))


def tiny_class_count(colors: np.ndarray, threshold: int = 2) -> int:
    """Number of color classes with fewer than ``threshold`` vertices.

    Tiny classes are the parallelization hazard the balancing section
    targets: a color set smaller than the core count cannot feed the
    machine.
    """
    card = color_cardinalities(colors)
    return int(np.count_nonzero(card < threshold))
