"""Optional numba-compiled execution backend (``backend="compiled"``).

The vectorized NumPy fast path (:mod:`repro.core.fastpath`) already runs
the speculative template as whole-array passes; this backend JIT-compiles
the *same* exact/speculative round loops to native code with numba, so the
per-round work is a single fused scan with no temporaries.  The kernel
contract is the one the parity matrix and the work-metric regress gate
pin: colorings are byte-identical to ``backend="numpy"`` (both modes),
per-round records and work counters match exactly, and the
:data:`repro.obs.work.FASTPATH_METRICS` extras carry the same values.

numba is an *optional* dependency: the backend registers unconditionally
(so ``--backend compiled`` is always a valid choice), but selecting it
without numba raises a :class:`~repro.errors.ColoringError`, which the CLI
turns into a one-line ``error:`` + exit 2 and the service router treats as
"unavailable" (falling back to :attr:`CompiledBackend.fallback` for
size-routed requests — see :mod:`repro.service.router`).

The kernels are written as plain-Python loop nests that numba can compile
unchanged (``_load_kernels`` wraps them in ``numba.njit``).  Setting the
``REPRO_COMPILED_PURE`` environment variable makes ``_load_kernels``
return the uncompiled functions instead — a debug/test hook that lets the
kernel *semantics* be exercised (slowly) where numba is not installed;
the tier-1 suite uses it to keep the parity tests running everywhere.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.fastpath.bitset import mask_words
from repro.core.fastpath.engine import GroupLayout, _emit_round_work
from repro.core.policies import FirstFit
from repro.errors import ColoringError
from repro.obs.tracer import ensure_tracer
from repro.obs.work import WorkCounters
from repro.types import ColoringResult, IterationRecord, UNCOLORED

__all__ = ["CompiledBackend", "numba_available"]

#: Environment variable: run the kernels as plain Python (no numba).
PURE_ENV = "REPRO_COMPILED_PURE"


def numba_available() -> bool:
    """True when ``import numba`` succeeds."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


# -- kernels ------------------------------------------------------------------
#
# Written against the GroupLayout arrays (sorted-member groups CSR plus its
# transpose) so the compiled rounds see exactly the data the numpy rounds
# see.  ``stamp``/``seen`` are timestamped scratch arrays: a monotonically
# increasing ``token`` marks entries written for the current vertex/group,
# so the arrays never need clearing between rounds.


def _exact_frontier(gptr, gidx, tptr, tgroups, colors, front):
    """Collect the frontier: uncolored vertices whose every smaller
    co-member is colored.  Returns the frontier size (vertices in
    ``front[:nf]``, ascending)."""
    n = tptr.shape[0] - 1
    nf = 0
    for v in range(n):
        if colors[v] >= 0:
            continue
        ok = True
        for j in range(tptr[v], tptr[v + 1]):
            g = tgroups[j]
            for e in range(gptr[g], gptr[g + 1]):
                m = gidx[e]
                if m >= v:
                    break
                if colors[m] < 0:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            front[nf] = v
            nf += 1
    return nf


def _exact_color(gptr, gidx, tptr, tgroups, colors, front, nf, stamp, token,
                 cmax):
    """First-fit color the frontier (its vertices share no group, so
    immediate writes cannot interfere).  Smaller co-members are exactly
    the colored ones — the same sorted prefixes the numpy engine slices.
    Returns ``(scans, token, cmax)``."""
    scans = 0
    for i in range(nf):
        v = front[i]
        token += 1
        for j in range(tptr[v], tptr[v + 1]):
            g = tgroups[j]
            for e in range(gptr[g], gptr[g + 1]):
                m = gidx[e]
                if m >= v:
                    break
                stamp[colors[m]] = token
                scans += 1
        c = 0
        while stamp[c] == token:
            c += 1
        colors[v] = c
        if c > cmax:
            cmax = c
    return scans, token, cmax


def _spec_round(gptr, gidx, tptr, tgroups, colors, was_unc, rank, stamp,
                seen, loser, token, cmax):
    """One speculative round: snapshot → rank → rank-offset first fit →
    Alg. 7 detection (first claimant of each ``(group, color)`` keeps) →
    demote losers.  Reads only round-start colors while picking, exactly
    like the numpy whole-array pass.  Returns ``(queue_size, scans,
    checks, conflicts, rmax, token, cmax)``."""
    n = tptr.shape[0] - 1
    n_groups = gptr.shape[0] - 1
    queue_size = 0
    for v in range(n):
        u = colors[v] < 0
        was_unc[v] = u
        rank[v] = 0
        loser[v] = False
        if u:
            queue_size += 1
    # rank = max over the vertex's groups of smaller uncolored co-members
    # (exclusive running count over the sorted member lists).
    scans = 0
    for g in range(n_groups):
        cnt = 0
        for e in range(gptr[g], gptr[g + 1]):
            m = gidx[e]
            if was_unc[m]:
                if cnt > rank[m]:
                    rank[m] = cnt
                cnt += 1
                scans += 1
    # Tentative picks: the (rank+1)-th color free of round-start colors.
    rmax = 0
    for v in range(n):
        if not was_unc[v]:
            continue
        if rank[v] > rmax:
            rmax = rank[v]
        token += 1
        for j in range(tptr[v], tptr[v + 1]):
            g = tgroups[j]
            for e in range(gptr[g], gptr[g + 1]):
                m = gidx[e]
                if not was_unc[m]:
                    stamp[colors[m]] = token
        need = rank[v]
        c = 0
        while True:
            if stamp[c] != token:
                if need == 0:
                    break
                need -= 1
            c += 1
        colors[v] = c
        if c > cmax:
            cmax = c
    # Detection: within each group the smallest-id claimant of each color
    # keeps; a vertex that loses in *any* group is demoted.
    checks = 0
    conflicts = 0
    for g in range(n_groups):
        token += 1
        for e in range(gptr[g], gptr[g + 1]):
            m = gidx[e]
            if was_unc[m]:
                checks += 1
                c = colors[m]
                if seen[c] == token:
                    if not loser[m]:
                        loser[m] = True
                        conflicts += 1
                else:
                    seen[c] = token
    for v in range(n):
        if loser[v]:
            colors[v] = -1
    return queue_size, scans, checks, conflicts, rmax, token, cmax


_KERNELS: tuple | None = None


def _load_kernels():
    """The (possibly JIT-compiled) kernel triple, compiled once per process.

    With ``REPRO_COMPILED_PURE`` set the plain-Python functions are
    returned; otherwise numba is required and its absence is a
    :class:`~repro.errors.ColoringError` (one line through the CLI).
    """
    global _KERNELS
    if os.environ.get(PURE_ENV):
        return _exact_frontier, _exact_color, _spec_round
    if _KERNELS is None:
        try:
            from numba import njit
        except ImportError:
            raise ColoringError(
                "backend='compiled' requires numba, which is not installed; "
                "pip install numba or choose --backend numpy"
            ) from None
        jit = njit(cache=True, nogil=True)
        _KERNELS = (jit(_exact_frontier), jit(_exact_color), jit(_spec_round))
    return _KERNELS


# -- backend ------------------------------------------------------------------


class CompiledBackend:
    """numba-JIT round loops behind the execution-backend registry.

    Mirrors :class:`repro.core.backends.NumpyBackend`'s contract exactly
    (first-fit only, no resume, ``fastpath_mode`` selects exact or
    speculative) and produces byte-identical colorings, records and work
    counters — the regress gate can run the numpy suite cases on this
    backend against the numpy baseline (``--map-backend numpy=compiled``)
    and must see zero drift.
    """

    name = "compiled"
    #: Router fallback when numba is missing and the backend was not
    #: explicitly pinned (see :class:`repro.service.router.SizeRouter`).
    fallback = "numpy"

    def available(self) -> bool:
        """True when :meth:`run` can execute (numba, or the pure hook)."""
        return numba_available() or bool(os.environ.get(PURE_ENV))

    def run(
        self,
        adapter,
        schedule,
        *,
        name,
        threads,
        cost=None,
        policy=None,
        max_iterations=200,
        fastpath_mode="exact",
        tracer=None,
        initial_colors=None,
        initial_work=None,
        **options,
    ) -> ColoringResult:
        from repro.core.backends import _reject_options
        from repro.core.fastpath.engine import FASTPATH_MODES

        _reject_options(self.name, options)
        if initial_colors is not None or initial_work is not None:
            raise ColoringError(
                "backend='compiled' cannot resume from a partial coloring "
                "(its rounds are whole-array); run incremental recoloring "
                "on sim, threaded or process"
            )
        if policy is not None and not isinstance(policy, FirstFit):
            raise ColoringError(
                "backend='compiled' supports only the first-fit policy (U); "
                f"got {type(policy).__name__} — run B1/B2 on the simulator"
            )
        if fastpath_mode not in FASTPATH_MODES:
            raise ColoringError(
                f"unknown fastpath mode {fastpath_mode!r}; "
                f"choose from {FASTPATH_MODES}"
            )
        kernels = _load_kernels()
        tracer = ensure_tracer(tracer)
        groups = adapter.fastpath_groups()
        run_work = WorkCounters()
        t0 = time.perf_counter()
        with tracer.span(
            "run", algorithm=name, backend=self.name, mode=fastpath_mode
        ) as run_span:
            with tracer.span("setup", mode=fastpath_mode) as setup_span:
                lay = GroupLayout(groups)
                setup_span.set(
                    vertices=lay.n, groups=lay.n_groups,
                    entries=int(lay.gidx.size),
                )
            if fastpath_mode == "exact":
                colors, records, extras = _run_exact(
                    lay, kernels, tracer, run_work
                )
            else:
                colors, records, extras = _run_speculative(
                    lay, kernels, tracer, run_work
                )
            run_span.set(
                num_colors=int(colors.max()) + 1 if colors.size else 0,
                iterations=len(records),
            )
        wall = time.perf_counter() - t0
        metrics = run_work.as_dict()
        metrics.update(extras)
        return ColoringResult(
            colors=colors,
            num_colors=int(colors.max()) + 1 if colors.size else 0,
            iterations=records,
            algorithm=name,
            threads=1,
            cycles=0.0,
            backend=self.name,
            wall_seconds=wall,
            work_metrics=metrics,
        )


def _run_exact(lay, kernels, tracer, work):
    """Level-synchronous rounds over the compiled kernels (byte-identical
    to sequential greedy and to ``numpy``'s exact mode)."""
    exact_frontier, exact_color, _ = kernels
    n = lay.n
    colors = np.full(n, UNCOLORED, dtype=np.int32)
    front = np.empty(n, dtype=np.int64)
    stamp = np.full(2 * n + 2, -1, dtype=np.int64)
    token = 0
    cmax = -1
    colored = 0
    rounds = 0
    records: list[IterationRecord] = []
    bound = n + 1
    while colored < n:
        if rounds >= bound:
            raise ColoringError(
                f"fastpath exact mode did not converge in {bound} rounds"
            )
        t_round = time.perf_counter()
        nf = int(exact_frontier(
            lay.gptr, lay.gidx, lay.tptr, lay.tgroups, colors, front
        ))
        cmax_before = cmax
        scans, token, cmax = exact_color(
            lay.gptr, lay.gidx, lay.tptr, lay.tgroups, colors, front, nf,
            stamp, token, cmax,
        )
        cmax = int(cmax)
        colored += nf
        introduced = cmax - cmax_before
        _emit_round_work(
            tracer, work, rounds, "exact",
            tasks=nf, scans=int(scans), checks=0, pushes=0, writes=nf,
        )
        round_wall = time.perf_counter() - t_round
        records.append(
            IterationRecord(
                index=rounds,
                queue_size=nf,
                conflicts=0,
                color_timing=None,
                remove_timing=None,
                colors_introduced=introduced,
                wall_seconds=round_wall,
            )
        )
        if tracer.enabled:
            tracer.event(
                "span", "round", round_wall, mode="exact", iteration=rounds,
                queue_size=nf, items=nf, conflicts=0,
                colors_introduced=introduced,
            )
        rounds += 1
    return colors.astype(np.int64), records, {}


def _run_speculative(lay, kernels, tracer, work):
    """Speculative rounds over the compiled kernel, with per-round records,
    work counters and :data:`~repro.obs.work.FASTPATH_METRICS` extras all
    matching the numpy engine number-for-number."""
    _, _, spec_round = kernels
    n = lay.n
    colors = np.full(n, UNCOLORED, dtype=np.int32)
    was_unc = np.zeros(n, dtype=np.bool_)
    loser = np.zeros(n, dtype=np.bool_)
    rank = np.zeros(n, dtype=np.int64)
    stamp = np.full(2 * n + 2, -1, dtype=np.int64)
    seen = np.full(2 * n + 2, -1, dtype=np.int64)
    token = 0
    cmax = -1
    rounds = 0
    uncolored = n
    palette = 0
    palette_words = 0
    mask_or_words = 0
    records: list[IterationRecord] = []
    bound = n + 1
    while uncolored:
        if rounds >= bound:
            raise ColoringError(
                f"fastpath speculative mode did not converge in {bound} rounds"
            )
        t_round = time.perf_counter()
        cmax_start = cmax
        # The numpy engine's bitset rounds OR one mask row per (queue
        # vertex, group) pair; mirror its structure metrics exactly.
        queue_tdeg = int(lay.tdeg[colors < 0].sum()) if cmax_start >= 0 else 0
        queue_size, scans, checks, conflicts, rmax, token, cmax = spec_round(
            lay.gptr, lay.gidx, lay.tptr, lay.tgroups, colors, was_unc,
            rank, stamp, seen, loser, token, cmax,
        )
        cmax = int(cmax)
        if cmax_start >= 0:
            words = mask_words(cmax_start + 2 + int(rmax) + 1)
            palette_words = max(palette_words, words)
            mask_or_words += queue_tdeg * words
            if tracer.enabled:
                tracer.counter(
                    "fastpath.palette_words", words,
                    iteration=rounds, mode="speculative",
                )
        committed_max = int(colors.max(initial=-1)) if n else -1
        introduced = max(0, committed_max + 1 - palette)
        palette = max(palette, committed_max + 1)
        _emit_round_work(
            tracer, work, rounds, "speculative",
            tasks=int(queue_size), scans=int(scans), checks=int(checks),
            pushes=int(conflicts), writes=int(queue_size) + int(conflicts),
        )
        round_wall = time.perf_counter() - t_round
        records.append(
            IterationRecord(
                index=rounds,
                queue_size=int(queue_size),
                conflicts=int(conflicts),
                color_timing=None,
                remove_timing=None,
                colors_introduced=introduced,
                wall_seconds=round_wall,
            )
        )
        if tracer.enabled:
            tracer.event(
                "span", "round", round_wall, mode="speculative",
                iteration=rounds, queue_size=int(queue_size),
                items=int(queue_size), conflicts=int(conflicts),
                colors_introduced=introduced,
            )
        uncolored = int(conflicts)
        rounds += 1
    extras = {
        "fastpath.palette_words": palette_words,
        "fastpath.mask_or_words": mask_or_words,
    }
    return colors.astype(np.int64), records, extras
