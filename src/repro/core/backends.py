"""Execution backends: where a speculative coloring plan actually runs.

The schedule layer (:mod:`repro.core.plan`) decides *what* each iteration
does; this module decides *where* it executes.  An
:class:`ExecutionBackend` takes a problem adapter plus a
:class:`~repro.core.plan.ScheduleSpec` and returns a
:class:`~repro.types.ColoringResult`; three are registered out of the box:

``"sim"``
    :class:`SimBackend` — the cycle-accurate discrete-event multicore of
    :mod:`repro.machine`; the paper's reproduction vehicle (simulated
    cycles, deterministic races).
``"numpy"``
    :class:`NumpyBackend` — the vectorized whole-array engine of
    :mod:`repro.core.fastpath` (host wall-clock; first-fit only).
``"threaded"``
    :class:`ThreadedBackend` — the same per-task kernels on *real* Python
    threads (:class:`repro.machine.threaded.ThreadedExecutor`), with
    genuine GIL-interleaved races; wall-clock, nondeterministic colors,
    guaranteed-valid results.
``"process"``
    :class:`ProcessBackend` — the same kernels on a persistent pool of
    *worker processes* with the color array, work queue and CSR graph in
    ``multiprocessing.shared_memory`` (:mod:`repro.core.procworker`);
    no GIL, true parallel wall-clock, real cross-process races.

``"compiled"``
    :class:`repro.core.compiled.CompiledBackend` — the fast path's round
    loops JIT-compiled with numba (optional dependency; byte-identical to
    ``numpy``, one-line error when numba is missing).

``sim``, ``threaded`` and ``process`` are *kernel-level* backends: all
drive the same backend-agnostic loop (:func:`run_plan_loop`), which asks
the plan for each iteration's :class:`~repro.core.plan.PhasePlan` pair and
a :class:`PhaseEngine` to execute it.  ``numpy`` replaces the whole loop
with array rounds.  Registering a new backend is one
:func:`register_backend` call — the driver, runners, CLI and bench pick it
up with zero edits (see ``docs/backends.md``).
"""

from __future__ import annotations

import os
import time
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.plan import PhasePlan, ScheduleSpec
from repro.core.policies import FirstFit
from repro.errors import ColoringError
from repro.types import (
    ColoringResult,
    IterationRecord,
    PhaseKind,
    PhaseTiming,
    UNCOLORED,
)

__all__ = [
    "ExecutionBackend",
    "PhaseEngine",
    "SimBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "run_plan_loop",
]


@runtime_checkable
class PhaseEngine(Protocol):
    """Executes one phase's parallel for on some substrate.

    ``clocked`` says whether the engine has a simulated clock: clocked
    engines return a :class:`~repro.types.PhaseTiming` per phase and report
    ``total_cycles``; unclocked engines return ``None`` timings and the
    loop records measured wall seconds instead.

    ``last_work`` holds the :class:`~repro.obs.work.WorkCounters` of the
    most recent :meth:`run_phase` call (``None`` before the first phase):
    the deterministic operation counts the regression gate compares — see
    :mod:`repro.obs.work` and ``docs/benchmarks.md``.
    """

    clocked: bool
    last_work: object | None

    @property
    def values(self) -> np.ndarray:
        """The committed shared color array (read-only for callers)."""
        ...

    def run_phase(
        self,
        plan: PhasePlan,
        n_tasks: int,
        kernel: Callable,
        task_ids=None,
        scan_items: int = 0,
    ) -> tuple[PhaseTiming | None, list[int]]:
        """Run ``kernel`` over ``n_tasks`` tasks under ``plan``.

        ``scan_items`` charges an auxiliary vectorized sweep of that many
        items to the phase (the "collect the uncolored vertices" pass after
        a net-based removal); engines without a clock ignore it.
        """
        ...

    def snapshot(self) -> np.ndarray: ...

    @property
    def total_cycles(self) -> float: ...


class SimPhaseEngine:
    """Kernel-level engine on the simulated multicore (``backend="sim"``)."""

    clocked = True

    def __init__(self, initial_colors: np.ndarray, threads: int, cost=None, tracer=None):
        from repro.machine.machine import Machine

        self.machine = Machine(threads, cost, tracer=tracer)
        self.machine.reset_thread_states()
        self.memory = self.machine.make_memory(initial_colors)
        self.last_work = None

    @property
    def values(self) -> np.ndarray:
        return self.memory.values

    def run_phase(self, plan, n_tasks, kernel, task_ids=None, scan_items=0):
        from repro.machine.scheduler import Schedule
        from repro.obs.work import WorkCounters

        extra = self.machine.parallel_scan_cost(scan_items) if scan_items else 0
        self.last_work = work = WorkCounters()
        return self.machine.parallel_for(
            n_tasks,
            kernel,
            self.memory,
            schedule=Schedule.dynamic(plan.chunk),
            queue_mode=plan.queue_mode,
            phase_kind=plan.phase,
            task_ids=task_ids,
            extra_wall=extra,
            work=work,
        )

    def snapshot(self) -> np.ndarray:
        return self.memory.snapshot()

    @property
    def total_cycles(self) -> float:
        return self.machine.trace.total_cycles


class ThreadedPhaseEngine:
    """Kernel-level engine on real Python threads (``backend="threaded"``).

    Writes are immediate and unsynchronized, so races (and therefore
    conflicts) are genuine GIL interleavings — nondeterministic across
    runs, always resolved by the speculative loop.  Queue appends always
    use thread-private lists merged at the phase barrier; the plan's
    ``queue_mode`` is accepted but not distinguished.
    """

    clocked = False

    def __init__(self, initial_colors: np.ndarray, threads: int, cost=None, tracer=None):
        from repro.machine.threaded import ThreadedExecutor

        self.executor = ThreadedExecutor(threads)
        self.colors = np.array(initial_colors, dtype=np.int64, copy=True)
        self.last_work = None

    @property
    def values(self) -> np.ndarray:
        return self.colors

    def run_phase(self, plan, n_tasks, kernel, task_ids=None, scan_items=0):
        from repro.obs.work import WorkCounters

        self.last_work = work = WorkCounters()
        queued = self.executor.parallel_for(
            n_tasks, kernel, self.colors, chunk=plan.chunk, task_ids=task_ids,
            work=work,
        )
        return None, queued

    def snapshot(self) -> np.ndarray:
        return self.colors.copy()

    @property
    def total_cycles(self) -> float:
        return 0.0


class ProcessPhaseEngine:
    """Kernel-level engine on a worker-process pool (``backend="process"``).

    The committed color array, the per-iteration work queue and the CSR
    graph arrays live in named :mod:`multiprocessing.shared_memory`
    segments; ``threads`` worker processes attach once (pool initializer)
    and then mutate the *same* palette with immediate stores, so races are
    genuine cross-process interleavings with no GIL serializing them.

    Dispatch mirrors the paper's dynamic schedule: each phase is split into
    chunk-sized task ranges (``plan.chunk``, 64 for the engineered specs)
    that idle workers pull from the pool — a cross-process chunk cursor.
    Per-worker task counters are emitted through the tracer
    (``process.worker_tasks``) when tracing is enabled.

    Lifetime: :meth:`close` shuts the pool down and closes **and unlinks**
    every segment; :class:`ProcessBackend` guarantees it runs on every exit
    path, including a worker crash (surfaced as :class:`ColoringError`), so
    no stale ``/dev/shm`` entries survive the run.
    """

    clocked = False

    def __init__(
        self,
        adapter,
        threads: int,
        cost=None,
        tracer=None,
        policy=None,
        fault=None,
        initial_colors: np.ndarray | None = None,
    ):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.core import procworker
        from repro.obs.tracer import ensure_tracer

        from repro.machine.engine import TaskContext

        if threads < 1:
            raise ColoringError(f"process backend needs threads >= 1, got {threads}")
        spec = adapter.process_spec()
        self.tracer = ensure_tracer(tracer)
        self.threads = threads
        self.fault = fault
        self.worker_totals: dict[int, int] = {}
        # Parent-side context for single-chunk phases executed inline (the
        # tail iterations of the speculative loop): one dispatch unit has no
        # parallelism to win, so skipping the pool round-trip is pure gain.
        self._inline_ctx = TaskContext()
        self._inline_state: dict = {}
        self._shms = []
        self._closed = False
        self.last_work = None
        segments = {}
        try:
            initial = (
                np.full(adapter.n_targets, UNCOLORED, dtype=np.int64)
                if initial_colors is None
                else np.array(initial_colors, dtype=np.int64, copy=True)
            )
            shm, self.colors, segments["colors"] = procworker.create_segment(initial)
            self._shms.append(shm)
            shm, self.work, segments["work"] = procworker.create_segment(
                np.zeros(adapter.n_targets, dtype=np.int64)
            )
            self._shms.append(shm)
            shm, self.ctrl, segments["ctrl"] = procworker.create_segment(
                np.zeros(threads, dtype=np.int64)
            )
            self._shms.append(shm)
            for key, array in spec["arrays"].items():
                shm, _, segments[key] = procworker.create_segment(array)
                self._shms.append(shm)
            worker_spec = {
                "problem": spec["problem"],
                "segments": segments,
                "cost": spec["cost"],
                "policy": policy,
                "fault": fault,
            }
            # fork (where available) keeps pool warmup cheap — workers skip
            # re-importing numpy and inherit nothing they use besides the
            # explicitly shared segments they attach in the initializer.
            method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
            self.pool = ProcessPoolExecutor(
                max_workers=threads,
                mp_context=multiprocessing.get_context(method),
                initializer=procworker.init_worker,
                initargs=(worker_spec,),
            )
            # Pre-warm: force all workers to spawn, attach segments and
            # build state *now*, so the timed speculative loop never pays
            # spawn/init cost mid-phase.  The warmup tasks barrier on the
            # control segment — a spinning worker is not idle, so each
            # submit spawns a fresh process.
            from concurrent.futures.process import BrokenProcessPool

            try:
                list(
                    self.pool.map(
                        procworker.warmup, [(i, threads) for i in range(threads)]
                    )
                )
            except BrokenProcessPool as exc:
                raise ColoringError(
                    "process backend: a worker process died during pool "
                    "warmup; shared segments are reclaimed by the parent"
                ) from exc
        except BaseException:
            self.close()
            raise

    @property
    def values(self) -> np.ndarray:
        return self.colors

    def run_phase(self, plan, n_tasks, kernel, task_ids=None, scan_items=0):
        from concurrent.futures.process import BrokenProcessPool

        from repro.core import procworker
        from repro.obs.work import WorkCounters

        self.last_work = work = WorkCounters()
        if n_tasks == 0:
            return None, []
        use_work = task_ids is not None
        chunk = max(1, plan.chunk)
        # A phase that fits in one dispatch unit has no parallelism to win;
        # run it inline on the shared color view with the parent-built
        # kernel and skip the pool round-trip entirely.  Fault injection
        # forces dispatch so crash tests stay deterministic.
        if kernel is not None and self.fault is None and n_tasks <= chunk:
            return self._run_inline(plan, n_tasks, kernel, task_ids)
        if use_work:
            self.work[:n_tasks] = task_ids
        # The dispatch key carries the active balancing label for coloring
        # phases so workers build (and cache) the right policy kernel — a
        # switched schedule changes the label mid-run.  Removal kernels are
        # policy-free, so their label is pinned to keep the cache key stable.
        label = plan.balancing if plan.phase == PhaseKind.COLOR else "U"
        phase_key = f"{plan.phase}:{plan.kind}:{label}"
        ranges = [
            (phase_key, lo, min(lo + chunk, n_tasks), use_work)
            for lo in range(0, n_tasks, chunk)
        ]
        queued: list[int] = []
        per_worker: dict[int, int] = {}
        try:
            # Group several chunks per IPC message: chunk-64 *execution*
            # granularity is preserved (each range is still one run_chunk
            # call inside the worker) while dispatch and result round-trips
            # drop by the batch factor — the pool analogue of the paper's
            # chunked dynamic scheduling, which exists for this reason.
            # Batches are sized to the machine's *effective* parallelism:
            # finer dynamic balancing than the core count can exploit only
            # adds message round-trips.
            effective = max(1, min(self.threads, os.cpu_count() or 1))
            batch = max(1, len(ranges) // (effective * 4))
            groups = [ranges[i : i + batch] for i in range(0, len(ranges), batch)]
            for pid, done, appends, batch_work in self.pool.map(
                procworker.run_batch, groups
            ):
                queued.extend(appends)
                per_worker[pid] = per_worker.get(pid, 0) + done
                work.merge(batch_work)
        except BrokenProcessPool as exc:
            raise ColoringError(
                "process backend: a worker process died mid-phase "
                f"({phase_key}); shared segments are reclaimed by the parent"
            ) from exc
        for pid, done in per_worker.items():
            self.worker_totals[pid] = self.worker_totals.get(pid, 0) + done
        if self.tracer.enabled:
            for pid, done in sorted(per_worker.items()):
                self.tracer.counter(
                    "process.worker_tasks",
                    done,
                    worker=pid,
                    phase=plan.phase,
                    kind=plan.kind,
                )
        return None, queued

    def _run_inline(self, plan, n_tasks, kernel, task_ids):
        """Execute one small phase in the parent process (no IPC).

        Writes land in the same shared color segment the workers see, so
        the next dispatched phase observes them; the parent behaves as one
        more (momentarily solo) worker with its own policy state.
        """
        import os

        ctx = self._inline_ctx
        colors = self.colors
        tasks = (
            np.asarray(task_ids[:n_tasks]).tolist()
            if task_ids is not None
            else range(n_tasks)
        )
        queued: list[int] = []
        for task in tasks:
            ctx.reset(colors, 0, self._inline_state)
            kernel(task, ctx)
            for where, value in ctx.writes:
                colors[where] = value
            queued.extend(ctx.appends)
            self.last_work.add_task(ctx)
        pid = os.getpid()
        self.worker_totals[pid] = self.worker_totals.get(pid, 0) + n_tasks
        if self.tracer.enabled:
            self.tracer.counter(
                "process.worker_tasks",
                n_tasks,
                worker=pid,
                phase=plan.phase,
                kind=plan.kind,
                inline=True,
            )
        return None, queued

    def snapshot(self) -> np.ndarray:
        return self.colors.copy()

    @property
    def total_cycles(self) -> float:
        return 0.0

    def close(self) -> None:
        """Shut the pool down and close + unlink every shared segment.

        Idempotent; safe to call after a worker crash (the broken pool's
        shutdown is a no-op for dead workers).
        """
        if self._closed:
            return
        self._closed = True
        pool = getattr(self, "pool", None)
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        for shm in self._shms:
            try:
                shm.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._shms = []


def _set_phase_span(span, timing, n_tasks, conflicts=None) -> None:
    attrs = (
        {"items": timing.tasks, "cycles": timing.cycles}
        if timing is not None
        else {"items": n_tasks}
    )
    if conflicts is not None:
        attrs["conflicts"] = conflicts
    span.set(**attrs)


def run_plan_loop(
    engine: PhaseEngine,
    adapter,
    schedule: ScheduleSpec,
    *,
    name: str,
    threads: int,
    policy=None,
    max_iterations: int = 200,
    tracer=None,
    backend_name: str = "sim",
    initial_work: np.ndarray | None = None,
) -> ColoringResult:
    """The backend-agnostic speculative loop (paper Algs. 1–3).

    Asks ``schedule`` for each iteration's phase plans and ``engine`` to
    execute them; everything schedule- or backend-specific lives behind
    those two objects.  Shared by every kernel-level backend.

    ``initial_work`` restricts the first iteration's work queue to the
    given vertex ids instead of every target — the incremental-recoloring
    entry point (:func:`repro.core.incremental.recolor_incremental`), whose
    engine starts from a partially valid color array.  Net-based *color*
    phases still sweep every net regardless of the queue (their kernels are
    queue-blind by design), so frontier runs should use vertex-based
    schedules to realize the work savings.

    Work metrics: after each phase the engine's
    :class:`~repro.obs.work.WorkCounters` are emitted as ``work.<metric>``
    counter events (iteration/phase/kind attributes) and folded into the
    run totals returned in :attr:`ColoringResult.work_metrics
    <repro.types.ColoringResult.work_metrics>`.

    Feedback: ``schedule`` may be a full
    :class:`~repro.core.adaptive.ScheduleController` rather than a static
    spec — when it exposes ``observe``, the loop reports every iteration's
    queue size, conflict count and removal-phase work counters back to it
    (after calling ``reset()`` once up front), so the controller's *next*
    ``iteration_plan`` call can pick different kernels or balancing.

    Balancing: each iteration's policy label comes from its
    :class:`~repro.core.plan.PhasePlan` (static suffix, ``@`` switch
    segments, or a controller decision); coloring kernels are built lazily
    per label.  An explicit ``policy`` argument wins for the whole run.
    """
    from repro.core.policies import get_policy
    from repro.obs.tracer import ensure_tracer
    from repro.obs.work import WorkCounters

    tracer = ensure_tracer(tracer)
    run_work = WorkCounters()

    def _collect_work(phase: str, kind: str) -> None:
        phase_work = getattr(engine, "last_work", None)
        if phase_work is None:
            return
        run_work.merge(phase_work)
        if tracer.enabled:
            phase_work.emit(tracer, iteration=iteration, phase=phase, kind=kind)

    color_kernels: dict[str, tuple[Callable, Callable]] = {}

    def _color_kernels(label: str) -> tuple[Callable, Callable]:
        # One (vertex, net) coloring-kernel pair per active balancing
        # label, built on first use — at most three pairs, and exactly one
        # when an explicit policy pins the whole run.
        key = label if policy is None else "explicit"
        kernels = color_kernels.get(key)
        if kernels is None:
            if policy is not None:
                vertex_policy = policy
            elif label == "U":
                vertex_policy = FirstFit()
            else:
                vertex_policy = get_policy(label)
            net_policy = (
                None if isinstance(vertex_policy, FirstFit) else vertex_policy
            )
            kernels = (
                adapter.make_vertex_color_kernel(vertex_policy),
                adapter.make_net_color_kernel(net_policy),
            )
            color_kernels[key] = kernels
        return kernels

    vertex_remove = adapter.make_vertex_removal_kernel()
    net_remove = adapter.make_net_removal_kernel()

    reset = getattr(schedule, "reset", None)
    if reset is not None:
        reset()
    observe = getattr(schedule, "observe", None)

    if initial_work is None:
        work = np.arange(adapter.n_targets, dtype=np.int64)
    else:
        work = np.array(initial_work, dtype=np.int64, copy=True)
        if work.size and (
            work.min() < 0 or work.max() >= adapter.n_targets
        ):
            raise ColoringError(
                f"initial_work ids must be in [0, {adapter.n_targets}), "
                f"got [{work.min()}, {work.max()}]"
            )
    records: list[IterationRecord] = []
    iteration = 0
    palette = 0
    run_start = time.perf_counter()

    with tracer.span(
        "run", algorithm=name, backend=backend_name, threads=threads
    ) as run_span:
        while work.size:
            if iteration >= max_iterations:
                raise ColoringError(
                    f"{name} did not converge in {max_iterations} iterations "
                    f"({work.size} vertices still queued)"
                )
            plan = schedule.iteration_plan(iteration)
            vertex_color, net_color = _color_kernels(plan.color.balancing)
            with tracer.span(
                "iteration", iteration=iteration, queue_size=int(work.size)
            ) as iter_span:
                iter_start = time.perf_counter()
                # ---- coloring phase -----------------------------------------
                with tracer.span(
                    "phase",
                    iteration=iteration,
                    phase=PhaseKind.COLOR,
                    kind=plan.color.kind,
                ) as phase_span:
                    if plan.color.kind == "net":
                        color_timing, _ = engine.run_phase(
                            plan.color, adapter.n_nets, net_color
                        )
                        color_tasks = adapter.n_nets
                    else:
                        color_timing, _ = engine.run_phase(
                            plan.color, work.size, vertex_color, task_ids=work
                        )
                        color_tasks = int(work.size)
                    _collect_work(PhaseKind.COLOR, plan.color.kind)
                    _set_phase_span(phase_span, color_timing, color_tasks)
                # ---- conflict-removal phase ---------------------------------
                with tracer.span(
                    "phase",
                    iteration=iteration,
                    phase=PhaseKind.REMOVE,
                    kind=plan.remove.kind,
                ) as phase_span:
                    if plan.remove.kind == "net":
                        remove_timing, _ = engine.run_phase(
                            plan.remove,
                            adapter.n_nets,
                            net_remove,
                            scan_items=adapter.n_targets,
                        )
                        remove_tasks = adapter.n_nets
                        next_work = np.nonzero(engine.values == UNCOLORED)[0].astype(
                            np.int64
                        )
                    else:
                        remove_timing, queued = engine.run_phase(
                            plan.remove, work.size, vertex_remove, task_ids=work
                        )
                        remove_tasks = int(work.size)
                        next_work = np.asarray(queued, dtype=np.int64)
                    _collect_work(PhaseKind.REMOVE, plan.remove.kind)
                    _set_phase_span(
                        phase_span,
                        remove_timing,
                        remove_tasks,
                        conflicts=int(next_work.size),
                    )

                # Palette growth: the high-water color count is monotone (a
                # net-based removal may reset colors, never retire them).
                committed_max = int(engine.values.max()) if engine.values.size else -1
                colors_introduced = max(0, committed_max + 1 - palette)
                palette = max(palette, committed_max + 1)
                iter_wall = time.perf_counter() - iter_start

                records.append(
                    IterationRecord(
                        index=iteration,
                        queue_size=int(work.size),
                        conflicts=int(next_work.size),
                        color_timing=color_timing,
                        remove_timing=remove_timing,
                        colors_introduced=colors_introduced,
                        wall_seconds=0.0 if engine.clocked else iter_wall,
                    )
                )
                if engine.clocked:
                    iter_span.set(
                        conflicts=int(next_work.size),
                        colors_introduced=colors_introduced,
                        cycles=color_timing.cycles + remove_timing.cycles,
                    )
                else:
                    iter_span.set(
                        conflicts=int(next_work.size),
                        colors_introduced=colors_introduced,
                        wall_seconds=iter_wall,
                    )
                if observe is not None:
                    observe(
                        iteration,
                        queue_size=int(work.size),
                        conflicts=int(next_work.size),
                        work=getattr(engine, "last_work", None),
                        tracer=tracer,
                    )
            work = next_work
            iteration += 1

        final = engine.snapshot()
        run_span.set(
            iterations=iteration,
            cycles=engine.total_cycles,
            num_colors=int(final.max()) + 1 if final.size else 0,
        )
    if final.size and final.min() < 0:
        raise ColoringError(
            f"{name} finished with {int((final < 0).sum())} uncolored vertices"
        )
    return ColoringResult(
        colors=final,
        num_colors=int(final.max()) + 1 if final.size else 0,
        iterations=records,
        algorithm=name,
        threads=threads,
        cycles=engine.total_cycles,
        backend=backend_name,
        wall_seconds=0.0 if engine.clocked else time.perf_counter() - run_start,
        work_metrics=run_work.as_dict(),
    )


@runtime_checkable
class ExecutionBackend(Protocol):
    """What a backend must provide to the driver.

    ``run`` executes the whole speculative loop of ``schedule`` on
    ``adapter`` and returns a :class:`~repro.types.ColoringResult`.
    Kernel-level backends additionally expose ``make_engine`` so other
    harnesses (e.g. :func:`repro.dist.hybrid.hybrid_bgpc`) can run single
    phases on the same substrate.

    ``initial_colors``/``initial_work`` resume the loop from a partially
    valid coloring on a restricted work queue (incremental recoloring —
    see :mod:`repro.core.incremental`); backends that cannot resume (the
    whole-array ``numpy`` engine) raise :class:`ColoringError` when either
    is given.
    """

    name: str

    def run(
        self,
        adapter,
        schedule: ScheduleSpec,
        *,
        name: str,
        threads: int,
        cost=None,
        policy=None,
        max_iterations: int = 200,
        fastpath_mode: str = "exact",
        tracer=None,
        initial_colors: np.ndarray | None = None,
        initial_work: np.ndarray | None = None,
        **options,
    ) -> ColoringResult: ...


def _reject_options(backend: str, options: dict) -> None:
    """Fail loudly on backend options this backend does not understand.

    ``run_speculative`` forwards free-form ``**backend_options`` (e.g. the
    sharded backend's ``partitioner``/``batch``/``seed``); a backend that
    does not consume them must reject rather than silently ignore.
    """
    if options:
        names = ", ".join(sorted(options))
        raise ColoringError(
            f"backend={backend!r} does not accept option(s): {names}"
        )


class _KernelLoopBackend:
    """Shared ``run`` for backends that execute per-task kernels."""

    name = ""
    engine_cls: type | None = None
    #: Kernel-level backends drive :func:`run_plan_loop` and therefore can
    #: execute adaptive :class:`~repro.core.adaptive.ScheduleController`
    #: schedules; whole-array and superstep backends cannot.
    supports_controller = True

    def make_engine(
        self, initial_colors: np.ndarray, threads: int, cost=None, tracer=None
    ) -> PhaseEngine:
        """A fresh :class:`PhaseEngine` over ``initial_colors``."""
        return self.engine_cls(initial_colors, threads, cost, tracer)

    def run(
        self,
        adapter,
        schedule,
        *,
        name,
        threads,
        cost=None,
        policy=None,
        max_iterations=200,
        fastpath_mode="exact",  # accepted for signature uniformity; unused
        tracer=None,
        initial_colors=None,
        initial_work=None,
        **options,
    ) -> ColoringResult:
        from repro.obs.tracer import ensure_tracer

        _reject_options(self.name, options)
        tracer = ensure_tracer(tracer)
        if initial_colors is None:
            colors = np.full(adapter.n_targets, UNCOLORED, dtype=np.int64)
        else:
            colors = np.array(initial_colors, dtype=np.int64, copy=True)
            if colors.shape != (adapter.n_targets,):
                raise ColoringError(
                    f"initial_colors must have shape ({adapter.n_targets},), "
                    f"got {colors.shape}"
                )
        engine = self.make_engine(colors, threads, cost, tracer)
        return run_plan_loop(
            engine,
            adapter,
            schedule,
            name=name,
            threads=threads,
            policy=policy,
            max_iterations=max_iterations,
            tracer=tracer,
            backend_name=self.name,
            initial_work=initial_work,
        )


class SimBackend(_KernelLoopBackend):
    """Cycle-accurate simulated multicore (the paper's reproduction vehicle)."""

    name = "sim"
    engine_cls = SimPhaseEngine


class ThreadedBackend(_KernelLoopBackend):
    """Real Python threads with genuine GIL-interleaved races.

    Colors are nondeterministic across runs (always valid on return);
    ``cycles`` is 0 and per-phase timings are ``None`` — the currency is
    measured ``wall_seconds``, like the NumPy backend.  Useful as a sanity
    check that the speculative template converges under real races, and as
    the only backend whose conflicts are not a model.
    """

    name = "threaded"
    engine_cls = ThreadedPhaseEngine


class ProcessBackend:
    """Worker-process pool with shared-memory state: true parallel wall-clock.

    The paper's headline numbers are *multicore speedups* (Tables 3–5);
    ``threaded`` cannot reproduce them because the GIL interleaves instead
    of overlapping.  This backend runs the same speculative loop across
    ``threads`` OS processes sharing one color segment, so kernel execution
    genuinely overlaps: ``wall_seconds`` is a real parallel measurement,
    conflicts are real cross-process races, and results are always valid.

    The adapter must expose ``process_spec()`` (both problem adapters do);
    anything else raises :class:`ColoringError`.  Shared-memory lifecycle
    is owned here: segments are created before the pool starts and closed +
    unlinked in a ``finally``, including when a worker crashes mid-phase
    (``REPRO_PROCESS_FAULT=kill[:N]`` injects exactly that for tests/CI).

    Unlike ``sim``/``threaded`` there is deliberately no ``make_engine``:
    per-batch engines (as the hybrid harness builds) would pay pool + segment
    setup per batch, so the hybrid path rejects this backend.
    """

    name = "process"
    supports_controller = True

    def run(
        self,
        adapter,
        schedule,
        *,
        name,
        threads,
        cost=None,
        policy=None,
        max_iterations=200,
        fastpath_mode="exact",  # accepted for signature uniformity; unused
        tracer=None,
        initial_colors=None,
        initial_work=None,
        **options,
    ) -> ColoringResult:
        from repro.core import procworker
        from repro.obs.tracer import ensure_tracer

        _reject_options(self.name, options)
        if not hasattr(adapter, "process_spec"):
            raise ColoringError(
                "backend='process' needs an adapter with process_spec() "
                f"(shared-memory layout); {type(adapter).__name__} has none"
            )
        if initial_colors is not None and np.asarray(initial_colors).shape != (
            adapter.n_targets,
        ):
            raise ColoringError(
                f"initial_colors must have shape ({adapter.n_targets},), "
                f"got {np.asarray(initial_colors).shape}"
            )
        tracer = ensure_tracer(tracer)
        try:
            fault = procworker.parse_fault(os.environ.get("REPRO_PROCESS_FAULT"))
        except ValueError as exc:
            raise ColoringError(str(exc)) from None
        engine = ProcessPhaseEngine(
            adapter, threads, cost=cost, tracer=tracer, policy=policy,
            fault=fault, initial_colors=initial_colors,
        )
        try:
            return run_plan_loop(
                engine,
                adapter,
                schedule,
                name=name,
                threads=threads,
                policy=policy,
                max_iterations=max_iterations,
                tracer=tracer,
                backend_name=self.name,
                initial_work=initial_work,
            )
        finally:
            engine.close()


class NumpyBackend:
    """Vectorized whole-array engine (:mod:`repro.core.fastpath`).

    Ignores ``threads``, ``cost``, ``max_iterations`` and the schedule's
    kernel plan (its round structure is the engine's own, bounded by a
    provable ``n + 1``); honours ``fastpath_mode`` (``"exact"`` /
    ``"speculative"``) and supports only the first-fit policy.
    """

    name = "numpy"

    def run(
        self,
        adapter,
        schedule,
        *,
        name,
        threads,
        cost=None,
        policy=None,
        max_iterations=200,
        fastpath_mode="exact",
        tracer=None,
        initial_colors=None,
        initial_work=None,
        **options,
    ) -> ColoringResult:
        from repro.core.fastpath.engine import run_fastpath
        from repro.obs.tracer import ensure_tracer
        from repro.obs.work import WorkCounters

        _reject_options(self.name, options)
        if initial_colors is not None or initial_work is not None:
            raise ColoringError(
                "backend='numpy' cannot resume from a partial coloring "
                "(its rounds are whole-array); run incremental recoloring "
                "on sim, threaded or process"
            )
        if policy is not None and not isinstance(policy, FirstFit):
            raise ColoringError(
                "backend='numpy' supports only the first-fit policy (U); "
                f"got {type(policy).__name__} — run B1/B2 on the simulator"
            )
        tracer = ensure_tracer(tracer)
        groups = adapter.fastpath_groups()
        run_work = WorkCounters()
        extras: dict[str, int] = {}
        t0 = time.perf_counter()
        with tracer.span(
            "run", algorithm=name, backend="numpy", mode=fastpath_mode
        ) as run_span:
            colors, records = run_fastpath(
                groups, mode=fastpath_mode, tracer=tracer, work=run_work,
                extras=extras,
            )
            run_span.set(
                num_colors=int(colors.max()) + 1 if colors.size else 0,
                iterations=len(records),
            )
        wall = time.perf_counter() - t0
        metrics = run_work.as_dict()
        metrics.update(extras)  # FASTPATH_METRICS, speculative mode only
        return ColoringResult(
            colors=colors,
            num_colors=int(colors.max()) + 1 if colors.size else 0,
            iterations=records,
            algorithm=name,
            threads=1,
            cycles=0.0,
            backend="numpy",
            wall_seconds=wall,
            work_metrics=metrics,
        )


# -- the registry -------------------------------------------------------------

_BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend, *, name: str | None = None,
                     replace: bool = False) -> ExecutionBackend:
    """Register ``backend`` under ``name`` (default: ``backend.name``).

    One call makes the backend reachable from :func:`run_speculative
    <repro.core.driver.run_speculative>`, ``color_bgpc``/``color_d2gc``,
    the CLI's ``--backend`` and the bench harness — no driver edits.
    Registering an existing name raises unless ``replace=True``.
    """
    key = name if name is not None else backend.name
    if not key:
        raise ColoringError("backend must have a non-empty name")
    if key in _BACKENDS and not replace:
        raise ColoringError(
            f"backend {key!r} already registered; pass replace=True to override"
        )
    _BACKENDS[key] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    """Look up a registered backend; unknown names list the valid ones."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ColoringError(
            f"unknown backend {name!r}; choose from {backend_names()}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


register_backend(SimBackend())
register_backend(NumpyBackend())
register_backend(ThreadedBackend())
register_backend(ProcessBackend())


def _register_sharded() -> None:
    # Deferred to the bottom: repro.dist imports back into this module
    # (hybrid_bgpc uses get_backend), so the registry must exist first.
    from repro.dist.sharded import ShardedBackend

    register_backend(ShardedBackend())


def _register_compiled() -> None:
    # Deferred likewise (repro.core.compiled imports _reject_options from
    # here).  Registration never imports numba: the name is always a valid
    # --backend choice, and the dependency check happens at run time so a
    # missing numba is a one-line ColoringError, not an import crash.
    from repro.core.compiled import CompiledBackend

    register_backend(CompiledBackend())


_register_sharded()
_register_compiled()
