"""Execution backends: where a speculative coloring plan actually runs.

The schedule layer (:mod:`repro.core.plan`) decides *what* each iteration
does; this module decides *where* it executes.  An
:class:`ExecutionBackend` takes a problem adapter plus a
:class:`~repro.core.plan.ScheduleSpec` and returns a
:class:`~repro.types.ColoringResult`; three are registered out of the box:

``"sim"``
    :class:`SimBackend` — the cycle-accurate discrete-event multicore of
    :mod:`repro.machine`; the paper's reproduction vehicle (simulated
    cycles, deterministic races).
``"numpy"``
    :class:`NumpyBackend` — the vectorized whole-array engine of
    :mod:`repro.core.fastpath` (host wall-clock; first-fit only).
``"threaded"``
    :class:`ThreadedBackend` — the same per-task kernels on *real* Python
    threads (:class:`repro.machine.threaded.ThreadedExecutor`), with
    genuine GIL-interleaved races; wall-clock, nondeterministic colors,
    guaranteed-valid results.

``sim`` and ``threaded`` are *kernel-level* backends: both drive the same
backend-agnostic loop (:func:`run_plan_loop`), which asks the plan for each
iteration's :class:`~repro.core.plan.PhasePlan` pair and a
:class:`PhaseEngine` to execute it.  ``numpy`` replaces the whole loop with
array rounds.  Registering a new backend is one
:func:`register_backend` call — the driver, runners, CLI and bench pick it
up with zero edits (see ``docs/backends.md``).
"""

from __future__ import annotations

import time
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.core.plan import PhasePlan, ScheduleSpec
from repro.core.policies import FirstFit
from repro.errors import ColoringError
from repro.types import (
    ColoringResult,
    IterationRecord,
    PhaseKind,
    PhaseTiming,
    UNCOLORED,
)

__all__ = [
    "ExecutionBackend",
    "PhaseEngine",
    "SimBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "run_plan_loop",
]


@runtime_checkable
class PhaseEngine(Protocol):
    """Executes one phase's parallel for on some substrate.

    ``clocked`` says whether the engine has a simulated clock: clocked
    engines return a :class:`~repro.types.PhaseTiming` per phase and report
    ``total_cycles``; unclocked engines return ``None`` timings and the
    loop records measured wall seconds instead.
    """

    clocked: bool

    @property
    def values(self) -> np.ndarray:
        """The committed shared color array (read-only for callers)."""
        ...

    def run_phase(
        self,
        plan: PhasePlan,
        n_tasks: int,
        kernel: Callable,
        task_ids=None,
        scan_items: int = 0,
    ) -> tuple[PhaseTiming | None, list[int]]:
        """Run ``kernel`` over ``n_tasks`` tasks under ``plan``.

        ``scan_items`` charges an auxiliary vectorized sweep of that many
        items to the phase (the "collect the uncolored vertices" pass after
        a net-based removal); engines without a clock ignore it.
        """
        ...

    def snapshot(self) -> np.ndarray: ...

    @property
    def total_cycles(self) -> float: ...


class SimPhaseEngine:
    """Kernel-level engine on the simulated multicore (``backend="sim"``)."""

    clocked = True

    def __init__(self, initial_colors: np.ndarray, threads: int, cost=None, tracer=None):
        from repro.machine.machine import Machine

        self.machine = Machine(threads, cost, tracer=tracer)
        self.machine.reset_thread_states()
        self.memory = self.machine.make_memory(initial_colors)

    @property
    def values(self) -> np.ndarray:
        return self.memory.values

    def run_phase(self, plan, n_tasks, kernel, task_ids=None, scan_items=0):
        from repro.machine.scheduler import Schedule

        extra = self.machine.parallel_scan_cost(scan_items) if scan_items else 0
        return self.machine.parallel_for(
            n_tasks,
            kernel,
            self.memory,
            schedule=Schedule.dynamic(plan.chunk),
            queue_mode=plan.queue_mode,
            phase_kind=plan.phase,
            task_ids=task_ids,
            extra_wall=extra,
        )

    def snapshot(self) -> np.ndarray:
        return self.memory.snapshot()

    @property
    def total_cycles(self) -> float:
        return self.machine.trace.total_cycles


class ThreadedPhaseEngine:
    """Kernel-level engine on real Python threads (``backend="threaded"``).

    Writes are immediate and unsynchronized, so races (and therefore
    conflicts) are genuine GIL interleavings — nondeterministic across
    runs, always resolved by the speculative loop.  Queue appends always
    use thread-private lists merged at the phase barrier; the plan's
    ``queue_mode`` is accepted but not distinguished.
    """

    clocked = False

    def __init__(self, initial_colors: np.ndarray, threads: int, cost=None, tracer=None):
        from repro.machine.threaded import ThreadedExecutor

        self.executor = ThreadedExecutor(threads)
        self.colors = np.array(initial_colors, dtype=np.int64, copy=True)

    @property
    def values(self) -> np.ndarray:
        return self.colors

    def run_phase(self, plan, n_tasks, kernel, task_ids=None, scan_items=0):
        queued = self.executor.parallel_for(
            n_tasks, kernel, self.colors, chunk=plan.chunk, task_ids=task_ids
        )
        return None, queued

    def snapshot(self) -> np.ndarray:
        return self.colors.copy()

    @property
    def total_cycles(self) -> float:
        return 0.0


def _set_phase_span(span, timing, n_tasks, conflicts=None) -> None:
    attrs = (
        {"items": timing.tasks, "cycles": timing.cycles}
        if timing is not None
        else {"items": n_tasks}
    )
    if conflicts is not None:
        attrs["conflicts"] = conflicts
    span.set(**attrs)


def run_plan_loop(
    engine: PhaseEngine,
    adapter,
    schedule: ScheduleSpec,
    *,
    name: str,
    threads: int,
    policy=None,
    max_iterations: int = 200,
    tracer=None,
    backend_name: str = "sim",
) -> ColoringResult:
    """The backend-agnostic speculative loop (paper Algs. 1–3).

    Asks ``schedule`` for each iteration's phase plans and ``engine`` to
    execute them; everything schedule- or backend-specific lives behind
    those two objects.  Shared by every kernel-level backend.
    """
    from repro.obs.tracer import ensure_tracer

    tracer = ensure_tracer(tracer)
    vertex_policy = policy if policy is not None else FirstFit()
    net_policy = None if policy is None or isinstance(policy, FirstFit) else policy

    vertex_color = adapter.make_vertex_color_kernel(vertex_policy)
    net_color = adapter.make_net_color_kernel(net_policy)
    vertex_remove = adapter.make_vertex_removal_kernel()
    net_remove = adapter.make_net_removal_kernel()

    work = np.arange(adapter.n_targets, dtype=np.int64)
    records: list[IterationRecord] = []
    iteration = 0
    palette = 0
    run_start = time.perf_counter()

    with tracer.span(
        "run", algorithm=name, backend=backend_name, threads=threads
    ) as run_span:
        while work.size:
            if iteration >= max_iterations:
                raise ColoringError(
                    f"{name} did not converge in {max_iterations} iterations "
                    f"({work.size} vertices still queued)"
                )
            plan = schedule.iteration_plan(iteration)
            with tracer.span(
                "iteration", iteration=iteration, queue_size=int(work.size)
            ) as iter_span:
                iter_start = time.perf_counter()
                # ---- coloring phase -----------------------------------------
                with tracer.span(
                    "phase",
                    iteration=iteration,
                    phase=PhaseKind.COLOR,
                    kind=plan.color.kind,
                ) as phase_span:
                    if plan.color.kind == "net":
                        color_timing, _ = engine.run_phase(
                            plan.color, adapter.n_nets, net_color
                        )
                        color_tasks = adapter.n_nets
                    else:
                        color_timing, _ = engine.run_phase(
                            plan.color, work.size, vertex_color, task_ids=work
                        )
                        color_tasks = int(work.size)
                    _set_phase_span(phase_span, color_timing, color_tasks)
                # ---- conflict-removal phase ---------------------------------
                with tracer.span(
                    "phase",
                    iteration=iteration,
                    phase=PhaseKind.REMOVE,
                    kind=plan.remove.kind,
                ) as phase_span:
                    if plan.remove.kind == "net":
                        remove_timing, _ = engine.run_phase(
                            plan.remove,
                            adapter.n_nets,
                            net_remove,
                            scan_items=adapter.n_targets,
                        )
                        remove_tasks = adapter.n_nets
                        next_work = np.nonzero(engine.values == UNCOLORED)[0].astype(
                            np.int64
                        )
                    else:
                        remove_timing, queued = engine.run_phase(
                            plan.remove, work.size, vertex_remove, task_ids=work
                        )
                        remove_tasks = int(work.size)
                        next_work = np.asarray(queued, dtype=np.int64)
                    _set_phase_span(
                        phase_span,
                        remove_timing,
                        remove_tasks,
                        conflicts=int(next_work.size),
                    )

                # Palette growth: the high-water color count is monotone (a
                # net-based removal may reset colors, never retire them).
                committed_max = int(engine.values.max()) if engine.values.size else -1
                colors_introduced = max(0, committed_max + 1 - palette)
                palette = max(palette, committed_max + 1)
                iter_wall = time.perf_counter() - iter_start

                records.append(
                    IterationRecord(
                        index=iteration,
                        queue_size=int(work.size),
                        conflicts=int(next_work.size),
                        color_timing=color_timing,
                        remove_timing=remove_timing,
                        colors_introduced=colors_introduced,
                        wall_seconds=0.0 if engine.clocked else iter_wall,
                    )
                )
                if engine.clocked:
                    iter_span.set(
                        conflicts=int(next_work.size),
                        colors_introduced=colors_introduced,
                        cycles=color_timing.cycles + remove_timing.cycles,
                    )
                else:
                    iter_span.set(
                        conflicts=int(next_work.size),
                        colors_introduced=colors_introduced,
                        wall_seconds=iter_wall,
                    )
            work = next_work
            iteration += 1

        final = engine.snapshot()
        run_span.set(
            iterations=iteration,
            cycles=engine.total_cycles,
            num_colors=int(final.max()) + 1 if final.size else 0,
        )
    if final.size and final.min() < 0:
        raise ColoringError(
            f"{name} finished with {int((final < 0).sum())} uncolored vertices"
        )
    return ColoringResult(
        colors=final,
        num_colors=int(final.max()) + 1 if final.size else 0,
        iterations=records,
        algorithm=name,
        threads=threads,
        cycles=engine.total_cycles,
        backend=backend_name,
        wall_seconds=0.0 if engine.clocked else time.perf_counter() - run_start,
    )


@runtime_checkable
class ExecutionBackend(Protocol):
    """What a backend must provide to the driver.

    ``run`` executes the whole speculative loop of ``schedule`` on
    ``adapter`` and returns a :class:`~repro.types.ColoringResult`.
    Kernel-level backends additionally expose ``make_engine`` so other
    harnesses (e.g. :func:`repro.dist.hybrid.hybrid_bgpc`) can run single
    phases on the same substrate.
    """

    name: str

    def run(
        self,
        adapter,
        schedule: ScheduleSpec,
        *,
        name: str,
        threads: int,
        cost=None,
        policy=None,
        max_iterations: int = 200,
        fastpath_mode: str = "exact",
        tracer=None,
    ) -> ColoringResult: ...


class _KernelLoopBackend:
    """Shared ``run`` for backends that execute per-task kernels."""

    name = ""
    engine_cls: type | None = None

    def make_engine(
        self, initial_colors: np.ndarray, threads: int, cost=None, tracer=None
    ) -> PhaseEngine:
        """A fresh :class:`PhaseEngine` over ``initial_colors``."""
        return self.engine_cls(initial_colors, threads, cost, tracer)

    def run(
        self,
        adapter,
        schedule,
        *,
        name,
        threads,
        cost=None,
        policy=None,
        max_iterations=200,
        fastpath_mode="exact",  # accepted for signature uniformity; unused
        tracer=None,
    ) -> ColoringResult:
        from repro.obs.tracer import ensure_tracer

        tracer = ensure_tracer(tracer)
        colors = np.full(adapter.n_targets, UNCOLORED, dtype=np.int64)
        engine = self.make_engine(colors, threads, cost, tracer)
        return run_plan_loop(
            engine,
            adapter,
            schedule,
            name=name,
            threads=threads,
            policy=policy,
            max_iterations=max_iterations,
            tracer=tracer,
            backend_name=self.name,
        )


class SimBackend(_KernelLoopBackend):
    """Cycle-accurate simulated multicore (the paper's reproduction vehicle)."""

    name = "sim"
    engine_cls = SimPhaseEngine


class ThreadedBackend(_KernelLoopBackend):
    """Real Python threads with genuine GIL-interleaved races.

    Colors are nondeterministic across runs (always valid on return);
    ``cycles`` is 0 and per-phase timings are ``None`` — the currency is
    measured ``wall_seconds``, like the NumPy backend.  Useful as a sanity
    check that the speculative template converges under real races, and as
    the only backend whose conflicts are not a model.
    """

    name = "threaded"
    engine_cls = ThreadedPhaseEngine


class NumpyBackend:
    """Vectorized whole-array engine (:mod:`repro.core.fastpath`).

    Ignores ``threads``, ``cost``, ``max_iterations`` and the schedule's
    kernel plan (its round structure is the engine's own, bounded by a
    provable ``n + 1``); honours ``fastpath_mode`` (``"exact"`` /
    ``"speculative"``) and supports only the first-fit policy.
    """

    name = "numpy"

    def run(
        self,
        adapter,
        schedule,
        *,
        name,
        threads,
        cost=None,
        policy=None,
        max_iterations=200,
        fastpath_mode="exact",
        tracer=None,
    ) -> ColoringResult:
        from repro.core.fastpath.engine import run_fastpath
        from repro.obs.tracer import ensure_tracer

        if policy is not None and not isinstance(policy, FirstFit):
            raise ColoringError(
                "backend='numpy' supports only the first-fit policy (U); "
                f"got {type(policy).__name__} — run B1/B2 on the simulator"
            )
        tracer = ensure_tracer(tracer)
        groups = adapter.fastpath_groups()
        t0 = time.perf_counter()
        with tracer.span(
            "run", algorithm=name, backend="numpy", mode=fastpath_mode
        ) as run_span:
            colors, records = run_fastpath(groups, mode=fastpath_mode, tracer=tracer)
            run_span.set(
                num_colors=int(colors.max()) + 1 if colors.size else 0,
                iterations=len(records),
            )
        wall = time.perf_counter() - t0
        return ColoringResult(
            colors=colors,
            num_colors=int(colors.max()) + 1 if colors.size else 0,
            iterations=records,
            algorithm=name,
            threads=1,
            cycles=0.0,
            backend="numpy",
            wall_seconds=wall,
        )


# -- the registry -------------------------------------------------------------

_BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend, *, name: str | None = None,
                     replace: bool = False) -> ExecutionBackend:
    """Register ``backend`` under ``name`` (default: ``backend.name``).

    One call makes the backend reachable from :func:`run_speculative
    <repro.core.driver.run_speculative>`, ``color_bgpc``/``color_d2gc``,
    the CLI's ``--backend`` and the bench harness — no driver edits.
    Registering an existing name raises unless ``replace=True``.
    """
    key = name if name is not None else backend.name
    if not key:
        raise ColoringError("backend must have a non-empty name")
    if key in _BACKENDS and not replace:
        raise ColoringError(
            f"backend {key!r} already registered; pass replace=True to override"
        )
    _BACKENDS[key] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    """Look up a registered backend; unknown names list the valid ones."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ColoringError(
            f"unknown backend {name!r}; choose from {backend_names()}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


register_backend(SimBackend())
register_backend(NumpyBackend())
register_backend(ThreadedBackend())
