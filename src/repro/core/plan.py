"""Schedule specs: the paper's ``X-Y`` naming scheme as a structured plan.

The paper's contribution is a *matrix* of schedules — which kernel kind
(vertex- or net-based) runs the coloring and the conflict-removal phase of
each speculative iteration, under which chunk size, queue construction and
balancing policy.  This module makes that matrix first-class:

* :class:`ScheduleSpec` parses any name in the paper's grammar
  (``"V-V-64D"``, ``"V-N∞"``, ``"N1-N2-B1"``, …) into a structured,
  validated spec and canonicalizes it back with ``str(spec)``;
* :meth:`ScheduleSpec.iteration_plan` resolves iteration ``i`` into a pair
  of :class:`PhasePlan` records — everything an execution backend needs to
  run that iteration's two phases, with no schedule knowledge of its own;
* :func:`build_algorithm_table` derives the named algorithm tables
  (``BGPC_ALGORITHMS`` / ``D2GC_ALGORITHMS``) from the parser, so
  registering a new hybrid schedule is a parse away instead of a
  three-file edit.

Grammar (case-insensitive; ``∞`` and ``inf`` are interchangeable)::

    spec     := color "-" removal ("-" chunk)? ("-" balancing)? ("-" switch)*
    color    := "V" | "N" horizon          # net-based coloring horizon
    removal  := "V" | "N" horizon          # net-based removal horizon
    horizon  := integer >= 1 | "inf" | "∞"
    chunk    := integer "D"? | "D"         # dynamic chunk; D = lazy private
                                           # queues (the paper's D fix)
    balancing:= "B1" | "B2" | "U"          # §V policies; U = plain first-fit
    switch   := balancing "@" integer >= 1 # per-iteration policy switch

Defaults reproduce the paper's tables: a bare ``V-V`` is ColPack's default
(chunk 1, immediate atomic shared queue); any spec with a net-based horizon
gets the engineered defaults (chunk 64, lazy private queues).  A bare ``D``
implies chunk 64.

Switch segments change the *balancing policy* mid-run: ``"V-V-64D-B1@2"``
runs plain first-fit for iterations 0–1 and B1 from iteration 2 on.
Multiple segments are allowed (``"V-V-B1@1-B2@3"``) with strictly
increasing iteration breakpoints; iteration 0's policy is the base
balancing token (``U`` when absent), so a breakpoint must be >= 1.
:meth:`ScheduleSpec.active_balancing` resolves the label an iteration
runs under, and :meth:`ScheduleSpec.iteration_plan` stamps it into both
phase plans so every kernel-level backend honors the switch through
``run_plan_loop`` (whole-array and sharded backends keep their own round
structure, exactly as they already do for chunk sizes and horizons).

Validation lives here too: net-based coloring finds its work by
``c[u] == UNCOLORED``, so every net-coloring iteration after the first must
follow a net-based removal (which resets losers), giving the invariant
``net_color_iters <= net_removal_iters + 1`` enforced by
:func:`validate_horizons`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ColoringError
from repro.machine.engine import QUEUE_ATOMIC, QUEUE_NONE, QUEUE_PRIVATE
from repro.types import PhaseKind

__all__ = [
    "INF_ITERS",
    "GRAMMAR_HINT",
    "PAPER_SCHEDULES",
    "BALANCING_POLICIES",
    "AlgorithmSpec",
    "PhasePlan",
    "IterationPlan",
    "ScheduleSpec",
    "build_algorithm_table",
    "normalize_schedule_name",
    "resolve_schedule",
    "validate_horizons",
]

#: Effectively-infinite iteration horizon (the paper's ``∞`` suffix).
INF_ITERS = 10**9

#: The eight named schedules of the paper's Section VI, in table order.
PAPER_SCHEDULES = (
    "V-V",
    "V-V-64",
    "V-V-64D",
    "V-Ninf",
    "V-N1",
    "V-N2",
    "N1-N2",
    "N2-N2",
)

#: Balancing suffixes accepted by the grammar (``"U"`` = plain first-fit).
BALANCING_POLICIES = ("U", "B1", "B2")

#: Kernel kinds a phase can resolve to.
KIND_VERTEX = "vertex"
KIND_NET = "net"


def validate_horizons(name: str, net_color_iters: int, net_removal_iters: int) -> None:
    """Enforce the net-color/net-removal horizon invariant.

    Net-based coloring finds its work by ``c[u] == UNCOLORED``, so every
    net-coloring iteration after the first must follow a net-based removal
    (which resets losers to ``UNCOLORED``).  Vertex-based removal only
    queues losers without resetting them, which would starve a subsequent
    net-coloring pass.
    """
    if net_color_iters < 0 or net_removal_iters < 0:
        raise ColoringError("iteration horizons must be non-negative")
    if net_color_iters > net_removal_iters + 1:
        raise ColoringError(
            f"{name}: net_color_iters ({net_color_iters}) may "
            f"exceed net_removal_iters ({net_removal_iters}) by at "
            "most 1 — net coloring must follow a net-based removal"
        )


@dataclass(frozen=True)
class AlgorithmSpec:
    """Configuration of one named algorithm variant.

    .. deprecated::
        :class:`ScheduleSpec` (same module) supersedes this record: it
        parses the paper's names, round-trips them, and resolves
        per-iteration :class:`PhasePlan` records.  ``AlgorithmSpec`` is kept
        as the stable hand-construction surface — `run_speculative` accepts
        both — and is still importable from :mod:`repro.core.driver`.

    Attributes
    ----------
    name:
        Display name, e.g. ``"N1-N2"``.
    chunk:
        Dynamic-scheduling chunk size (1 for plain ``V-V``, 64 otherwise).
    queue_mode:
        ``"atomic"`` (immediate shared queue) or ``"private"`` (lazy
        thread-private queues, the ``D`` variants) — only relevant for
        vertex-based removal iterations.
    net_color_iters:
        Number of leading iterations that use net-based coloring (Alg. 8).
    net_removal_iters:
        Number of leading iterations that use net-based removal (Alg. 7);
        ``INF_ITERS`` reproduces ``V-N∞``.
    """

    name: str
    chunk: int = 64
    queue_mode: str = QUEUE_PRIVATE
    net_color_iters: int = 0
    net_removal_iters: int = 0

    def __post_init__(self) -> None:
        if self.chunk < 1:
            raise ColoringError(f"chunk must be >= 1, got {self.chunk}")
        if self.queue_mode not in (QUEUE_ATOMIC, QUEUE_PRIVATE):
            raise ColoringError(f"bad queue mode {self.queue_mode!r}")
        validate_horizons(self.name, self.net_color_iters, self.net_removal_iters)


@dataclass(frozen=True)
class PhasePlan:
    """Everything a backend needs to execute one phase of one iteration.

    Attributes
    ----------
    phase:
        ``PhaseKind.COLOR`` or ``PhaseKind.REMOVE``.
    kind:
        ``"vertex"`` or ``"net"`` — which kernel family runs the phase.
    chunk:
        Dynamic-scheduling chunk size for the phase's parallel for.
    queue_mode:
        Engine queue mode for the phase: ``"atomic"`` / ``"private"`` for a
        vertex-based removal (which feeds the next work queue), ``"none"``
        for every other phase.
    balancing:
        ``"U"``, ``"B1"`` or ``"B2"`` — the §V color-selection policy the
        schedule requests (resolved to a policy object by the driver).
    """

    phase: str
    kind: str
    chunk: int
    queue_mode: str = QUEUE_NONE
    balancing: str = "U"


@dataclass(frozen=True)
class IterationPlan:
    """The resolved pair of phases for one speculative iteration."""

    index: int
    color: PhasePlan
    remove: PhasePlan


_CHUNK_TOKEN = re.compile(r"(\d+)?(D)?", re.IGNORECASE)


def _phase_token_str(horizon: int) -> str:
    if horizon == 0:
        return "V"
    if horizon >= INF_ITERS:
        return "Ninf"
    return f"N{horizon}"


def _parse_phase_token(token: str, raw: str) -> int:
    t = token.upper()
    if t == "V":
        return 0
    if t.startswith("N") and len(t) > 1:
        body = t[1:]
        if body == "INF":
            return INF_ITERS
        if body.isdigit() and int(body) >= 1:
            return int(body)
    raise _parse_error(raw, f"bad phase token {token!r}")


#: The grammar summary quoted by every parse-error message.
GRAMMAR_HINT = "'<V|Nk|Ninf>-<V|Nk|Ninf>[-<chunk>[D]][-B1|-B2][-<B1|B2|U>@<iter>...]'"


def _parse_error(raw: str, detail: str = "") -> ColoringError:
    hint = f" ({detail})" if detail else ""
    error = ColoringError(
        f"cannot parse schedule {raw!r}{hint}; expected one of the named "
        f"schedules {list(PAPER_SCHEDULES)} or a spec matching "
        f"{GRAMMAR_HINT} "
        "(case-insensitive, '∞' == 'inf')"
    )
    # Carried so resolve_schedule can surface the specific reason ("bad
    # switch segment ...") inside its unknown-algorithm message.
    error.detail = detail
    return error


@dataclass(frozen=True)
class ScheduleSpec:
    """A parsed, validated schedule in the paper's ``X-Y`` naming scheme.

    The structured counterpart of an algorithm name: ``ScheduleSpec.parse``
    turns ``"N1-N2-B1"`` into horizons + chunk + queue mode + balancing,
    ``str(spec)`` canonicalizes back (round-tripping every paper name), and
    :meth:`iteration_plan` resolves what iteration ``i`` actually runs.

    Attributes
    ----------
    net_color_iters:
        Leading iterations whose *coloring* phase is net-based (Alg. 8).
    net_removal_iters:
        Leading iterations whose *removal* phase is net-based (Alg. 7);
        ``INF_ITERS`` means "always" (the ``N∞`` suffix).
    chunk:
        Dynamic-scheduling chunk size for every phase.
    queue_mode:
        Next-work queue construction for vertex-based removals:
        ``"atomic"`` or ``"private"`` (the ``D`` fix).
    balancing:
        ``"U"`` (plain first-fit), ``"B1"`` or ``"B2"`` (§V heuristics) —
        the policy iteration 0 starts under.
    switches:
        Per-iteration policy switches as ``(iteration, policy)`` pairs with
        strictly increasing iterations >= 1 (the grammar's ``POLICY@ITER``
        segments): from ``iteration`` on, coloring uses ``policy`` instead
        of the previous label.  Empty for a single-policy run.
    """

    net_color_iters: int = 0
    net_removal_iters: int = 0
    chunk: int = 64
    queue_mode: str = QUEUE_PRIVATE
    balancing: str = "U"
    switches: tuple[tuple[int, str], ...] = ()

    def __post_init__(self) -> None:
        if self.chunk < 1:
            raise ColoringError(f"chunk must be >= 1, got {self.chunk}")
        if self.queue_mode not in (QUEUE_ATOMIC, QUEUE_PRIVATE):
            raise ColoringError(f"bad queue mode {self.queue_mode!r}")
        if self.balancing not in BALANCING_POLICIES:
            raise ColoringError(
                f"bad balancing {self.balancing!r}; choose from {BALANCING_POLICIES}"
            )
        switches = tuple(
            (int(iteration), str(policy)) for iteration, policy in self.switches
        )
        object.__setattr__(self, "switches", switches)
        previous = 0
        for iteration, policy in switches:
            if policy not in BALANCING_POLICIES:
                raise ColoringError(
                    f"bad switch policy {policy!r}; choose from {BALANCING_POLICIES}"
                )
            if iteration < 1:
                raise ColoringError(
                    f"switch iteration must be >= 1, got {iteration} "
                    "(iteration 0 runs the base balancing policy)"
                )
            if iteration <= previous and previous:
                raise ColoringError(
                    f"switch iterations must be strictly increasing, got "
                    f"{iteration} after {previous}"
                )
            previous = iteration
        validate_horizons(str(self), self.net_color_iters, self.net_removal_iters)

    # -- naming ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """Canonical schedule name (same as ``str(spec)``)."""
        return str(self)

    def __str__(self) -> str:
        parts = [
            _phase_token_str(self.net_color_iters),
            _phase_token_str(self.net_removal_iters),
        ]
        default_chunk, default_queue = self._shape_defaults(
            self.net_color_iters, self.net_removal_iters
        )
        if (self.chunk, self.queue_mode) != (default_chunk, default_queue):
            suffix = "D" if self.queue_mode == QUEUE_PRIVATE else ""
            parts.append(f"{self.chunk}{suffix}")
        if self.balancing != "U":
            parts.append(self.balancing)
        for iteration, policy in self.switches:
            parts.append(f"{policy}@{iteration}")
        return "-".join(parts)

    @staticmethod
    def _shape_defaults(net_color_iters: int, net_removal_iters: int) -> tuple[int, str]:
        """Default (chunk, queue_mode) of a schedule shape.

        Plain ``V-V`` is ColPack's default (chunk 1, immediate atomic
        queue); any net-based horizon implies the paper's engineered
        defaults (chunk 64, lazy private queues).
        """
        if net_color_iters == 0 and net_removal_iters == 0:
            return 1, QUEUE_ATOMIC
        return 64, QUEUE_PRIVATE

    # -- parsing --------------------------------------------------------------

    @classmethod
    def parse(cls, name: "str | ScheduleSpec | AlgorithmSpec") -> "ScheduleSpec":
        """Parse a schedule name (any alias) into a :class:`ScheduleSpec`.

        Accepts the paper's spellings and every alias the grammar admits:
        case-insensitive tokens, ``∞`` for ``inf``, explicit chunk/queue
        and balancing suffixes.  An already-structured spec passes through
        (an :class:`AlgorithmSpec` is converted field-by-field).
        """
        if isinstance(name, ScheduleSpec):
            return name
        if isinstance(name, AlgorithmSpec):
            return cls.from_algorithm_spec(name)
        if not isinstance(name, str):
            raise ColoringError(
                f"schedule must be a name or spec, got {type(name).__name__}"
            )
        raw = name
        tokens = name.strip().replace("∞", "inf").split("-")
        if len(tokens) < 2 or any(not t for t in tokens):
            raise _parse_error(raw)
        net_color_iters = _parse_phase_token(tokens[0], raw)
        net_removal_iters = _parse_phase_token(tokens[1], raw)
        chunk: int | None = None
        private: bool | None = None
        balancing: str | None = None
        switches: list[tuple[int, str]] = []
        for token in tokens[2:]:
            t = token.upper()
            if "@" in t:
                policy, _, at = t.partition("@")
                if policy not in BALANCING_POLICIES:
                    raise _parse_error(
                        raw,
                        f"bad switch segment {token!r}: policy must be one "
                        f"of {BALANCING_POLICIES}",
                    )
                if not at.isdigit():
                    raise _parse_error(
                        raw,
                        f"bad switch segment {token!r}: expected "
                        "<B1|B2|U>@<iteration> with an integer iteration >= 1",
                    )
                start = int(at)
                if start < 1:
                    raise _parse_error(
                        raw,
                        f"bad switch segment {token!r}: iteration must be "
                        ">= 1 (iteration 0 runs the base balancing policy)",
                    )
                switches.append((start, policy))
            elif t in BALANCING_POLICIES:
                if balancing is not None:
                    raise _parse_error(raw, "duplicate balancing token")
                balancing = t
            else:
                m = _CHUNK_TOKEN.fullmatch(t)
                if m is None or (m.group(1) is None and m.group(2) is None):
                    raise _parse_error(raw, f"bad modifier {token!r}")
                if chunk is not None or private is not None:
                    raise _parse_error(raw, "duplicate chunk token")
                chunk = int(m.group(1)) if m.group(1) else None
                private = m.group(2) is not None
        for (a, _), (b, _) in zip(switches, switches[1:]):
            if b == a:
                raise _parse_error(raw, f"duplicate switch iteration {b}")
            if b < a:
                raise _parse_error(
                    raw,
                    f"switch iterations must be strictly increasing, got "
                    f"{b} after {a}",
                )
        default_chunk, default_queue = cls._shape_defaults(
            net_color_iters, net_removal_iters
        )
        if chunk is None and private is None:
            chunk_val, queue_mode = default_chunk, default_queue
        else:
            # An explicit chunk token overrides the shape defaults: a bare
            # number means the immediate atomic queue (the paper's "-64"),
            # a trailing D the lazy private queues; a bare D implies the
            # engineered chunk 64.
            chunk_val = chunk if chunk is not None else 64
            queue_mode = QUEUE_PRIVATE if private else QUEUE_ATOMIC
        return cls(
            net_color_iters=net_color_iters,
            net_removal_iters=net_removal_iters,
            chunk=chunk_val,
            queue_mode=queue_mode,
            balancing=balancing if balancing is not None else "U",
            switches=tuple(switches),
        )

    # -- conversions ----------------------------------------------------------

    @classmethod
    def from_algorithm_spec(cls, spec: AlgorithmSpec) -> "ScheduleSpec":
        """Structured view of a hand-built :class:`AlgorithmSpec`."""
        return cls(
            net_color_iters=spec.net_color_iters,
            net_removal_iters=spec.net_removal_iters,
            chunk=spec.chunk,
            queue_mode=spec.queue_mode,
        )

    def to_algorithm_spec(self, name: str | None = None) -> AlgorithmSpec:
        """The backward-compatible :class:`AlgorithmSpec` of this schedule.

        ``balancing`` and ``switches`` have no ``AlgorithmSpec`` field; they
        survive in the canonical name (e.g. ``"N1-N2-B1"``,
        ``"V-V-64D-B1@2"``) and are re-derived on parse.
        """
        return AlgorithmSpec(
            name=name if name is not None else str(self),
            chunk=self.chunk,
            queue_mode=self.queue_mode,
            net_color_iters=self.net_color_iters,
            net_removal_iters=self.net_removal_iters,
        )

    # -- the plan -------------------------------------------------------------

    def active_balancing(self, iteration: int) -> str:
        """The balancing policy label iteration ``iteration`` runs under.

        The base :attr:`balancing` until the first switch segment whose
        iteration has been reached, then that segment's policy, and so on —
        the last crossed breakpoint wins.
        """
        label = self.balancing
        for start, policy in self.switches:
            if iteration < start:
                break
            label = policy
        return label

    def iteration_plan(self, iteration: int) -> IterationPlan:
        """Resolve iteration ``iteration`` into its two phase plans."""
        color_kind = KIND_NET if iteration < self.net_color_iters else KIND_VERTEX
        remove_kind = KIND_NET if iteration < self.net_removal_iters else KIND_VERTEX
        balancing = self.active_balancing(iteration)
        color = PhasePlan(
            phase=PhaseKind.COLOR,
            kind=color_kind,
            chunk=self.chunk,
            queue_mode=QUEUE_NONE,
            balancing=balancing,
        )
        remove = PhasePlan(
            phase=PhaseKind.REMOVE,
            kind=remove_kind,
            chunk=self.chunk,
            queue_mode=self.queue_mode if remove_kind == KIND_VERTEX else QUEUE_NONE,
            balancing=balancing,
        )
        return IterationPlan(index=iteration, color=color, remove=remove)


def normalize_schedule_name(name: str) -> str:
    """Canonical spelling of any schedule alias.

    ``"v-n∞"`` → ``"V-Ninf"``, ``"n1-n2-b1"`` → ``"N1-N2-B1"``.  Raises
    :class:`~repro.errors.ColoringError` (listing the named schedules and
    the grammar) when the name does not parse.
    """
    return str(ScheduleSpec.parse(name))


def build_algorithm_table(
    names: tuple[str, ...] = PAPER_SCHEDULES,
) -> dict[str, AlgorithmSpec]:
    """Derive a named algorithm table from the schedule parser.

    The source of ``BGPC_ALGORITHMS`` / ``D2GC_ALGORITHMS``: each paper name
    parses to a :class:`ScheduleSpec` whose :class:`AlgorithmSpec` view is
    golden-pinned equal to the previously hand-written entries.
    """
    return {name: ScheduleSpec.parse(name).to_algorithm_spec(name) for name in names}


def resolve_schedule(
    algorithm: "str | ScheduleSpec | AlgorithmSpec",
    table: dict[str, AlgorithmSpec] | None = None,
    problem: str = "",
) -> "ScheduleSpec | AlgorithmSpec | object":
    """Resolve a user-facing algorithm argument to a runnable spec.

    Structured specs pass through.  Strings are alias-normalized and looked
    up in ``table`` first (so named schedules keep their exact registered
    spec and display name), falling back to the parsed spec for any novel
    combination the grammar admits (e.g. ``"N1-Ninf-B2"``).  The adaptive
    controller names (``"adaptive"``, ``"adaptive:<threshold>"`` — see
    :mod:`repro.core.adaptive`) resolve to a fresh
    :class:`~repro.core.adaptive.AdaptiveSchedule`.  Unknown names raise a
    :class:`~repro.errors.ColoringError` listing the valid names.
    """
    if isinstance(algorithm, (ScheduleSpec, AlgorithmSpec)):
        return algorithm
    if hasattr(algorithm, "observe") and hasattr(algorithm, "iteration_plan"):
        # A ScheduleController instance (e.g. AdaptiveSchedule) passes
        # through like a structured spec; the driver gates backends.
        return algorithm
    if isinstance(algorithm, str):
        # Deferred import: repro.core.adaptive builds on this module.
        from repro.core.adaptive import is_adaptive_name, parse_adaptive

        if is_adaptive_name(algorithm):
            return parse_adaptive(algorithm)
    try:
        spec = ScheduleSpec.parse(algorithm)
    except ColoringError as exc:
        known = sorted(table) if table else list(PAPER_SCHEDULES)
        label = f"{problem} " if problem else ""
        detail = getattr(exc, "detail", "")
        reason = f" ({detail})" if detail else ""
        raise ColoringError(
            f"unknown {label}algorithm {algorithm!r}{reason}; choose from "
            f"{known}, 'adaptive[:threshold]', or any spec matching "
            f"{GRAMMAR_HINT}"
        ) from exc
    if table is not None:
        canonical = str(spec)
        if canonical in table:
            return table[canonical]
    return spec
