"""Distance-k graph coloring — the paper's §VIII future-work extension.

The paper closes with "the optimistic techniques for BGPC and D2GC can be
extended to the distance-k graph coloring problem".  This module does that
extension:

* **vertex-based kernels** traverse each vertex's radius-k ball (BFS-
  limited), exactly generalizing Algs. 4–5 / the D2GC vertex kernels;
* for **even k = 2m**, the net-based idea generalizes: the radius-m ball of
  any center vertex is a clique in G^k (two vertices within distance m of a
  common center are within distance 2m of each other, and conversely every
  distance-≤ k pair has such a center on its shortest path).  One sweep over
  all radius-m balls therefore colors and verifies in the same way Algs. 9
  and 10 do for k = 2.

Odd k has no exact vertex-centred ball cover, so net-based horizons are
rejected for odd k and the vertex-based variants remain available.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.bgpc.vertex import thread_forbidden
from repro.core.driver import AlgorithmSpec, run_sequential, run_speculative
from repro.errors import ColoringError, InvalidColoringError
from repro.graph.unipartite import Graph
from repro.machine.cost import CostModel
from repro.types import ColoringResult, UNCOLORED

__all__ = [
    "ball",
    "ball_csr",
    "color_distk",
    "sequential_distk",
    "validate_distk",
    "is_valid_distk",
    "DistKAdapter",
]


def ball(g: Graph, center: int, radius: int) -> np.ndarray:
    """Vertices within ``radius`` hops of ``center`` (excluding it), sorted.

    Plain BFS; O(ball volume).  Radius 1 equals ``nbor``; radius 0 is empty.
    """
    if radius <= 0:
        return np.empty(0, dtype=np.int64)
    seen = {center}
    frontier = deque([(center, 0)])
    members = []
    while frontier:
        v, depth = frontier.popleft()
        if depth == radius:
            continue
        for u in g.nbor(v):
            u = int(u)
            if u not in seen:
                seen.add(u)
                members.append(u)
                frontier.append((u, depth + 1))
    return np.asarray(sorted(members), dtype=np.int64)


class BallCSR:
    """Precomputed radius-r balls of every vertex, CSR-packed."""

    __slots__ = ("ptr", "idx", "radius")

    def __init__(self, ptr: np.ndarray, idx: np.ndarray, radius: int):
        self.ptr = ptr
        self.idx = idx
        self.radius = radius

    def members(self, v: int) -> np.ndarray:
        return self.idx[self.ptr[v] : self.ptr[v + 1]]


def ball_csr(g: Graph, radius: int) -> BallCSR:
    """Materialize all radius-``radius`` balls (host-side precomputation).

    The simulated kernels still charge one ``edge_cost`` per ball entry
    touched, as a BFS-traversing implementation would.
    """
    chunks = []
    ptr = np.zeros(g.num_vertices + 1, dtype=np.int64)
    for v in range(g.num_vertices):
        b = ball(g, v, radius)
        chunks.append(b)
        ptr[v + 1] = ptr[v] + b.size
    idx = np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
    return BallCSR(ptr, idx, radius)


class DistKAdapter:
    """Adapts (graph, k) to the speculative driver.

    Vertex-based kernels scan radius-k balls; the net-based kernels (only
    for even k) sweep radius-(k/2) balls with the reverse first-fit /
    first-occurrence logic of Algs. 9–10.
    """

    def __init__(self, g: Graph, k: int, cost: CostModel):
        if k < 1:
            raise ColoringError(f"distance-k needs k >= 1, got {k}")
        self.g = g
        self.k = k
        self.cost = cost
        self.n_targets = g.num_vertices
        self.n_nets = g.num_vertices
        self._full = ball_csr(g, k)
        self._half = ball_csr(g, k // 2) if k % 2 == 0 else None
        max_ball = int(np.diff(self._full.ptr).max(initial=0))
        self._capacity = max_ball + 2

    # -- vertex-based ------------------------------------------------------

    def make_vertex_color_kernel(self, policy):
        full = self._full
        cost = self.cost
        capacity = self._capacity
        edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

        def kernel(w: int, ctx) -> None:
            forb = thread_forbidden(ctx.thread_state, capacity)
            forb.begin()
            members = full.members(w)
            cvals = ctx.colors[members]
            forb.add_many(cvals[cvals >= 0])
            col, steps = policy.choose(forb, w, ctx.thread_state)
            ctx.write(w, col)
            ctx.charge_mem(int(members.size + 1) * edge + write)
            ctx.charge_cpu((int(members.size) + steps) * forbid)

        return kernel

    def make_vertex_removal_kernel(self):
        full = self._full
        cost = self.cost
        edge, forbid = cost.edge_cost, cost.forbid_cost

        def kernel(w: int, ctx) -> None:
            cw = ctx.colors[w]
            if cw < 0:
                ctx.append(w)
                ctx.charge_cpu(1)
                return
            members = full.members(w)
            cvals = ctx.colors[members]
            hits = members[(cvals == cw) & (members < w)]
            if hits.size:
                ctx.append(w)
            ctx.charge_mem(int(members.size + 1) * edge)
            ctx.charge_cpu(int(members.size) * forbid)

        return kernel

    # -- net-based (even k only) ---------------------------------------------

    def _require_half(self) -> BallCSR:
        if self._half is None:
            raise ColoringError(
                f"net-based distance-{self.k} kernels need even k "
                "(radius-k/2 ball covers); use a V-V* variant for odd k"
            )
        return self._half

    def _odd_k_stub(self):
        def kernel(v: int, ctx) -> None:  # pragma: no cover - guarded earlier
            self._require_half()

        return kernel

    def make_net_color_kernel(self, policy):
        if self._half is None:
            # The driver builds all kernels eagerly; vertex-only specs never
            # invoke this stub, and net-horizon specs are rejected up front.
            return self._odd_k_stub()
        half = self._half
        cost = self.cost
        capacity = self._capacity
        edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

        def kernel(v: int, ctx) -> None:
            group = np.concatenate(([v], half.members(v)))
            cvals = ctx.colors[group]
            forb = thread_forbidden(ctx.thread_state, capacity)
            forb.begin()
            colored_pos = np.nonzero(cvals >= 0)[0]
            vals = cvals[colored_pos]
            uniq, first = np.unique(vals, return_index=True)
            forb.add_many(uniq)
            keep = np.zeros(colored_pos.size, dtype=bool)
            keep[first] = True
            dup_pos = colored_pos[~keep]
            unc_pos = np.nonzero(cvals < 0)[0]
            local = (
                np.sort(np.concatenate((unc_pos, dup_pos)))
                if dup_pos.size
                else unc_pos
            )
            steps = 0
            if policy is None:
                col = group.size - 1
                for pos in local:
                    while forb.contains(col):
                        col -= 1
                        steps += 1
                    if col < 0:
                        raise ColoringError(
                            f"reverse first-fit exhausted colors at ball {v}"
                        )
                    ctx.write(int(group[pos]), col)
                    col -= 1
                    steps += 1
            else:
                for pos in local:
                    u = int(group[pos])
                    col, more = policy.choose(forb, u, ctx.thread_state)
                    forb.add(col)
                    ctx.write(u, col)
                    steps += more
            ctx.charge_mem(int(group.size) * edge + int(local.size) * write)
            ctx.charge_cpu((int(group.size) + steps) * forbid)

        return kernel

    def make_net_removal_kernel(self):
        if self._half is None:
            return self._odd_k_stub()
        half = self._half
        cost = self.cost
        edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

        def kernel(v: int, ctx) -> None:
            group = np.concatenate(([v], half.members(v)))
            cvals = ctx.colors[group]
            colored_pos = np.nonzero(cvals >= 0)[0]
            resets = 0
            if colored_pos.size > 1:
                vals = cvals[colored_pos]
                _, first = np.unique(vals, return_index=True)
                if first.size != colored_pos.size:
                    keep = np.zeros(colored_pos.size, dtype=bool)
                    keep[first] = True
                    for pos in colored_pos[~keep]:
                        ctx.write(int(group[pos]), UNCOLORED)
                        resets += 1
            ctx.charge_mem(int(group.size) * edge + resets * write)
            ctx.charge_cpu(int(group.size) * forbid)

        return kernel


def color_distk(
    g: Graph,
    k: int,
    algorithm: str = "V-V-64D",
    threads: int = 16,
    cost: CostModel | None = None,
    policy=None,
    max_iterations: int = 200,
) -> ColoringResult:
    """Distance-k color ``g`` with the speculative parallel template.

    Accepts the same algorithm names as BGPC/D2GC; net-based horizons
    (``V-N*``, ``N*-N*``) require even ``k``.
    """
    from repro.core.bgpc.runner import BGPC_ALGORITHMS
    from repro.core.plan import ScheduleSpec, resolve_schedule

    spec = resolve_schedule(algorithm, BGPC_ALGORITHMS, problem="distance-k")
    if isinstance(spec, ScheduleSpec):
        spec = spec.to_algorithm_spec()
    cost = cost if cost is not None else CostModel()
    adapter = DistKAdapter(g, k, cost)
    if k % 2 == 1 and (spec.net_color_iters or spec.net_removal_iters):
        # Surface the constraint early rather than failing inside a kernel.
        adapter._require_half()
    spec = AlgorithmSpec(
        name=f"{spec.name}@d{k}",
        chunk=spec.chunk,
        queue_mode=spec.queue_mode,
        net_color_iters=spec.net_color_iters,
        net_removal_iters=spec.net_removal_iters,
    )
    return run_speculative(
        adapter, spec, threads=threads, cost=cost, policy=policy,
        max_iterations=max_iterations,
    )


def sequential_distk(
    g: Graph, k: int, cost: CostModel | None = None, policy=None
) -> ColoringResult:
    """Sequential greedy distance-k baseline."""
    cost = cost if cost is not None else CostModel()
    adapter = DistKAdapter(g, k, cost)
    return run_sequential(adapter, cost=cost, policy=policy, name=f"seq@d{k}")


def validate_distk(g: Graph, k: int, colors: np.ndarray) -> None:
    """Raise :class:`InvalidColoringError` unless ``colors`` solves D_kGC."""
    colors = np.asarray(colors)
    if colors.shape != (g.num_vertices,):
        raise InvalidColoringError(
            f"color array has shape {colors.shape}, expected ({g.num_vertices},)"
        )
    if colors.size and colors.min() < 0:
        raise InvalidColoringError("coloring is incomplete")
    for v in range(g.num_vertices):
        others = ball(g, v, k)
        clash = others[colors[others] == colors[v]]
        if clash.size:
            u = int(clash[0])
            raise InvalidColoringError(
                f"vertices {v} and {u} are within distance {k} but share "
                f"color {colors[v]}",
                conflict=(min(v, u), max(v, u), k),
            )


def is_valid_distk(g: Graph, k: int, colors: np.ndarray) -> bool:
    """Boolean form of :func:`validate_distk`."""
    try:
        validate_distk(g, k, colors)
    except InvalidColoringError:
        return False
    return True
