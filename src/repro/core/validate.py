"""Validity checking for BGPC and D2GC colorings.

These are the reference oracles the test suite and the iteration drivers'
postconditions rely on.  They are vectorized per net / per middle vertex and
independent of the kernels they check (the kernels never call them).

Validity definitions (paper §I–II):

* **BGPC** — every pair of ``V_A`` vertices adjacent to a common ``V_B``
  net has distinct colors, i.e. within every ``vtxs(v)`` all colors differ.
* **D2GC** — every pair of vertices at shortest-path distance ≤ 2 has
  distinct colors; equivalently, for every *middle* vertex ``m`` the colors
  of ``{m} ∪ nbor(m)`` are pairwise distinct.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidColoringError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.unipartite import Graph
from repro.types import UNCOLORED

__all__ = [
    "validate_bgpc",
    "validate_d2gc",
    "is_valid_bgpc",
    "is_valid_d2gc",
    "find_bgpc_conflict",
    "find_d2gc_conflict",
    "count_bgpc_conflict_vertices",
    "count_d2gc_conflict_vertices",
]


def _check_complete(colors: np.ndarray, n: int) -> None:
    if colors.shape != (n,):
        raise InvalidColoringError(
            f"color array has shape {colors.shape}, expected ({n},)"
        )
    uncolored = np.nonzero(colors == UNCOLORED)[0]
    if uncolored.size:
        raise InvalidColoringError(
            f"{uncolored.size} vertices uncolored (first: {uncolored[0]})"
        )
    if colors.size and colors.min() < 0:
        bad = int(np.argmin(colors))
        raise InvalidColoringError(f"negative color {colors[bad]} at vertex {bad}")


def find_bgpc_conflict(
    bg: BipartiteGraph, colors: np.ndarray
) -> tuple[int, int, int] | None:
    """First BGPC conflict ``(u, w, net)`` with ``u < w``, or ``None``.

    Vertices still carrying ``UNCOLORED`` are skipped, so this can be used
    on partial colorings (as after a conflict-removal phase).
    """
    n2v = bg.net_to_vtxs
    for v, members in n2v.iter_rows():
        cvals = colors[members]
        mask = cvals != UNCOLORED
        vals = cvals[mask]
        if vals.size < 2:
            continue
        order = np.argsort(vals, kind="stable")
        sorted_vals = vals[order]
        dup = np.nonzero(sorted_vals[1:] == sorted_vals[:-1])[0]
        if dup.size:
            who = members[mask][order]
            a, b = int(who[dup[0]]), int(who[dup[0] + 1])
            return (min(a, b), max(a, b), int(v))
    return None


def validate_bgpc(bg: BipartiteGraph, colors: np.ndarray) -> None:
    """Raise :class:`InvalidColoringError` unless ``colors`` solves BGPC."""
    _check_complete(colors, bg.num_vertices)
    conflict = find_bgpc_conflict(bg, colors)
    if conflict is not None:
        u, w, v = conflict
        raise InvalidColoringError(
            f"vertices {u} and {w} share net {v} but both have color {colors[u]}",
            conflict=conflict,
        )


def is_valid_bgpc(bg: BipartiteGraph, colors: np.ndarray) -> bool:
    """Boolean form of :func:`validate_bgpc`."""
    try:
        validate_bgpc(bg, colors)
    except InvalidColoringError:
        return False
    return True


def count_bgpc_conflict_vertices(bg: BipartiteGraph, colors: np.ndarray) -> int:
    """Number of vertices involved in at least one same-net color clash.

    Uncolored vertices are ignored.  Used to measure optimism damage after
    a speculative coloring phase (paper Table I counts the vertices left
    uncolored *after* removal, which equals the clash losers; this counts
    all clash participants).
    """
    involved = np.zeros(bg.num_vertices, dtype=bool)
    for _, members in bg.net_to_vtxs.iter_rows():
        cvals = colors[members]
        mask = cvals != UNCOLORED
        vals = cvals[mask]
        if vals.size < 2:
            continue
        uniq, counts = np.unique(vals, return_counts=True)
        dup_colors = uniq[counts > 1]
        if dup_colors.size:
            clash = np.isin(cvals, dup_colors) & mask
            involved[members[clash]] = True
    return int(involved.sum())


# -- D2GC --------------------------------------------------------------------


def find_d2gc_conflict(g: Graph, colors: np.ndarray) -> tuple[int, int, int] | None:
    """First D2GC conflict ``(u, w, middle)`` with ``u < w``, or ``None``."""
    adj = g.adj
    for m in range(g.num_vertices):
        group = np.concatenate(([m], adj.row(m)))
        cvals = colors[group]
        mask = cvals != UNCOLORED
        vals = cvals[mask]
        if vals.size < 2:
            continue
        order = np.argsort(vals, kind="stable")
        sorted_vals = vals[order]
        dup = np.nonzero(sorted_vals[1:] == sorted_vals[:-1])[0]
        if dup.size:
            who = group[mask][order]
            a, b = int(who[dup[0]]), int(who[dup[0] + 1])
            return (min(a, b), max(a, b), int(m))
    return None


def validate_d2gc(g: Graph, colors: np.ndarray) -> None:
    """Raise :class:`InvalidColoringError` unless ``colors`` solves D2GC."""
    _check_complete(colors, g.num_vertices)
    conflict = find_d2gc_conflict(g, colors)
    if conflict is not None:
        u, w, m = conflict
        raise InvalidColoringError(
            f"vertices {u} and {w} are within distance 2 (middle {m}) "
            f"but both have color {colors[u]}",
            conflict=conflict,
        )


def is_valid_d2gc(g: Graph, colors: np.ndarray) -> bool:
    """Boolean form of :func:`validate_d2gc`."""
    try:
        validate_d2gc(g, colors)
    except InvalidColoringError:
        return False
    return True


def count_d2gc_conflict_vertices(g: Graph, colors: np.ndarray) -> int:
    """Number of vertices in at least one distance-≤2 color clash."""
    involved = np.zeros(g.num_vertices, dtype=bool)
    adj = g.adj
    for m in range(g.num_vertices):
        group = np.concatenate(([m], adj.row(m)))
        cvals = colors[group]
        mask = cvals != UNCOLORED
        vals = cvals[mask]
        if vals.size < 2:
            continue
        uniq, counts = np.unique(vals, return_counts=True)
        dup_colors = uniq[counts > 1]
        if dup_colors.size:
            clash = np.isin(cvals, dup_colors) & mask
            involved[group[clash]] = True
    return int(involved.sum())
