"""Post-pass rebalancing baseline (Lu et al.-style shuffle).

The paper's B1/B2 heuristics balance *during* coloring for free.  The
comprehensive balancing study it cites (Lu et al., IPDPS'15) instead
rebalances *after* coloring: move vertices out of over-full color classes
into permissible under-full ones.  This module implements that shuffle as a
comparison baseline, so the "costless" claim of Section V can be quantified:
the shuffle achieves a flatter profile but pays an extra pass over the
two-hop structure (its estimated cycle cost is returned alongside).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.validate import validate_bgpc
from repro.graph.bipartite import BipartiteGraph
from repro.machine.cost import CostModel

__all__ = ["ShuffleResult", "rebalance_shuffle"]


@dataclass(frozen=True)
class ShuffleResult:
    """Outcome of a rebalancing shuffle.

    Attributes
    ----------
    colors:
        The rebalanced (still valid) coloring.
    moves:
        Number of vertices whose color changed.
    estimated_cycles:
        Simulated sequential cost of the pass: one two-hop scan per
        attempted move — the overhead B1/B2 avoid.
    """

    colors: np.ndarray
    moves: int
    estimated_cycles: int


def rebalance_shuffle(
    bg: BipartiteGraph,
    colors: np.ndarray,
    cost: CostModel | None = None,
    max_rounds: int = 3,
) -> ShuffleResult:
    """Move vertices from over-full to permissible under-full color classes.

    Greedy variant of the Lu et al. shuffle: classes larger than the mean
    donate vertices to the smallest class their conflict neighbourhood
    permits.  The input coloring must be valid; the output remains valid by
    construction (each move re-checks the two-hop forbidden set).
    """
    validate_bgpc(bg, colors)
    cost = cost if cost is not None else CostModel()
    colors = np.asarray(colors).copy()
    num_colors = int(colors.max()) + 1 if colors.size else 0
    if num_colors <= 1:
        return ShuffleResult(colors=colors, moves=0, estimated_cycles=0)

    from repro.graph.twohop import bgpc_twohop

    two = bgpc_twohop(bg)
    moves = 0
    scanned = 0

    for _ in range(max_rounds):
        cardinalities = np.bincount(colors, minlength=num_colors)
        mean = cardinalities.sum() / num_colors
        over = np.nonzero(cardinalities > mean)[0]
        if over.size == 0:
            break
        over_set = set(int(c) for c in over)
        moved_this_round = 0
        # Visit donors from the largest class downwards.
        order = np.argsort(-cardinalities[colors], kind="stable")
        for w in order:
            w = int(w)
            if colors[w] not in over_set:
                continue
            if cardinalities[colors[w]] <= mean:
                continue
            if two is not None:
                entries = two.slice(w)
            else:
                entries = np.concatenate(
                    [bg.vtxs(int(v)) for v in bg.nets(w)]
                    or [np.empty(0, dtype=np.int64)]
                )
            scanned += entries.size
            forbidden = set(
                int(c) for c in colors[entries[entries != w]]
            )
            # Smallest permissible class strictly smaller than the donor's.
            best = -1
            best_size = int(cardinalities[colors[w]])
            for candidate in np.argsort(cardinalities, kind="stable"):
                candidate = int(candidate)
                if cardinalities[candidate] + 1 >= best_size:
                    break
                if candidate not in forbidden:
                    best = candidate
                    break
            if best >= 0:
                cardinalities[colors[w]] -= 1
                cardinalities[best] += 1
                colors[w] = best
                moves += 1
                moved_this_round += 1
        if moved_this_round == 0:
            break

    validate_bgpc(bg, colors)
    estimated = scanned * cost.edge_cost + moves * cost.write_cost
    return ShuffleResult(colors=colors, moves=moves, estimated_cycles=estimated)
