"""Jones–Plassmann independent-set coloring — the pre-speculative baseline.

The paper's related-work section (§VII) contrasts its speculative approach
with the earlier family of parallel colorers built on maximal independent
sets (Luby; Jones & Plassmann): assign every vertex a random priority; each
round, the vertices whose priority beats all their *uncolored* conflict
neighbours color themselves greedily.  No conflicts can occur (priorities
are distinct, so of any adjacent pair at most one is a local maximum), at
the price of many more rounds and of re-scanning deferred vertices every
round — which is exactly why the speculative algorithms win and why this
baseline is worth having next to them.

Both problem flavours are provided: BGPC (priorities over ``V_A``, conflict
neighbourhood = two-hop) and D2GC (closed two-hop neighbourhood).
"""

from __future__ import annotations

import numpy as np

from repro.core.bgpc.vertex import color_upper_bound, thread_forbidden
from repro.core.d2gc.vertex import d2gc_color_upper_bound
from repro.errors import ColoringError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.unipartite import Graph
from repro.machine.cost import CostModel
from repro.machine.machine import Machine
from repro.machine.scheduler import Schedule
from repro.types import (
    ColoringResult,
    IterationRecord,
    PhaseKind,
    UNCOLORED,
)

__all__ = ["jones_plassmann_bgpc", "jones_plassmann_d2gc"]


def _jp_kernel_factory(entries_of, priorities, capacity, cost: CostModel):
    """Shared JP round kernel: defer to higher-priority uncolored neighbours,
    otherwise first-fit against the colored ones."""
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

    def kernel(w: int, ctx) -> None:
        entries = entries_of(w)
        colors = ctx.colors
        cvals = colors[entries]
        mine = priorities[w]
        others = entries != w
        uncolored = (cvals < 0) & others
        ctx.charge_mem(int(entries.size + 1) * edge)
        if np.any(priorities[entries[uncolored]] > mine):
            ctx.charge_cpu(int(entries.size) * forbid)
            return  # defer: a higher-priority neighbour colors first
        forb = thread_forbidden(ctx.thread_state, capacity)
        forb.begin()
        mask = (cvals >= 0) & others
        forb.add_many(cvals[mask])
        col, steps = forb.first_fit()
        ctx.write(w, col)
        ctx.charge_mem(write)
        ctx.charge_cpu((int(entries.size) + steps) * forbid)

    return kernel


def _run_jp(
    n_targets: int,
    entries_of,
    capacity: int,
    threads: int,
    cost: CostModel,
    seed: int,
    chunk: int,
    max_rounds: int,
    name: str,
) -> ColoringResult:
    rng = np.random.default_rng(seed)
    priorities = rng.permutation(n_targets).astype(np.int64)
    machine = Machine(threads, cost)
    memory = machine.make_memory(np.full(n_targets, UNCOLORED, dtype=np.int64))
    kernel = _jp_kernel_factory(entries_of, priorities, capacity, cost)
    schedule = Schedule.dynamic(chunk)
    work = np.arange(n_targets, dtype=np.int64)
    records: list[IterationRecord] = []
    rounds = 0
    while work.size:
        if rounds >= max_rounds:
            raise ColoringError(
                f"{name} did not converge in {max_rounds} rounds "
                f"({work.size} vertices uncolored)"
            )
        timing, _ = machine.parallel_for(
            work.size,
            kernel,
            memory,
            schedule=schedule,
            phase_kind=PhaseKind.COLOR,
            task_ids=work,
            extra_wall=machine.parallel_scan_cost(work.size),
        )
        next_work = work[memory.values[work] == UNCOLORED]
        records.append(
            IterationRecord(
                index=rounds,
                queue_size=int(work.size),
                conflicts=int(next_work.size),  # deferred, not conflicting
                color_timing=timing,
                remove_timing=None,
            )
        )
        work = next_work
        rounds += 1
    final = memory.snapshot()
    return ColoringResult(
        colors=final,
        num_colors=int(final.max()) + 1 if final.size else 0,
        iterations=records,
        algorithm=name,
        threads=threads,
        cycles=machine.trace.total_cycles,
    )


def jones_plassmann_bgpc(
    bg: BipartiteGraph,
    threads: int = 16,
    cost: CostModel | None = None,
    seed: int = 0,
    chunk: int = 64,
    max_rounds: int = 10_000,
) -> ColoringResult:
    """Jones–Plassmann BGPC over the two-hop conflict structure.

    Guaranteed conflict-free by construction; typically needs many more
    rounds than the speculative algorithms (each with a full scan of the
    still-uncolored vertices), which is the trade-off the paper's approach
    removes.
    """
    from repro.graph.twohop import bgpc_twohop

    cost = cost if cost is not None else CostModel()
    two = bgpc_twohop(bg)
    if two is not None:
        tptr, tidx = two.ptr, two.idx

        def entries_of(w: int) -> np.ndarray:
            return tidx[tptr[w] : tptr[w + 1]]

    else:
        vptr, vidx = bg.vtx_to_nets.ptr, bg.vtx_to_nets.idx
        nptr, nidx = bg.net_to_vtxs.ptr, bg.net_to_vtxs.idx

        def entries_of(w: int) -> np.ndarray:
            chunks = [
                nidx[nptr[v] : nptr[v + 1]] for v in vidx[vptr[w] : vptr[w + 1]]
            ]
            if not chunks:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(chunks)

    return _run_jp(
        bg.num_vertices,
        entries_of,
        color_upper_bound(bg),
        threads,
        cost,
        seed,
        chunk,
        max_rounds,
        "JP",
    )


def jones_plassmann_d2gc(
    g: Graph,
    threads: int = 16,
    cost: CostModel | None = None,
    seed: int = 0,
    chunk: int = 64,
    max_rounds: int = 10_000,
) -> ColoringResult:
    """Jones–Plassmann distance-2 coloring over closed two-hop structures."""
    from repro.graph.twohop import d2gc_twohop

    cost = cost if cost is not None else CostModel()
    two = d2gc_twohop(g)
    ptr_a, idx_a = g.adj.ptr, g.adj.idx
    if two is not None:
        tptr, tidx = two.ptr, two.idx

        def entries_of(w: int) -> np.ndarray:
            return tidx[tptr[w] : tptr[w + 1]]

    else:

        def entries_of(w: int) -> np.ndarray:
            ring1 = idx_a[ptr_a[w] : ptr_a[w + 1]]
            chunks = [ring1] + [
                idx_a[ptr_a[u] : ptr_a[u + 1]] for u in ring1
            ]
            return np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)

    return _run_jp(
        g.num_vertices,
        entries_of,
        d2gc_color_upper_bound(g),
        threads,
        cost,
        seed,
        chunk,
        max_rounds,
        "JP-D2",
    )
