"""Marker-based forbidden-color set.

The paper's implementation notes (end of Section III): the forbidden-color
structure is allocated once per thread and *never reset* — each use stamps
entries with a fresh marker value, so membership is "``mark[color] ==
current_stamp``".  This class reproduces that trick with a numpy marker
array, giving O(1) insert/test and O(k) bulk insert with zero clearing cost.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ForbiddenSet"]


class ForbiddenSet:
    """A reusable forbidden-color set over the color ids ``[0, capacity)``.

    Parameters
    ----------
    capacity:
        Initial number of representable colors; the set grows automatically
        if a larger color is inserted (growth doubles, amortized O(1)).

    Usage
    -----
    >>> F = ForbiddenSet(8)
    >>> F.begin()            # start a fresh (conceptually empty) set
    >>> F.add(3); 3 in F
    True
    >>> F.begin(); 3 in F    # new stamp: set is empty again, no clearing
    False
    """

    __slots__ = ("_mark", "_stamp", "probes")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            capacity = 1
        self._mark = np.zeros(capacity, dtype=np.int64)
        # Start at 1 so the zero-initialized marker array means "empty"
        # even before the first begin().
        self._stamp = 1
        #: Number of membership probes since construction (cost accounting).
        self.probes = 0

    @property
    def capacity(self) -> int:
        return int(self._mark.size)

    def begin(self) -> None:
        """Start a new (empty) set by bumping the stamp — O(1), no memset."""
        self._stamp += 1

    def _ensure(self, color: int) -> None:
        if color >= self._mark.size:
            new_size = max(color + 1, self._mark.size * 2)
            grown = np.zeros(new_size, dtype=np.int64)
            grown[: self._mark.size] = self._mark
            self._mark = grown

    def add(self, color: int) -> None:
        """Insert one non-negative color."""
        self._ensure(color)
        self._mark[color] = self._stamp

    def add_many(self, colors: np.ndarray) -> None:
        """Insert a batch of non-negative colors (vectorized)."""
        if colors.size == 0:
            return
        top = int(colors.max())
        self._ensure(top)
        self._mark[colors] = self._stamp

    def contains(self, color: int) -> bool:
        """Membership test; colors beyond capacity are never members."""
        self.probes += 1
        if color >= self._mark.size or color < 0:
            return False
        return self._mark[color] == self._stamp

    __contains__ = contains

    # -- scan helpers (the first-fit inner loops of Algs. 2, 6, 8) ---------

    def first_fit(self, start: int = 0) -> tuple[int, int]:
        """Smallest non-forbidden color ``>= start``.

        Returns ``(color, steps)`` where ``steps`` counts the probes taken,
        for cycle accounting.
        """
        col = start
        steps = 1
        while self.contains(col):
            col += 1
            steps += 1
        return col, steps

    def reverse_first_fit(self, start: int) -> tuple[int, int]:
        """Largest non-forbidden color ``<= start`` (may return -1).

        Returns ``(color, steps)``; a -1 color means the whole range
        ``[0, start]`` was forbidden and the caller must fall back (the
        safety check of Alg. 11 line 8).
        """
        col = start
        steps = 1
        while col >= 0 and self.contains(col):
            col -= 1
            steps += 1
        return col, steps
