"""Color-selection policies: first-fit and the B1/B2 balancing heuristics.

A policy picks the color for one vertex given the forbidden set computed
from its neighbourhood.  The default is the classical **first-fit** (paper
Alg. 2 lines 6–9).  The two *costless balancing heuristics* of Section V are
implemented exactly as paper Algs. 11 and 12:

* **B1** alternates first-fit (odd ids) with a reverse scan from the
  thread's running ``colmax`` (even ids), hoping to spread colors evenly
  over ``[0, colmax]`` without introducing new colors unless forced;
* **B2** rotates a thread-private ``colnext`` cursor, aggressively filling
  the upper part of the interval (its restart floor is ``colmax/3 + 1``),
  trading ~10 % more colors for a much flatter cardinality profile.

Both keep their state (``colmax`` / ``colnext``) in the executing thread's
persistent state dict, so they are *thread-private and unsynchronized*
exactly as in the paper — the whole point is that balancing costs nothing.
"""

from __future__ import annotations

from repro.core.forbidden import ForbiddenSet

__all__ = ["FirstFit", "B1Policy", "B2Policy", "POLICIES", "get_policy"]


class FirstFit:
    """Plain first-fit: the smallest non-forbidden color."""

    name = "U"  # the paper's "unbalanced" suffix

    def choose(self, forbidden: ForbiddenSet, key: int, state: dict) -> tuple[int, int]:
        """Return ``(color, scan_steps)`` for the vertex/net element ``key``."""
        return forbidden.first_fit(0)


class B1Policy:
    """Paper Alg. 11 — balance without (deliberately) adding colors.

    Even-id elements scan downward from the thread's ``colmax``; if the
    whole interval is forbidden, fall back to first-fit from ``colmax + 1``
    (the safety check of line 8).  Odd-id elements use plain first-fit.
    """

    name = "B1"

    def choose(self, forbidden: ForbiddenSet, key: int, state: dict) -> tuple[int, int]:
        colmax = state.get("colmax", 0)
        if key % 2 == 0:
            col, steps = forbidden.reverse_first_fit(colmax)
            if col == -1:
                col, more = forbidden.first_fit(colmax + 1)
                steps += more
        else:
            col, steps = forbidden.first_fit(0)
        if col > colmax:
            state["colmax"] = col
        return col, steps


class B2Policy:
    """Paper Alg. 12 — aggressive balancing with a rotating start color.

    The scan starts at the thread's ``colnext``; exceeding ``colmax``
    triggers one restart from 0.  After each assignment the cursor advances
    by one but never below the floor ``colmax // 3 + 1``, concentrating
    future picks in the upper two-thirds of the interval.
    """

    name = "B2"

    def choose(self, forbidden: ForbiddenSet, key: int, state: dict) -> tuple[int, int]:
        colmax = state.get("colmax", 0)
        colnext = state.get("colnext", 0)
        col, steps = forbidden.first_fit(colnext)
        if col > colmax:
            col, more = forbidden.first_fit(0)
            steps += more
        if col > colmax:
            colmax = col
        state["colmax"] = colmax
        # Paper discrepancy: Alg. 12's last line reads ``min(col+1,
        # colmax/3+1)``, but the prose says "the *minimum* color to start is
        # set to colmax/3 + 1" — a floor, i.e. ``max``.  The floor semantics
        # is what actually produces the aggressive balancing (and the ~10 %
        # color increase) Table VI reports, so we follow the prose.
        state["colnext"] = max(col + 1, colmax // 3 + 1)
        return col, steps


#: Registry keyed by the paper's suffixes: ``-U`` (none), ``-B1``, ``-B2``.
POLICIES = {
    "U": FirstFit,
    "B1": B1Policy,
    "B2": B2Policy,
}


def get_policy(name: str):
    """Instantiate a policy by registry name (``"U"``, ``"B1"``, ``"B2"``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
