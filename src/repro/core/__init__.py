"""The paper's contribution: parallel BGPC and D2GC algorithms.

Public entry points:

* :func:`repro.core.bgpc.color_bgpc` / :func:`repro.core.bgpc.sequential_bgpc`
* :func:`repro.core.d2gc.color_d2gc` / :func:`repro.core.d2gc.sequential_d2gc`
* :func:`repro.core.validate.validate_bgpc` / ``validate_d2gc``
* :func:`repro.core.metrics.color_stats`
* balancing policies in :mod:`repro.core.policies` (``B1Policy``, ``B2Policy``)
* schedule specs in :mod:`repro.core.plan` (``ScheduleSpec``,
  ``normalize_schedule_name``) — the paper's ``X-Y`` grammar, parsed
* execution backends in :mod:`repro.core.backends`
  (``register_backend``/``get_backend``; ``sim``, ``numpy``, ``threaded``)
* the vectorized NumPy backend in :mod:`repro.core.fastpath`
  (``fastpath_color_bgpc``, ``fastpath_color_d2gc``, ``run_fastpath``)
"""

from repro.core.backends import (
    ExecutionBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.plan import (
    PAPER_SCHEDULES,
    AlgorithmSpec,
    ScheduleSpec,
    build_algorithm_table,
    normalize_schedule_name,
)
from repro.core.bgpc import color_bgpc, sequential_bgpc, BGPC_ALGORITHMS
from repro.core.d2gc import color_d2gc, sequential_d2gc, D2GC_ALGORITHMS
from repro.core.validate import (
    validate_bgpc,
    validate_d2gc,
    is_valid_bgpc,
    is_valid_d2gc,
    count_bgpc_conflict_vertices,
    count_d2gc_conflict_vertices,
)
from repro.core.metrics import color_stats, color_cardinalities
from repro.core.policies import FirstFit, B1Policy, B2Policy, POLICIES, get_policy
from repro.core.distk import (
    color_distk,
    sequential_distk,
    validate_distk,
    is_valid_distk,
)
from repro.core.balance import rebalance_shuffle, ShuffleResult
from repro.core.jp import jones_plassmann_bgpc, jones_plassmann_d2gc
from repro.core.incremental import IncrementalResult, recolor_incremental
from repro.core.recolor import reduce_colors, RecolorResult
from repro.core.fastpath import (
    FASTPATH_MODES,
    d2gc_groups_csr,
    fastpath_color_bgpc,
    fastpath_color_d2gc,
    run_fastpath,
)

__all__ = [
    "AlgorithmSpec",
    "ScheduleSpec",
    "PAPER_SCHEDULES",
    "build_algorithm_table",
    "normalize_schedule_name",
    "ExecutionBackend",
    "backend_names",
    "get_backend",
    "register_backend",
    "color_bgpc",
    "sequential_bgpc",
    "BGPC_ALGORITHMS",
    "color_d2gc",
    "sequential_d2gc",
    "D2GC_ALGORITHMS",
    "validate_bgpc",
    "validate_d2gc",
    "is_valid_bgpc",
    "is_valid_d2gc",
    "count_bgpc_conflict_vertices",
    "count_d2gc_conflict_vertices",
    "color_stats",
    "color_cardinalities",
    "FirstFit",
    "B1Policy",
    "B2Policy",
    "POLICIES",
    "get_policy",
    "color_distk",
    "sequential_distk",
    "validate_distk",
    "is_valid_distk",
    "rebalance_shuffle",
    "ShuffleResult",
    "jones_plassmann_bgpc",
    "jones_plassmann_d2gc",
    "reduce_colors",
    "RecolorResult",
    "recolor_incremental",
    "IncrementalResult",
    "FASTPATH_MODES",
    "fastpath_color_bgpc",
    "fastpath_color_d2gc",
    "d2gc_groups_csr",
    "run_fastpath",
]
