"""Iterative recoloring to reduce the number of colors.

Related-work extension (the paper cites Sarıyüce, Saule & Çatalyürek's
iterative-recoloring line [29, 30]): after a valid coloring, re-run greedy
passes that try to move vertices *out of the highest color classes* into
lower colors.  Each pass processes the vertices of the top classes in
decreasing-color order; emptied top classes disappear, shrinking the
palette.  The coloring stays valid throughout (each move re-checks the
two-hop forbidden set), and the pass is idempotent once no top vertex can
descend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.validate import validate_bgpc
from repro.graph.bipartite import BipartiteGraph

__all__ = ["RecolorResult", "reduce_colors"]


@dataclass(frozen=True)
class RecolorResult:
    """Outcome of iterative recoloring.

    Attributes
    ----------
    colors:
        The improved (still valid) coloring.
    colors_before / colors_after:
        Palette sizes before and after.
    moves:
        Number of vertices whose color decreased.
    passes:
        Recoloring passes actually executed (stops early at a fixpoint).
    """

    colors: np.ndarray
    colors_before: int
    colors_after: int
    moves: int
    passes: int


def reduce_colors(
    bg: BipartiteGraph,
    colors: np.ndarray,
    max_passes: int = 5,
    top_fraction: float = 0.5,
) -> RecolorResult:
    """Greedy iterative recoloring over the top color classes.

    Parameters
    ----------
    bg:
        The BGPC instance.
    colors:
        A valid coloring (validated; not mutated).
    max_passes:
        Upper bound on recoloring passes.
    top_fraction:
        Fraction of the palette (the highest colors) to attack each pass.
    """
    validate_bgpc(bg, colors)
    if not 0 < top_fraction <= 1:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    colors = np.asarray(colors).copy()
    before = int(colors.max()) + 1 if colors.size else 0
    if before <= 1:
        return RecolorResult(colors, before, before, 0, 0)

    from repro.graph.twohop import bgpc_twohop

    two = bgpc_twohop(bg)
    moves = 0
    passes = 0
    for _ in range(max_passes):
        palette = int(colors.max()) + 1
        threshold = max(1, int(palette * (1 - top_fraction)))
        top_vertices = np.nonzero(colors >= threshold)[0]
        if top_vertices.size == 0:
            break
        # Highest colors first, so emptied classes cascade downward.
        order = top_vertices[np.argsort(-colors[top_vertices], kind="stable")]
        moved_this_pass = 0
        for w in order:
            w = int(w)
            if two is not None:
                entries = two.slice(w)
            else:
                chunks = [bg.vtxs(int(v)) for v in bg.nets(w)]
                entries = (
                    np.concatenate(chunks)
                    if chunks
                    else np.empty(0, dtype=np.int64)
                )
            neighbour_colors = colors[entries[entries != w]]
            forbidden = set(int(c) for c in neighbour_colors)
            col = 0
            while col in forbidden:
                col += 1
            if col < colors[w]:
                colors[w] = col
                moves += 1
                moved_this_pass += 1
        passes += 1
        if moved_this_pass == 0:
            break

    # Compact the palette: drop empty classes left behind by the moves.
    used = np.unique(colors)
    remap = np.zeros(int(used.max()) + 1, dtype=np.int64)
    remap[used] = np.arange(used.size, dtype=np.int64)
    colors = remap[colors]
    validate_bgpc(bg, colors)
    return RecolorResult(
        colors=colors,
        colors_before=before,
        colors_after=int(colors.max()) + 1,
        moves=moves,
        passes=passes,
    )
