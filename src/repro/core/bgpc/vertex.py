"""Vertex-based BGPC kernels (paper Algs. 4–5, ColPack's approach).

Both kernels traverse the two-hop neighbourhood *starting from the vertex*:
for each net of ``w``, scan the net's full membership.  The first iteration
therefore costs Θ(Σ_v |vtxs(v)|²) — the bottleneck the net-based kernels of
:mod:`repro.core.bgpc.net` remove.

Cycle accounting: every adjacency entry touched charges ``edge_cost`` memory
cycles plus ``forbid_cost`` compute cycles (the marker probe); the color
write charges ``write_cost``; the first-fit scan charges ``forbid_cost`` per
probe.
"""

from __future__ import annotations

import numpy as np

from repro.core.forbidden import ForbiddenSet
from repro.graph.bipartite import BipartiteGraph
from repro.machine.cost import CostModel

__all__ = [
    "thread_forbidden",
    "make_vertex_color_kernel",
    "make_vertex_removal_kernel",
]


def thread_forbidden(state: dict, capacity: int) -> ForbiddenSet:
    """Fetch (or lazily create) the executing thread's forbidden set.

    One set per thread for the whole run, reused via stamping — the paper's
    "never actually emptied or reset" implementation detail.
    """
    forb = state.get("forbidden")
    if forb is None:
        forb = ForbiddenSet(capacity)
        state["forbidden"] = forb
    return forb


def color_upper_bound(bg: BipartiteGraph) -> int:
    """Safe forbidden-set capacity: max two-hop degree + 2.

    First-fit never picks a color above the vertex's conflict degree, which
    the two-hop walk count bounds from above.
    """
    from repro.order.orderings import bgpc_two_hop_degrees

    degs = bgpc_two_hop_degrees(bg)
    return int(degs.max(initial=0)) + 2


def make_vertex_color_kernel(bg: BipartiteGraph, policy, cost: CostModel):
    """BGPC-COLORWORKQUEUE-VERTEX (Alg. 4) with a pluggable color policy.

    Uses the flattened two-hop cache (one slice per task) when the graph is
    small enough; falls back to the per-net traversal otherwise.  Both paths
    charge identical cycle costs — the cache is host-side acceleration only.
    """
    from repro.graph.twohop import bgpc_twohop

    vptr, vidx = bg.vtx_to_nets.ptr, bg.vtx_to_nets.idx
    nptr, nidx = bg.net_to_vtxs.ptr, bg.net_to_vtxs.idx
    capacity = color_upper_bound(bg)
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost
    two = bgpc_twohop(bg)

    if two is not None:
        tptr, tidx = two.ptr, two.idx

        def kernel(w: int, ctx) -> None:
            forb = thread_forbidden(ctx.thread_state, capacity)
            forb.begin()
            entries = tidx[tptr[w] : tptr[w + 1]]
            cvals = ctx.colors[entries]
            mask = (cvals >= 0) & (entries != w)
            forb.add_many(cvals[mask])
            touched = entries.size + (vptr[w + 1] - vptr[w])
            col, steps = policy.choose(forb, w, ctx.thread_state)
            ctx.write(w, col)
            ctx.count_scans(int(touched))
            ctx.count_probes(steps)
            ctx.charge_mem(int(touched) * edge + write)
            ctx.charge_cpu((int(touched) + steps) * forbid)

        return kernel

    def kernel(w: int, ctx) -> None:
        forb = thread_forbidden(ctx.thread_state, capacity)
        forb.begin()
        colors = ctx.colors
        touched = 0
        for v in vidx[vptr[w] : vptr[w + 1]]:
            members = nidx[nptr[v] : nptr[v + 1]]
            cvals = colors[members]
            mask = (cvals >= 0) & (members != w)
            forb.add_many(cvals[mask])
            touched += members.size + 1
        col, steps = policy.choose(forb, w, ctx.thread_state)
        ctx.write(w, col)
        ctx.count_scans(touched)
        ctx.count_probes(steps)
        ctx.charge_mem(touched * edge + write)
        ctx.charge_cpu((touched + steps) * forbid)

    return kernel


def make_vertex_removal_kernel(bg: BipartiteGraph, cost: CostModel):
    """BGPC-REMOVECONFLICTS-VERTEX (Alg. 5 with Alg. 3's requeue rule).

    A vertex ``w`` requeues itself iff some *smaller-id* vertex in its
    two-hop neighbourhood holds the same color (``w > u`` tie-break), and
    the scan stops at the first such conflict (Alg. 3 line 6) — with the
    flattened cache, the cost is charged up to the end of the net segment
    containing that first conflict, matching the loop path's net-granular
    early exit.
    """
    from repro.graph.twohop import bgpc_twohop

    vptr, vidx = bg.vtx_to_nets.ptr, bg.vtx_to_nets.idx
    nptr, nidx = bg.net_to_vtxs.ptr, bg.net_to_vtxs.idx
    edge, forbid = cost.edge_cost, cost.forbid_cost
    two = bgpc_twohop(bg)

    if two is not None:
        tptr, tidx = two.ptr, two.idx

        def kernel(w: int, ctx) -> None:
            cw = ctx.colors[w]
            if cw < 0:  # defensively requeue if somehow uncolored
                ctx.append(w)
                ctx.charge_cpu(1)
                return
            entries = tidx[tptr[w] : tptr[w + 1]]
            cvals = ctx.colors[entries]
            hits = np.nonzero((cvals == cw) & (entries != w) & (entries < w))[0]
            nets_count = int(vptr[w + 1] - vptr[w])
            if hits.size:
                ctx.append(w)
                scanned = two.scanned_until(w, int(hits[0])) + nets_count
            else:
                scanned = entries.size + nets_count
            ctx.count_checks(int(scanned))
            ctx.charge_mem(int(scanned) * edge)
            ctx.charge_cpu(int(scanned) * forbid)

        return kernel

    def kernel(w: int, ctx) -> None:
        colors = ctx.colors
        cw = colors[w]
        if cw < 0:  # defensively requeue if somehow uncolored
            ctx.append(w)
            ctx.charge_cpu(1)
            return
        nets_count = int(vptr[w + 1] - vptr[w])
        touched = nets_count  # reading nets(w) itself
        conflict = False
        for v in vidx[vptr[w] : vptr[w + 1]]:
            members = nidx[nptr[v] : nptr[v + 1]]
            cvals = colors[members]
            touched += members.size
            same = members[(cvals == cw) & (members != w)]
            if same.size and int(same.min()) < w:
                conflict = True
                break  # early termination, as in the paper
        if conflict:
            ctx.append(w)
        ctx.count_checks(touched)
        ctx.charge_mem(touched * edge)
        ctx.charge_cpu(touched * forbid)

    return kernel
