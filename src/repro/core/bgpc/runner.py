"""BGPC driver: the eight named algorithm variants of the paper (§VI).

``V-V``, ``V-V-64``, ``V-V-64D``, ``V-N∞``, ``V-N1``, ``V-N2``, ``N1-N2``
and ``N2-N2`` differ only in chunk size, queue construction, and the
net-based horizons of the two phases, so :data:`BGPC_ALGORITHMS` is
*derived* from the schedule grammar (:func:`repro.core.plan.build_algorithm_table`)
rather than hand-written; any other spec the grammar admits (e.g.
``"N1-Ninf-B2"``) is accepted by :func:`color_bgpc` as well.
"""

from __future__ import annotations

import numpy as np

from repro.core.bgpc.net import (
    make_net_color_kernel,
    make_net_removal_kernel,
)
from repro.core.bgpc.vertex import (
    make_vertex_color_kernel,
    make_vertex_removal_kernel,
)
from repro.core.driver import run_sequential, run_speculative
from repro.core.plan import AlgorithmSpec, build_algorithm_table, resolve_schedule
from repro.graph.bipartite import BipartiteGraph
from repro.machine.cost import CostModel
from repro.types import ColoringResult

__all__ = ["BGPC_ALGORITHMS", "BGPCAdapter", "color_bgpc", "sequential_bgpc"]


#: The paper's algorithm matrix (Section VI), derived from the schedule
#: parser — each entry equals the previously hand-written
#: :class:`AlgorithmSpec` (golden-pinned in ``tests/test_plan.py``).
#: ``V-V`` is ColPack's default: chunk-1 dynamic scheduling and immediate
#: shared-queue appends.
BGPC_ALGORITHMS: dict[str, AlgorithmSpec] = build_algorithm_table()


class BGPCAdapter:
    """Adapts a :class:`BipartiteGraph` to the speculative driver."""

    def __init__(self, bg: BipartiteGraph, cost: CostModel):
        self.bg = bg
        self.cost = cost
        self.n_targets = bg.num_vertices
        self.n_nets = bg.num_nets

    def make_vertex_color_kernel(self, policy):
        return make_vertex_color_kernel(self.bg, policy, self.cost)

    def make_net_color_kernel(self, policy):
        return make_net_color_kernel(self.bg, self.cost, policy=policy)

    def make_vertex_removal_kernel(self):
        return make_vertex_removal_kernel(self.bg, self.cost)

    def make_net_removal_kernel(self):
        return make_net_removal_kernel(self.bg, self.cost)

    def fastpath_groups(self):
        """Constraint groups for the NumPy backend: the nets themselves."""
        return self.bg.net_to_vtxs

    def process_spec(self):
        """Shared-memory layout for the process backend.

        The four CSR arrays — plus the flattened two-hop cache when it
        exists — are copied into shared segments once per run; workers
        rebuild a zero-copy :class:`BipartiteGraph` over them and seed
        their two-hop memo from the shared arrays instead of re-flattening
        the whole structure per worker (see :mod:`repro.core.procworker`).
        """
        from repro.graph.twohop import bgpc_twohop

        arrays = {
            "vptr": self.bg.vtx_to_nets.ptr,
            "vidx": self.bg.vtx_to_nets.idx,
            "nptr": self.bg.net_to_vtxs.ptr,
            "nidx": self.bg.net_to_vtxs.idx,
        }
        two = bgpc_twohop(self.bg)
        if two is not None:
            arrays["two_ptr"] = two.ptr
            arrays["two_idx"] = two.idx
            arrays["two_sptr"] = two.seg_ptr
            arrays["two_send"] = two.seg_end
        return {"problem": "bgpc", "arrays": arrays, "cost": self.cost}


def _apply_order(bg: BipartiteGraph, order: np.ndarray | None):
    if order is None:
        return bg, None
    order = np.asarray(order, dtype=np.int64)
    return bg.permute_vertices(order), order


def _restore_order(result: ColoringResult, order: np.ndarray | None) -> ColoringResult:
    if order is None:
        return result
    restored = np.empty_like(result.colors)
    restored[order] = result.colors
    result.colors = restored
    return result


def color_bgpc(
    bg: BipartiteGraph,
    algorithm: str = "N1-N2",
    threads: int = 16,
    cost: CostModel | None = None,
    policy=None,
    order: np.ndarray | None = None,
    max_iterations: int = 200,
    backend: str = "sim",
    fastpath_mode: str = "exact",
    tracer=None,
    **backend_options,
) -> ColoringResult:
    """Color the ``V_A`` side of ``bg`` with one of the paper's algorithms.

    Parameters
    ----------
    bg:
        The bipartite instance (columns = vertices, rows = nets).
    algorithm:
        One of :data:`BGPC_ALGORITHMS` (``"V-V"`` … ``"N2-N2"``), any
        alias or novel spec the schedule grammar admits (``"v-n∞"``,
        ``"N1-N2-B1"`` — see :meth:`repro.core.plan.ScheduleSpec.parse`),
        or an already-structured spec object.
    threads:
        Simulated core count (the paper sweeps 2, 4, 8, 16).
    cost:
        Cycle-cost model override (defaults to the calibrated model).
    policy:
        ``None`` / :class:`FirstFit` for the paper's default colors, or a
        :class:`B1Policy` / :class:`B2Policy` instance for the balancing
        variants of Section V.
    order:
        Optional permutation: vertices are processed in the order
        ``order[0], order[1], ...`` (e.g. from
        :func:`repro.order.smallest_last_order`).  The returned colors are
        indexed by the *original* vertex ids.
    backend:
        Any registered execution backend (see ``docs/backends.md``):
        ``"sim"`` (default) for the cycle-accurate simulated machine,
        ``"threaded"`` for real Python threads with genuine races, or
        ``"numpy"`` for the vectorized wall-clock fast path
        (:mod:`repro.core.fastpath`).
    fastpath_mode:
        NumPy-backend flavour: ``"exact"`` (byte-identical to the
        sequential reference) or ``"speculative"`` (fastest).  Ignored by
        the simulator backend.
    tracer:
        Optional :class:`repro.obs.Tracer` receiving structured
        per-iteration/per-phase events (see ``docs/observability.md``);
        ``None`` (default) traces nothing at zero cost.
    **backend_options:
        Forwarded to the backend verbatim — e.g. the sharded backend's
        ``partitioner`` / ``batch`` / ``seed`` (see ``docs/sharding.md``).

    Returns
    -------
    ColoringResult
        Colors (guaranteed valid), per-iteration records and simulated
        timing (``backend="sim"``) or measured wall seconds
        (``backend="numpy"``).
    """
    spec = resolve_schedule(algorithm, BGPC_ALGORITHMS, problem="BGPC")
    cost = cost if cost is not None else CostModel()
    work_graph, perm = _apply_order(bg, order)
    adapter = BGPCAdapter(work_graph, cost)
    result = run_speculative(
        adapter,
        spec,
        threads=threads,
        cost=cost,
        policy=policy,
        max_iterations=max_iterations,
        backend=backend,
        fastpath_mode=fastpath_mode,
        tracer=tracer,
        **backend_options,
    )
    return _restore_order(result, perm)


def sequential_bgpc(
    bg: BipartiteGraph,
    cost: CostModel | None = None,
    policy=None,
    order: np.ndarray | None = None,
    tracer=None,
) -> ColoringResult:
    """Sequential greedy BGPC baseline (paper Table II, "Sequential BGPC")."""
    cost = cost if cost is not None else CostModel()
    work_graph, perm = _apply_order(bg, order)
    adapter = BGPCAdapter(work_graph, cost)
    result = run_sequential(
        adapter, cost=cost, policy=policy, name="sequential", tracer=tracer
    )
    return _restore_order(result, perm)
