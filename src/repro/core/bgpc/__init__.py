"""Bipartite-graph partial coloring (the paper's primary contribution)."""

from repro.core.bgpc.runner import (
    BGPC_ALGORITHMS,
    BGPCAdapter,
    color_bgpc,
    sequential_bgpc,
)

__all__ = ["BGPC_ALGORITHMS", "BGPCAdapter", "color_bgpc", "sequential_bgpc"]
