"""Net-based BGPC kernels (paper Algs. 6, 7 and 8).

The net-based view is the paper's key idea: a BGPC conflict exists *within a
net's member list*, so traversing from the nets costs only Θ(|V|+|E|) per
iteration instead of the vertex-based Θ(Σ|vtxs|²).

Three coloring kernels are provided:

* :func:`make_net_color_kernel_v1` — Alg. 6, the *most* optimistic net-level
  first-fit (too many conflicts; kept for the Table I comparison);
* the ``reverse=True`` flavour of the same — "Alg. 6 + reverse" in Table I;
* :func:`make_net_color_kernel` — Alg. 8, the production kernel: one marking
  pass over the member list, then a **reverse first-fit** assignment pass
  over the local work queue, never exceeding ``|vtxs(v)| − 1`` (Lemma 1).

Plus :func:`make_net_removal_kernel` — Alg. 7, which keeps the first
occurrence of each color in the member list and resets the rest.
"""

from __future__ import annotations

import numpy as np

from repro.core.bgpc.vertex import color_upper_bound, thread_forbidden
from repro.errors import ColoringError
from repro.graph.bipartite import BipartiteGraph
from repro.machine.cost import CostModel
from repro.types import UNCOLORED

__all__ = [
    "make_net_color_kernel",
    "make_net_color_kernel_v1",
    "make_net_removal_kernel",
]


def make_net_color_kernel(bg: BipartiteGraph, cost: CostModel, policy=None):
    """BGPC-COLORWORKQUEUE-NET (Alg. 8).

    Pass 1 marks the colors already present (first occurrence wins; colored
    duplicates join the local work queue ``W_local`` alongside the uncolored
    members).  Pass 2 assigns colors to ``W_local`` in member order.

    With ``policy=None`` pass 2 is the paper's reverse first-fit cursor
    descending from ``|vtxs(v)| − 1`` — Lemma 1 guarantees it never goes
    negative, which we assert.  With a B1/B2 ``policy`` each assignment asks
    the policy instead (the paper's "net-based variants are also similar"),
    and the chosen color is added to the forbidden set to keep the net
    internally conflict-free.
    """
    nptr, nidx = bg.net_to_vtxs.ptr, bg.net_to_vtxs.idx
    capacity = color_upper_bound(bg)
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

    def kernel(v: int, ctx) -> None:
        members = nidx[nptr[v] : nptr[v + 1]]
        if members.size == 0:
            ctx.charge_cpu(1)
            return
        colors = ctx.colors
        cvals = colors[members]
        forb = thread_forbidden(ctx.thread_state, capacity)
        forb.begin()

        colored_pos = np.nonzero(cvals >= 0)[0]
        vals = cvals[colored_pos]
        uniq, first = np.unique(vals, return_index=True)
        forb.add_many(uniq)
        keep = np.zeros(colored_pos.size, dtype=bool)
        keep[first] = True
        dup_pos = colored_pos[~keep]
        unc_pos = np.nonzero(cvals < 0)[0]
        if dup_pos.size:
            local = np.sort(np.concatenate((unc_pos, dup_pos)))
        else:
            local = unc_pos

        steps = 0
        if policy is None:
            col = members.size - 1  # reverse first-fit start (Alg. 8 line 9)
            for pos in local:
                while forb.contains(col):
                    col -= 1
                    steps += 1
                if col < 0:
                    raise ColoringError(
                        f"Lemma 1 violated at net {v}: reverse first-fit "
                        "exhausted the color budget"
                    )
                ctx.write(int(members[pos]), col)
                col -= 1
                steps += 1
        else:
            for pos in local:
                u = int(members[pos])
                col, more = policy.choose(forb, u, ctx.thread_state)
                forb.add(col)
                ctx.write(u, col)
                steps += more

        ctx.count_scans(int(members.size))
        ctx.count_probes(steps)
        ctx.charge_mem(members.size * edge + int(local.size) * write)
        ctx.charge_cpu((members.size + steps) * forbid)

    return kernel


def make_net_color_kernel_v1(bg: BipartiteGraph, cost: CostModel, reverse: bool = False):
    """BGPC-COLORWORKQUEUE-NET-V1 (Alg. 6), optionally with reverse first-fit.

    The single-pass, maximally optimistic kernel: each member is recolored
    on the spot when uncolored or clashing with an earlier member, using a
    monotone first-fit cursor (ascending; descending from ``|vtxs(v)| − 1``
    when ``reverse``).  Produces many conflicts — Table I quantifies how
    much the Alg. 8 refinements help.
    """
    nptr, nidx = bg.net_to_vtxs.ptr, bg.net_to_vtxs.idx
    capacity = color_upper_bound(bg)
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

    def kernel(v: int, ctx) -> None:
        members = nidx[nptr[v] : nptr[v + 1]]
        if members.size == 0:
            ctx.charge_cpu(1)
            return
        colors = ctx.colors
        forb = thread_forbidden(ctx.thread_state, capacity)
        forb.begin()
        col = members.size - 1 if reverse else 0
        step = -1 if reverse else 1
        steps = 0
        writes = 0
        for u in members:
            u = int(u)
            cu = int(colors[u])
            if cu == UNCOLORED or forb.contains(cu):
                while forb.contains(col):
                    col += step
                    steps += 1
                if col < 0:
                    raise ColoringError(
                        f"reverse cursor went negative at net {v} "
                        "(forbidden-set budget exceeded)"
                    )
                cu = col
                ctx.write(u, col)
                writes += 1
            forb.add(cu)
        ctx.count_scans(int(members.size))
        ctx.count_probes(steps)
        ctx.charge_mem(members.size * edge + writes * write)
        ctx.charge_cpu((members.size + steps) * forbid)

    return kernel


def make_net_removal_kernel(bg: BipartiteGraph, cost: CostModel):
    """BGPC-REMOVECONFLICTS-NET (Alg. 7).

    For each net, the first member holding a given color keeps it; every
    later member with a seen color is reset to ``UNCOLORED``.  A net-based
    sweep detects *all* conflicts in Θ(|V|+|E|) but may reset more vertices
    than strictly necessary (the paper accepts this extra optimism).
    """
    nptr, nidx = bg.net_to_vtxs.ptr, bg.net_to_vtxs.idx
    edge, forbid, write = cost.edge_cost, cost.forbid_cost, cost.write_cost

    def kernel(v: int, ctx) -> None:
        members = nidx[nptr[v] : nptr[v + 1]]
        if members.size == 0:
            ctx.charge_cpu(1)
            return
        colors = ctx.colors
        cvals = colors[members]
        colored_pos = np.nonzero(cvals >= 0)[0]
        resets = 0
        if colored_pos.size > 1:
            vals = cvals[colored_pos]
            _, first = np.unique(vals, return_index=True)
            if first.size != colored_pos.size:
                keep = np.zeros(colored_pos.size, dtype=bool)
                keep[first] = True
                for pos in colored_pos[~keep]:
                    ctx.write(int(members[pos]), UNCOLORED)
                    resets += 1
        ctx.count_checks(int(members.size))
        ctx.charge_mem(members.size * edge + resets * write)
        ctx.charge_cpu(members.size * forbid)

    return kernel
