"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything produced by this package with a single ``except`` clause
while still being able to discriminate the failure class.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "GraphBuildError",
    "MatrixMarketError",
    "ColoringError",
    "InvalidColoringError",
    "MachineError",
    "SchedulerError",
    "DatasetError",
    "ServiceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """A graph container was constructed with or fed inconsistent data."""


class GraphBuildError(GraphError):
    """Raised by the builders in :mod:`repro.graph.build` on malformed input."""


class MatrixMarketError(GraphError):
    """Raised on malformed MatrixMarket files or unsupported qualifiers."""


class ColoringError(ReproError):
    """Base class for errors produced by the coloring drivers."""


class InvalidColoringError(ColoringError):
    """A coloring failed validation.

    Carries the first offending conflict for diagnostics.

    Attributes
    ----------
    conflict:
        A ``(u, v, via)`` triple of two same-colored vertices and the net /
        middle vertex through which they conflict, or ``None`` when the
        failure is structural (e.g. uncolored vertices).
    """

    def __init__(self, message: str, conflict: tuple | None = None):
        super().__init__(message)
        self.conflict = conflict


class MachineError(ReproError):
    """The simulated machine was misused (bad thread count, nested phase...)."""


class SchedulerError(MachineError):
    """Scheduling invariants were violated (unassigned tasks, bad chunks)."""


class DatasetError(ReproError):
    """A synthetic dataset generator received invalid parameters."""


class ServiceError(ReproError):
    """A coloring-service request was malformed or could not be served.

    Raised by the protocol parser on bad wire payloads and by
    :class:`repro.service.ColoringService` on invalid request parameters;
    the server turns it into an error *response* instead of dropping the
    connection.
    """
