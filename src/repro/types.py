"""Shared result dataclasses and type aliases used across :mod:`repro`.

The coloring drivers, the simulated machine and the benchmark harness all
exchange small, immutable-ish record types defined here so that no module
needs to import another heavyweight module just for a return type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "IntArray",
    "UNCOLORED",
    "PhaseKind",
    "PhaseTiming",
    "IterationRecord",
    "ColoringResult",
    "ColorStats",
]

#: Canonical integer dtype for vertex ids, colors and CSR indices.
IntArray = np.ndarray

#: Sentinel for "not yet colored", matching the paper's convention of -1.
UNCOLORED: int = -1


class PhaseKind:
    """String constants naming the two phases of the speculative template."""

    COLOR = "color"
    REMOVE = "remove"


@dataclass(frozen=True)
class PhaseTiming:
    """Simulated timing of one parallel phase.

    Attributes
    ----------
    kind:
        ``PhaseKind.COLOR`` or ``PhaseKind.REMOVE``.
    cycles:
        Simulated wall-clock of the phase: the maximum finishing cycle over
        all hardware threads, minus the phase start cycle.
    thread_cycles:
        Per-thread busy cycles inside the phase (length = thread count).
    tasks:
        Number of parallel-for tasks executed in the phase.
    """

    kind: str
    cycles: float
    thread_cycles: tuple[float, ...]
    tasks: int

    @property
    def imbalance(self) -> float:
        """Max/mean ratio of per-thread busy cycles (1.0 == perfectly even)."""
        busy = np.asarray(self.thread_cycles, dtype=np.float64)
        mean = busy.mean()
        if mean == 0:
            return 1.0
        return float(busy.max() / mean)


@dataclass(frozen=True)
class IterationRecord:
    """One round of the speculative color/remove loop.

    Attributes
    ----------
    index:
        0-based iteration number.
    queue_size:
        |W|: vertices (BGPC) that entered the coloring phase this round.
    conflicts:
        |W_next|: vertices thrown back by conflict removal this round.
    color_timing / remove_timing:
        Simulated phase timings; ``remove_timing`` is ``None`` for the final
        sequential run that needs no verification.
    colors_introduced:
        Palette growth this round: by how much the high-water color count
        rose over the round (deterministic; ``-1`` on records produced
        before this counter existed, e.g. loaded from old archives).
    wall_seconds:
        Measured host wall-clock of the round (NumPy backend only; 0.0 for
        simulator rounds, whose currency is cycles).  A measurement, not a
        deterministic output — never archived (see :mod:`repro.report`).
    """

    index: int
    queue_size: int
    conflicts: int
    color_timing: PhaseTiming | None
    remove_timing: PhaseTiming | None
    colors_introduced: int = -1
    wall_seconds: float = 0.0

    @property
    def cycles(self) -> float:
        total = 0.0
        if self.color_timing is not None:
            total += self.color_timing.cycles
        if self.remove_timing is not None:
            total += self.remove_timing.cycles
        return total


@dataclass
class ColoringResult:
    """Full output of a coloring run.

    Attributes
    ----------
    colors:
        Color array over the colored vertex set (``V_A`` for BGPC, ``V`` for
        D2GC); every entry is a non-negative int on success.
    num_colors:
        Number of distinct colors used (== ``colors.max() + 1``).
    iterations:
        Per-round records, in order.
    algorithm:
        Name of the algorithm spec that produced this run (e.g. ``"N1-N2"``).
    threads:
        Simulated thread count (1 for the sequential baseline and for the
        NumPy backend, which is a single vectorized process).
    cycles:
        Total simulated wall-clock cycles across all phases (0 for the
        NumPy backend — it has no simulated clock).
    backend:
        Which execution backend produced the run: ``"sim"`` (the
        cycle-accurate machine) or ``"numpy"`` (the vectorized fast path).
    wall_seconds:
        Measured host wall-clock of the run for the NumPy backend; 0.0
        for simulator runs, whose currency is ``cycles``.
    work_metrics:
        Deterministic work counters accumulated over the whole run —
        mapping metric name (see :data:`repro.obs.work.WORK_METRICS`) to
        a non-negative total.  Empty for runs produced before the
        counters existed (e.g. loaded from old archives).  Machine-count
        metrics, not timings: identical across re-runs of the same
        deterministic configuration, which is what the perf-regression
        gate (``python -m repro.bench regress``) compares.
    """

    colors: IntArray
    num_colors: int
    iterations: list[IterationRecord] = field(default_factory=list)
    algorithm: str = ""
    threads: int = 1
    cycles: float = 0.0
    backend: str = "sim"
    wall_seconds: float = 0.0
    work_metrics: dict[str, int] = field(default_factory=dict)

    @property
    def num_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_conflicts(self) -> int:
        return int(sum(rec.conflicts for rec in self.iterations))

    def phase_cycles(self, kind: str) -> float:
        """Total simulated cycles spent in phases of the given kind."""
        total = 0.0
        for rec in self.iterations:
            timing = rec.color_timing if kind == PhaseKind.COLOR else rec.remove_timing
            if timing is not None:
                total += timing.cycles
        return total

    def summary(self) -> str:
        """One-paragraph human-readable run summary."""
        lines = [
            f"{self.algorithm}: {self.num_colors} colors on "
            f"{self.colors.size} vertices, {self.threads} thread(s), "
            f"{self.cycles:.0f} simulated cycles",
            f"rounds: {self.num_iterations}, total conflicts: "
            f"{self.total_conflicts}",
        ]
        for rec in self.iterations:
            lines.append(
                f"  round {rec.index}: |W|={rec.queue_size} -> "
                f"{rec.conflicts} conflicts ({rec.cycles:.0f} cycles)"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ColorStats:
    """Cardinality statistics of the color classes of a coloring.

    Produced by :func:`repro.core.metrics.color_stats`; consumed by the
    Table VI / Figure 3 experiments.
    """

    num_colors: int
    cardinalities: IntArray
    mean: float
    std: float
    min: int
    max: int

    @property
    def imbalance(self) -> float:
        """Max/mean cardinality ratio (1.0 == equitable)."""
        if self.mean == 0:
            return 1.0
        return float(self.max / self.mean)

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean) of the cardinalities."""
        if self.mean == 0:
            return 0.0
        return float(self.std / self.mean)


def as_vertex_array(seq: Sequence[int] | np.ndarray) -> np.ndarray:
    """Coerce a vertex-id sequence to the canonical int64 ndarray."""
    arr = np.asarray(seq, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D vertex array, got shape {arr.shape}")
    return arr
