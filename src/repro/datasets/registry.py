"""The named instance registry mirroring paper Table II.

Each :class:`DatasetSpec` maps a paper matrix to its synthetic stand-in at
three scales:

* ``tiny``   — seconds-fast instances for the test suite;
* ``small``  — the default benchmark scale (full harness in minutes);
* ``medium`` — larger runs for users with time to spare.

Instances are cached per ``(name, scale)`` because the benchmark harness
loads the same graphs for several experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.datasets import synthetic
from repro.errors import DatasetError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.ops import bipartite_to_graph
from repro.graph.unipartite import Graph

__all__ = [
    "DatasetSpec",
    "PAPER_DATASETS",
    "DATASETS",
    "load_dataset",
    "load_d2gc_dataset",
    "bgpc_dataset_names",
    "d2gc_dataset_names",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One named instance of the test bed.

    Attributes
    ----------
    name:
        Registry key (also used in benchmark output rows).
    paper_name:
        The UFL/collection matrix this stands in for.
    generator:
        Function from :mod:`repro.datasets.synthetic`.
    params:
        Per-scale keyword arguments: ``{"tiny": {...}, "small": {...},
        "medium": {...}}``.
    d2gc:
        Whether the instance joins the D2GC experiments (paper Table II
        last column — the structurally symmetric five).
    """

    name: str
    paper_name: str
    generator: Callable[..., BipartiteGraph]
    params: dict
    d2gc: bool

    def build(self, scale: str = "small") -> BipartiteGraph:
        """Generate this instance at the requested scale."""
        if scale not in self.params:
            raise DatasetError(
                f"dataset {self.name!r} has no scale {scale!r}; "
                f"choose from {sorted(self.params)}"
            )
        return self.generator(**self.params[scale])


PAPER_DATASETS: tuple[DatasetSpec, ...] = (
    DatasetSpec(
        name="movielens",
        paper_name="20M_movielens",
        generator=synthetic.movielens_like,
        params={
            "tiny": dict(num_nets=80, num_vertices=260, avg_net_size=8,
                         max_net_size=120, seed=20),
            "small": dict(num_nets=1200, num_vertices=4800, avg_net_size=24,
                          max_net_size=2200, seed=20),
            "medium": dict(num_nets=2500, num_vertices=9000, avg_net_size=32,
                           max_net_size=4200, seed=20),
        },
        d2gc=False,
    ),
    DatasetSpec(
        name="af_shell",
        paper_name="af_shell10",
        generator=synthetic.shell_mesh,
        params={
            "tiny": dict(nx=12, ny=11),
            "small": dict(nx=70, ny=68),
            "medium": dict(nx=90, ny=80),
        },
        d2gc=True,
    ),
    DatasetSpec(
        name="bone",
        paper_name="bone010",
        generator=synthetic.stencil3d,
        params={
            "tiny": dict(nx=6, ny=5, nz=5),
            "small": dict(nx=18, ny=15, nz=14),
            "medium": dict(nx=22, ny=18, nz=18),
        },
        d2gc=True,
    ),
    DatasetSpec(
        name="channel",
        paper_name="channel-500x100x100-b050",
        generator=synthetic.channel_mesh,
        params={
            "tiny": dict(nx=7, ny=5, nz=5),
            "small": dict(nx=20, ny=16, nz=15),
            "medium": dict(nx=24, ny=16, nz=16),
        },
        d2gc=True,
    ),
    DatasetSpec(
        name="copapers",
        paper_name="coPapersDBLP",
        generator=synthetic.copapers_like,
        params={
            "tiny": dict(num_vertices=240, num_cliques=60, max_clique=24, seed=7),
            "small": dict(num_vertices=4800, num_cliques=1100, max_clique=64, seed=7),
            "medium": dict(num_vertices=12000, num_cliques=2600, max_clique=160, seed=7),
        },
        d2gc=True,
    ),
    DatasetSpec(
        name="cfd",
        paper_name="HV15R",
        generator=synthetic.cfd_like,
        params={
            "tiny": dict(num_vertices=150, block=12, extra_links=1, seed=15),
            "small": dict(num_vertices=3000, block=30, extra_links=1, seed=15),
            "medium": dict(num_vertices=9000, block=48, extra_links=2, seed=15),
        },
        d2gc=False,
    ),
    DatasetSpec(
        name="kkt",
        paper_name="nlpkkt120",
        generator=synthetic.kkt_like,
        params={
            "tiny": dict(grid=(5, 5, 4), num_constraints=60,
                         vars_per_constraint=4, seed=3),
            "small": dict(grid=(14, 12, 11), num_constraints=900,
                          vars_per_constraint=6, seed=3),
            "medium": dict(grid=(16, 15, 14), num_constraints=2000,
                           vars_per_constraint=8, seed=3),
        },
        d2gc=True,
    ),
    DatasetSpec(
        name="web",
        paper_name="uk-2002",
        generator=synthetic.web_like,
        params={
            "tiny": dict(num_vertices=260, avg_degree=5, max_degree=50, seed=27),
            "small": dict(num_vertices=5200, avg_degree=7, max_degree=260, seed=27),
            "medium": dict(num_vertices=9000, avg_degree=10, max_degree=900, seed=27),
        },
        d2gc=False,
    ),
)

DATASETS: dict[str, DatasetSpec] = {spec.name: spec for spec in PAPER_DATASETS}


@lru_cache(maxsize=64)
def load_dataset(name: str, scale: str = "small") -> BipartiteGraph:
    """Build (and cache) a named BGPC instance."""
    if name not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        )
    return DATASETS[name].build(scale)


@lru_cache(maxsize=64)
def load_d2gc_dataset(name: str, scale: str = "small") -> Graph:
    """Build (and cache) a named D2GC instance (symmetric datasets only)."""
    spec = DATASETS.get(name)
    if spec is None:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        )
    if not spec.d2gc:
        raise DatasetError(
            f"dataset {name!r} ({spec.paper_name}) is not structurally "
            "symmetric and is excluded from the D2GC experiments"
        )
    return bipartite_to_graph(load_dataset(name, scale))


def bgpc_dataset_names() -> tuple[str, ...]:
    """All eight instance names (the BGPC test bed)."""
    return tuple(spec.name for spec in PAPER_DATASETS)


def d2gc_dataset_names() -> tuple[str, ...]:
    """The five structurally symmetric instance names (D2GC test bed)."""
    return tuple(spec.name for spec in PAPER_DATASETS if spec.d2gc)
