"""Synthetic workload generators standing in for the paper's UFL matrices.

No network access is available, so each of the eight instances of paper
Table II is replaced by a seeded synthetic generator reproducing the
structural traits that drive the coloring results (see DESIGN.md,
Substitution 2).  Real ``.mtx`` files, when available, can be loaded with
:func:`repro.graph.read_matrix_market` instead and fed to the same
experiments.
"""

from repro.datasets.synthetic import (
    movielens_like,
    shell_mesh,
    stencil3d,
    channel_mesh,
    copapers_like,
    cfd_like,
    kkt_like,
    web_like,
    random_bipartite,
    random_graph,
)
from repro.datasets.registry import (
    DatasetSpec,
    PAPER_DATASETS,
    DATASETS,
    load_dataset,
    bgpc_dataset_names,
    d2gc_dataset_names,
)

__all__ = [
    "movielens_like",
    "shell_mesh",
    "stencil3d",
    "channel_mesh",
    "copapers_like",
    "cfd_like",
    "kkt_like",
    "web_like",
    "random_bipartite",
    "random_graph",
    "DatasetSpec",
    "PAPER_DATASETS",
    "DATASETS",
    "load_dataset",
    "bgpc_dataset_names",
    "d2gc_dataset_names",
]
