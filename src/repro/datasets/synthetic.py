"""Seeded synthetic graph generators.

Each ``*_like`` generator mimics one matrix family from the paper's test
bed (Table II) at a container-friendly scale.  What matters for the
reproduction is not the absolute size but the *structural trait* each
family contributes:

============  ==========================================================
Generator     Trait (and the paper matrix it stands in for)
============  ==========================================================
movielens     rectangular, heavy-tailed net sizes (20M_movielens)
shell_mesh    low, bounded degrees, 2-D shell FEM (af_shell10)
stencil3d     3-D 27-point stencil (bone010)
channel_mesh  perfectly regular 18-point stencil (channel-500x100x100-b050)
copapers      clique-heavy social network, huge max degree (coPapersDBLP)
cfd_like      unsymmetric CFD with dense row blocks (HV15R)
kkt_like      symmetric KKT two-block optimization structure (nlpkkt120)
web_like      power-law web crawl (uk-2002)
============  ==========================================================

All generators are deterministic given their seed, return a
:class:`BipartiteGraph` (rows = nets, columns = vertices to color) and keep
square generators structurally symmetric when the paper's counterpart is,
so the same instance serves the D2GC experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import csr_from_edges, graph_from_edges
from repro.graph.unipartite import Graph

__all__ = [
    "movielens_like",
    "shell_mesh",
    "stencil3d",
    "channel_mesh",
    "copapers_like",
    "cfd_like",
    "kkt_like",
    "web_like",
    "random_bipartite",
    "random_graph",
]


def _bipartite(rows: np.ndarray, cols: np.ndarray, nrows: int, ncols: int) -> BipartiteGraph:
    net_to_vtxs = csr_from_edges(
        rows.astype(np.int64), cols.astype(np.int64), nrows, ncols
    )
    return BipartiteGraph.from_net_to_vtxs(net_to_vtxs)


def _symmetric_bipartite(
    us: np.ndarray, vs: np.ndarray, n: int, scatter_seed: int | None = None
) -> BipartiteGraph:
    """Square symmetric pattern (with unit diagonal) from undirected edges.

    ``scatter_seed`` relabels the vertices with a seeded permutation.  The
    grid generators use it because a perfect row-major sweep is an
    unrealistically good greedy order — real UFL matrices carry the
    scattered numbering of their mesh generators, which is what makes the
    paper's "natural" order behave like a mildly shuffled one.
    """
    if scatter_seed is not None:
        perm = np.random.default_rng(scatter_seed).permutation(n).astype(np.int64)
        us, vs = perm[us], perm[vs]
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([us, vs, diag])
    cols = np.concatenate([vs, us, diag])
    return _bipartite(rows, cols, n, n)


def _zipf_sizes(rng: np.random.Generator, count: int, lo: int, hi: int, alpha: float) -> np.ndarray:
    """``count`` integers in ``[lo, hi]`` with a Zipf-ish tail."""
    raw = rng.zipf(alpha, size=count)
    return np.clip(raw + lo - 1, lo, hi).astype(np.int64)


# ---------------------------------------------------------------------------
# Rectangular / bipartite families
# ---------------------------------------------------------------------------


def movielens_like(
    num_nets: int = 700,
    num_vertices: int = 2400,
    avg_net_size: int = 30,
    max_net_size: int = 420,
    seed: int = 20,
) -> BipartiteGraph:
    """Rating-matrix analogue: rectangular with heavy-tailed net sizes.

    A handful of nets (power users / blockbuster movies) touch a large
    fraction of all vertices, which is what makes the vertex-based first
    iteration quadratic-cost in practice for 20M_movielens.
    """
    if num_nets < 1 or num_vertices < 1:
        raise DatasetError("movielens_like needs positive dimensions")
    rng = np.random.default_rng(seed)
    sizes = _zipf_sizes(rng, num_nets, lo=2, hi=max_net_size, alpha=1.35)
    # Rescale to hit the requested average while keeping the tail shape.
    target_total = num_nets * avg_net_size
    sizes = np.maximum(2, (sizes * target_total / max(1, sizes.sum())).astype(np.int64))
    sizes = np.minimum(sizes, min(max_net_size, num_vertices))
    # A blockbuster net touching ~half the vertices: 20M_movielens' largest
    # row holds 67,310 of 138,493 columns; that single net both sets the
    # color lower bound (colors ≈ L) and drives the quadratic vertex-based
    # first-iteration cost.
    sizes[0] = min(max_net_size, num_vertices)
    # Vertex popularity is itself heavy-tailed.
    popularity = 1.0 / np.arange(1, num_vertices + 1, dtype=np.float64) ** 0.8
    popularity /= popularity.sum()
    rows_list, cols_list = [], []
    for net, size in enumerate(sizes):
        members = rng.choice(num_vertices, size=int(size), replace=False, p=popularity)
        rows_list.append(np.full(members.size, net, dtype=np.int64))
        cols_list.append(members.astype(np.int64))
    # Scatter the column ids: real rating matrices are not popularity-sorted,
    # and an id-sorted popularity would make the natural order artificially
    # good for greedy coloring.
    scatter = rng.permutation(num_vertices).astype(np.int64)
    return _bipartite(
        np.concatenate(rows_list),
        scatter[np.concatenate(cols_list)],
        num_nets,
        num_vertices,
    )


def web_like(
    num_vertices: int = 2600,
    avg_degree: int = 8,
    max_degree: int = 300,
    seed: int = 27,
) -> BipartiteGraph:
    """Web-crawl analogue: square, unsymmetric, power-law in/out degrees."""
    if num_vertices < 2:
        raise DatasetError("web_like needs at least 2 vertices")
    rng = np.random.default_rng(seed)
    out_sizes = _zipf_sizes(rng, num_vertices, lo=1, hi=max_degree, alpha=1.7)
    target_total = num_vertices * avg_degree
    out_sizes = np.maximum(
        1, (out_sizes * target_total / max(1, out_sizes.sum())).astype(np.int64)
    )
    out_sizes = np.minimum(out_sizes, min(max_degree, num_vertices - 1))
    # uk-2002's greedy coloring lands exactly on the lower bound: the giant
    # hub row is near-disjoint from the other large rows.  A mild popularity
    # skew keeps the in-degree tail without making the hubs overlap heavily.
    popularity = 1.0 / np.arange(1, num_vertices + 1, dtype=np.float64) ** 0.35
    popularity /= popularity.sum()
    rows_list, cols_list = [], []
    for page, size in enumerate(out_sizes):
        targets = rng.choice(num_vertices, size=int(size), replace=False, p=popularity)
        rows_list.append(np.full(targets.size, page, dtype=np.int64))
        cols_list.append(targets.astype(np.int64))
    # Relabel pages with one permutation on both sides: crawl ids are not
    # popularity-sorted in real web graphs.
    scatter = rng.permutation(num_vertices).astype(np.int64)
    return _bipartite(
        scatter[np.concatenate(rows_list)],
        scatter[np.concatenate(cols_list)],
        num_vertices,
        num_vertices,
    )


def cfd_like(
    num_vertices: int = 900,
    block: int = 24,
    extra_links: int = 6,
    seed: int = 15,
) -> BipartiteGraph:
    """CFD analogue (HV15R): square, unsymmetric, dense diagonal blocks.

    The unknowns of one cell form a dense coupled block (all rows of a block
    cover the whole block), plus a few long-range couplings per row.  Like
    HV15R, greedy coloring then lands very close to the lower bound ``L``
    (the block size), because the conflict graph is a clique union with a
    sparse overlay.
    """
    if num_vertices < block + 1:
        raise DatasetError("cfd_like needs num_vertices > block")
    rng = np.random.default_rng(seed)
    rows_list, cols_list = [], []
    for i in range(num_vertices):
        block_id = i // block
        lo = block_id * block
        hi = min(num_vertices, lo + block)
        local = np.arange(lo, hi, dtype=np.int64)
        far = rng.integers(0, num_vertices, size=extra_links)
        targets = np.concatenate([local, far])
        rows_list.append(np.full(targets.size, i, dtype=np.int64))
        cols_list.append(targets)
    # Relabel with one permutation on both sides: real CFD numberings come
    # from mesh generators, not a perfect diagonal band sweep.
    scatter = rng.permutation(num_vertices).astype(np.int64)
    return _bipartite(
        scatter[np.concatenate(rows_list)],
        scatter[np.concatenate(cols_list)],
        num_vertices,
        num_vertices,
    )


# ---------------------------------------------------------------------------
# Square symmetric (mesh / stencil / clique) families — also used for D2GC
# ---------------------------------------------------------------------------


def _stencil_edges(dims: tuple[int, ...], offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Undirected edges of a regular grid stencil given offset vectors."""
    grid = np.indices(dims).reshape(len(dims), -1).T  # (n, d) coordinates
    strides = np.cumprod((1,) + dims[::-1][:-1])[::-1]  # row-major linearization
    ids = grid @ strides
    us_list, vs_list = [], []
    for off in offsets:
        shifted = grid + off
        ok = np.all((shifted >= 0) & (shifted < np.asarray(dims)), axis=1)
        us_list.append(ids[ok])
        vs_list.append((shifted[ok] @ strides))
    return np.concatenate(us_list), np.concatenate(vs_list)


def shell_mesh(nx: int = 44, ny: int = 40, seed: int = 0) -> BipartiteGraph:
    """2-D shell-element mesh (af_shell10 analogue): 5×5 stencil, max ≈ 35.

    Shell FEM matrices couple each node to its 8 immediate and 16
    second-ring neighbours plus a few cross-layer terms; degrees are low,
    bounded and nearly uniform.
    """
    if nx < 5 or ny < 5:
        raise DatasetError("shell_mesh needs nx, ny >= 5")
    offsets = [
        (dx, dy)
        for dx in range(-2, 3)
        for dy in range(-2, 3)
        if (dx, dy) > (0, 0)  # upper half; symmetrized below
    ]
    # Trim the corners of the 5x5 block to land near af_shell's 35 max.
    offsets = [o for o in offsets if abs(o[0]) + abs(o[1]) <= 3]
    us, vs = _stencil_edges((nx, ny), np.asarray(offsets))
    return _symmetric_bipartite(us, vs, nx * ny, scatter_seed=seed + 101)


def stencil3d(nx: int = 11, ny: int = 10, nz: int = 10, seed: int = 0) -> BipartiteGraph:
    """3-D 27-point stencil (bone010 analogue): max degree ≈ 27–63 band."""
    if min(nx, ny, nz) < 3:
        raise DatasetError("stencil3d needs all dimensions >= 3")
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) > (0, 0, 0)
    ]
    us, vs = _stencil_edges((nx, ny, nz), np.asarray(offsets))
    # bone010 couples a few second-shell trabecular links: axial (2,0,0)-type
    # offsets push the max degree above the plain 27-point stencil without
    # densifying the distance-2 neighbourhood too far for the scaled sizes.
    extra = [(2, 0, 0), (0, 2, 0), (0, 0, 2)]
    us2, vs2 = _stencil_edges((nx, ny, nz), np.asarray(extra))
    return _symmetric_bipartite(
        np.concatenate([us, us2]),
        np.concatenate([vs, vs2]),
        nx * ny * nz,
        scatter_seed=seed + 202,
    )


def channel_mesh(nx: int = 14, ny: int = 10, nz: int = 10, seed: int = 0) -> BipartiteGraph:
    """Regular 18-point stencil (channel analogue): 6 face + 12 edge links.

    Degrees are exactly 18 in the interior (std ≈ 1 from the boundary),
    matching the paper's most regular instance.
    """
    if min(nx, ny, nz) < 3:
        raise DatasetError("channel_mesh needs all dimensions >= 3")
    face = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    edge = [
        (1, 1, 0), (1, -1, 0),
        (1, 0, 1), (1, 0, -1),
        (0, 1, 1), (0, 1, -1),
    ]
    us, vs = _stencil_edges((nx, ny, nz), np.asarray(face + edge))
    return _symmetric_bipartite(us, vs, nx * ny * nz, scatter_seed=seed + 303)


def copapers_like(
    num_vertices: int = 2200,
    num_cliques: int = 420,
    max_clique: int = 110,
    seed: int = 7,
) -> BipartiteGraph:
    """Co-authorship analogue (coPapersDBLP): a union of author cliques.

    Every "paper" makes its authors pairwise adjacent, so the adjacency
    matrix is a clique union: a few very large cliques give the huge max
    degree / tiny average that breaks vertex-based BGPC on coPapersDBLP.
    """
    if num_vertices < 4:
        raise DatasetError("copapers_like needs at least 4 vertices")
    rng = np.random.default_rng(seed)
    sizes = _zipf_sizes(rng, num_cliques, lo=2, hi=max_clique, alpha=1.9)
    popularity = 1.0 / np.arange(1, num_vertices + 1, dtype=np.float64) ** 0.25
    popularity /= popularity.sum()
    us_list, vs_list = [], []
    for size in sizes:
        members = rng.choice(num_vertices, size=int(size), replace=False, p=popularity)
        k = members.size
        left = np.repeat(members, k)
        right = np.tile(members, k)
        keep = left < right
        us_list.append(left[keep])
        vs_list.append(right[keep])
    us = np.concatenate(us_list).astype(np.int64)
    vs = np.concatenate(vs_list).astype(np.int64)
    return _symmetric_bipartite(us, vs, num_vertices, scatter_seed=seed + 505)


def kkt_like(
    grid: tuple[int, int, int] = (9, 9, 8),
    num_constraints: int = 500,
    vars_per_constraint: int = 6,
    seed: int = 3,
) -> BipartiteGraph:
    """KKT-system analogue (nlpkkt120): ``[[H, Aᵀ], [A, 0]]`` blocks.

    ``H`` is a 7-point-stencil Hessian over a 3-D grid of primal variables;
    ``A`` couples each dual (constraint) row to a local group of primals.
    The assembled pattern is square and symmetric.
    """
    nx, ny, nz = grid
    n_primal = nx * ny * nz
    if n_primal < vars_per_constraint:
        raise DatasetError("kkt_like grid too small for constraint width")
    rng = np.random.default_rng(seed)
    offsets = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    hu, hv = _stencil_edges((nx, ny, nz), np.asarray(offsets))
    n = n_primal + num_constraints
    # A-block: constraint j (id n_primal + j) touches a clustered var group.
    starts = rng.integers(0, max(1, n_primal - vars_per_constraint), size=num_constraints)
    au_list, av_list = [], []
    for j, start in enumerate(starts):
        variables = start + rng.choice(
            vars_per_constraint * 3,
            size=vars_per_constraint,
            replace=False,
        )
        variables = np.clip(variables, 0, n_primal - 1)
        au_list.append(np.full(variables.size, n_primal + j, dtype=np.int64))
        av_list.append(variables.astype(np.int64))
    us = np.concatenate([hu, np.concatenate(au_list)])
    vs = np.concatenate([hv, np.concatenate(av_list)])
    return _symmetric_bipartite(us, vs, n, scatter_seed=seed + 404)


# ---------------------------------------------------------------------------
# Generic random instances (tests and property-based checks)
# ---------------------------------------------------------------------------


def random_bipartite(
    num_nets: int,
    num_vertices: int,
    density: float = 0.05,
    seed: int = 0,
) -> BipartiteGraph:
    """Erdős–Rényi-style bipartite pattern with expected ``density``."""
    if not 0.0 <= density <= 1.0:
        raise DatasetError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed)
    mask = rng.random((num_nets, num_vertices)) < density
    rows, cols = np.nonzero(mask)
    return _bipartite(rows, cols, num_nets, num_vertices)


def random_graph(num_vertices: int, num_edges: int, seed: int = 0) -> Graph:
    """Uniform random simple undirected graph."""
    rng = np.random.default_rng(seed)
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise DatasetError(f"{num_edges} edges exceed the {max_edges} possible")
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u, v = rng.integers(0, num_vertices, size=2)
        if u != v:
            edges.add((min(int(u), int(v)), max(int(u), int(v))))
    return graph_from_edges(np.array(sorted(edges)), num_vertices=num_vertices)
