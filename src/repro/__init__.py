"""repro — reproduction of "Greed is Good: Parallel Algorithms for
Bipartite-Graph Partial Coloring on Multicore Architectures" (ICPP 2017).

Quickstart
----------
>>> import numpy as np
>>> from repro import bipartite_from_dense, color_bgpc, validate_bgpc
>>> pattern = np.array([[1, 1, 0], [0, 1, 1]])
>>> bg = bipartite_from_dense(pattern)
>>> result = color_bgpc(bg, algorithm="N1-N2", threads=4)
>>> validate_bgpc(bg, result.colors)   # raises on an invalid coloring

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.graph import (
    CSR,
    BipartiteGraph,
    Graph,
    GraphDelta,
    apply_delta,
    delta_frontier,
    bipartite_from_dense,
    bipartite_from_edges,
    bipartite_from_scipy,
    graph_from_dense,
    graph_from_edges,
    graph_from_scipy,
    read_matrix_market,
    write_matrix_market,
)
from repro.core import (
    PAPER_SCHEDULES,
    AlgorithmSpec,
    ScheduleSpec,
    backend_names,
    get_backend,
    normalize_schedule_name,
    register_backend,
    BGPC_ALGORITHMS,
    FASTPATH_MODES,
    fastpath_color_bgpc,
    fastpath_color_d2gc,
    color_distk,
    sequential_distk,
    validate_distk,
    jones_plassmann_bgpc,
    jones_plassmann_d2gc,
    rebalance_shuffle,
    reduce_colors,
    recolor_incremental,
    IncrementalResult,
    D2GC_ALGORITHMS,
    B1Policy,
    B2Policy,
    FirstFit,
    color_bgpc,
    color_d2gc,
    color_stats,
    get_policy,
    is_valid_bgpc,
    is_valid_d2gc,
    sequential_bgpc,
    sequential_d2gc,
    validate_bgpc,
    validate_d2gc,
)
from repro.machine import CostModel, Machine
from repro.obs import (
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    TraceEvent,
    profile_table,
)
from repro.order import (
    natural_order,
    smallest_last_order,
    largest_first_order,
    random_order,
    get_ordering,
)
from repro.types import ColoringResult, ColorStats, UNCOLORED

__version__ = "1.0.0"

__all__ = [
    "CSR",
    "BipartiteGraph",
    "Graph",
    "GraphDelta",
    "apply_delta",
    "delta_frontier",
    "bipartite_from_dense",
    "bipartite_from_edges",
    "bipartite_from_scipy",
    "graph_from_dense",
    "graph_from_edges",
    "graph_from_scipy",
    "read_matrix_market",
    "write_matrix_market",
    "BGPC_ALGORITHMS",
    "D2GC_ALGORITHMS",
    "PAPER_SCHEDULES",
    "AlgorithmSpec",
    "ScheduleSpec",
    "normalize_schedule_name",
    "backend_names",
    "get_backend",
    "register_backend",
    "B1Policy",
    "B2Policy",
    "FirstFit",
    "color_bgpc",
    "color_d2gc",
    "color_stats",
    "get_policy",
    "is_valid_bgpc",
    "is_valid_d2gc",
    "sequential_bgpc",
    "sequential_d2gc",
    "validate_bgpc",
    "validate_d2gc",
    "CostModel",
    "Machine",
    "natural_order",
    "smallest_last_order",
    "largest_first_order",
    "random_order",
    "get_ordering",
    "ColoringResult",
    "ColorStats",
    "UNCOLORED",
    "color_distk",
    "sequential_distk",
    "validate_distk",
    "jones_plassmann_bgpc",
    "jones_plassmann_d2gc",
    "rebalance_shuffle",
    "reduce_colors",
    "recolor_incremental",
    "IncrementalResult",
    "FASTPATH_MODES",
    "fastpath_color_bgpc",
    "fastpath_color_d2gc",
    "TraceEvent",
    "NullTracer",
    "RecordingTracer",
    "JsonlTracer",
    "profile_table",
    "__version__",
]
