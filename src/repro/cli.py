"""Command-line interface: color a MatrixMarket file.

Usage::

    python -m repro input.mtx --algorithm N1-N2 --threads 16
    python -m repro input.mtx --problem d2gc --ordering smallest-last
    python -m repro input.mtx --policy B2 --output colors.txt
    python -m repro input.mtx --backend numpy --fastpath-mode speculative
    python -m repro input.mtx --backend threaded --algo V-V-64D
    python -m repro input.mtx --backend process --threads 4
    python -m repro input.mtx --backend sharded --shards 4 --partitioner bfs
    python -m repro input.mtx --profile --trace run.jsonl
    python -m repro input.mtx --work-metrics
    python -m repro input.mtx --algo V-V --delta changes.json
    python -m repro input.mtx --schedule adaptive --threads 16

``--algo`` accepts any spec the schedule grammar admits (``V-N∞``,
``n1-n2-b1``, …), not just the named table entries, and ``--backend``
lists every registered execution backend.

Prints a run summary (colors, rounds, conflicts, simulated cycles) and
optionally writes the color of each vertex, one per line.  ``--profile``
adds the per-iteration phase breakdown (the paper's Figure 1 shape) and
``--trace`` streams structured span/counter events to a JSONL file — see
``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.backends import backend_names
from repro.core.bgpc import BGPC_ALGORITHMS, color_bgpc, sequential_bgpc
from repro.core.d2gc import color_d2gc, sequential_d2gc
from repro.core.metrics import color_stats
from repro.core.policies import POLICIES, get_policy
from repro.core.validate import validate_bgpc, validate_d2gc
from repro.dist.partition import partitioner_names
from repro.graph.mmio import read_matrix_market
from repro.graph.ops import bipartite_to_graph
from repro.order import ORDERINGS, get_ordering


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Bipartite-graph partial coloring / distance-2 coloring "
        "of a MatrixMarket pattern (ICPP'17 'Greed is Good' algorithms).",
    )
    parser.add_argument("matrix", help="path to a .mtx or .mtx.gz file")
    parser.add_argument(
        "--problem",
        choices=("bgpc", "d2gc"),
        default="bgpc",
        help="color the columns (bgpc, default) or distance-2 color the "
        "symmetrized square pattern (d2gc)",
    )
    parser.add_argument(
        "--algorithm",
        "--algo",
        "--schedule",
        default="N1-N2",
        help="algorithm variant: a named schedule "
        f"({', '.join(sorted(BGPC_ALGORITHMS))}), 'sequential', any "
        "spec in the paper's grammar such as V-N∞, N1-N2-B1 or the "
        "switched V-V-64D-B1@2, or 'adaptive[:threshold]' for the "
        "conflict-rate controller (kernel-level backends only) "
        "(default: N1-N2); see docs/algorithms.md and docs/adaptive.md",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=16,
        help="simulated cores for --backend sim, real threads for "
        "threaded, worker processes for process (default 16)",
    )
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default="sim",
        help="execution backend: the cycle-accurate simulator (sim, "
        "default), the vectorized wall-clock NumPy fast path (numpy), "
        "its numba-JIT twin (compiled, needs numba installed), "
        "real Python threads (threaded), a shared-memory worker-process "
        "pool (process), or partitioned superstep coloring on that pool "
        "(sharded); see docs/backends.md and docs/sharding.md",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count for --backend sharded (one worker process per "
        "shard; defaults to --threads); see docs/sharding.md",
    )
    parser.add_argument(
        "--partitioner",
        default=None,
        choices=partitioner_names(),
        help="vertex partitioner for --backend sharded (default: bfs); "
        "see docs/sharding.md",
    )
    parser.add_argument(
        "--fastpath-mode",
        choices=("exact", "speculative"),
        default="exact",
        help="numpy/compiled-backend flavour: exact reproduces the "
        "sequential colors byte-for-byte, speculative is fastest "
        "(default: exact; ignored with --backend sim)",
    )
    parser.add_argument(
        "--ordering",
        default="natural",
        choices=sorted(ORDERINGS),
        help="vertex pre-ordering (default: natural)",
    )
    parser.add_argument(
        "--policy",
        default="U",
        choices=sorted(POLICIES),
        help="balancing policy: U (none), B1 or B2",
    )
    parser.add_argument(
        "--delta",
        default=None,
        metavar="FILE",
        help="after the base run, apply the JSON edge delta in FILE "
        '({"insert": [[u, v], ...], "delete": [[u, v], ...]}) and recolor '
        "only the invalidated frontier, printing the work saved vs the "
        "base run (bgpc only, natural ordering, kernel-level backends); "
        "see docs/incremental.md",
    )
    parser.add_argument(
        "--output", default=None, help="write one color per line to this "
        "file (with --delta: the incremental colors of the mutated graph)"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the per-iteration phase breakdown (queue sizes, "
        "conflicts, palette growth, cycles or wall ms per round); see "
        "docs/observability.md",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="stream structured trace events (spans/counters) to FILE as "
        "JSON lines; see docs/observability.md for the event schema",
    )
    parser.add_argument(
        "--work-metrics",
        action="store_true",
        help="print the run's deterministic work counters (probes, scans, "
        "conflict checks, queue pushes, color writes); these are the "
        "numbers the perf-regression gate compares — see "
        "docs/benchmarks.md",
    )
    return parser


def _load_delta(path: str):
    """Read a ``--delta`` JSON file into a GraphDelta; exits via ValueError."""
    import json

    from repro.graph.delta import GraphDelta

    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(
            "delta file must hold a JSON object with 'insert'/'delete' lists"
        )
    unknown = set(payload) - {"insert", "delete"}
    if unknown:
        raise ValueError(
            f"unknown delta fields {sorted(unknown)}; "
            "expected 'insert' and/or 'delete'"
        )
    return GraphDelta(
        insert=payload.get("insert", ()), delete=payload.get("delete", ())
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError

    if args.backend != "sharded" and (
        args.shards is not None or args.partitioner is not None
    ):
        print(
            "error: --shards/--partitioner apply only to --backend sharded",
            file=sys.stderr,
        )
        return 2

    delta = None
    if args.delta:
        # Incremental recoloring resumes the kernel loop in place, which
        # constrains the configuration; reject the rest with one-line errors.
        reason = None
        if args.problem != "bgpc":
            reason = "--delta supports only --problem bgpc"
        elif args.algorithm == "sequential":
            reason = ("--delta needs a speculative schedule to resume "
                      "(e.g. --algo V-V), not sequential")
        elif args.backend in ("numpy", "compiled"):
            reason = (f"--delta cannot run on --backend {args.backend} (the "
                      "fast path cannot resume a partial coloring)")
        elif args.backend == "sharded":
            reason = ("--delta cannot run on --backend sharded (the "
                      "interior/boundary split assumes a fresh palette)")
        elif args.ordering != "natural":
            reason = ("--delta requires --ordering natural (a permuted "
                      "coloring cannot be resumed in place)")
        if reason is not None:
            print(f"error: {reason}", file=sys.stderr)
            return 2
        try:
            delta = _load_delta(args.delta)
        except (OSError, TypeError, ValueError, ReproError) as exc:
            print(f"error: cannot read delta {args.delta}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        bg = read_matrix_market(args.matrix)
    except (OSError, UnicodeDecodeError, ReproError) as exc:
        print(f"error: cannot read {args.matrix}: {exc}", file=sys.stderr)
        return 2
    policy = None if args.policy == "U" else get_policy(args.policy)

    tracer = None
    try:
        if args.trace:
            from repro.obs import JsonlTracer

            try:
                tracer = JsonlTracer(args.trace)
            except OSError as exc:
                print(f"error: cannot write trace {args.trace}: {exc}",
                      file=sys.stderr)
                return 2
        return _run(args, bg, policy, tracer, delta)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        # e.g. an unwritable --output path; one line, exit 2, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()


def _run(args, bg, policy, tracer=None, delta=None) -> int:
    threads = args.threads
    backend_options = {}
    if args.backend == "sharded":
        if args.shards is not None:
            threads = args.shards
        backend_options["partitioner"] = args.partitioner or "bfs"
    if args.problem == "bgpc":
        instance = bg
        order = (
            None
            if args.ordering == "natural"
            else get_ordering(args.ordering)(instance)
        )
        if args.algorithm == "sequential":
            result = sequential_bgpc(
                instance, policy=policy, order=order, tracer=tracer
            )
        else:
            result = color_bgpc(
                instance,
                algorithm=args.algorithm,
                threads=threads,
                policy=policy,
                order=order,
                backend=args.backend,
                fastpath_mode=args.fastpath_mode,
                tracer=tracer,
                **backend_options,
            )
        validate_bgpc(instance, result.colors)
        lower = instance.color_lower_bound()
        sizes = f"{instance.num_nets} nets x {instance.num_vertices} vertices"
    else:
        instance = bipartite_to_graph(bg)
        order = (
            None
            if args.ordering == "natural"
            else get_ordering(args.ordering)(instance)
        )
        if args.algorithm == "sequential":
            result = sequential_d2gc(
                instance, policy=policy, order=order, tracer=tracer
            )
        else:
            result = color_d2gc(
                instance,
                algorithm=args.algorithm,
                threads=threads,
                policy=policy,
                order=order,
                backend=args.backend,
                fastpath_mode=args.fastpath_mode,
                tracer=tracer,
                **backend_options,
            )
        validate_d2gc(instance, result.colors)
        lower = instance.color_lower_bound()
        sizes = f"{instance.num_vertices} vertices, {instance.num_edges} edges"

    stats = color_stats(result.colors)
    # A balancing suffix in the schedule spec ("N1-N2-B1") resolves a policy
    # inside the driver; reflect it instead of the --policy default.
    policy_label = args.policy
    if policy_label == "U" and result.algorithm.endswith(("-B1", "-B2")):
        policy_label = result.algorithm.rsplit("-", 1)[1]
    print(f"instance : {args.matrix} ({sizes})")
    if result.backend == "numpy":
        print(f"problem  : {args.problem}, algorithm {result.algorithm}, "
              f"numpy backend ({args.fastpath_mode} mode), "
              f"ordering {args.ordering}, policy {policy_label}")
    elif result.backend == "compiled":
        print(f"problem  : {args.problem}, algorithm {result.algorithm}, "
              f"compiled backend (numba, {args.fastpath_mode} mode), "
              f"ordering {args.ordering}, policy {policy_label}")
    elif result.backend == "threaded":
        print(f"problem  : {args.problem}, algorithm {result.algorithm}, "
              f"{result.threads} real threads (threaded backend), "
              f"ordering {args.ordering}, policy {policy_label}")
    elif result.backend == "process":
        print(f"problem  : {args.problem}, algorithm {result.algorithm}, "
              f"{result.threads} worker processes (process backend, shared "
              f"memory), ordering {args.ordering}, policy {policy_label}")
    elif result.backend == "sharded":
        print(f"problem  : {args.problem}, algorithm {result.algorithm}, "
              f"{result.threads} shards (sharded backend, "
              f"{args.partitioner or 'bfs'} partition), "
              f"ordering {args.ordering}, policy {policy_label}")
    else:
        print(f"problem  : {args.problem}, algorithm {result.algorithm}, "
              f"{result.threads} simulated threads, ordering {args.ordering}, "
              f"policy {policy_label}")
    print(f"colors   : {result.num_colors} (lower bound {lower})")
    print(f"rounds   : {result.num_iterations}, conflicts {result.total_conflicts}")
    if result.backend == "sim":
        print(f"cycles   : {result.cycles:.0f} (simulated)")
    else:
        print(f"wall     : {result.wall_seconds * 1000:.1f} ms (measured)")
    print(f"classes  : min {stats.min} / mean {stats.mean:.1f} / max {stats.max}, "
          f"std {stats.std:.2f}")
    if result.backend == "sharded":
        wm = result.work_metrics
        print(f"shards   : interior {wm['shard.interior']} / boundary "
              f"{wm['shard.boundary']}, {wm['shard.supersteps']} supersteps, "
              f"{wm['shard.comm_words']} words / {wm['shard.comm_messages']} "
              f"messages exchanged")
    inc = None
    if delta is not None:
        from repro.core.incremental import recolor_incremental

        inc = recolor_incremental(
            instance,
            result.colors,
            delta,
            algorithm=args.algorithm,
            threads=args.threads,
            backend=args.backend,
            policy=policy,
            tracer=tracer,
            validate=False,  # the base run was validated just above
        )
        print(f"delta    : {args.delta} (+{inc.num_insertions} insert / "
              f"-{inc.num_deletions} delete), frontier {inc.frontier_size} "
              f"of {inc.graph.num_vertices} vertices")
        print(f"recolor  : {inc.num_colors} colors on the mutated graph "
              f"({inc.result.num_iterations} rounds, incremental)")
        base_work = (result.work_metrics.get("probes", 0)
                     + result.work_metrics.get("conflict_checks", 0))
        inc_work = (inc.work_metrics.get("probes", 0)
                    + inc.work_metrics.get("conflict_checks", 0))
        if inc_work:
            print(f"saved    : {inc_work} vs {base_work} probes+checks "
                  f"({base_work / inc_work:.1f}x less work than the "
                  f"base run)")
        else:
            print(f"saved    : 0 vs {base_work} probes+checks (frontier "
                  f"empty — zero-work fast path)")
    if args.work_metrics:
        from repro.obs import WORK_METRICS

        parts = ", ".join(
            f"{m} {result.work_metrics.get(m, 0)}" for m in WORK_METRICS
        )
        print(f"work     : {parts}")
    if args.profile:
        from repro.obs import profile_table

        print()
        print(profile_table(result))
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.output:
        out_colors = result.colors if inc is None else inc.colors
        with open(args.output, "w", encoding="ascii") as fh:
            fh.writelines(f"{c}\n" for c in out_colors)
        print(f"colors written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
