"""Pattern algebra on graph containers.

These are the structural operations the reproduction needs around the core
algorithms: converting between the BGPC and D2GC views of a matrix,
symmetrizing patterns, and materializing the distance-2 conflict graph that
serves as the *reference* (slow but obviously correct) formulation both
validators and tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import csr_from_edges
from repro.graph.csr import CSR
from repro.graph.unipartite import Graph

__all__ = [
    "symmetrize",
    "bipartite_to_graph",
    "graph_to_bipartite",
    "bgpc_conflict_graph",
    "d2gc_conflict_graph",
    "square_pattern",
]


def symmetrize(csr: CSR) -> CSR:
    """Union a square CSR pattern with its transpose, dropping the diagonal."""
    if csr.nrows != csr.ncols:
        raise GraphError("symmetrize requires a square pattern")
    rows = np.repeat(np.arange(csr.nrows, dtype=np.int64), csr.degrees())
    cols = csr.idx
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    return csr_from_edges(
        np.concatenate([rows, cols]),
        np.concatenate([cols, rows]),
        csr.nrows,
        csr.nrows,
    )


def bipartite_to_graph(bg: BipartiteGraph) -> Graph:
    """Interpret a square structurally-symmetric bipartite instance as a graph.

    This is how the paper derives its D2GC instances: the same matrix used
    for BGPC, now read as the adjacency of a unipartite graph (diagonal
    dropped, pattern symmetrized).
    """
    if bg.num_vertices != bg.num_nets:
        raise GraphError("bipartite instance is not square")
    return Graph(symmetrize(bg.vtx_to_nets), check=False)


def graph_to_bipartite(g: Graph) -> BipartiteGraph:
    """Read a graph's adjacency matrix as a BGPC instance (rows = nets)."""
    return BipartiteGraph.from_net_to_vtxs(g.adj)


def bgpc_conflict_graph(bg: BipartiteGraph) -> Graph:
    """Materialize the BGPC conflict graph over ``V_A``.

    Two vertices are adjacent iff they share at least one net; a valid BGPC
    coloring of ``bg`` is exactly a valid distance-1 coloring of this graph.
    Cost is Θ(Σ_v |vtxs(v)|²) — reference/validation use only.
    """
    row_chunks: list[np.ndarray] = []
    col_chunks: list[np.ndarray] = []
    n2v = bg.net_to_vtxs
    for _, members in n2v.iter_rows():
        k = members.size
        if k < 2:
            continue
        # All ordered pairs within the net (dedup happens in csr_from_edges).
        left = np.repeat(members, k)
        right = np.tile(members, k)
        keep = left != right
        row_chunks.append(left[keep])
        col_chunks.append(right[keep])
    if row_chunks:
        rows = np.concatenate(row_chunks)
        cols = np.concatenate(col_chunks)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    adj = csr_from_edges(rows, cols, bg.num_vertices, bg.num_vertices)
    return Graph(adj, check=False)


def d2gc_conflict_graph(g: Graph) -> Graph:
    """Materialize the square graph G² (distance ≤ 2 adjacency).

    A valid D2GC coloring of ``g`` is exactly a valid distance-1 coloring of
    the returned graph.  Reference/validation use only.
    """
    row_chunks: list[np.ndarray] = []
    col_chunks: list[np.ndarray] = []
    for v in range(g.num_vertices):
        d2 = g.distance2_neighbors(v)
        if d2.size:
            row_chunks.append(np.full(d2.size, v, dtype=np.int64))
            col_chunks.append(d2)
    if row_chunks:
        rows = np.concatenate(row_chunks)
        cols = np.concatenate(col_chunks)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    adj = csr_from_edges(
        np.concatenate([rows, cols]),
        np.concatenate([cols, rows]),
        g.num_vertices,
        g.num_vertices,
    )
    return Graph(adj, check=False)


def square_pattern(csr: CSR) -> CSR:
    """Structural product ``P(AᵀA)`` of a rectangular pattern ``A``.

    Column ``i`` and ``j`` of ``A`` are adjacent in the result iff they share
    a row — i.e. the BGPC conflict graph in matrix form.  Exposed separately
    for the Jacobian-compression application.
    """
    bg = BipartiteGraph.from_net_to_vtxs(csr)
    return bgpc_conflict_graph(bg).adj
