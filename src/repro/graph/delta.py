"""Edge deltas for evolving bipartite graphs.

Production graphs change; :class:`GraphDelta` is the canonical description
of one change set — ``(vertex, net)`` edge insertions and deletions — and
:func:`apply_delta` materializes the mutated :class:`BipartiteGraph` by
rebuilding both CSR orientations (the containers stay immutable; a delta
produces a *new* graph, so fingerprints and two-hop caches keyed on the
old object remain correct).

:func:`delta_frontier` computes the set of vertices whose color an
incremental recoloring (:func:`repro.core.incremental.recolor_incremental`)
must revisit.  The rule, and why it is sufficient:

* **Deletions only remove constraints.**  A coloring valid before a
  deletion is still valid after it, so deletions contribute nothing to the
  frontier (they can only leave unused colors behind).
* **Insertions create constraints only through the touched nets.**  After
  inserting ``(u, v)``, a new conflict pair must involve net ``v``'s
  membership; resetting *every* member of every inserted-into net (the
  endpoints' whole one-net neighborhood — the classic two-hop
  invalidation) guarantees any vertex that gained a constraint partner is
  re-colored against the full, updated forbidden set.  Two vertices
  outside the frontier never gain a new mutual constraint.

See ``docs/incremental.md`` for the worked semantics and wire format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import csr_from_edges

__all__ = ["GraphDelta", "apply_delta", "delta_frontier"]


def _canonical_pairs(pairs, label: str) -> np.ndarray:
    """Normalize an iterable of ``(vertex, net)`` pairs to a sorted, unique
    ``(k, 2)`` int64 array."""
    arr = np.asarray(
        list(pairs) if not isinstance(pairs, np.ndarray) else pairs
    )
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(
            f"delta {label} must be (k, 2)-shaped (vertex, net) pairs, "
            f"got shape {arr.shape}"
        )
    if not np.issubdtype(arr.dtype, np.integer):
        try:
            cast = arr.astype(np.int64)
        except (TypeError, ValueError):
            raise GraphError(
                f"delta {label} must hold integer ids, got dtype {arr.dtype}"
            ) from None
        if not np.array_equal(cast, arr):
            raise GraphError(
                f"delta {label} must hold integer ids, got dtype {arr.dtype}"
            )
        arr = cast
    arr = arr.astype(np.int64, copy=False)
    if arr.min() < 0:
        raise GraphError(f"delta {label} ids must be non-negative")
    order = np.lexsort((arr[:, 1], arr[:, 0]))
    arr = arr[order]
    keep = np.ones(arr.shape[0], dtype=bool)
    keep[1:] = (arr[1:, 0] != arr[:-1, 0]) | (arr[1:, 1] != arr[:-1, 1])
    return np.ascontiguousarray(arr[keep])


@dataclass(frozen=True)
class GraphDelta:
    """One change set against a bipartite graph: edge inserts and deletes.

    Both fields accept any iterable of ``(vertex, net)`` pairs and are
    canonicalized on construction — int64, deduplicated, sorted by
    ``(vertex, net)`` — so two deltas describing the same change compare
    equal in array terms and serialize identically.

    An edge may not appear in both lists (the composition would be
    order-dependent); express "move" as delete in one delta, insert in the
    next epoch.
    """

    insert: np.ndarray = ()
    delete: np.ndarray = ()

    def __post_init__(self):
        object.__setattr__(
            self, "insert", _canonical_pairs(self.insert, "insert")
        )
        object.__setattr__(
            self, "delete", _canonical_pairs(self.delete, "delete")
        )
        if self.insert.size and self.delete.size:
            ins = self.insert[:, 0] * (2**31) + self.insert[:, 1]
            dels = self.delete[:, 0] * (2**31) + self.delete[:, 1]
            both = np.intersect1d(ins, dels)
            if both.size:
                u, v = divmod(int(both[0]), 2**31)
                raise GraphError(
                    f"edge ({u}, {v}) appears in both insert and delete"
                )

    @property
    def num_insertions(self) -> int:
        return int(self.insert.shape[0])

    @property
    def num_deletions(self) -> int:
        return int(self.delete.shape[0])

    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return self.num_insertions == 0 and self.num_deletions == 0

    @property
    def is_delete_only(self) -> bool:
        """True when the delta only removes edges (frontier is empty)."""
        return self.num_insertions == 0 and self.num_deletions > 0

    def __repr__(self) -> str:
        return (
            f"GraphDelta(+{self.num_insertions} insert, "
            f"-{self.num_deletions} delete)"
        )


def _edge_keys(vs: np.ndarray, ns: np.ndarray, stride: int) -> np.ndarray:
    return vs * np.int64(stride) + ns


def _found_at(sorted_keys: np.ndarray, pos: np.ndarray,
              keys: np.ndarray) -> np.ndarray:
    """Membership mask for ``keys`` given searchsorted positions.

    ``sorted_keys`` may be empty (e.g. a delta that deleted every edge) —
    nothing is present then, and the clamped index would be out of range.
    """
    if not sorted_keys.size:
        return np.zeros(keys.size, dtype=bool)
    return (pos < sorted_keys.size) & (
        sorted_keys[np.minimum(pos, sorted_keys.size - 1)] == keys
    )


def apply_delta(bg: BipartiteGraph, delta: GraphDelta) -> BipartiteGraph:
    """The graph obtained by applying ``delta`` to ``bg`` (a new object).

    Semantics are strict so silent drift is impossible: deleting an edge
    that is not present, or inserting one that already is, raises
    :class:`~repro.errors.GraphError`.  Insertions may name vertex or net
    ids beyond the current cardinalities — the sides grow to ``max id + 1``
    — but the sides never shrink, even if a deletion empties the tail row
    (ids stay stable across epochs, which is what keeps old colorings
    index-compatible).
    """
    if not isinstance(delta, GraphDelta):
        raise GraphError(
            f"delta must be a GraphDelta, got {type(delta).__name__}"
        )
    ins, dels = delta.insert, delta.delete
    num_vertices = bg.num_vertices
    num_nets = bg.num_nets
    if ins.size:
        num_vertices = max(num_vertices, int(ins[:, 0].max()) + 1)
        num_nets = max(num_nets, int(ins[:, 1].max()) + 1)
    if dels.size and (
        int(dels[:, 0].max()) >= bg.num_vertices
        or int(dels[:, 1].max()) >= bg.num_nets
    ):
        raise GraphError(
            "delta deletes an edge outside the graph "
            f"(|V_A|={bg.num_vertices}, |V_B|={bg.num_nets})"
        )
    stride = max(num_nets, 1)

    cur_vs = np.repeat(
        np.arange(bg.num_vertices, dtype=np.int64),
        np.diff(bg.vtx_to_nets.ptr),
    )
    cur_keys = _edge_keys(cur_vs, bg.vtx_to_nets.idx, stride)
    # CSR rows are sorted, so (vertex, net) keys are globally sorted already.

    if dels.size:
        del_keys = _edge_keys(dels[:, 0], dels[:, 1], stride)
        pos = np.searchsorted(cur_keys, del_keys)
        present = _found_at(cur_keys, pos, del_keys)
        if not present.all():
            u, v = (int(x) for x in dels[np.nonzero(~present)[0][0]])
            raise GraphError(f"delta deletes a missing edge ({u}, {v})")
        keep = np.ones(cur_keys.size, dtype=bool)
        keep[pos] = False
        cur_keys = cur_keys[keep]

    if ins.size:
        ins_keys = _edge_keys(ins[:, 0], ins[:, 1], stride)
        pos = np.searchsorted(cur_keys, ins_keys)
        present = _found_at(cur_keys, pos, ins_keys)
        if present.any():
            u, v = (int(x) for x in ins[np.nonzero(present)[0][0]])
            raise GraphError(f"delta inserts an existing edge ({u}, {v})")
        cur_keys = np.concatenate([cur_keys, ins_keys])

    new_vs = cur_keys // stride
    new_ns = cur_keys % stride
    v2n = csr_from_edges(new_vs, new_ns, num_vertices, num_nets)
    return BipartiteGraph.from_vtx_to_nets(v2n)


def delta_frontier(mutated: BipartiteGraph, delta: GraphDelta) -> np.ndarray:
    """Vertices an incremental recoloring must reset, on the mutated graph.

    The union of (a) every insertion's vertex endpoint and (b) every member
    — in ``mutated`` — of every net an insertion touches.  Deletions
    contribute nothing (they only remove constraints), so a delete-only
    delta has an empty frontier and the old coloring is already valid.

    Returns a sorted, unique int64 vertex-id array.
    """
    if not isinstance(delta, GraphDelta):
        raise GraphError(
            f"delta must be a GraphDelta, got {type(delta).__name__}"
        )
    ins = delta.insert
    if not ins.size:
        return np.empty(0, dtype=np.int64)
    touched_nets = np.unique(ins[:, 1])
    if touched_nets.size and int(touched_nets.max()) >= mutated.num_nets:
        raise GraphError(
            f"frontier net {int(touched_nets.max())} outside the mutated "
            f"graph (|V_B|={mutated.num_nets})"
        )
    members = [mutated.vtxs(int(v)) for v in touched_nets]
    return np.unique(np.concatenate([ins[:, 0], *members])).astype(
        np.int64, copy=False
    )
