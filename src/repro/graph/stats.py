"""Dataset property extraction (paper Table II, columns 2–6).

For each instance the paper reports the number of rows, columns and
nonzeros, the maximum column degree (the BGPC color lower bound) and the
standard deviation of the column-degree distribution.  This module computes
the same columns for any :class:`BipartiteGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["DatasetProperties", "dataset_properties"]


@dataclass(frozen=True)
class DatasetProperties:
    """The structural columns of paper Table II for one instance.

    Attributes
    ----------
    name:
        Instance label.
    num_rows / num_cols / nnz:
        Matrix dimensions and stored-entry count (rows are nets, columns are
        the colored vertices).
    max_col_degree:
        Maximum nonzeros in a column (per-vertex degree).
    col_degree_std:
        Standard deviation of the per-column nonzero counts.
    max_row_degree:
        ``max_v |vtxs(v)|`` over nets/rows — the exact BGPC color lower
        bound ``L``.  This is what paper Table II's "Column deg. max"
        reports (its caption calls it "a lower bound on the number of
        colors used", and for 20M_movielens the value exceeds the row
        count, so it must be row-wise).
    row_degree_std:
        Standard deviation of the per-row nonzero counts (the paper's
        "Std. dev." column under the same reading).
    structurally_symmetric:
        Whether the instance qualifies for the D2GC experiments.
    """

    name: str
    num_rows: int
    num_cols: int
    nnz: int
    max_col_degree: int
    col_degree_std: float
    max_row_degree: int
    row_degree_std: float
    structurally_symmetric: bool

    def row(self) -> tuple:
        """Render as a Table II row tuple (name, rows, cols, nnz, max, std).

        Uses the row-side stats, matching the paper's columns 5–6 (the
        color lower bound and its spread).
        """
        return (
            self.name,
            self.num_rows,
            self.num_cols,
            self.nnz,
            self.max_row_degree,
            round(self.row_degree_std, 2),
        )


def dataset_properties(name: str, bg: BipartiteGraph) -> DatasetProperties:
    """Compute :class:`DatasetProperties` for a BGPC instance."""
    col_degrees = bg.vtx_to_nets.degrees().astype(np.float64)
    row_degrees = bg.net_to_vtxs.degrees().astype(np.float64)
    return DatasetProperties(
        name=name,
        num_rows=bg.num_nets,
        num_cols=bg.num_vertices,
        nnz=bg.num_edges,
        max_col_degree=bg.vtx_to_nets.max_degree(),
        col_degree_std=float(col_degrees.std()) if col_degrees.size else 0.0,
        max_row_degree=bg.net_to_vtxs.max_degree(),
        row_degree_std=float(row_degrees.std()) if row_degrees.size else 0.0,
        structurally_symmetric=bg.is_structurally_symmetric(),
    )
