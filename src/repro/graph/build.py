"""Builders converting edge lists, scipy sparse matrices and dense arrays
into the CSR-backed containers.

All builders deduplicate parallel edges and (for :class:`Graph`) drop
self-loops, matching how the coloring literature canonicalizes matrix
patterns before coloring.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphBuildError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.csr import CSR
from repro.graph.unipartite import Graph

__all__ = [
    "csr_from_edges",
    "bipartite_from_edges",
    "bipartite_from_scipy",
    "bipartite_from_dense",
    "graph_from_edges",
    "graph_from_scipy",
    "graph_from_dense",
]


def _canonical_edge_arrays(
    edges: Iterable[tuple[int, int]] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split an edge iterable / (m, 2) array into row and column id arrays."""
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphBuildError(f"edges must be (m, 2)-shaped, got {arr.shape}")
    rows = arr[:, 0].astype(np.int64, copy=False)
    cols = arr[:, 1].astype(np.int64, copy=False)
    if rows.size and (rows.min() < 0 or cols.min() < 0):
        raise GraphBuildError("edge endpoints must be non-negative")
    return rows, cols


def csr_from_edges(
    rows: np.ndarray, cols: np.ndarray, nrows: int, ncols: int
) -> CSR:
    """Build a deduplicated, row-sorted CSR from parallel id arrays."""
    if rows.size:
        if rows.max() >= nrows:
            raise GraphBuildError(f"row id {rows.max()} >= nrows {nrows}")
        if cols.max() >= ncols:
            raise GraphBuildError(f"col id {cols.max()} >= ncols {ncols}")
        # Sort by (row, col) then drop duplicates — one pass, fully vectorized.
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        keep = np.ones(rows.size, dtype=bool)
        keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        rows, cols = rows[keep], cols[keep]
    counts = np.bincount(rows, minlength=nrows)
    ptr = np.zeros(nrows + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    return CSR(ptr, cols, ncols)


# -- bipartite ----------------------------------------------------------------


def bipartite_from_edges(
    edges: Iterable[tuple[int, int]] | np.ndarray,
    num_vertices: int | None = None,
    num_nets: int | None = None,
) -> BipartiteGraph:
    """Build a :class:`BipartiteGraph` from ``(vertex, net)`` pairs.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` with ``u`` a ``V_A`` vertex id and ``v`` a
        ``V_B`` net id (independent id spaces).
    num_vertices, num_nets:
        Side cardinalities; inferred as ``max id + 1`` when omitted.
    """
    vs, ns = _canonical_edge_arrays(edges)
    if num_vertices is None:
        num_vertices = int(vs.max()) + 1 if vs.size else 0
    if num_nets is None:
        num_nets = int(ns.max()) + 1 if ns.size else 0
    v2n = csr_from_edges(vs, ns, num_vertices, num_nets)
    return BipartiteGraph.from_vtx_to_nets(v2n)


def bipartite_from_scipy(matrix) -> BipartiteGraph:
    """Build a BGPC instance from a scipy sparse matrix pattern.

    Matrix **columns** become the vertices to color and **rows** become the
    nets, matching the paper's setup ("we colored the columns of these
    matrices where the rows are considered as the nets").
    """
    from scipy import sparse

    if not sparse.issparse(matrix):
        raise GraphBuildError("expected a scipy sparse matrix")
    csr = matrix.tocsr()
    nrows, ncols = csr.shape
    rows = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(csr.indptr))
    cols = csr.indices.astype(np.int64)
    net_to_vtxs = csr_from_edges(rows, cols, nrows, ncols)
    return BipartiteGraph.from_net_to_vtxs(net_to_vtxs)


def bipartite_from_dense(matrix: Sequence[Sequence[float]] | np.ndarray) -> BipartiteGraph:
    """Build a BGPC instance from the nonzero pattern of a dense matrix."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise GraphBuildError(f"expected a 2-D array, got shape {arr.shape}")
    rows, cols = np.nonzero(arr)
    net_to_vtxs = csr_from_edges(
        rows.astype(np.int64), cols.astype(np.int64), arr.shape[0], arr.shape[1]
    )
    return BipartiteGraph.from_net_to_vtxs(net_to_vtxs)


# -- unipartite -----------------------------------------------------------------


def graph_from_edges(
    edges: Iterable[tuple[int, int]] | np.ndarray,
    num_vertices: int | None = None,
) -> Graph:
    """Build an undirected :class:`Graph` from an edge iterable.

    Each ``(u, v)`` contributes both directions; self-loops are dropped and
    parallel edges deduplicated.
    """
    us, vs = _canonical_edge_arrays(edges)
    if num_vertices is None:
        num_vertices = int(max(us.max(initial=-1), vs.max(initial=-1))) + 1 if us.size else 0
    keep = us != vs
    us, vs = us[keep], vs[keep]
    rows = np.concatenate([us, vs])
    cols = np.concatenate([vs, us])
    adj = csr_from_edges(rows, cols, num_vertices, num_vertices)
    return Graph(adj, check=False)


def graph_from_scipy(matrix) -> Graph:
    """Build a D2GC instance from a (structurally symmetric) scipy matrix.

    The pattern is symmetrized (union with its transpose) and the diagonal
    dropped, which is the standard canonicalization for distance-2 coloring
    of matrix patterns.
    """
    from scipy import sparse

    if not sparse.issparse(matrix):
        raise GraphBuildError("expected a scipy sparse matrix")
    if matrix.shape[0] != matrix.shape[1]:
        raise GraphBuildError(f"matrix must be square, got {matrix.shape}")
    coo = matrix.tocoo()
    rows = coo.row.astype(np.int64)
    cols = coo.col.astype(np.int64)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    all_rows = np.concatenate([rows, cols])
    all_cols = np.concatenate([cols, rows])
    adj = csr_from_edges(all_rows, all_cols, matrix.shape[0], matrix.shape[0])
    return Graph(adj, check=False)


def graph_from_dense(matrix: Sequence[Sequence[float]] | np.ndarray) -> Graph:
    """Build a D2GC instance from a dense square pattern (symmetrized)."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise GraphBuildError(f"expected a square 2-D array, got shape {arr.shape}")
    rows, cols = np.nonzero(arr)
    return graph_from_edges(
        np.stack([rows, cols], axis=1), num_vertices=arr.shape[0]
    )
