"""Unipartite (symmetric) graph container for the D2GC problem.

Distance-2 graph coloring operates on an undirected graph ``G=(V, E)``; the
paper obtains its D2GC instances from structurally symmetric matrices.  The
container enforces symmetry and the absence of self-loops at construction,
since the D2GC kernels (paper Algs. 9–10) rely on ``nbor`` being symmetric.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSR

__all__ = ["Graph"]


class Graph:
    """An undirected graph stored as a symmetric CSR without self-loops.

    Parameters
    ----------
    adj:
        Square CSR adjacency; must be structurally symmetric and loop-free.
    check:
        When True (default) the symmetry/no-loop invariants are verified;
        pass False only for adjacency known-good by construction (e.g. the
        output of :func:`repro.graph.ops.symmetrize`).
    """

    __slots__ = ("adj", "__weakref__")

    def __init__(self, adj: CSR, check: bool = True):
        if adj.nrows != adj.ncols:
            raise GraphError(f"adjacency must be square, got {adj.nrows}x{adj.ncols}")
        if check:
            for v, row in adj.iter_rows():
                if np.any(row == v):
                    raise GraphError(f"self-loop at vertex {v}")
            t = adj.transpose().sorted()
            s = adj.sorted()
            if not (np.array_equal(s.ptr, t.ptr) and np.array_equal(s.idx, t.idx)):
                raise GraphError("adjacency must be structurally symmetric")
        self.adj = adj

    # -- sizes -----------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.adj.nrows

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (half the stored entries)."""
        return self.adj.nnz // 2

    # -- adjacency ---------------------------------------------------------------

    def nbor(self, v: int) -> np.ndarray:
        """Distance-1 neighbourhood of ``v`` (the paper's ``nbor(v)``)."""
        return self.adj.row(v)

    def degree(self, v: int) -> int:
        return self.adj.degree(v)

    def degrees(self) -> np.ndarray:
        return self.adj.degrees()

    def max_degree(self) -> int:
        return self.adj.max_degree()

    # -- problem bounds -----------------------------------------------------------

    def color_lower_bound(self) -> int:
        """``1 + max_v |nbor(v)|`` — the trivial D2GC color lower bound.

        A vertex and all its distance-1 neighbours are mutually distance-≤2,
        hence need ``deg(v) + 1`` distinct colors (paper §II).
        """
        return 1 + self.max_degree()

    def distance2_neighbors(self, v: int) -> np.ndarray:
        """All vertices within distance 2 of ``v`` (excluding ``v`` itself).

        O(Σ_{u∈nbor(v)} deg(u)) reference implementation used by the
        validators; the production kernels never materialize this set.
        """
        ring1 = self.nbor(v)
        if ring1.size == 0:
            return ring1
        pieces = [ring1] + [self.nbor(int(u)) for u in ring1]
        merged = np.unique(np.concatenate(pieces))
        return merged[merged != v]

    # -- transforms -----------------------------------------------------------------

    def permute(self, perm: np.ndarray) -> "Graph":
        """Relabel vertices so new id ``k`` is old id ``perm[k]``."""
        perm = np.asarray(perm, dtype=np.int64)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(perm.size, dtype=np.int64)
        relabeled = self.adj.permute_rows(perm).relabel_cols(inverse)
        return Graph(relabeled, check=False)

    def __repr__(self) -> str:
        return f"Graph(|V|={self.num_vertices}, |E|={self.num_edges})"
