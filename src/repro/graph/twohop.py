"""Materialized two-hop traversal structures.

The vertex-based kernels (paper Algs. 4–5) traverse, for a vertex ``w``,
every member of every net of ``w``.  The traversal *structure* is static, so
we flatten it once per graph into a CSR-like layout:

* ``idx[ptr[w]:ptr[w+1]]`` — the concatenation of ``vtxs(v)`` for
  ``v ∈ nets(w)``, in net order (``w`` itself included wherever it occurs,
  the kernels mask it out);
* ``seg`` — for each ``w``, the cumulative end offsets of the per-net
  segments inside its slice, so conflict removal can charge exactly the
  entries scanned up to its early-termination point.

This is purely a *host-side* acceleration: the simulated machine still
charges one ``edge_cost`` per entry touched, exactly as if the kernel had
walked ``nets(w)``/``vtxs(v)`` pointer by pointer.  The caches are memoized
on the graph objects and skipped above :data:`MAX_CACHE_ENTRIES` (falling
back to the loop kernels) to bound memory.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.graph.bipartite import BipartiteGraph
from repro.graph.unipartite import Graph

__all__ = [
    "TwoHop",
    "bgpc_twohop",
    "d2gc_twohop",
    "seed_bgpc_twohop",
    "seed_d2gc_twohop",
    "MAX_CACHE_ENTRIES",
]

#: Entry cap above which the flattened structure is not built (~400 MB at
#: int64 x2 arrays); the kernels then use the per-net loop path instead.
MAX_CACHE_ENTRIES = 25_000_000


class TwoHop:
    """Flattened two-hop adjacency of all colored vertices.

    Attributes
    ----------
    ptr, idx:
        CSR of the concatenated two-hop entries per vertex.
    seg_ptr, seg_end:
        CSR of per-vertex segment end offsets (one entry per net of the
        vertex, each the *local* offset one past the segment's last entry).
    """

    __slots__ = ("ptr", "idx", "seg_ptr", "seg_end")

    def __init__(self, ptr, idx, seg_ptr, seg_end):
        self.ptr = ptr
        self.idx = idx
        self.seg_ptr = seg_ptr
        self.seg_end = seg_end

    @property
    def entries(self) -> int:
        return int(self.idx.size)

    def slice(self, w: int) -> np.ndarray:
        """The full two-hop entry list of vertex ``w`` (view)."""
        return self.idx[self.ptr[w] : self.ptr[w + 1]]

    def segments(self, w: int) -> np.ndarray:
        """Local segment end offsets of vertex ``w`` (view)."""
        return self.seg_end[self.seg_ptr[w] : self.seg_ptr[w + 1]]

    def scanned_until(self, w: int, local_pos: int) -> int:
        """Entries scanned if the kernel stops inside the segment containing
        ``local_pos`` — i.e. up to that segment's end (net granularity)."""
        segs = self.segments(w)
        k = int(np.searchsorted(segs, local_pos, side="right"))
        return int(segs[min(k, segs.size - 1)])


_bgpc_cache: "weakref.WeakKeyDictionary[BipartiteGraph, TwoHop | None]" = (
    weakref.WeakKeyDictionary()
)
_d2gc_cache: "weakref.WeakKeyDictionary[Graph, TwoHop | None]" = (
    weakref.WeakKeyDictionary()
)


def _flatten(row_lists_ptr, row_lists_idx, inner_ptr, inner_idx, n_rows) -> TwoHop | None:
    """Flatten ``inner[row_lists[w]]`` for every ``w`` into one CSR."""
    outer_deg = np.diff(row_lists_ptr)
    # Total entries: for each w, sum of inner degrees over its list.
    inner_deg = np.diff(inner_ptr)
    per_w = np.zeros(n_rows, dtype=np.int64)
    np.add.at(
        per_w,
        np.repeat(np.arange(n_rows, dtype=np.int64), outer_deg),
        inner_deg[row_lists_idx],
    )
    total = int(per_w.sum())
    if total > MAX_CACHE_ENTRIES:
        return None
    ptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(per_w, out=ptr[1:])
    idx = np.empty(total, dtype=np.int64)
    seg_ptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(outer_deg, out=seg_ptr[1:])
    seg_end = np.empty(int(seg_ptr[-1]), dtype=np.int64)
    pos = 0
    seg_i = 0
    for w in range(n_rows):
        local = 0
        for v in row_lists_idx[row_lists_ptr[w] : row_lists_ptr[w + 1]]:
            members = inner_idx[inner_ptr[v] : inner_ptr[v + 1]]
            idx[pos : pos + members.size] = members
            pos += members.size
            local += members.size
            seg_end[seg_i] = local
            seg_i += 1
    return TwoHop(ptr, idx, seg_ptr, seg_end)


def bgpc_twohop(bg: BipartiteGraph) -> TwoHop | None:
    """Two-hop structure of a BGPC instance (memoized; ``None`` if too big)."""
    if bg in _bgpc_cache:
        return _bgpc_cache[bg]
    two = _flatten(
        bg.vtx_to_nets.ptr,
        bg.vtx_to_nets.idx,
        bg.net_to_vtxs.ptr,
        bg.net_to_vtxs.idx,
        bg.num_vertices,
    )
    _bgpc_cache[bg] = two
    return two


def seed_bgpc_twohop(bg: BipartiteGraph, two: TwoHop | None) -> None:
    """Pre-populate the BGPC memo cache for ``bg``.

    The ``process`` backend's workers rebuild the graph as views over
    shared memory; seeding the cache with a :class:`TwoHop` reconstructed
    from shared segments (or with ``None`` when the parent skipped the
    build) spares every worker the O(entries) flatten at kernel-build time.
    """
    _bgpc_cache[bg] = two


def seed_d2gc_twohop(g: Graph, two: TwoHop | None) -> None:
    """Pre-populate the D2GC memo cache for ``g`` (see :func:`seed_bgpc_twohop`)."""
    _d2gc_cache[g] = two


def d2gc_twohop(g: Graph) -> TwoHop | None:
    """Closed two-hop structure of a D2GC instance.

    The concatenation for vertex ``w`` is ``nbor(w)`` (the distance-1 ring,
    as its own leading segment) followed by ``nbor(u)`` for each
    ``u ∈ nbor(w)`` — matching the scan order of the loop kernels.
    """
    if g in _d2gc_cache:
        return _d2gc_cache[g]
    n = g.num_vertices
    ptr_a, idx_a = g.adj.ptr, g.adj.idx
    deg = np.diff(ptr_a)
    # ring-1 plus sum of ring-2 degrees
    ring2 = np.zeros(n, dtype=np.int64)
    np.add.at(
        ring2,
        np.repeat(np.arange(n, dtype=np.int64), deg),
        deg[idx_a],
    )
    per_w = deg + ring2
    total = int(per_w.sum())
    if total > MAX_CACHE_ENTRIES:
        _d2gc_cache[g] = None
        return None
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(per_w, out=ptr[1:])
    idx = np.empty(total, dtype=np.int64)
    seg_counts = deg + 1  # ring-1 segment + one per neighbour
    seg_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(seg_counts, out=seg_ptr[1:])
    seg_end = np.empty(int(seg_ptr[-1]), dtype=np.int64)
    pos = 0
    seg_i = 0
    for w in range(n):
        ring1 = idx_a[ptr_a[w] : ptr_a[w + 1]]
        idx[pos : pos + ring1.size] = ring1
        pos += ring1.size
        local = int(ring1.size)
        seg_end[seg_i] = local
        seg_i += 1
        for u in ring1:
            ring2_u = idx_a[ptr_a[u] : ptr_a[u + 1]]
            idx[pos : pos + ring2_u.size] = ring2_u
            pos += ring2_u.size
            local += ring2_u.size
            seg_end[seg_i] = local
            seg_i += 1
    two = TwoHop(ptr, idx, seg_ptr, seg_end)
    _d2gc_cache[g] = two
    return two
