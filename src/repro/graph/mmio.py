"""Minimal MatrixMarket coordinate-format reader/writer.

The paper's instances come from the UF (SuiteSparse) collection as ``.mtx``
files.  No network access is available in this environment, so the synthetic
datasets stand in for the real matrices — but a downstream user with the
files on disk can load them through this module and run every experiment on
the genuine inputs.

Only the ``matrix coordinate`` object class is supported, with the
``real | integer | pattern | complex`` fields and ``general | symmetric |
skew-symmetric`` symmetries — the subset that covers the entire SuiteSparse
collection as used in the paper.  Values are discarded: coloring only needs
the pattern.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import MatrixMarketError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import csr_from_edges

__all__ = ["read_matrix_market", "write_matrix_market"]

_VALID_FIELDS = {"real", "integer", "pattern", "complex"}
_VALID_SYMMETRIES = {"general", "symmetric", "skew-symmetric"}


def _open_text(path: str | Path) -> TextIO:
    """Open a (possibly gzipped) MatrixMarket file for text reading.

    Real SuiteSparse headers routinely carry non-ASCII comment bytes
    (author names, accented affiliations), so the decode must never crash:
    latin-1 maps every byte, and ``errors="replace"`` is belt-and-braces.
    The gzip path hands its handle to a ``TextIOWrapper`` (whose ``close``
    closes the wrapped stream); if the wrapper cannot be built, the
    underlying handle is closed before the error propagates.
    """
    path = Path(path)
    if path.suffix == ".gz":
        raw = gzip.open(path, "rb")
        try:
            return io.TextIOWrapper(raw, encoding="latin-1", errors="replace")
        except BaseException:
            raw.close()
            raise
    return open(path, "r", encoding="latin-1", errors="replace")


def read_matrix_market(path: str | Path) -> BipartiteGraph:
    """Read a ``.mtx`` (optionally ``.mtx.gz``) file as a BGPC instance.

    Rows become nets and columns become the vertices to color, matching the
    paper's experimental setup.  Symmetric storage is expanded to the full
    pattern.

    Raises
    ------
    MatrixMarketError
        On a malformed header, unsupported qualifiers, out-of-range indices
        or a truncated entry section.
    """
    with _open_text(path) as fh:
        header = fh.readline()
        if not header.startswith("%%MatrixMarket"):
            raise MatrixMarketError(f"missing %%MatrixMarket banner in {path}")
        parts = header.strip().split()
        if len(parts) != 5:
            raise MatrixMarketError(f"malformed banner: {header.strip()!r}")
        _, obj, fmt, field, symmetry = (p.lower() for p in parts)
        if obj != "matrix" or fmt != "coordinate":
            raise MatrixMarketError(
                f"only 'matrix coordinate' is supported, got '{obj} {fmt}'"
            )
        if field not in _VALID_FIELDS:
            raise MatrixMarketError(f"unsupported field {field!r}")
        if symmetry not in _VALID_SYMMETRIES:
            raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

        line = fh.readline()
        while line and (line.startswith("%") or not line.strip()):
            line = fh.readline()
        if not line:
            raise MatrixMarketError("missing size line")
        try:
            nrows, ncols, nnz = (int(tok) for tok in line.split())
        except ValueError as exc:
            raise MatrixMarketError(f"bad size line: {line.strip()!r}") from exc
        if nrows < 0 or ncols < 0 or nnz < 0:
            raise MatrixMarketError("negative sizes in size line")

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        count = 0
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            if count >= nnz:
                raise MatrixMarketError("more entries than declared in size line")
            toks = stripped.split()
            try:
                r = int(toks[0]) - 1
                c = int(toks[1]) - 1
            except (IndexError, ValueError) as exc:
                raise MatrixMarketError(f"bad entry line: {stripped!r}") from exc
            if not (0 <= r < nrows and 0 <= c < ncols):
                raise MatrixMarketError(
                    f"entry ({r + 1}, {c + 1}) outside {nrows}x{ncols}"
                )
            rows[count] = r
            cols[count] = c
            count += 1
        if count != nnz:
            raise MatrixMarketError(f"expected {nnz} entries, found {count}")

    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = rows != cols
        mirror_rows, mirror_cols = cols[off_diag], rows[off_diag]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])

    net_to_vtxs = csr_from_edges(rows, cols, nrows, ncols)
    return BipartiteGraph.from_net_to_vtxs(net_to_vtxs)


def write_matrix_market(bg: BipartiteGraph, path: str | Path, comment: str = "") -> None:
    """Write a BGPC instance as a general-pattern coordinate ``.mtx`` file."""
    path = Path(path)
    n2v = bg.net_to_vtxs
    with open(path, "w", encoding="ascii") as fh:
        fh.write("%%MatrixMarket matrix coordinate pattern general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"% {line}\n")
        fh.write(f"{bg.num_nets} {bg.num_vertices} {bg.num_edges}\n")
        for v, members in n2v.iter_rows():
            for u in members:
                fh.write(f"{v + 1} {u + 1}\n")
