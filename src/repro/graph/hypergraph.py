"""Hypergraph view of the BGPC problem.

Section III of the paper frames BGPC as hypergraph coloring: "the elements
of V_A correspond to the *pins* to be colored, and the ones in V_B
correspond to the *nets*".  Downstream users coming from the hypergraph
partitioning world (PaToH/hMETIS-style inputs) think in that vocabulary, so
this module provides a thin facade over :class:`BipartiteGraph` with
pin/net naming plus a reader for the PaToH-style plain-text format::

    % comment lines allowed
    <num_nets> <num_pins> <num_pin_entries>
    <pin> <pin> ...          # one line per net (0- or 1-indexed)

Coloring a hypergraph = BGPC on the underlying bipartite structure; all
algorithms, policies and orderings apply unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphBuildError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import csr_from_edges

__all__ = ["Hypergraph", "read_patoh"]


class Hypergraph:
    """Pins-and-nets facade over a :class:`BipartiteGraph`.

    Parameters
    ----------
    bipartite:
        The underlying two-orientation structure (pins = ``V_A`` vertices,
        nets = ``V_B``).
    """

    __slots__ = ("bipartite",)

    def __init__(self, bipartite: BipartiteGraph):
        self.bipartite = bipartite

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_nets(
        cls,
        nets: Iterable[Sequence[int]],
        num_pins: int | None = None,
    ) -> "Hypergraph":
        """Build from an iterable of pin lists, one per net."""
        rows_list, cols_list = [], []
        for net_id, pins in enumerate(nets):
            arr = np.asarray(list(pins), dtype=np.int64)
            if arr.size and arr.min() < 0:
                raise GraphBuildError(f"net {net_id} has a negative pin id")
            rows_list.append(np.full(arr.size, net_id, dtype=np.int64))
            cols_list.append(arr)
        num_nets = len(rows_list)
        rows = (
            np.concatenate(rows_list) if rows_list else np.empty(0, dtype=np.int64)
        )
        cols = (
            np.concatenate(cols_list) if cols_list else np.empty(0, dtype=np.int64)
        )
        if num_pins is None:
            num_pins = int(cols.max()) + 1 if cols.size else 0
        net_to_vtxs = csr_from_edges(rows, cols, num_nets, num_pins)
        return cls(BipartiteGraph.from_net_to_vtxs(net_to_vtxs))

    # -- hypergraph vocabulary ------------------------------------------------

    @property
    def num_pins(self) -> int:
        return self.bipartite.num_vertices

    @property
    def num_nets(self) -> int:
        return self.bipartite.num_nets

    @property
    def num_pin_entries(self) -> int:
        """Total pin occurrences (the file-format "pins" count)."""
        return self.bipartite.num_edges

    def pins(self, net: int) -> np.ndarray:
        """Pins of one net."""
        return self.bipartite.vtxs(net)

    def nets_of(self, pin: int) -> np.ndarray:
        """Nets containing one pin."""
        return self.bipartite.nets(pin)

    def max_net_size(self) -> int:
        """``max |pins(n)|`` — the coloring lower bound."""
        return self.bipartite.color_lower_bound()

    # -- coloring ---------------------------------------------------------------

    def color(self, algorithm: str = "N1-N2", threads: int = 16, **kwargs):
        """Color the pins so no net holds two same-colored pins.

        Thin wrapper over :func:`repro.core.bgpc.color_bgpc`; accepts the
        same keyword arguments (``policy``, ``order``, ``cost``...).
        """
        from repro.core.bgpc import color_bgpc

        return color_bgpc(
            self.bipartite, algorithm=algorithm, threads=threads, **kwargs
        )

    def validate(self, colors: np.ndarray) -> None:
        """Raise unless ``colors`` is a valid pin coloring."""
        from repro.core.validate import validate_bgpc

        validate_bgpc(self.bipartite, colors)

    def __repr__(self) -> str:
        return (
            f"Hypergraph(pins={self.num_pins}, nets={self.num_nets}, "
            f"pin_entries={self.num_pin_entries})"
        )


def read_patoh(path: str | Path, index_base: int | None = None) -> Hypergraph:
    """Read a PaToH-style hypergraph file.

    Parameters
    ----------
    path:
        Text file: a header line ``<nets> <pins> <entries>`` (after optional
        ``%`` comments) followed by one line of pin ids per net.
    index_base:
        0 or 1; autodetected when ``None`` (1-based if no 0 appears and some
        pin equals ``num_pins``).
    """
    path = Path(path)
    nets: list[list[int]] = []
    header: tuple[int, int, int] | None = None
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("%"):
                continue
            tokens = [int(t) for t in stripped.split()]
            if header is None:
                if len(tokens) < 3:
                    raise GraphBuildError(
                        f"hypergraph header needs 3 integers, got {stripped!r}"
                    )
                header = (tokens[0], tokens[1], tokens[2])
                continue
            nets.append(tokens)
    if header is None:
        raise GraphBuildError(f"{path} has no header line")
    num_nets, num_pins, num_entries = header
    if len(nets) != num_nets:
        raise GraphBuildError(
            f"expected {num_nets} net lines, found {len(nets)}"
        )
    total = sum(len(n) for n in nets)
    if total != num_entries:
        raise GraphBuildError(
            f"expected {num_entries} pin entries, found {total}"
        )
    flat = [p for net in nets for p in net]
    if index_base is None:
        has_zero = any(p == 0 for p in flat)
        hits_npins = any(p == num_pins for p in flat)
        index_base = 1 if (not has_zero and hits_npins) else 0
    if index_base not in (0, 1):
        raise GraphBuildError("index_base must be 0 or 1")
    shifted = [[p - index_base for p in net] for net in nets]
    for net_id, net in enumerate(shifted):
        for p in net:
            if not 0 <= p < num_pins:
                raise GraphBuildError(
                    f"pin {p + index_base} of net {net_id} outside "
                    f"[{index_base}, {num_pins - 1 + index_base}]"
                )
    return Hypergraph.from_nets(shifted, num_pins=num_pins)
