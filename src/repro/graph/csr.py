"""Compressed-sparse-row adjacency container.

The CSR layout is the cache-friendly representation the paper's C++ codebase
(ColPack) uses: a ``ptr`` array of ``n + 1`` row offsets and an ``idx`` array
holding the concatenated adjacency lists.  All coloring kernels in
:mod:`repro.core` traverse graphs exclusively through this structure, so it
is deliberately small, immutable after construction and numpy-backed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphError

__all__ = ["CSR"]


class CSR:
    """An immutable CSR adjacency structure.

    Parameters
    ----------
    ptr:
        ``int64`` array of length ``n + 1``; ``ptr[i]:ptr[i+1]`` delimits the
        adjacency list of row ``i``.  Must be non-decreasing with
        ``ptr[0] == 0``.
    idx:
        ``int64`` array of column indices, length ``ptr[-1]``.
    ncols:
        Number of columns the indices may refer to.  Validated against
        ``idx`` on construction.

    Notes
    -----
    The arrays are stored as C-contiguous ``int64`` and marked read-only so a
    CSR can be shared freely between algorithm variants without defensive
    copies (see the "views, not copies" guidance for numerical Python).
    """

    __slots__ = ("ptr", "idx", "nrows", "ncols")

    def __init__(self, ptr: np.ndarray, idx: np.ndarray, ncols: int):
        ptr = np.ascontiguousarray(ptr, dtype=np.int64)
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        if ptr.ndim != 1 or idx.ndim != 1:
            raise GraphError("ptr and idx must be 1-D arrays")
        if ptr.size == 0:
            raise GraphError("ptr must have length >= 1")
        if ptr[0] != 0:
            raise GraphError(f"ptr[0] must be 0, got {ptr[0]}")
        if np.any(np.diff(ptr) < 0):
            raise GraphError("ptr must be non-decreasing")
        if ptr[-1] != idx.size:
            raise GraphError(
                f"ptr[-1] ({ptr[-1]}) must equal len(idx) ({idx.size})"
            )
        if ncols < 0:
            raise GraphError("ncols must be non-negative")
        if idx.size and (idx.min() < 0 or idx.max() >= ncols):
            raise GraphError(
                f"column indices out of range [0, {ncols}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        ptr.flags.writeable = False
        idx.flags.writeable = False
        self.ptr = ptr
        self.idx = idx
        self.nrows = int(ptr.size - 1)
        self.ncols = int(ncols)

    # -- basic accessors -------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored entries (sum of adjacency-list lengths)."""
        return int(self.ptr[-1])

    def row(self, i: int) -> np.ndarray:
        """Adjacency list of row ``i`` as a (read-only) array view."""
        return self.idx[self.ptr[i] : self.ptr[i + 1]]

    def degree(self, i: int) -> int:
        """Length of row ``i``'s adjacency list."""
        return int(self.ptr[i + 1] - self.ptr[i])

    def degrees(self) -> np.ndarray:
        """All row degrees as a fresh ``int64`` array."""
        return np.diff(self.ptr)

    def max_degree(self) -> int:
        """Largest row degree; 0 for an empty structure."""
        if self.nrows == 0:
            return 0
        return int(self.degrees().max(initial=0))

    def iter_rows(self) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(row_id, adjacency_view)`` pairs in row order."""
        ptr, idx = self.ptr, self.idx
        for i in range(self.nrows):
            yield i, idx[ptr[i] : ptr[i + 1]]

    # -- structural predicates -------------------------------------------

    def has_sorted_rows(self) -> bool:
        """True when every adjacency list is strictly increasing."""
        for _, row in self.iter_rows():
            if row.size > 1 and np.any(np.diff(row) <= 0):
                return False
        return True

    def has_duplicates(self) -> bool:
        """True when some adjacency list contains a repeated column."""
        for _, row in self.iter_rows():
            if row.size != np.unique(row).size:
                return True
        return False

    # -- transforms -------------------------------------------------------

    def sorted(self) -> "CSR":
        """Return an equivalent CSR with each adjacency list sorted."""
        idx = self.idx.copy()
        for i in range(self.nrows):
            lo, hi = self.ptr[i], self.ptr[i + 1]
            idx[lo:hi] = np.sort(idx[lo:hi])
        return CSR(self.ptr.copy(), idx, self.ncols)

    def transpose(self) -> "CSR":
        """Return the transposed structure (column-wise adjacency).

        Runs the classical counting-sort transpose in O(nrows + ncols + nnz)
        using vectorized numpy primitives; the resulting rows are sorted by
        construction when this CSR's rows are traversed in order.
        """
        counts = np.bincount(self.idx, minlength=self.ncols)
        tptr = np.zeros(self.ncols + 1, dtype=np.int64)
        np.cumsum(counts, out=tptr[1:])
        tidx = np.empty(self.nnz, dtype=np.int64)
        # Row id for each stored entry, then a stable argsort by column gives
        # the transpose's concatenated adjacency lists.
        row_of_entry = np.repeat(np.arange(self.nrows, dtype=np.int64), self.degrees())
        order = np.argsort(self.idx, kind="stable")
        tidx[:] = row_of_entry[order]
        return CSR(tptr, tidx, self.nrows)

    def permute_rows(self, perm: np.ndarray) -> "CSR":
        """Return a CSR whose row ``k`` is this CSR's row ``perm[k]``.

        ``perm`` must be a permutation of ``range(nrows)``.  Column indices
        are left untouched (use :meth:`relabel_cols` for that).
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.nrows,) or np.any(np.sort(perm) != np.arange(self.nrows)):
            raise GraphError("perm must be a permutation of range(nrows)")
        degs = self.degrees()[perm]
        nptr = np.zeros(self.nrows + 1, dtype=np.int64)
        np.cumsum(degs, out=nptr[1:])
        nidx = np.empty(self.nnz, dtype=np.int64)
        for new_i, old_i in enumerate(perm):
            nidx[nptr[new_i] : nptr[new_i + 1]] = self.row(old_i)
        return CSR(nptr, nidx, self.ncols)

    def relabel_cols(self, mapping: np.ndarray) -> "CSR":
        """Return a CSR with every column index ``j`` replaced by ``mapping[j]``."""
        mapping = np.asarray(mapping, dtype=np.int64)
        if mapping.shape != (self.ncols,):
            raise GraphError("mapping must have one entry per column")
        return CSR(self.ptr.copy(), mapping[self.idx], self.ncols)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSR):
            return NotImplemented
        return (
            self.nrows == other.nrows
            and self.ncols == other.ncols
            and np.array_equal(self.ptr, other.ptr)
            and np.array_equal(self.idx, other.idx)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"CSR(nrows={self.nrows}, ncols={self.ncols}, nnz={self.nnz})"
