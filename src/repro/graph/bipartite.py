"""Bipartite graph container for the BGPC problem.

Following the paper's hypergraph analogy (Section III), the ``V_A`` side
holds the *vertices* to be colored (matrix columns in the UFL experiments)
and the ``V_B`` side holds the *nets* (matrix rows).  BGPC colors ``V_A`` so
that any two vertices sharing a net receive distinct colors.

Both CSR orientations are materialized because the kernels need them:

* ``vtx_to_nets`` — ``nets(u)`` for a vertex ``u`` (vertex-based kernels);
* ``net_to_vtxs`` — ``vtxs(v)`` for a net ``v`` (net-based kernels, Algs 6–8).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSR

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """A bipartite graph stored as a pair of mutually transposed CSRs.

    Parameters
    ----------
    vtx_to_nets:
        CSR with one row per ``V_A`` vertex listing its adjacent nets.
    net_to_vtxs:
        CSR with one row per ``V_B`` net listing its adjacent vertices.
        Must be the exact transpose of ``vtx_to_nets``; use
        :meth:`from_vtx_to_nets` to derive it automatically.
    """

    __slots__ = ("vtx_to_nets", "net_to_vtxs", "__weakref__")

    def __init__(self, vtx_to_nets: CSR, net_to_vtxs: CSR):
        if vtx_to_nets.ncols != net_to_vtxs.nrows:
            raise GraphError(
                "vtx_to_nets.ncols must equal net_to_vtxs.nrows "
                f"({vtx_to_nets.ncols} != {net_to_vtxs.nrows})"
            )
        if net_to_vtxs.ncols != vtx_to_nets.nrows:
            raise GraphError(
                "net_to_vtxs.ncols must equal vtx_to_nets.nrows "
                f"({net_to_vtxs.ncols} != {vtx_to_nets.nrows})"
            )
        if vtx_to_nets.nnz != net_to_vtxs.nnz:
            raise GraphError("the two orientations disagree on edge count")
        self.vtx_to_nets = vtx_to_nets
        self.net_to_vtxs = net_to_vtxs

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_vtx_to_nets(cls, vtx_to_nets: CSR) -> "BipartiteGraph":
        """Build both orientations from the vertex→net CSR."""
        return cls(vtx_to_nets, vtx_to_nets.transpose())

    @classmethod
    def from_net_to_vtxs(cls, net_to_vtxs: CSR) -> "BipartiteGraph":
        """Build both orientations from the net→vertex CSR."""
        return cls(net_to_vtxs.transpose(), net_to_vtxs)

    # -- sizes ---------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """|V_A|: the number of vertices to color (matrix columns)."""
        return self.vtx_to_nets.nrows

    @property
    def num_nets(self) -> int:
        """|V_B|: the number of nets (matrix rows)."""
        return self.net_to_vtxs.nrows

    @property
    def num_edges(self) -> int:
        """Number of bipartite edges (matrix nonzeros)."""
        return self.vtx_to_nets.nnz

    # -- adjacency -------------------------------------------------------------

    def nets(self, u: int) -> np.ndarray:
        """Nets adjacent to vertex ``u`` (the paper's ``nets(u)``)."""
        return self.vtx_to_nets.row(u)

    def vtxs(self, v: int) -> np.ndarray:
        """Vertices adjacent to net ``v`` (the paper's ``vtxs(v)``)."""
        return self.net_to_vtxs.row(v)

    # -- problem bounds ---------------------------------------------------------

    def color_lower_bound(self) -> int:
        """``L = max_v |vtxs(v)|`` — the trivial BGPC color lower bound.

        Every pair of vertices under one net must differ, so at least
        ``|vtxs(v)|`` colors are needed for the densest net (paper §II).
        """
        return self.net_to_vtxs.max_degree()

    def neighborhood_work(self) -> int:
        """``Σ_v |vtxs(v)|²`` — first-iteration cost of vertex-based kernels.

        This is the quantity the paper's complexity discussion (Section III)
        identifies as the vertex-based bottleneck; the net-based kernels pay
        only ``Θ(|V| + |E|)``.
        """
        degs = self.net_to_vtxs.degrees()
        return int(np.sum(degs.astype(np.int64) ** 2))

    def is_structurally_symmetric(self) -> bool:
        """True when the underlying matrix pattern is square and symmetric.

        Only structurally symmetric instances are used for the D2GC
        experiments (paper Table II, last column).
        """
        if self.num_vertices != self.num_nets:
            return False
        a, b = self.vtx_to_nets.sorted(), self.net_to_vtxs.sorted()
        return np.array_equal(a.ptr, b.ptr) and np.array_equal(a.idx, b.idx)

    # -- transforms ------------------------------------------------------------

    def permute_vertices(self, perm: np.ndarray) -> "BipartiteGraph":
        """Reorder the colored side by ``perm`` (new id k == old id perm[k]).

        Used to apply ColPack-style orderings (e.g. smallest-last) before
        coloring: the greedy algorithms process vertices in natural order of
        the *permuted* graph.
        """
        perm = np.asarray(perm, dtype=np.int64)
        inverse = np.empty_like(perm)
        inverse[perm] = np.arange(perm.size, dtype=np.int64)
        new_v2n = self.vtx_to_nets.permute_rows(perm)
        new_n2v = self.net_to_vtxs.relabel_cols(inverse)
        return BipartiteGraph(new_v2n, new_n2v)

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(|V_A|={self.num_vertices}, "
            f"|V_B|={self.num_nets}, |E|={self.num_edges})"
        )
