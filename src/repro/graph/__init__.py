"""Graph containers and utilities.

This subpackage provides the CSR-based graph substrate the coloring
algorithms run on:

* :class:`repro.graph.csr.CSR` — a compressed-sparse-row adjacency list;
* :class:`repro.graph.bipartite.BipartiteGraph` — both orientations of a
  bipartite graph (vertex→nets and net→vertices), the BGPC input;
* :class:`repro.graph.unipartite.Graph` — a symmetric unipartite graph, the
  D2GC input;
* builders (:mod:`repro.graph.build`), pattern algebra
  (:mod:`repro.graph.ops`), edge deltas for evolving graphs
  (:mod:`repro.graph.delta`), MatrixMarket I/O (:mod:`repro.graph.mmio`)
  and dataset statistics (:mod:`repro.graph.stats`).
"""

from repro.graph.csr import CSR
from repro.graph.bipartite import BipartiteGraph
from repro.graph.unipartite import Graph
from repro.graph.build import (
    bipartite_from_edges,
    bipartite_from_scipy,
    bipartite_from_dense,
    graph_from_edges,
    graph_from_scipy,
    graph_from_dense,
)
from repro.graph.delta import GraphDelta, apply_delta, delta_frontier
from repro.graph.mmio import read_matrix_market, write_matrix_market
from repro.graph.stats import DatasetProperties, dataset_properties

__all__ = [
    "CSR",
    "BipartiteGraph",
    "Graph",
    "GraphDelta",
    "apply_delta",
    "delta_frontier",
    "bipartite_from_edges",
    "bipartite_from_scipy",
    "bipartite_from_dense",
    "graph_from_edges",
    "graph_from_scipy",
    "graph_from_dense",
    "read_matrix_market",
    "write_matrix_market",
    "DatasetProperties",
    "dataset_properties",
]
