"""Vertex partitioners for the distributed/sharded BGPC framework.

A partition assigns every ``V_A`` vertex an owning rank; its quality decides
how many vertices are *boundary* (share a net with another rank's vertex)
and therefore how much speculative cross-rank work and communication
:func:`repro.dist.distributed_bgpc` and ``backend="sharded"`` pay.  Four
strategies:

* :func:`partition_contiguous` — equal contiguous blocks of vertex ids
  (the naive default; locality only if the labeling has it);
* :func:`partition_random` — seeded uniform assignment (the anti-pattern:
  maximizes the boundary, useful as a worst case);
* :func:`partition_bfs` — BFS-grown parts over the vertex adjacency
  (topological locality regardless of labeling; small boundaries on
  meshes);
* :func:`partition_greedy` — BFS seed plus edge-cut-aware greedy
  refinement (moves a vertex to the rank owning most of its neighbors
  when balance allows).

Backends and the CLI select partitioners by name through the registry:
:data:`PARTITIONERS` maps a name to a uniform ``fn(bg, ranks, seed=0)``
callable; :func:`get_partitioner` resolves with a helpful error and
:func:`register_partitioner` admits new strategies.  All partitioners are
deterministic for a fixed ``(graph, ranks, seed)``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = [
    "PARTITIONERS",
    "get_partitioner",
    "partition_bfs",
    "partition_contiguous",
    "partition_greedy",
    "partition_random",
    "partitioner_names",
    "register_partitioner",
]


def partition_contiguous(n: int, ranks: int) -> np.ndarray:
    """Owner array splitting ``n`` vertices into ``ranks`` contiguous blocks.

    Block sizes differ by at most one; the owner array is non-decreasing.
    """
    sizes = np.full(ranks, n // ranks, dtype=np.int64)
    sizes[: n % ranks] += 1
    return np.repeat(np.arange(ranks, dtype=np.int64), sizes)


def partition_random(n: int, ranks: int, seed: int = 0) -> np.ndarray:
    """Seeded uniform-random owner array (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, ranks, size=n, dtype=np.int64)


def partition_bfs(
    bg: BipartiteGraph, ranks: int, stats: dict | None = None
) -> np.ndarray:
    """Grow ``ranks`` balanced parts by BFS over the vertex adjacency.

    Each part is grown breadth-first (through shared nets) from the
    lowest-numbered unassigned vertex until it holds ``ceil(n / ranks)``
    vertices, so parts are connected chunks of the *topology* rather than
    of the label space.  Sizes never exceed ``ceil(n / ranks) + 1``.

    Vertices are marked on *enqueue* (per part), so the frontier deque
    holds each vertex at most once and peaks at ``O(n)`` rather than the
    ``O(E)`` duplicate growth a dense net would otherwise cause.  Pass a
    ``stats`` dict to record the observed peak as ``stats["max_queue"]``.
    """
    n = bg.num_vertices
    target = -(-n // ranks)
    part = np.full(n, -1, dtype=np.int64)
    # Stamp of the last part that enqueued each vertex: enqueue w for part
    # r at most once, without blocking a later part from re-visiting it.
    enqueued = np.full(n, -1, dtype=np.int64)
    max_queue = 0
    next_seed = 0
    for r in range(ranks - 1):
        size = 0
        queue: deque[int] = deque()
        while size < target:
            if not queue:
                while next_seed < n and part[next_seed] != -1:
                    next_seed += 1
                if next_seed == n:
                    break
                queue.append(next_seed)
                enqueued[next_seed] = r
            u = queue.popleft()
            if part[u] != -1:
                continue
            part[u] = r
            size += 1
            for net in bg.nets(u):
                for w in bg.vtxs(net):
                    if part[w] == -1 and enqueued[w] != r:
                        enqueued[w] = r
                        queue.append(int(w))
            if len(queue) > max_queue:
                max_queue = len(queue)
    part[part == -1] = ranks - 1
    if stats is not None:
        stats["max_queue"] = max_queue
    return part


def partition_greedy(
    bg: BipartiteGraph, ranks: int, seed: int = 0, passes: int = 2
) -> np.ndarray:
    """BFS seed plus edge-cut-aware greedy refinement.

    Starts from :func:`partition_bfs`, then sweeps the vertices in
    ascending id order (``passes`` times): a vertex moves to the rank that
    owns the most of its net-neighbors when that strictly reduces its cut
    edges and the destination stays within the BFS balance cap
    ``ceil(n / ranks) + 1``.  Ties break toward the smaller rank id; the
    result is deterministic (``seed`` is accepted for registry uniformity
    and ignored).
    """
    del seed  # deterministic sweep; kept for the uniform registry signature
    n = bg.num_vertices
    part = partition_bfs(bg, ranks)
    cap = -(-n // ranks) + 1
    sizes = np.bincount(part, minlength=ranks).astype(np.int64)
    for _ in range(passes):
        moved = 0
        for u in range(n):
            counts: dict[int, int] = {}
            for net in bg.nets(u):
                for w in bg.vtxs(net):
                    if w != u:
                        owner = int(part[w])
                        counts[owner] = counts.get(owner, 0) + 1
            if not counts:
                continue
            cur = int(part[u])
            best, best_count = cur, counts.get(cur, 0)
            for owner in sorted(counts):
                if counts[owner] > best_count and sizes[owner] + 1 <= cap:
                    best, best_count = owner, counts[owner]
            if best != cur:
                part[u] = best
                sizes[cur] -= 1
                sizes[best] += 1
                moved += 1
        if moved == 0:
            break
    return part


# --------------------------------------------------------------------------
# Registry: name -> uniform ``fn(bg, ranks, seed=0) -> owner array``.


def _by_contiguous(bg: BipartiteGraph, ranks: int, seed: int = 0) -> np.ndarray:
    del seed
    return partition_contiguous(bg.num_vertices, ranks)


def _by_random(bg: BipartiteGraph, ranks: int, seed: int = 0) -> np.ndarray:
    return partition_random(bg.num_vertices, ranks, seed=seed)


def _by_bfs(bg: BipartiteGraph, ranks: int, seed: int = 0) -> np.ndarray:
    del seed
    return partition_bfs(bg, ranks)


Partitioner = Callable[..., np.ndarray]

#: Registered partitioners, keyed by the name the CLI / backend accept.
PARTITIONERS: dict[str, Partitioner] = {
    "contiguous": _by_contiguous,
    "random": _by_random,
    "bfs": _by_bfs,
    "greedy": partition_greedy,
}


def register_partitioner(name: str, fn: Partitioner) -> None:
    """Admit a new named partitioner with the uniform call signature."""
    PARTITIONERS[name] = fn


def get_partitioner(name: str) -> Partitioner:
    """Resolve a partitioner by name, or raise listing the known names."""
    try:
        return PARTITIONERS[name]
    except KeyError:
        known = ", ".join(sorted(PARTITIONERS))
        raise ValueError(f"unknown partitioner {name!r} (known: {known})") from None


def partitioner_names() -> tuple[str, ...]:
    """The registered partitioner names, sorted."""
    return tuple(sorted(PARTITIONERS))
