"""Vertex partitioners for the distributed BGPC framework.

A partition assigns every ``V_A`` vertex an owning rank; its quality decides
how many vertices are *boundary* (share a net with another rank's vertex)
and therefore how much speculative cross-rank work and communication
:func:`repro.dist.distributed_bgpc` pays.  Three classic strategies:

* :func:`partition_contiguous` — equal contiguous blocks of vertex ids
  (the naive default; locality only if the labeling has it);
* :func:`partition_random` — seeded uniform assignment (the anti-pattern:
  maximizes the boundary, useful as a worst case);
* :func:`partition_bfs` — BFS-grown parts over the vertex adjacency
  (topological locality regardless of labeling; small boundaries on
  meshes).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.bipartite import BipartiteGraph

__all__ = ["partition_bfs", "partition_contiguous", "partition_random"]


def partition_contiguous(n: int, ranks: int) -> np.ndarray:
    """Owner array splitting ``n`` vertices into ``ranks`` contiguous blocks.

    Block sizes differ by at most one; the owner array is non-decreasing.
    """
    sizes = np.full(ranks, n // ranks, dtype=np.int64)
    sizes[: n % ranks] += 1
    return np.repeat(np.arange(ranks, dtype=np.int64), sizes)


def partition_random(n: int, ranks: int, seed: int = 0) -> np.ndarray:
    """Seeded uniform-random owner array (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, ranks, size=n, dtype=np.int64)


def partition_bfs(bg: BipartiteGraph, ranks: int) -> np.ndarray:
    """Grow ``ranks`` balanced parts by BFS over the vertex adjacency.

    Each part is grown breadth-first (through shared nets) from the
    lowest-numbered unassigned vertex until it holds ``ceil(n / ranks)``
    vertices, so parts are connected chunks of the *topology* rather than
    of the label space.  Sizes never exceed ``ceil(n / ranks) + 1``.
    """
    n = bg.num_vertices
    target = -(-n // ranks)
    part = np.full(n, -1, dtype=np.int64)
    next_seed = 0
    for r in range(ranks - 1):
        size = 0
        queue: deque[int] = deque()
        while size < target:
            if not queue:
                while next_seed < n and part[next_seed] != -1:
                    next_seed += 1
                if next_seed == n:
                    break
                queue.append(next_seed)
            u = queue.popleft()
            if part[u] != -1:
                continue
            part[u] = r
            size += 1
            for net in bg.nets(u):
                for w in bg.vtxs(net):
                    if part[w] == -1:
                        queue.append(int(w))
    part[part == -1] = ranks - 1
    return part
