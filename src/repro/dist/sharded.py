"""``backend="sharded"``: really-executing partitioned coloring.

Where :func:`repro.dist.distributed_bgpc` *models* a cluster (its
communication is charged to :class:`~repro.dist.mpi.ClusterModel` and every
"rank" runs in the parent process), this backend executes the same
interior/boundary superstep protocol on a persistent pool of worker
processes — the shared-memory substrate PR 4 built for ``backend="process"``
(:class:`~repro.core.backends.ProcessPhaseEngine` +
:mod:`repro.core.procworker`):

1. **Partition.**  ``V_A`` is split across ``threads`` shards by a named
   partitioner from the :data:`repro.dist.partition.PARTITIONERS` registry
   (``partitioner="bfs"`` by default).  The partition is computed on the
   adapter's generic constraint-group view
   (:meth:`~repro.core.driver.ProblemAdapter.fastpath_groups`), so BGPC and
   D2GC shard through the same code.
2. **Interior.**  Vertices whose constraint groups stay within one shard
   are colored per-shard with zero cross-talk: one
   :func:`~repro.core.procworker.run_chunk` slice per shard, writing
   straight into the shared color segment.  Interior vertices of different
   shards never share a group (a shared group makes both *boundary*), so
   the phase is deterministic at any shard count.
3. **Boundary supersteps.**  The remaining vertices are resolved in
   batched bulk-synchronous rounds: each shard colors its slice of the
   batch against a private snapshot of the committed palette
   (:func:`~repro.core.procworker.run_frontier`) and ships its picks back
   as packed ``(ids, colors)`` int64 arrays — the *actual* frontier
   exchange, counted into ``shard.comm_words`` / ``shard.comm_messages``
   instead of a model charge.  The parent commits the exchange, detects
   cross-shard conflicts (smaller vertex id wins, exactly the oracle's
   rule) and re-queues the losers.

Given the same partition and batch size the colors, superstep count and
conflict count are **equal** to :func:`repro.dist.distributed_bgpc` — the
simulator stays the reference oracle and a parity test enforces it.  With
one shard every vertex is interior and the run is byte-identical to
``backend="process"`` at one worker.

Determinism contract: partitioners are deterministic per
``(graph, ranks, seed)``; interior shards touch disjoint color entries;
supersteps commit only at barriers.  Unlike ``threaded``/``process``,
results are therefore deterministic at *any* shard count, which is why
multi-shard cases can sit in the pinned regress suite.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.errors import ColoringError
from repro.types import ColoringResult, IterationRecord, UNCOLORED

__all__ = ["ShardedBackend"]


def _detect_losers(bg, batch: np.ndarray, colors: np.ndarray, work) -> list[int]:
    """Batch vertices losing a same-color tie to a smaller-id neighbor.

    Mirrors the oracle's ``_conflicted`` exactly (same early exits, same
    order) while also counting the adjacency entries examined into
    ``work.conflict_checks``.
    """
    losers = []
    checks = 0
    for u in batch.tolist():
        cu = colors[u]
        lost = False
        for net in bg.nets(u):
            for w in bg.vtxs(net):
                checks += 1
                if w < u and colors[w] == cu:
                    lost = True
                    break
            if lost:
                break
        if lost:
            losers.append(u)
    work.add("conflict_checks", checks)
    return losers


class ShardedBackend:
    """Partitioned superstep coloring on a worker-process pool.

    ``threads`` is the shard count (one worker process per shard).  Extra
    options beyond the common backend signature:

    ``partitioner``
        Name from :data:`repro.dist.partition.PARTITIONERS`
        (default ``"bfs"``).
    ``batch``
        Boundary vertices colored per superstep (default 100, >= 1).
    ``seed``
        Seed forwarded to the partitioner (default 0).

    Only the first-fit policy is supported, and the backend cannot resume
    from ``initial_colors``/``initial_work`` (its interior/boundary split
    assumes a fresh palette).  The schedule's kernel plan is ignored — the
    superstep protocol *is* the schedule — but the spec name is kept for
    reporting.  ``REPRO_PROCESS_FAULT`` fault injection applies to the
    pool workers just as for ``backend="process"``.
    """

    name = "sharded"

    def run(
        self,
        adapter,
        schedule,
        *,
        name,
        threads,
        cost=None,
        policy=None,
        max_iterations=200,
        fastpath_mode="exact",  # accepted for signature uniformity; unused
        tracer=None,
        initial_colors=None,
        initial_work=None,
        partitioner="bfs",
        batch=100,
        seed=0,
    ) -> ColoringResult:
        from concurrent.futures.process import BrokenProcessPool

        from repro.core import procworker
        from repro.core.backends import ProcessPhaseEngine
        from repro.core.policies import FirstFit
        from repro.dist.partition import get_partitioner
        from repro.dist.superstep import boundary_mask
        from repro.graph.bipartite import BipartiteGraph
        from repro.obs.tracer import ensure_tracer
        from repro.obs.work import WorkCounters

        if policy is not None and not isinstance(policy, FirstFit):
            raise ColoringError(
                "backend='sharded' supports only the first-fit policy (U); "
                f"got {type(policy).__name__} — run B1/B2 on the simulator"
            )
        if initial_colors is not None or initial_work is not None:
            raise ColoringError(
                "backend='sharded' cannot resume from a partial coloring "
                "(its interior/boundary split assumes a fresh palette); "
                "run incremental recoloring on sim, threaded or process"
            )
        if not hasattr(adapter, "process_spec"):
            raise ColoringError(
                "backend='sharded' needs an adapter with process_spec() "
                f"(shared-memory layout); {type(adapter).__name__} has none"
            )
        if threads < 1:
            raise ColoringError(
                f"sharded backend needs threads (shards) >= 1, got {threads}"
            )
        if batch < 1:
            raise ColoringError(f"batch must be >= 1, got {batch}")
        try:
            partition_fn = get_partitioner(partitioner)
        except ValueError as exc:
            raise ColoringError(str(exc)) from None
        try:
            fault = procworker.parse_fault(os.environ.get("REPRO_PROCESS_FAULT"))
        except ValueError as exc:
            raise ColoringError(str(exc)) from None
        tracer = ensure_tracer(tracer)

        # The generic constraint-group view: nets x vertices for BGPC,
        # closed neighborhoods x vertices for D2GC.  Both partitioning and
        # boundary detection run on it, so any adapter with fastpath_groups
        # + process_spec shards identically.
        gview = BipartiteGraph.from_net_to_vtxs(adapter.fastpath_groups())
        part = partition_fn(gview, threads, seed=seed)
        is_boundary = boundary_mask(gview, part)
        n = adapter.n_targets
        owners_of = [
            np.nonzero((part == r) & ~is_boundary)[0].astype(np.int64)
            for r in range(threads)
        ]

        run_work = WorkCounters()
        records: list[IterationRecord] = []
        comm_words = comm_messages = conflicts_total = supersteps = 0
        palette = 0
        run_start = time.perf_counter()

        engine = ProcessPhaseEngine(
            adapter, threads, cost=cost, tracer=tracer, policy=policy, fault=fault
        )
        try:
            with tracer.span(
                "run",
                algorithm=name,
                backend=self.name,
                threads=threads,
                partitioner=partitioner,
            ) as run_span:
                # ---- interior phase: one slice per shard, no cross-talk --
                interior_work = WorkCounters()
                with tracer.span(
                    "phase", iteration=0, phase="color", kind="interior"
                ) as phase_span:
                    iter_start = time.perf_counter()
                    ranges = []
                    lo = 0
                    for ids in owners_of:
                        if ids.size:
                            engine.work[lo : lo + ids.size] = ids
                            ranges.append(("color:vertex", lo, lo + ids.size, True))
                            lo += ids.size
                    try:
                        for _pid, _done, _appends, chunk_work in engine.pool.map(
                            procworker.run_chunk, ranges
                        ):
                            interior_work.merge(chunk_work)
                    except BrokenProcessPool as exc:
                        raise ColoringError(
                            "sharded backend: a worker process died during "
                            "the interior phase; shared segments are "
                            "reclaimed by the parent"
                        ) from exc
                    phase_span.set(items=lo)
                run_work.merge(interior_work)
                if tracer.enabled:
                    interior_work.emit(
                        tracer, iteration=0, phase="color", kind="interior"
                    )
                palette = int(engine.colors.max()) + 1 if n else 0
                records.append(
                    IterationRecord(
                        index=0,
                        queue_size=lo,
                        conflicts=0,
                        color_timing=None,
                        remove_timing=None,
                        colors_introduced=palette,
                        wall_seconds=time.perf_counter() - iter_start,
                    )
                )

                # ---- boundary supersteps ---------------------------------
                pending = np.nonzero(is_boundary)[0].astype(np.int64)
                boundary_total = int(pending.size)
                while pending.size:
                    if supersteps >= max(max_iterations, boundary_total + 1):
                        raise ColoringError(
                            f"{name} did not converge in {supersteps} "
                            f"supersteps ({pending.size} boundary vertices "
                            "still pending)"
                        )
                    iter_start = time.perf_counter()
                    batch_vs, rest = pending[:batch], pending[batch:]
                    step_work = WorkCounters()
                    # Per-rank slices in batch (not sorted) order: the
                    # oracle's overlays accumulate in batch order too.
                    owners = part[batch_vs]
                    ranges = []
                    lo = 0
                    for r in range(threads):
                        mine = batch_vs[owners == r]
                        if mine.size:
                            engine.work[lo : lo + mine.size] = mine
                            ranges.append((lo, lo + mine.size))
                            lo += mine.size
                    exchanges = []
                    try:
                        for _pid, ids, cols, frontier_work in engine.pool.map(
                            procworker.run_frontier, ranges
                        ):
                            exchanges.append((ids, cols))
                            step_work.merge(frontier_work)
                            comm_words += 2 * int(ids.size)
                            comm_messages += 1
                    except BrokenProcessPool as exc:
                        raise ColoringError(
                            "sharded backend: a worker process died during "
                            f"superstep {supersteps}; shared segments are "
                            "reclaimed by the parent"
                        ) from exc
                    # Commit the exchange (disjoint ids: one owner each),
                    # then detect cross-shard conflicts on the committed
                    # palette — smaller vertex id wins, as everywhere.
                    writes = 0
                    for ids, cols in exchanges:
                        engine.colors[ids] = cols
                        writes += int(ids.size)
                    losers = _detect_losers(
                        gview, batch_vs, engine.colors, step_work
                    )
                    engine.colors[losers] = UNCOLORED
                    step_work.add("color_writes", len(losers))
                    step_work.add("queue_pushes", len(losers))
                    conflicts_total += len(losers)
                    run_work.merge(step_work)
                    if tracer.enabled:
                        step_work.emit(
                            tracer,
                            iteration=supersteps + 1,
                            phase="superstep",
                            kind="boundary",
                        )
                        tracer.counter(
                            "shard.exchange_words",
                            2 * writes,
                            superstep=supersteps,
                        )
                    committed_max = (
                        int(engine.colors.max()) if engine.colors.size else -1
                    )
                    introduced = max(0, committed_max + 1 - palette)
                    palette = max(palette, committed_max + 1)
                    records.append(
                        IterationRecord(
                            index=supersteps + 1,
                            queue_size=int(batch_vs.size),
                            conflicts=len(losers),
                            color_timing=None,
                            remove_timing=None,
                            colors_introduced=introduced,
                            wall_seconds=time.perf_counter() - iter_start,
                        )
                    )
                    supersteps += 1
                    pending = np.concatenate(
                        [np.asarray(losers, dtype=np.int64), rest]
                    )

                final = engine.snapshot()
                run_span.set(
                    iterations=len(records),
                    supersteps=supersteps,
                    comm_words=comm_words,
                    num_colors=int(final.max()) + 1 if final.size else 0,
                )
        finally:
            engine.close()

        if final.size and final.min() < 0:
            raise ColoringError(
                f"{name} finished with {int((final < 0).sum())} uncolored vertices"
            )
        work_metrics = run_work.as_dict()
        work_metrics.update(
            {
                "shard.interior": n - boundary_total,
                "shard.boundary": boundary_total,
                "shard.supersteps": supersteps,
                "shard.conflicts": conflicts_total,
                "shard.comm_words": comm_words,
                "shard.comm_messages": comm_messages,
            }
        )
        return ColoringResult(
            colors=final,
            num_colors=int(final.max()) + 1 if final.size else 0,
            iterations=records,
            algorithm=name,
            threads=threads,
            cycles=0.0,
            backend=self.name,
            wall_seconds=time.perf_counter() - run_start,
            work_metrics=work_metrics,
        )
