"""Hybrid MPI+multicore BGPC: ranks of kernel-level engines.

:func:`hybrid_bgpc` layers the distributed superstep framework of
:mod:`repro.dist.superstep` on top of the execution-backend registry: each
rank colors its share of every batch on its *own* multicore engine
(obtained from the ``make_engine`` hook of a registered
:class:`~repro.core.backends.ExecutionBackend`), so two conflict sources
coexist —
intra-rank thread races inside an engine and cross-rank speculation between
engines — and one resolver absorbs both, smaller vertex id winning.

Only kernel-level backends (``sim``, ``threaded``) qualify: whole-array
backends like ``numpy`` have no per-phase engine, and the ``process``
backend deliberately refuses per-batch engines (pool + shared-segment setup
per batch); both are rejected with a :class:`~repro.errors.ColoringError`.
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import get_backend
from repro.core.bgpc.vertex import make_vertex_color_kernel
from repro.core.plan import PhasePlan
from repro.core.policies import FirstFit
from repro.dist.mpi import ClusterModel
from repro.dist.superstep import (
    DistributedResult,
    _conflicted,
    _validated_partition,
    boundary_mask,
)
from repro.errors import ColoringError
from repro.graph.bipartite import BipartiteGraph
from repro.machine.cost import CostModel
from repro.machine.engine import QUEUE_NONE
from repro.types import UNCOLORED, PhaseKind

__all__ = ["hybrid_bgpc"]


def hybrid_bgpc(
    bg: BipartiteGraph,
    ranks: int = 2,
    threads_per_rank: int = 4,
    batch: int = 100,
    partition: np.ndarray | None = None,
    backend: str = "sim",
    cost: CostModel | None = None,
    cluster: ClusterModel | None = None,
) -> DistributedResult:
    """Color ``bg`` on ``ranks`` modeled nodes of ``threads_per_rank`` cores.

    Every batch is a superstep: each rank runs one coloring phase over its
    share on a fresh engine seeded with the committed snapshot, the picks
    are merged, and conflicting vertices (intra-rank races *and* cross-rank
    speculation) are reset and re-queued.  ``backend`` must be kernel-level
    (``"sim"`` for deterministic cycles, ``"threaded"`` for real races).
    """
    if threads_per_rank < 1:
        raise ColoringError(
            f"threads_per_rank must be >= 1, got {threads_per_rank}"
        )
    if batch < 1:
        raise ColoringError(f"batch must be >= 1, got {batch}")
    backend_obj = get_backend(backend)
    if not hasattr(backend_obj, "make_engine"):
        raise ColoringError(
            f"hybrid_bgpc needs a kernel-level backend (one exposing "
            f"make_engine); {backend!r} is not kernel-level — use 'sim' or "
            "'threaded'"
        )
    cluster = cluster if cluster is not None else ClusterModel(ranks)
    ranks = cluster.ranks
    cost = cost if cost is not None else CostModel()
    n = bg.num_vertices
    part = _validated_partition(partition, n, ranks)
    is_boundary = boundary_mask(bg, part)
    kernel = make_vertex_color_kernel(bg, FirstFit(), cost)
    plan = PhasePlan(
        phase=PhaseKind.COLOR, kind="vertex", chunk=1, queue_mode=QUEUE_NONE
    )

    colors = np.full(n, UNCOLORED, dtype=np.int64)
    pending = np.arange(n, dtype=np.int64)
    conflicts = 0
    while pending.size:
        batch_vs, rest = pending[:batch], pending[batch:]
        owners = part[batch_vs]
        compute = [0.0] * ranks
        words = [0] * ranks
        messages = [0] * ranks
        merged = colors.copy()
        for r in range(ranks):
            mine = batch_vs[owners == r]
            if mine.size == 0:
                continue
            engine = backend_obj.make_engine(
                colors.copy(), threads_per_rank, cost
            )
            engine.run_phase(plan, mine.size, kernel, task_ids=mine)
            merged[mine] = engine.values[mine]
            compute[r] = engine.total_cycles
            words[r] = int(mine.size)
            messages[r] = 1
        colors = merged
        losers = _conflicted(bg, batch_vs, colors)
        colors[losers] = UNCOLORED
        conflicts += len(losers)
        cluster.superstep(compute, words, messages)
        pending = np.concatenate(
            [np.asarray(losers, dtype=np.int64), rest]
        )

    return DistributedResult(
        colors=colors,
        num_colors=int(colors.max()) + 1 if colors.size else 0,
        ranks=ranks,
        interior=int((~is_boundary).sum()),
        boundary=int(is_boundary.sum()),
        supersteps=cluster.num_supersteps,
        conflicts=conflicts,
        comm_words=cluster.total_words,
        comm_messages=cluster.total_messages,
        cycles=cluster.total_cycles,
    )
