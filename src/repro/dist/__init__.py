"""Distributed and hybrid BGPC: the lineage around the paper.

The shared-memory algorithms reproduced in :mod:`repro.core` descend from a
distributed-memory superstep framework (Bozdağ et al.) and sit next to
hybrid MPI+multicore implementations by the same authors.  This package
models both flavours on top of the repository's primitives:

* :func:`distributed_bgpc` — partitioned speculative coloring in batched
  bulk-synchronous supersteps, costed by :class:`ClusterModel`;
* :func:`hybrid_bgpc` — ranks of kernel-level multicore engines (intra-rank
  races plus cross-rank speculation, one resolver);
* :func:`partition_contiguous` / :func:`partition_random` /
  :func:`partition_bfs` — the owner arrays that decide the boundary size.
"""

from repro.dist.hybrid import hybrid_bgpc
from repro.dist.mpi import ClusterModel, SuperstepStats
from repro.dist.partition import (
    partition_bfs,
    partition_contiguous,
    partition_random,
)
from repro.dist.superstep import DistributedResult, distributed_bgpc

__all__ = [
    "ClusterModel",
    "SuperstepStats",
    "DistributedResult",
    "distributed_bgpc",
    "hybrid_bgpc",
    "partition_bfs",
    "partition_contiguous",
    "partition_random",
]
