"""Distributed and hybrid BGPC: the lineage around the paper.

The shared-memory algorithms reproduced in :mod:`repro.core` descend from a
distributed-memory superstep framework (Bozdağ et al.) and sit next to
hybrid MPI+multicore implementations by the same authors.  This package
models both flavours on top of the repository's primitives:

* :func:`distributed_bgpc` — partitioned speculative coloring in batched
  bulk-synchronous supersteps, costed by :class:`ClusterModel`;
* :func:`hybrid_bgpc` — ranks of kernel-level multicore engines (intra-rank
  races plus cross-rank speculation, one resolver);
* :func:`partition_contiguous` / :func:`partition_random` /
  :func:`partition_bfs` / :func:`partition_greedy` — the owner arrays that
  decide the boundary size, selectable by name through
  :data:`~repro.dist.partition.PARTITIONERS`;
* :class:`~repro.dist.sharded.ShardedBackend` — the *executing* flavour:
  ``backend="sharded"`` runs the interior/boundary superstep protocol on a
  real worker-process pool (see ``docs/sharding.md``), keeping
  :func:`distributed_bgpc` as its reference oracle.
"""

from repro.dist.hybrid import hybrid_bgpc
from repro.dist.mpi import ClusterModel, SuperstepStats
from repro.dist.partition import (
    PARTITIONERS,
    get_partitioner,
    partition_bfs,
    partition_contiguous,
    partition_greedy,
    partition_random,
    partitioner_names,
    register_partitioner,
)
from repro.dist.sharded import ShardedBackend
from repro.dist.superstep import DistributedResult, boundary_mask, distributed_bgpc

__all__ = [
    "ClusterModel",
    "PARTITIONERS",
    "SuperstepStats",
    "DistributedResult",
    "ShardedBackend",
    "boundary_mask",
    "distributed_bgpc",
    "get_partitioner",
    "hybrid_bgpc",
    "partition_bfs",
    "partition_contiguous",
    "partition_greedy",
    "partition_random",
    "partitioner_names",
    "register_partitioner",
]
