"""Distributed-memory BGPC: partitioned speculative coloring in supersteps.

The framework the paper's shared-memory algorithms descend from (Bozdağ et
al.): vertices are partitioned across ranks; *interior* vertices (all of
whose nets stay within one rank) are colored locally with no communication,
while *boundary* vertices are colored speculatively in batched
bulk-synchronous supersteps — each rank picks colors against the last
committed snapshot, announces them, and cross-rank conflicts (two boundary
vertices of one net picking the same color in the same batch) are detected
after the exchange and re-queued, smaller vertex id winning.

Communication is charged through :class:`repro.dist.mpi.ClusterModel`; the
cost model is observational and never steers the coloring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dist.mpi import ClusterModel
from repro.dist.partition import partition_contiguous
from repro.errors import ColoringError
from repro.graph.bipartite import BipartiteGraph
from repro.types import UNCOLORED

__all__ = ["DistributedResult", "boundary_mask", "distributed_bgpc"]


@dataclass
class DistributedResult:
    """Outcome of a distributed (or hybrid) BGPC run.

    ``interior`` / ``boundary`` count the partition-induced vertex classes;
    ``supersteps`` and ``conflicts`` describe the boundary resolution;
    ``comm_words`` / ``comm_messages`` the exchanged traffic; ``cycles``
    the modeled end-to-end cost (local compute plus the cluster charge).
    """

    colors: np.ndarray
    num_colors: int
    ranks: int
    interior: int
    boundary: int
    supersteps: int
    conflicts: int
    comm_words: int
    comm_messages: int
    cycles: float


def _validated_partition(partition, n: int, ranks: int) -> np.ndarray:
    if partition is None:
        return partition_contiguous(n, ranks)
    part = np.asarray(partition, dtype=np.int64)
    if part.shape != (n,):
        raise ColoringError(
            f"partition must have one owner per vertex ({n}), got shape "
            f"{part.shape}"
        )
    if part.size and (part.min() < 0 or part.max() >= ranks):
        raise ColoringError(
            f"partition owners must lie in [0, {ranks}); got range "
            f"[{int(part.min())}, {int(part.max())}]"
        )
    return part


def boundary_mask(bg: BipartiteGraph, part: np.ndarray) -> np.ndarray:
    """True for vertices sharing a net with another rank's vertex."""
    mask = np.zeros(bg.num_vertices, dtype=bool)
    for net in range(bg.num_nets):
        vs = bg.vtxs(net)
        if vs.size > 1:
            owners = part[vs]
            if (owners != owners[0]).any():
                mask[vs] = True
    return mask


def _first_fit(bg: BipartiteGraph, u: int, committed: np.ndarray,
               overlay: dict) -> tuple[int, int]:
    """Smallest color free around ``u``; returns ``(color, scans)``.

    ``committed`` is the globally committed palette; ``overlay`` holds the
    owning rank's same-batch picks (a rank sees its own speculation, not
    the other ranks').
    """
    forbidden = set()
    scans = 0
    for net in bg.nets(u):
        for w in bg.vtxs(net):
            scans += 1
            if w == u:
                continue
            c = overlay.get(int(w), committed[w])
            if c >= 0:
                forbidden.add(int(c))
    color = 0
    while color in forbidden:
        color += 1
    return color, scans


def _conflicted(bg: BipartiteGraph, batch: np.ndarray,
                colors: np.ndarray) -> list[int]:
    """Batch vertices losing a same-color tie to a smaller-id neighbor."""
    losers = []
    for u in batch.tolist():
        cu = colors[u]
        lost = False
        for net in bg.nets(u):
            for w in bg.vtxs(net):
                if w < u and colors[w] == cu:
                    lost = True
                    break
            if lost:
                break
        if lost:
            losers.append(u)
    return losers


def _neighbor_ranks(bg: BipartiteGraph, u: int, part: np.ndarray) -> set:
    mine = int(part[u])
    others = set()
    for net in bg.nets(u):
        for w in bg.vtxs(net):
            r = int(part[w])
            if r != mine:
                others.add(r)
    return others


def distributed_bgpc(
    bg: BipartiteGraph,
    ranks: int = 4,
    batch: int = 100,
    partition: np.ndarray | None = None,
    cluster: ClusterModel | None = None,
) -> DistributedResult:
    """Color ``bg`` on a modeled ``ranks``-node cluster.

    Parameters
    ----------
    bg:
        The bipartite instance.
    ranks:
        Number of ranks; ignored when ``cluster`` is given (its rank count
        wins).
    batch:
        Boundary vertices colored per superstep (>= 1): bigger batches mean
        fewer supersteps but more speculative conflicts.
    partition:
        Optional owner array (see :mod:`repro.dist.partition`); defaults to
        contiguous blocks.
    cluster:
        Optional :class:`~repro.dist.mpi.ClusterModel` cost model
        (fresh default otherwise).  Observational only — colors and
        supersteps never depend on it.
    """
    if batch < 1:
        raise ColoringError(f"batch must be >= 1, got {batch}")
    cluster = cluster if cluster is not None else ClusterModel(ranks)
    ranks = cluster.ranks
    if ranks < 1:
        raise ColoringError(f"ranks must be >= 1, got {ranks}")
    n = bg.num_vertices
    part = _validated_partition(partition, n, ranks)
    is_boundary = boundary_mask(bg, part)
    colors = np.full(n, UNCOLORED, dtype=np.int64)

    # Interior vertices never share a net across ranks: every rank colors
    # its own greedily, no exchange needed.  Charged as one parallel phase
    # (slowest rank's scan count).
    interior_scans = [0] * ranks
    for u in np.nonzero(~is_boundary)[0].tolist():
        c, scans = _first_fit(bg, u, colors, {})
        colors[u] = c
        interior_scans[part[u]] += scans
    cycles = float(max(interior_scans)) if interior_scans else 0.0

    # Boundary vertices go through batched speculative supersteps.
    pending = np.nonzero(is_boundary)[0].astype(np.int64)
    conflicts = 0
    while pending.size:
        batch_vs, rest = pending[:batch], pending[batch:]
        compute = [0.0] * ranks
        words = [0] * ranks
        messages = [0] * ranks
        overlays: list[dict] = [{} for _ in range(ranks)]
        neighbor_ranks: list[set] = [set() for _ in range(ranks)]
        for u in batch_vs.tolist():
            r = int(part[u])
            c, scans = _first_fit(bg, u, colors, overlays[r])
            overlays[r][u] = c
            compute[r] += scans
            words[r] += 1
            neighbor_ranks[r] |= _neighbor_ranks(bg, u, part)
        for overlay in overlays:
            for u, c in overlay.items():
                colors[u] = c
        for r in range(ranks):
            messages[r] = len(neighbor_ranks[r]) if words[r] else 0
        losers = _conflicted(bg, batch_vs, colors)
        colors[losers] = UNCOLORED
        conflicts += len(losers)
        cluster.superstep(compute, words, messages)
        pending = np.concatenate(
            [np.asarray(losers, dtype=np.int64), rest]
        )

    cycles += cluster.total_cycles
    return DistributedResult(
        colors=colors,
        num_colors=int(colors.max()) + 1 if colors.size else 0,
        ranks=ranks,
        interior=int((~is_boundary).sum()),
        boundary=int(is_boundary.sum()),
        supersteps=cluster.num_supersteps,
        conflicts=conflicts,
        comm_words=cluster.total_words,
        comm_messages=cluster.total_messages,
        cycles=cycles,
    )
