"""A BSP-style cluster cost model for the distributed BGPC framework.

The shared-memory algorithms of the paper descend from a distributed-memory
superstep framework (Bozdağ et al.): ranks color their local vertices, then
exchange boundary colors in a bulk-synchronous round.  :class:`ClusterModel`
charges those rounds with the classic alpha-beta model — per-message latency
``alpha``, per-word bandwidth cost ``beta``, plus a flat ``sync_cycles``
barrier — and keeps running aggregates so a whole run can be summarized.

The model is *observational*: :func:`repro.dist.distributed_bgpc` computes
the same colors no matter what a superstep is charged; only the reported
``cycles`` change.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterModel", "SuperstepStats"]


@dataclass(frozen=True)
class SuperstepStats:
    """Accounting of one bulk-synchronous superstep.

    Attributes
    ----------
    compute_cycles:
        Slowest rank's local compute (the barrier waits for it).
    comm_cycles:
        Busiest rank's exchange cost, ``alpha * messages + beta * words``,
        plus the synchronization barrier.
    words:
        Total words exchanged across all ranks.
    messages:
        Total messages sent across all ranks.
    wall:
        ``compute_cycles + comm_cycles`` — what the superstep costs end to
        end.
    """

    compute_cycles: float
    comm_cycles: float
    words: int
    messages: int
    wall: float


class ClusterModel:
    """Alpha-beta cost model of a ``ranks``-node cluster.

    Parameters
    ----------
    ranks:
        Number of ranks (>= 1).
    alpha:
        Per-message latency in cycles.
    beta:
        Per-word transfer cost in cycles.
    sync_cycles:
        Flat cost of the barrier closing each superstep.
    """

    def __init__(
        self,
        ranks: int,
        alpha: float = 1000.0,
        beta: float = 4.0,
        sync_cycles: float = 200.0,
    ):
        if ranks < 1:
            raise ValueError(f"ClusterModel needs ranks >= 1, got {ranks}")
        self.ranks = ranks
        self.alpha = alpha
        self.beta = beta
        self.sync_cycles = sync_cycles
        self.num_supersteps = 0
        self.total_cycles = 0.0
        self.total_compute = 0.0
        self.total_words = 0
        self.total_messages = 0

    def superstep(self, compute, words=None, messages=None) -> SuperstepStats:
        """Charge one superstep and fold it into the running aggregates.

        ``compute``, ``words`` and ``messages`` are per-rank lists of local
        compute cycles, words announced and messages sent; omitted comm
        lists default to zero.  Lists of the wrong length raise
        :class:`ValueError`.
        """
        compute = list(compute)
        words = [0] * self.ranks if words is None else list(words)
        messages = [0] * self.ranks if messages is None else list(messages)
        for label, seq in (("compute", compute), ("words", words),
                           ("messages", messages)):
            if len(seq) != self.ranks:
                raise ValueError(
                    f"superstep {label} list has {len(seq)} entries for "
                    f"{self.ranks} ranks"
                )
        compute_cycles = max(compute) if compute else 0.0
        comm_cycles = (
            max(
                self.alpha * m + self.beta * w
                for m, w in zip(messages, words)
            )
            + self.sync_cycles
        )
        stats = SuperstepStats(
            compute_cycles=compute_cycles,
            comm_cycles=comm_cycles,
            words=int(sum(words)),
            messages=int(sum(messages)),
            wall=compute_cycles + comm_cycles,
        )
        self.num_supersteps += 1
        self.total_cycles += stats.wall
        self.total_compute += sum(compute)
        self.total_words += stats.words
        self.total_messages += stats.messages
        return stats

    def __repr__(self) -> str:
        return (
            f"ClusterModel(ranks={self.ranks}, alpha={self.alpha}, "
            f"beta={self.beta}, sync_cycles={self.sync_cycles})"
        )
