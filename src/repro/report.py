"""JSON serialization of coloring runs.

A :class:`~repro.types.ColoringResult` carries everything a downstream
pipeline needs (colors, per-round records, simulated timings); this module
round-trips it through JSON so runs can be archived, diffed and compared
across machines — every number is deterministic, so two archives of the same
configuration must be byte-identical.

Measured data is deliberately excluded: host wall-clock readings and
:mod:`repro.obs` trace data (span durations, event streams) describe the
machine the run happened on, not the algorithm, so the writer strips every
field in :data:`MEASURED_FIELDS` recursively before serializing.  Archive a
trace separately with :class:`repro.obs.JsonlTracer` if you need it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.types import ColoringResult, IterationRecord, PhaseTiming

__all__ = [
    "MEASURED_FIELDS",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]

_FORMAT_VERSION = 1

#: Field names that are *measurements of the host* rather than deterministic
#: algorithm outputs: host wall-clock (``wall_seconds``, at both the result
#: and the per-iteration level) and anything produced by the tracing layer
#: (:mod:`repro.obs` span durations / trace payloads).  The archive writer
#: strips every occurrence so that two archives of the same configuration
#: are byte-identical regardless of how fast the host happened to run.
MEASURED_FIELDS = frozenset({"wall_seconds", "trace", "events", "wall_ms"})


def _strip_measured(payload):
    """Recursively drop :data:`MEASURED_FIELDS` keys from a JSON payload."""
    if isinstance(payload, dict):
        return {
            key: _strip_measured(value)
            for key, value in payload.items()
            if key not in MEASURED_FIELDS
        }
    if isinstance(payload, list):
        return [_strip_measured(item) for item in payload]
    return payload


def _timing_to_dict(timing: PhaseTiming | None) -> dict | None:
    if timing is None:
        return None
    return {
        "kind": timing.kind,
        "cycles": timing.cycles,
        "thread_cycles": list(timing.thread_cycles),
        "tasks": timing.tasks,
    }


def _timing_from_dict(payload: dict | None) -> PhaseTiming | None:
    if payload is None:
        return None
    return PhaseTiming(
        kind=payload["kind"],
        cycles=float(payload["cycles"]),
        thread_cycles=tuple(float(c) for c in payload["thread_cycles"]),
        tasks=int(payload["tasks"]),
    )


def result_to_dict(result: ColoringResult) -> dict:
    """Plain-dict (JSON-safe) form of a coloring result.

    Measured-time fields are intentionally not archived — neither the
    run-level ``wall_seconds`` nor the per-iteration ``wall_seconds`` of
    NumPy-backend rounds, nor any trace data from :mod:`repro.obs` (span
    durations are host measurements, not deterministic outputs).  The
    writer enforces this by stripping every :data:`MEASURED_FIELDS` key
    from the payload, so archives of the same configuration stay
    byte-identical across hosts and runs.  ``backend`` is recorded only
    for non-simulator runs, and the deterministic ``colors_introduced``
    counter only when known (``>= 0``), so archives written before those
    fields existed remain loadable and unchanged.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "threads": result.threads,
        "num_colors": result.num_colors,
        "cycles": result.cycles,
        "colors": [int(c) for c in result.colors],
        "iterations": [
            _iteration_to_dict(rec) for rec in result.iterations
        ],
    }
    if result.backend != "sim":
        payload["backend"] = result.backend
    return _strip_measured(payload)


def _iteration_to_dict(rec: IterationRecord) -> dict:
    payload = {
        "index": rec.index,
        "queue_size": rec.queue_size,
        "conflicts": rec.conflicts,
        "color_timing": _timing_to_dict(rec.color_timing),
        "remove_timing": _timing_to_dict(rec.remove_timing),
    }
    if rec.colors_introduced >= 0:
        payload["colors_introduced"] = rec.colors_introduced
    return payload


def result_from_dict(payload: dict) -> ColoringResult:
    """Inverse of :func:`result_to_dict`.

    Raises ``ValueError`` on an unknown format version so future formats
    fail loudly instead of loading garbage.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported run-report format version {version!r} "
            f"(this library reads {_FORMAT_VERSION})"
        )
    iterations = [
        IterationRecord(
            index=int(rec["index"]),
            queue_size=int(rec["queue_size"]),
            conflicts=int(rec["conflicts"]),
            color_timing=_timing_from_dict(rec["color_timing"]),
            remove_timing=_timing_from_dict(rec["remove_timing"]),
            colors_introduced=int(rec.get("colors_introduced", -1)),
        )
        for rec in payload["iterations"]
    ]
    return ColoringResult(
        colors=np.asarray(payload["colors"], dtype=np.int64),
        num_colors=int(payload["num_colors"]),
        iterations=iterations,
        algorithm=str(payload["algorithm"]),
        threads=int(payload["threads"]),
        cycles=float(payload["cycles"]),
        backend=str(payload.get("backend", "sim")),
    )


def save_result(result: ColoringResult, path: str | Path) -> None:
    """Write a run report as (stable, sorted-key) JSON."""
    with open(path, "w", encoding="ascii") as fh:
        json.dump(result_to_dict(result), fh, sort_keys=True, indent=1)
        fh.write("\n")


def load_result(path: str | Path) -> ColoringResult:
    """Read a run report written by :func:`save_result`."""
    with open(path, "r", encoding="ascii") as fh:
        return result_from_dict(json.load(fh))
