"""JSON serialization of coloring runs.

A :class:`~repro.types.ColoringResult` carries everything a downstream
pipeline needs (colors, per-round records, simulated timings); this module
round-trips it through JSON so runs can be archived, diffed and compared
across machines — every number is deterministic, so two archives of the same
configuration must be byte-identical.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.types import ColoringResult, IterationRecord, PhaseTiming

__all__ = ["result_to_dict", "result_from_dict", "save_result", "load_result"]

_FORMAT_VERSION = 1


def _timing_to_dict(timing: PhaseTiming | None) -> dict | None:
    if timing is None:
        return None
    return {
        "kind": timing.kind,
        "cycles": timing.cycles,
        "thread_cycles": list(timing.thread_cycles),
        "tasks": timing.tasks,
    }


def _timing_from_dict(payload: dict | None) -> PhaseTiming | None:
    if payload is None:
        return None
    return PhaseTiming(
        kind=payload["kind"],
        cycles=float(payload["cycles"]),
        thread_cycles=tuple(float(c) for c in payload["thread_cycles"]),
        tasks=int(payload["tasks"]),
    )


def result_to_dict(result: ColoringResult) -> dict:
    """Plain-dict (JSON-safe) form of a coloring result.

    ``wall_seconds`` is intentionally not archived (it is measured, not
    deterministic); ``backend`` is recorded only for non-simulator runs so
    existing simulator archives stay byte-identical.
    """
    payload = {
        "format_version": _FORMAT_VERSION,
        "algorithm": result.algorithm,
        "threads": result.threads,
        "num_colors": result.num_colors,
        "cycles": result.cycles,
        "colors": [int(c) for c in result.colors],
        "iterations": [
            {
                "index": rec.index,
                "queue_size": rec.queue_size,
                "conflicts": rec.conflicts,
                "color_timing": _timing_to_dict(rec.color_timing),
                "remove_timing": _timing_to_dict(rec.remove_timing),
            }
            for rec in result.iterations
        ],
    }
    if result.backend != "sim":
        payload["backend"] = result.backend
    return payload


def result_from_dict(payload: dict) -> ColoringResult:
    """Inverse of :func:`result_to_dict`.

    Raises ``ValueError`` on an unknown format version so future formats
    fail loudly instead of loading garbage.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported run-report format version {version!r} "
            f"(this library reads {_FORMAT_VERSION})"
        )
    iterations = [
        IterationRecord(
            index=int(rec["index"]),
            queue_size=int(rec["queue_size"]),
            conflicts=int(rec["conflicts"]),
            color_timing=_timing_from_dict(rec["color_timing"]),
            remove_timing=_timing_from_dict(rec["remove_timing"]),
        )
        for rec in payload["iterations"]
    ]
    return ColoringResult(
        colors=np.asarray(payload["colors"], dtype=np.int64),
        num_colors=int(payload["num_colors"]),
        iterations=iterations,
        algorithm=str(payload["algorithm"]),
        threads=int(payload["threads"]),
        cycles=float(payload["cycles"]),
        backend=str(payload.get("backend", "sim")),
    )


def save_result(result: ColoringResult, path: str | Path) -> None:
    """Write a run report as (stable, sorted-key) JSON."""
    with open(path, "w", encoding="ascii") as fh:
        json.dump(result_to_dict(result), fh, sort_keys=True, indent=1)
        fh.write("\n")


def load_result(path: str | Path) -> ColoringResult:
    """Read a run report written by :func:`save_result`."""
    with open(path, "r", encoding="ascii") as fh:
        return result_from_dict(json.load(fh))
