"""Sparse Jacobian estimation by column compression (Coleman–Moré).

This is the classical application that motivates BGPC (paper §I): to
estimate a sparse Jacobian ``J ∈ R^{m×n}`` with finite differences, columns
that never share a nonzero row can be perturbed *together*.  A valid BGPC
coloring of the column–row bipartite graph partitions the columns into ``k``
such groups, so ``k`` function evaluations (instead of ``n``) recover every
entry:

1. color the columns: ``c = color_bgpc(pattern)``;
2. build the seed matrix ``S ∈ R^{n×k}`` with ``S[j, c[j]] = 1``;
3. evaluate the compressed product ``B = J·S`` (one differencing pass per
   color);
4. read each entry back: ``J[i, j] = B[i, c[j]]`` — unique because no other
   column with color ``c[j]`` has a nonzero in row ``i``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.bgpc import color_bgpc, sequential_bgpc
from repro.core.validate import validate_bgpc
from repro.errors import ColoringError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.build import bipartite_from_scipy
from repro.types import ColoringResult

__all__ = ["JacobianCompressor", "seed_matrix", "recover_jacobian"]


def seed_matrix(colors: np.ndarray) -> np.ndarray:
    """Binary seed matrix ``S`` with ``S[j, colors[j]] = 1``."""
    colors = np.asarray(colors)
    if colors.size == 0:
        return np.zeros((0, 0))
    num_colors = int(colors.max()) + 1
    seeds = np.zeros((colors.size, num_colors))
    seeds[np.arange(colors.size), colors] = 1.0
    return seeds


def recover_jacobian(
    bg: BipartiteGraph, colors: np.ndarray, compressed: np.ndarray
) -> "scipy.sparse.csr_matrix":
    """Scatter the compressed product back into the sparse Jacobian.

    Parameters
    ----------
    bg:
        The sparsity pattern (rows = nets, columns = colored vertices).
    colors:
        A *valid* BGPC coloring of the columns.
    compressed:
        ``B = J·S`` with shape ``(num_rows, num_colors)``.

    Returns
    -------
    scipy.sparse.csr_matrix
        The recovered Jacobian with exactly the pattern's nonzeros.
    """
    from scipy import sparse

    num_rows, num_cols = bg.num_nets, bg.num_vertices
    if compressed.shape[0] != num_rows:
        raise ColoringError(
            f"compressed product has {compressed.shape[0]} rows, "
            f"pattern has {num_rows}"
        )
    n2v = bg.net_to_vtxs
    data = np.empty(bg.num_edges)
    indices = np.empty(bg.num_edges, dtype=np.int64)
    indptr = np.zeros(num_rows + 1, dtype=np.int64)
    pos = 0
    for i, members in n2v.iter_rows():
        for j in members:
            data[pos] = compressed[i, colors[j]]
            indices[pos] = j
            pos += 1
        indptr[i + 1] = pos
    return sparse.csr_matrix((data, indices, indptr), shape=(num_rows, num_cols))


class JacobianCompressor:
    """End-to-end sparse Jacobian estimation driver.

    Parameters
    ----------
    pattern:
        The Jacobian sparsity pattern as a scipy sparse matrix or a
        :class:`BipartiteGraph` (rows = equations, columns = variables).
    algorithm:
        BGPC algorithm for the coloring step (``"sequential"`` for the
        serial greedy baseline).
    threads:
        Simulated thread count for the parallel coloring.
    order:
        Optional vertex-ordering permutation (see :mod:`repro.order`).

    Attributes
    ----------
    result:
        The :class:`ColoringResult` of the coloring step.
    colors / num_colors:
        The column coloring and the number of evaluations needed.
    """

    def __init__(
        self,
        pattern,
        algorithm: str = "N1-N2",
        threads: int = 16,
        order: np.ndarray | None = None,
    ):
        if isinstance(pattern, BipartiteGraph):
            self.graph = pattern
        else:
            self.graph = bipartite_from_scipy(pattern)
        if algorithm == "sequential":
            self.result: ColoringResult = sequential_bgpc(self.graph, order=order)
        else:
            self.result = color_bgpc(
                self.graph, algorithm=algorithm, threads=threads, order=order
            )
        validate_bgpc(self.graph, self.result.colors)
        self.colors = self.result.colors
        self.num_colors = self.result.num_colors

    @property
    def compression_ratio(self) -> float:
        """Columns per evaluation: ``n / num_colors`` (higher is better)."""
        if self.num_colors == 0:
            return 1.0
        return self.graph.num_vertices / self.num_colors

    def seed(self) -> np.ndarray:
        """The ``n × num_colors`` seed matrix."""
        return seed_matrix(self.colors)

    def estimate(
        self,
        func: Callable[[np.ndarray], np.ndarray],
        x0: np.ndarray,
        eps: float = 1e-6,
    ):
        """Estimate ``J = ∂func/∂x`` at ``x0`` with forward differences.

        Performs ``num_colors + 1`` evaluations of ``func`` — one per color
        plus the base point — and scatters the differences back through the
        coloring.
        """
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (self.graph.num_vertices,):
            raise ColoringError(
                f"x0 must have shape ({self.graph.num_vertices},), got {x0.shape}"
            )
        base = np.asarray(func(x0), dtype=np.float64)
        if base.shape != (self.graph.num_nets,):
            raise ColoringError(
                f"func must return shape ({self.graph.num_nets},), got {base.shape}"
            )
        compressed = np.empty((self.graph.num_nets, self.num_colors))
        seeds = self.seed()
        for color in range(self.num_colors):
            perturbed = np.asarray(func(x0 + eps * seeds[:, color]))
            compressed[:, color] = (perturbed - base) / eps
        return recover_jacobian(self.graph, self.colors, compressed)

    def compress_product(self, jac_dense: np.ndarray) -> np.ndarray:
        """Exact compressed product ``B = J·S`` for a known dense ``J``."""
        return np.asarray(jac_dense) @ self.seed()
