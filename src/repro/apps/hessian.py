"""Sparse symmetric Hessian recovery via distance-2 coloring.

For a symmetric ``H`` whose pattern (with a full diagonal) is the adjacency
of a graph ``G``, a **distance-2 coloring** of ``G`` lets every entry of
``H`` be read directly out of the compressed product ``H·S`` (Gebremedhin,
Manne & Pothen, "What color is your Jacobian?"): columns ``j`` and ``k``
sharing any row have ``dist(j, k) ≤ 2`` in ``G``, so they carry different
colors and never collide in a compressed column.

This mirrors :mod:`repro.apps.jacobian` but drives the D2GC side of the
library — it is the application the paper's D2GC experiments stand behind.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.d2gc import color_d2gc, sequential_d2gc
from repro.core.validate import validate_d2gc
from repro.errors import ColoringError
from repro.graph.unipartite import Graph
from repro.graph.build import graph_from_scipy
from repro.types import ColoringResult

__all__ = ["HessianCompressor"]


class HessianCompressor:
    """Sparse symmetric Hessian estimation via D2GC column compression.

    Parameters
    ----------
    pattern:
        Symmetric sparsity pattern (scipy sparse or :class:`Graph`); the
        diagonal is implicit — every variable may appear in its own second
        derivative.
    algorithm / threads / order:
        D2GC coloring configuration (``"sequential"`` for the baseline).
    """

    def __init__(
        self,
        pattern,
        algorithm: str = "N1-N2",
        threads: int = 16,
        order: np.ndarray | None = None,
    ):
        if isinstance(pattern, Graph):
            self.graph = pattern
        else:
            self.graph = graph_from_scipy(pattern)
        if algorithm == "sequential":
            self.result: ColoringResult = sequential_d2gc(self.graph, order=order)
        else:
            self.result = color_d2gc(
                self.graph, algorithm=algorithm, threads=threads, order=order
            )
        validate_d2gc(self.graph, self.result.colors)
        self.colors = self.result.colors
        self.num_colors = self.result.num_colors

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @property
    def compression_ratio(self) -> float:
        if self.num_colors == 0:
            return 1.0
        return self.n / self.num_colors

    def seed(self) -> np.ndarray:
        seeds = np.zeros((self.n, self.num_colors))
        seeds[np.arange(self.n), self.colors] = 1.0
        return seeds

    def recover(self, compressed: np.ndarray):
        """Recover ``H`` (pattern entries + diagonal) from ``B = H·S``.

        ``H[i, j] = B[i, colors[j]]`` for every pattern edge and for the
        diagonal — unique because a distance-2 coloring forbids any other
        neighbour of row ``i`` from sharing column ``j``'s color.
        """
        from scipy import sparse

        if compressed.shape != (self.n, self.num_colors):
            raise ColoringError(
                f"compressed must have shape ({self.n}, {self.num_colors}), "
                f"got {compressed.shape}"
            )
        adj = self.graph.adj
        rows, cols, vals = [], [], []
        for i in range(self.n):
            rows.append(i)
            cols.append(i)
            vals.append(compressed[i, self.colors[i]])
            for j in adj.row(i):
                rows.append(i)
                cols.append(int(j))
                vals.append(compressed[i, self.colors[j]])
        return sparse.csr_matrix(
            (np.asarray(vals), (np.asarray(rows), np.asarray(cols))),
            shape=(self.n, self.n),
        )

    def estimate(
        self,
        grad: Callable[[np.ndarray], np.ndarray],
        x0: np.ndarray,
        eps: float = 1e-6,
    ):
        """Estimate ``H = ∂grad/∂x`` at ``x0`` with forward differences.

        Needs ``num_colors + 1`` gradient evaluations.
        """
        x0 = np.asarray(x0, dtype=np.float64)
        if x0.shape != (self.n,):
            raise ColoringError(f"x0 must have shape ({self.n},), got {x0.shape}")
        base = np.asarray(grad(x0), dtype=np.float64)
        seeds = self.seed()
        compressed = np.empty((self.n, self.num_colors))
        for color in range(self.num_colors):
            compressed[:, color] = (
                np.asarray(grad(x0 + eps * seeds[:, color])) - base
            ) / eps
        return self.recover(compressed)
