"""Applications of BGPC / D2GC (the paper's motivating use-cases).

* :mod:`repro.apps.jacobian` — sparse Jacobian estimation via column
  compression (Coleman–Moré; the classical BGPC application);
* :mod:`repro.apps.hessian` — sparse symmetric Hessian recovery via D2GC;
* :mod:`repro.apps.sgd` — lock-free parallel SGD for matrix factorization
  scheduled by a bipartite partial coloring (the MovieLens motivation from
  the paper's introduction).
"""

from repro.apps.jacobian import (
    JacobianCompressor,
    seed_matrix,
    recover_jacobian,
)
from repro.apps.hessian import HessianCompressor
from repro.apps.sgd import ColorSchedule, sgd_factorize

__all__ = [
    "JacobianCompressor",
    "seed_matrix",
    "recover_jacobian",
    "HessianCompressor",
    "ColorSchedule",
    "sgd_factorize",
]
