"""Lock-free parallel SGD matrix factorization scheduled by BGPC.

The paper's introduction names matrix decomposition on MovieLens as the
application that motivated the work: stochastic gradient descent over the
ratings ``R[u, i] ≈ P[u]·Q[i]`` races when two concurrently processed
ratings share a user or an item.  Color the *columns* of the rating matrix
with BGPC (rows = nets): two same-colored columns never share a row, so
processing all ratings of one color class concurrently touches every row
factor at most once and each column factor from a single task — completely
lock-free.

The balancing heuristics matter here (paper §V): the number of *parallel
steps* is the number of color classes, and a class smaller than the core
count wastes cores — exactly what :class:`ScheduleStats` measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bgpc import color_bgpc
from repro.core.validate import validate_bgpc
from repro.errors import ColoringError
from repro.graph.bipartite import BipartiteGraph

__all__ = ["ColorSchedule", "ScheduleStats", "sgd_factorize"]


@dataclass(frozen=True)
class ScheduleStats:
    """Parallel-utilization metrics of a color schedule.

    Attributes
    ----------
    num_steps:
        Parallel steps (= color classes): each needs a barrier.
    ideal_rounds:
        ``ceil(total_work / cores)`` — the unreachable lower bound.
    actual_rounds:
        ``Σ_class ceil(class_size / cores)`` — rounds a ``cores``-wide
        machine actually spends given the barriers between classes.
    utilization:
        ``ideal_rounds / actual_rounds`` (1.0 == perfect).
    """

    num_steps: int
    ideal_rounds: int
    actual_rounds: int

    @property
    def utilization(self) -> float:
        if self.actual_rounds == 0:
            return 1.0
        return self.ideal_rounds / self.actual_rounds


class ColorSchedule:
    """Per-color execution schedule of the columns of a rating matrix.

    Parameters
    ----------
    bg:
        The rating pattern (rows = users as nets, columns = items).
    colors:
        A valid BGPC coloring of the columns (checked on construction).
    """

    def __init__(self, bg: BipartiteGraph, colors: np.ndarray):
        validate_bgpc(bg, colors)
        self.bg = bg
        self.colors = np.asarray(colors)
        num_colors = int(self.colors.max()) + 1 if self.colors.size else 0
        order = np.argsort(self.colors, kind="stable")
        boundaries = np.searchsorted(self.colors[order], np.arange(num_colors + 1))
        self.classes = [
            order[boundaries[k] : boundaries[k + 1]] for k in range(num_colors)
        ]

    @property
    def num_steps(self) -> int:
        return len(self.classes)

    def stats(self, cores: int = 16) -> ScheduleStats:
        """Utilization of this schedule on a ``cores``-wide machine."""
        if cores < 1:
            raise ColoringError("cores must be >= 1")
        total = sum(len(c) for c in self.classes)
        ideal = -(-total // cores) if total else 0
        actual = sum(-(-len(c) // cores) for c in self.classes if len(c))
        return ScheduleStats(
            num_steps=self.num_steps, ideal_rounds=ideal, actual_rounds=actual
        )

    def assert_lock_free(self) -> None:
        """Re-verify the lock-freedom invariant: within one class, every
        net (user) is touched by at most one column."""
        for k, members in enumerate(self.classes):
            seen = np.zeros(self.bg.num_nets, dtype=bool)
            for j in members:
                nets = self.bg.nets(int(j))
                if np.any(seen[nets]):
                    raise ColoringError(f"class {k} touches a user twice")
                seen[nets] = True


def sgd_factorize(
    bg: BipartiteGraph,
    values: np.ndarray,
    rank: int = 8,
    epochs: int = 10,
    lr: float = 0.05,
    reg: float = 0.02,
    algorithm: str = "N1-N2",
    threads: int = 16,
    policy=None,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, list[float], ScheduleStats]:
    """Factorize a sparse rating matrix with color-scheduled SGD.

    Parameters
    ----------
    bg:
        Rating pattern (rows = users/nets, columns = items/vertices).
    values:
        One rating per stored entry, in the row-major order of
        ``bg.net_to_vtxs`` (i.e. ``values[k]`` belongs to the k-th stored
        ``(user, item)`` pair).
    rank / epochs / lr / reg:
        Standard SGD hyper-parameters.
    algorithm / threads / policy:
        BGPC configuration for the schedule; a balancing policy (B1/B2)
        flattens the class sizes and improves utilization.

    Returns
    -------
    (P, Q, losses, stats):
        User and item factors, per-epoch RMSE, and the schedule stats.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (bg.num_edges,):
        raise ColoringError(
            f"values must have shape ({bg.num_edges},), got {values.shape}"
        )
    result = color_bgpc(bg, algorithm=algorithm, threads=threads, policy=policy)
    schedule = ColorSchedule(bg, result.colors)

    rng = np.random.default_rng(seed)
    num_users, num_items = bg.num_nets, bg.num_vertices
    P = rng.normal(scale=0.1, size=(num_users, rank))
    Q = rng.normal(scale=0.1, size=(num_items, rank))

    # Entry lookup: for column j, its (user, rating) pairs.
    n2v = bg.net_to_vtxs
    entry_user = np.repeat(np.arange(num_users, dtype=np.int64), n2v.degrees())
    entry_item = n2v.idx
    by_item_order = np.argsort(entry_item, kind="stable")
    item_ptr = np.searchsorted(entry_item[by_item_order], np.arange(num_items + 1))

    losses: list[float] = []
    for _ in range(epochs):
        for members in schedule.classes:
            # All columns in one class can run concurrently: no shared user,
            # no shared item.  We execute them in order; the result is
            # identical to any parallel interleaving because the touched
            # factor rows are disjoint.
            for j in members:
                j = int(j)
                lo, hi = item_ptr[j], item_ptr[j + 1]
                entries = by_item_order[lo:hi]
                users = entry_user[entries]
                ratings = values[entries]
                qj = Q[j]
                for u, r in zip(users, ratings):
                    err = r - P[u] @ qj
                    pu = P[u]
                    P[u] = pu + lr * (err * qj - reg * pu)
                    qj = qj + lr * (err * pu - reg * qj)
                Q[j] = qj
        preds = np.einsum("ij,ij->i", P[entry_user], Q[entry_item])
        losses.append(float(np.sqrt(np.mean((values - preds) ** 2))))
    return P, Q, losses, schedule.stats(threads)
