"""Plain-text rendering of experiment results.

The harness prints the same rows/series the paper reports; no plotting
dependencies are assumed, so "figures" are rendered as series tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Experiment", "render_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.2f}"
    return str(value)


def render_table(header: list[str], rows: list[tuple]) -> str:
    """Fixed-width ASCII table with a separator under the header."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in header]
    for row in cells:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(header)),
        "  ".join("-" * widths[k] for k in range(len(header))),
    ]
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class Experiment:
    """One regenerated table or figure.

    Attributes
    ----------
    id:
        Paper artifact id, e.g. ``"table3"`` or ``"figure1"``.
    title:
        Human-readable description.
    header / rows:
        The tabular payload (figures are rendered as series tables).
    notes:
        Paper-vs-measured commentary surfaced under the table.
    data:
        Optional machine-readable extras (raw series for figures).
    """

    id: str
    title: str
    header: list[str]
    rows: list[tuple]
    notes: str = ""
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        out = [f"== {self.id}: {self.title} ==", render_table(self.header, self.rows)]
        if self.notes:
            out.append(self.notes.rstrip())
        return "\n".join(out) + "\n"

    def to_csv(self, path) -> None:
        """Write the rows as a CSV file (for external plotting)."""
        import csv

        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.header)
            writer.writerows(self.rows)
