"""Command-line entry point: ``python -m repro.bench [names...]``.

Runs the requested experiments (all of them by default) at the requested
scale and prints each rendered table; optionally writes them to a file.

One subcommand is dispatched before the experiment machinery:
``python -m repro.bench regress`` runs the deterministic work-metric
regression gate (:mod:`repro.bench.regress.cli`).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro.bench``.

    The ``regress`` subcommand is dispatched before this parser runs; its
    own parser lives in :func:`repro.bench.regress.cli.build_parser`.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(ALL_EXPERIMENTS),
        help=f"which experiments to run (default: all of {sorted(ALL_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("tiny", "small", "medium"),
        help="instance scale (default: small)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=16,
        help="simulated thread count for single-t experiments (default: 16)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the rendered tables to this file",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each experiment's rows as <csv-dir>/<id>.csv",
    )
    parser.add_argument(
        "--plots",
        action="store_true",
        help="render terminal charts for the figure experiments",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print/export their tables."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "regress":
        from repro.bench.regress.cli import main as regress_main

        return regress_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    unknown = [e for e in args.experiments if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; choose from {sorted(ALL_EXPERIMENTS)}")

    if args.csv_dir:
        import os

        os.makedirs(args.csv_dir, exist_ok=True)

    chunks = []
    for name in args.experiments:
        started = time.time()
        experiment = ALL_EXPERIMENTS[name](scale=args.scale, threads=args.threads)
        rendered = experiment.render()
        rendered += f"[{name} regenerated in {time.time() - started:.1f}s wall]\n"
        print(rendered)
        chunks.append(rendered)
        if args.plots and experiment.id in ("figure1", "figure3"):
            from repro.bench.plots import figure1_chart, figure3_chart

            chart = (
                figure1_chart(experiment.data["series"])
                if experiment.id == "figure1"
                else figure3_chart(experiment.data["curves"])
            )
            print(chart + "\n")
            chunks.append(chart + "\n")
        if args.csv_dir:
            experiment.to_csv(f"{args.csv_dir}/{experiment.id}.csv")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n".join(chunks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
