"""Terminal plots for the figure experiments (no plotting dependencies).

The environment has no matplotlib, so the harness renders figures as text:
horizontal bar charts for grouped series (Figure 1), log-scale sparklines
for the sorted cardinality curves (Figure 3), and per-matrix bar groups for
the Figure 2 sweeps.  Deterministic, pure string output — snapshot-testable.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["hbar_chart", "log_sparkline", "figure1_chart", "figure3_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar_chart(
    rows: Sequence[tuple[str, float]],
    width: int = 40,
    max_value: float | None = None,
) -> str:
    """Horizontal bar chart: one ``label │████ value`` line per row.

    Bars scale linearly to ``max_value`` (defaults to the largest value).
    """
    if not rows:
        return "(empty chart)"
    top = max_value if max_value is not None else max(v for _, v in rows)
    top = max(top, 1e-12)
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        frac = min(1.0, max(0.0, value / top))
        cells = frac * width
        full = int(cells)
        rem = cells - full
        bar = "█" * full
        if full < width and rem > 0:
            bar += _BLOCKS[int(rem * 8)]
        lines.append(f"{label.rjust(label_w)} │{bar.ljust(width)}│ {value:g}")
    return "\n".join(lines)


def log_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line log-scale sparkline of a non-negative series.

    Values are resampled to ``width`` points and mapped to eight block
    heights on a log axis (zeros render as spaces).
    """
    values = list(values)
    if not values:
        return "(empty series)"
    # Resample by taking the value at evenly spaced positions.
    if len(values) > width:
        sampled = [values[(i * len(values)) // width] for i in range(width)]
    else:
        sampled = values
    positives = [v for v in sampled if v > 0]
    if not positives:
        return " " * len(sampled)
    lo = math.log(min(positives))
    hi = math.log(max(positives))
    span = max(hi - lo, 1e-12)
    marks = "▁▂▃▄▅▆▇█"
    out = []
    for v in sampled:
        if v <= 0:
            out.append(" ")
        else:
            frac = (math.log(v) - lo) / span
            out.append(marks[min(7, int(frac * 8))])
    return "".join(out)


def figure1_chart(series: Mapping[str, Sequence[tuple[float, float]]]) -> str:
    """Render the Figure 1 per-round phase breakdown as grouped bars.

    ``series`` maps algorithm name to a list of ``(color, remove)`` cycle
    pairs per round — exactly ``Experiment.data["series"]`` of ``figure1``.
    """
    rows: list[tuple[str, float]] = []
    for alg, rounds in series.items():
        for k, (color, remove) in enumerate(rounds):
            if color == 0 and remove == 0:
                continue
            rows.append((f"{alg} r{k + 1} color", float(color)))
            rows.append((f"{alg} r{k + 1} remove", float(remove)))
    return hbar_chart(rows)


def figure3_chart(curves: Mapping[str, Sequence[float]]) -> str:
    """Render the Figure 3 sorted cardinality curves as log sparklines."""
    if not curves:
        return "(no curves)"
    label_w = max(len(name) for name in curves)
    lines = [
        f"{name.rjust(label_w)} │{log_sparkline(curve)}│ "
        f"max={int(max(curve)) if len(curve) else 0}"
        for name, curve in curves.items()
    ]
    return "\n".join(lines)
