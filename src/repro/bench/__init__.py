"""Benchmark harness regenerating every table and figure of the paper.

Each module in :mod:`repro.bench.experiments` reproduces one artifact:

====================  =====================================================
``table1``            |W_next| after the first iteration (net-based kernels)
``table2``            dataset properties + sequential BGPC baselines
``table3``            BGPC speedups, natural order (geomeans)
``table4``            BGPC speedups, smallest-last order
``table5``            D2GC speedups
``table6``            balancing heuristics impact
``figure1``           per-iteration phase breakdown on coPapers-like
``figure2``           all matrices × algorithms × thread counts
``figure3``           sorted color-class cardinality curves
``ablations``         extra design-choice sweeps (chunk size, race window,
                      B2 divisor, net-removal horizon)
====================  =====================================================

Run everything from the command line::

    python -m repro.bench            # all experiments, small scale
    python -m repro.bench table3     # one experiment
    python -m repro.bench --scale tiny table1 table6
"""

from repro.bench.tables import Experiment, render_table
from repro.bench.plots import hbar_chart, log_sparkline
from repro.bench.runner import (
    clear_cache,
    geomean,
    run_algorithm,
    run_sequential_baseline,
)

__all__ = [
    "Experiment",
    "render_table",
    "hbar_chart",
    "log_sparkline",
    "clear_cache",
    "geomean",
    "run_algorithm",
    "run_sequential_baseline",
]
