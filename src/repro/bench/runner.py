"""Shared experiment plumbing: cached coloring runs and geometric means.

Several experiments need the same ``(dataset, algorithm, threads, order,
policy)`` run — Table III, Table IV and Figure 2 all consume the Figure 2
matrix — so results are memoized per process.  The sim and numpy backends
are deterministic, so caching never changes their results; threaded runs
are pinned to their first outcome within a process.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.core.bgpc import color_bgpc, sequential_bgpc
from repro.core.d2gc import color_d2gc, sequential_d2gc
from repro.core.policies import get_policy
from repro.datasets.registry import load_d2gc_dataset, load_dataset
from repro.order import get_ordering
from repro.types import ColoringResult

__all__ = [
    "geomean",
    "iteration_report",
    "run_algorithm",
    "run_sequential_baseline",
    "clear_cache",
    "PAPER_THREADS",
]

#: Thread counts of the paper's sweeps.
PAPER_THREADS = (2, 4, 8, 16)

_cache: dict[tuple, ColoringResult] = {}


def clear_cache() -> None:
    """Drop all memoized runs, orderings and instances (mainly for tests)."""
    _cache.clear()
    _order_cache.clear()
    _instance_cache.clear()


def iteration_report(result: ColoringResult, label: str = "") -> list[tuple]:
    """Per-iteration breakdown rows of a run, for experiment tables.

    Delegates to :func:`repro.obs.iteration_breakdown` and prefixes every
    row with ``label`` (e.g. ``"N1-N2/sim"``), so experiments can stack the
    per-iteration columns of several runs in one table.  The returned rows
    include the breakdown's ``total`` (and, for NumPy runs, ``setup``)
    summary rows, whose cost column sums exactly to the run's end-to-end
    ``cycles`` / ``wall_seconds``.
    """
    from repro.obs import iteration_breakdown

    _, rows = iteration_breakdown(result)
    return [(label, *row) for row in rows] if label else rows


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, matching the paper's aggregation across matrices."""
    values = list(values)
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


_order_cache: dict[tuple, np.ndarray] = {}


def _order_for(problem: str, dataset: str, scale: str, ordering: str) -> np.ndarray | None:
    """Ordering permutation for an instance, memoized.

    Smallest-last materializes the conflict graph, which is far more
    expensive than a single coloring run — without memoization Table IV
    would recompute it once per (algorithm, thread-count) pair.
    """
    if ordering == "natural":
        return None
    key = (problem, dataset, scale, ordering)
    if key not in _order_cache:
        if problem == "bgpc":
            instance = load_dataset(dataset, scale)
        else:
            instance = load_d2gc_dataset(dataset, scale)
        _order_cache[key] = get_ordering(ordering)(instance)
    return _order_cache[key]


_instance_cache: dict[tuple, object] = {}


def _instance_for(problem: str, dataset: str, scale: str, ordering: str):
    """The (pre-permuted) instance for a run, memoized.

    Applying an ordering permutes the graph and invalidates its flattened
    two-hop cache; doing that once per (dataset, ordering) instead of once
    per run keeps the Table IV sweep tractable.  The returned colors are
    then indexed by *permuted* ids, which is fine for the harness: it only
    consumes cycle counts and palette sizes.
    """
    key = (problem, dataset, scale, ordering)
    if key not in _instance_cache:
        base = (
            load_dataset(dataset, scale)
            if problem == "bgpc"
            else load_d2gc_dataset(dataset, scale)
        )
        order = _order_for(problem, dataset, scale, ordering)
        if order is None:
            _instance_cache[key] = base
        elif problem == "bgpc":
            _instance_cache[key] = base.permute_vertices(order)
        else:
            _instance_cache[key] = base.permute(order)
    return _instance_cache[key]


def run_sequential_baseline(
    dataset: str,
    scale: str = "small",
    problem: str = "bgpc",
    ordering: str = "natural",
) -> ColoringResult:
    """Sequential greedy baseline (memoized)."""
    key = ("seq", problem, dataset, scale, ordering)
    if key not in _cache:
        instance = _instance_for(problem, dataset, scale, ordering)
        if problem == "bgpc":
            result = sequential_bgpc(instance)
        else:
            result = sequential_d2gc(instance)
        _cache[key] = result
    return _cache[key]


def run_algorithm(
    dataset: str,
    algorithm: str,
    threads: int,
    scale: str = "small",
    problem: str = "bgpc",
    ordering: str = "natural",
    policy_name: str = "U",
    backend: str = "sim",
    fastpath_mode: str = "exact",
) -> ColoringResult:
    """One parallel coloring run (memoized).

    ``backend`` accepts any name from the execution-backend registry
    (:func:`repro.core.backends.backend_names`): ``"numpy"`` runs the
    vectorized fast path and ``"threaded"`` runs real Python threads;
    both carry wall seconds rather than cycles, so the cycle-based
    experiment tables should keep the default ``"sim"``.  Threaded runs
    are nondeterministic across processes; memoization within a process
    still returns one stable result per key.
    """
    key = (
        "par",
        problem,
        dataset,
        scale,
        algorithm,
        threads,
        ordering,
        policy_name,
        backend,
        fastpath_mode,
    )
    if key not in _cache:
        instance = _instance_for(problem, dataset, scale, ordering)
        policy = None if policy_name == "U" else get_policy(policy_name)
        if problem == "bgpc":
            result = color_bgpc(
                instance,
                algorithm=algorithm,
                threads=threads,
                policy=policy,
                backend=backend,
                fastpath_mode=fastpath_mode,
            )
        else:
            result = color_d2gc(
                instance,
                algorithm=algorithm,
                threads=threads,
                policy=policy,
                backend=backend,
                fastpath_mode=fastpath_mode,
            )
        _cache[key] = result
    return _cache[key]
