"""Scaling — measured wall-clock speedup vs worker count (Figure 2's shape).

The paper's Figure 2 plots *real* multicore speedup curves on a 16-core
Xeon; the simulator reproduces their shape in cycles, but only the
wall-clock backends can reproduce them in seconds.  This experiment sweeps
worker counts on the two real-parallel backends over the default synthetic
BGPC instance and reports measured speedup-vs-threads:

* ``threaded`` — real Python threads: the GIL interleaves, so the curve is
  flat (or worse); included as the baseline that motivates the process
  backend.
* ``process`` — the shared-memory worker-process pool
  (:class:`repro.core.backends.ProcessBackend`): kernels genuinely
  overlap, so wall-clock drops as workers are added until IPC dispatch
  overhead bites.

Speedup is normalized per backend (one worker of the same backend = 1.0),
so the two curves isolate *scaling* from per-backend constant factors; the
notes line compares the two backends head-to-head at the top sweep point,
which is the reproduction of the paper's headline claim that greedy
speculative coloring scales on real cores.
"""

from __future__ import annotations

import os

from repro.bench.runner import run_algorithm
from repro.bench.tables import Experiment

__all__ = ["run", "SCALING_BACKENDS", "SCALING_ALG"]

#: Real-parallel (wall-clock) backends the sweep compares.
SCALING_BACKENDS = ("threaded", "process")

#: The paper's engineered vertex-based schedule: heavy per-task kernels
#: with dynamic chunk-64 dispatch — the most scheduler-sensitive variant.
SCALING_ALG = "V-V-64D"


def _sweep(max_threads: int) -> tuple[int, ...]:
    """Powers of two up to ``max_threads`` (always at least ``(1,)``)."""
    points = [1]
    while points[-1] * 2 <= max_threads:
        points.append(points[-1] * 2)
    return tuple(points)


def run(scale: str = "small", threads: int = 4, dataset: str = "copapers") -> Experiment:
    """Sweep worker counts on both wall-clock backends; render speedups."""
    sweep = _sweep(max(1, threads))
    header = ["backend", "workers", "wall ms", "speedup", "efficiency"]
    rows: list[tuple] = []
    walls: dict[tuple[str, int], float] = {}
    for backend in SCALING_BACKENDS:
        base = None
        for t in sweep:
            result = run_algorithm(
                dataset, SCALING_ALG, t, scale, backend=backend
            )
            wall = result.wall_seconds
            walls[(backend, t)] = wall
            if base is None:
                base = wall
            speedup = base / wall if wall > 0 else float("nan")
            rows.append((backend, t, wall * 1e3, speedup, speedup / t))
    top = sweep[-1]
    ratio = (
        walls[("threaded", top)] / walls[("process", top)]
        if walls.get(("process", top))
        else float("nan")
    )
    cores = os.cpu_count() or 1
    notes = (
        f"{SCALING_ALG} on {dataset}/{scale}; speedup is vs 1 worker of the "
        f"same backend.  At {top} workers the process backend is "
        f"{ratio:.2f}x the threaded wall-clock (GIL interleaves, processes "
        "overlap) — the paper's Figure 2 shows the same schedules reaching "
        f"near-linear speedup on 16 real cores.  This host has {cores} "
        "core(s); with fewer cores than workers the curves measure dispatch "
        "overhead only, since no backend can physically overlap kernels."
    )
    return Experiment(
        id="scaling",
        title=f"wall-clock speedup vs workers on {dataset} "
        f"(threaded vs process backends, up to {top} workers)",
        header=header,
        rows=rows,
        notes=notes,
        data={
            "walls": {f"{b}/{t}": w for (b, t), w in walls.items()},
            "host_cores": cores,
        },
    )
