"""Figure 1 — per-iteration phase breakdown on the coPapers-like instance.

The paper plots, for six algorithms at 16 threads, the coloring and
conflict-removal time of each of the first five rounds on coPapersDBLP.
The figure carries the paper's three take-aways:

1. most of the time goes to coloring (not removal),
2. most of the time goes to the first iterations,
3. net-based removal every iteration eventually back-fires (V-N∞), while
   one iteration of net-based coloring (N1-N2) wins the first round big.
"""

from __future__ import annotations

from repro.bench.runner import run_algorithm
from repro.bench.tables import Experiment

__all__ = ["run", "FIGURE1_ALGS"]

FIGURE1_ALGS = ("V-V-64D", "V-Ninf", "V-N1", "V-N2", "N1-N2", "N2-N2")

ROUNDS = 5


def run(scale: str = "small", threads: int = 16, dataset: str = "copapers") -> Experiment:
    """Regenerate the Figure 1 per-iteration breakdown."""
    rows = []
    series: dict = {}
    for alg in FIGURE1_ALGS:
        result = run_algorithm(dataset, alg, threads, scale)
        per_round = []
        for k in range(ROUNDS):
            if k < len(result.iterations):
                rec = result.iterations[k]
                color = rec.color_timing.cycles if rec.color_timing else 0.0
                remove = rec.remove_timing.cycles if rec.remove_timing else 0.0
            else:
                color = remove = 0.0
            per_round.append((color, remove))
            rows.append(
                (
                    alg,
                    k + 1,
                    int(per_round[k][0]),
                    int(per_round[k][1]),
                )
            )
        series[alg] = per_round
    # The paper's take-aways, checked on the measured data.
    total_color = sum(c for s in series.values() for c, _ in s)
    total_remove = sum(r for s in series.values() for _, r in s)
    # The "78% in the first iteration / 89% in the first two" statistic is
    # about the standard vertex-based algorithm's runtime distribution.
    v64d = series["V-V-64D"]
    v64d_total = sum(c + r for c, r in v64d)
    share1 = sum(v64d[0]) / max(1, v64d_total)
    share2 = (sum(v64d[0]) + sum(v64d[1])) / max(1, v64d_total)
    n1n2_first = sum(series["N1-N2"][0])
    v64d_first = sum(series["V-V-64D"][0])
    notes = (
        f"coloring / removal cycle split: {total_color / max(1, total_color + total_remove):.0%} coloring "
        "(paper: most of the time is coloring).\n"
        f"V-V-64D share of cycles in round 1: {share1:.0%}, rounds 1-2: {share2:.0%} "
        "(paper: ~78% / ~89%; our late rounds are fatter because the "
        "requeued hubs are a larger fraction of the scaled-down instance).\n"
        f"N1-N2 round 1 vs V-V-64D round 1: {n1n2_first / max(1, v64d_first):.2f}x "
        "(paper: net-based coloring wins the first round)."
    )
    return Experiment(
        id="figure1",
        title=f"per-iteration cycles on {dataset} ({threads} threads, "
        f"first {ROUNDS} rounds)",
        header=["alg", "round", "coloring cycles", "removal cycles"],
        rows=rows,
        notes=notes,
        data={"series": series},
    )
