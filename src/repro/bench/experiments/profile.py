"""Profile — per-iteration observability breakdown on both backends.

Not a paper table, but the measurement behind the paper's headline claim:
Figure 1 shows 78–89% of BGPC runtime concentrated in the first one or two
iterations, which is what justifies the hybrid ``V-N1``/``N1-N2`` kernel
schedules.  This experiment renders the :mod:`repro.obs` per-iteration
breakdown for a vertex-based baseline and the paper's winner on the
coPapers-like instance — on the simulator (cycles), on the NumPy fast
path, and on real threads (both in measured wall milliseconds) — so the
iteration-dominance shape can be eyeballed in one table.
"""

from __future__ import annotations

from repro.bench.runner import iteration_report, run_algorithm
from repro.bench.tables import Experiment

__all__ = ["run", "PROFILE_ALGS"]

#: (algorithm, backend, fastpath mode) combinations profiled.  Wall-clock
#: backends (numpy, threaded) report measured milliseconds per round.
PROFILE_ALGS = (
    ("V-V-64D", "sim", "exact"),
    ("N1-N2", "sim", "exact"),
    ("N1-N2", "numpy", "speculative"),
    ("V-V-64D", "threaded", "exact"),
)


def run(scale: str = "small", threads: int = 16, dataset: str = "copapers") -> Experiment:
    """Render the per-iteration breakdown table for the profile matrix."""
    header = [
        "run",
        "iter",
        "|W|",
        "conflicts",
        "colors+",
        "cost (cycles | wall ms)",
        "share",
    ]
    rows: list[tuple] = []
    first_share: dict[str, float] = {}
    combos = PROFILE_ALGS
    from repro.core.compiled import numba_available

    if numba_available():
        # Profile the numba-JIT twin next to numpy where it can run.
        combos = combos + (("N1-N2", "compiled", "speculative"),)
    for alg, backend, mode in combos:
        result = run_algorithm(
            dataset, alg, threads, scale, backend=backend, fastpath_mode=mode
        )
        label = f"{alg}/{backend}"
        for row in iteration_report(result, label=label):
            if backend == "sim":
                # Collapse the per-phase cycle columns into one cost cell.
                label_, it, w, conflicts, colors, _c, _r, cyc, share = row
                rows.append((label_, it, w, conflicts, colors, cyc, share))
            else:
                label_, it, w, conflicts, colors, ms, share = row
                rows.append((label_, it, w, conflicts, colors, round(ms, 3), share))
        total = result.cycles if backend == "sim" else result.wall_seconds
        if result.iterations and total > 0:
            first = result.iterations[0]
            first_cost = (
                first.cycles if backend == "sim" else first.wall_seconds
            )
            first_share[label] = first_cost / total
    notes_bits = ", ".join(
        f"{label}: {share:.0%}" for label, share in first_share.items()
    )
    notes = (
        f"first-iteration share of total cost — {notes_bits} "
        "(paper Figure 1: 78% of V-V runtime in round 1, 89% in rounds 1-2)."
    )
    return Experiment(
        id="profile",
        title=f"per-iteration observability breakdown on {dataset} "
        f"({threads} simulated threads)",
        header=header,
        rows=rows,
        notes=notes,
    )
