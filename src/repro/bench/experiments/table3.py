"""Table III — BGPC speedups with the natural column order.

Geometric means over the eight instances of the speedup over the
*sequential* V-V baseline at t ∈ {2, 4, 8, 16}, the speedup over *parallel*
V-V at t = 16, and the 16-thread color count normalized to V-V's.

Paper values (for the notes column):

========  ======  =====  =====  =====  ======  =========
alg       colors  t=2    t=4    t=8    t=16    /V-V@16
========  ======  =====  =====  =====  ======  =========
V-V        1.00   0.74   1.24   1.88    2.76    1.00
V-V-64     1.01   0.81   1.40   2.36    4.00    1.45
V-V-64D    1.01   0.85   1.46   2.41    4.05    1.47
V-N∞       1.01   1.47   2.34   3.65    5.84    2.11
V-N1       1.01   1.48   2.35   3.64    5.85    2.11
V-N2       1.01   1.49   2.37   3.71    6.01    2.17
N1-N2      1.08   2.39   4.24   7.17   11.38    4.12
N2-N2      1.07   1.44   2.63   4.57    7.50    2.71
========  ======  =====  =====  =====  ======  =========
"""

from __future__ import annotations

from repro.bench.runner import (
    PAPER_THREADS,
    geomean,
    run_algorithm,
    run_sequential_baseline,
)
from repro.bench.tables import Experiment
from repro.core.bgpc import BGPC_ALGORITHMS
from repro.datasets.registry import bgpc_dataset_names

__all__ = ["run", "speedup_table", "PAPER_TABLE3"]

PAPER_TABLE3 = {
    "V-V": (1.00, 0.74, 1.24, 1.88, 2.76, 1.00),
    "V-V-64": (1.01, 0.81, 1.40, 2.36, 4.00, 1.45),
    "V-V-64D": (1.01, 0.85, 1.46, 2.41, 4.05, 1.47),
    "V-Ninf": (1.01, 1.47, 2.34, 3.65, 5.84, 2.11),
    "V-N1": (1.01, 1.48, 2.35, 3.64, 5.85, 2.11),
    "V-N2": (1.01, 1.49, 2.37, 3.71, 6.01, 2.17),
    "N1-N2": (1.08, 2.39, 4.24, 7.17, 11.38, 4.12),
    "N2-N2": (1.07, 1.44, 2.63, 4.57, 7.50, 2.71),
}


def speedup_table(ordering: str, scale: str) -> tuple[list[tuple], dict]:
    """Rows of (alg, colors-ratio, speedups..., /V-V@16) plus raw data."""
    names = bgpc_dataset_names()
    seq = {n: run_sequential_baseline(n, scale, ordering=ordering) for n in names}
    vv16 = {
        n: run_algorithm(n, "V-V", 16, scale, ordering=ordering) for n in names
    }
    rows = []
    raw: dict = {}
    for alg in BGPC_ALGORITHMS:
        speeds = []
        for t in PAPER_THREADS:
            ratio = [
                seq[n].cycles / run_algorithm(n, alg, t, scale, ordering=ordering).cycles
                for n in names
            ]
            speeds.append(geomean(ratio))
        colors = geomean(
            run_algorithm(n, alg, 16, scale, ordering=ordering).num_colors
            / seq[n].num_colors
            for n in names
        )
        over_vv = geomean(
            vv16[n].cycles / run_algorithm(n, alg, 16, scale, ordering=ordering).cycles
            for n in names
        )
        rows.append((alg, round(colors, 3), *[round(s, 2) for s in speeds], round(over_vv, 2)))
        raw[alg] = {"colors": colors, "speedups": speeds, "over_vv16": over_vv}
    return rows, raw


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Regenerate Table III (BGPC speedups, natural order)."""
    rows, raw = speedup_table("natural", scale)
    lines = ["Paper Table III (colors, t2, t4, t8, t16, /V-V@16):"]
    for alg, vals in PAPER_TABLE3.items():
        lines.append(f"  {alg:8s} " + "  ".join(f"{v:5.2f}" for v in vals))
    n1n2 = raw["N1-N2"]["speedups"][-1]
    vv = raw["V-V"]["speedups"][-1]
    lines.append(
        f"Shape: N1-N2 is {n1n2 / vv:.1f}x the V-V speedup at t=16 "
        f"(paper: {11.38 / 2.76:.1f}x)."
    )
    return Experiment(
        id="table3",
        title="BGPC speedups over sequential V-V, natural order (geomean of 8)",
        header=["alg", "colors/V-V", "t=2", "t=4", "t=8", "t=16", "/V-V@16"],
        rows=rows,
        notes="\n".join(lines),
        data=raw,
    )
