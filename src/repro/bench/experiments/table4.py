"""Table IV — BGPC speedups with the smallest-last column order.

Same aggregation as Table III but the columns are pre-ordered with
ColPack's smallest-last heuristic.  Paper shape: the sequential baseline is
slower under SL than natural, so every speedup grows; N1-N2 reaches 16.76×
over sequential V-V and 4.43× over parallel V-V at 16 threads, with ≈ +9 %
colors.
"""

from __future__ import annotations

from repro.bench.experiments.table3 import speedup_table
from repro.bench.tables import Experiment

__all__ = ["run", "PAPER_TABLE4"]

PAPER_TABLE4 = {
    "V-V": (1.00, 0.93, 1.65, 2.81, 3.78, 1.00),
    "V-V-64": (1.01, 0.99, 1.89, 3.55, 6.41, 1.70),
    "V-V-64D": (0.99, 1.04, 1.99, 3.75, 6.86, 1.81),
    "V-Ninf": (1.00, 1.62, 3.01, 5.41, 9.20, 2.43),
    "V-N1": (1.01, 1.71, 3.19, 5.83, 10.07, 2.66),
    "V-N2": (0.99, 1.72, 3.21, 5.87, 10.09, 2.67),
    "N1-N2": (1.09, 3.47, 6.26, 10.82, 16.76, 4.43),
    "N2-N2": (1.10, 2.24, 4.04, 6.94, 11.19, 2.96),
}


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Regenerate Table IV (BGPC speedups, smallest-last order)."""
    rows, raw = speedup_table("smallest-last", scale)
    lines = ["Paper Table IV (colors, t2, t4, t8, t16, /V-V@16):"]
    for alg, vals in PAPER_TABLE4.items():
        lines.append(f"  {alg:8s} " + "  ".join(f"{v:5.2f}" for v in vals))
    return Experiment(
        id="table4",
        title="BGPC speedups over sequential V-V, smallest-last order "
        "(geomean of 8)",
        header=["alg", "colors/V-V", "t=2", "t=4", "t=8", "t=16", "/V-V@16"],
        rows=rows,
        notes="\n".join(lines),
        data=raw,
    )
