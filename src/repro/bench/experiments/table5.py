"""Table V — D2GC speedups on the structurally symmetric instances.

The paper reports four variants on the five symmetric matrices: speedups
over the sequential V-V baseline at t ∈ {2, 4, 8, 16}, the speedup over
parallel V-V-64D at 16 threads, and colors normalized to V-V:

=========  ======  =====  =====  =====  ======  ==========
alg        colors  t=2    t=4    t=8    t=16    /64D@16
=========  ======  =====  =====  =====  ======  ==========
V-V-64D     1.04   1.38   2.18   3.46    6.11    1.00
V-N1        1.04   2.32   3.38   5.22    8.97    1.39
V-N2        1.04   2.27   3.37   5.24    8.87    1.37
N1-N2       1.09   2.49   4.44   7.85   13.20    2.00
=========  ======  =====  =====  =====  ======  ==========
"""

from __future__ import annotations

from repro.bench.runner import (
    PAPER_THREADS,
    geomean,
    run_algorithm,
    run_sequential_baseline,
)
from repro.bench.tables import Experiment
from repro.datasets.registry import d2gc_dataset_names

__all__ = ["run", "PAPER_TABLE5", "D2GC_VARIANTS"]

D2GC_VARIANTS = ("V-V-64D", "V-N1", "V-N2", "N1-N2")

PAPER_TABLE5 = {
    "V-V-64D": (1.04, 1.38, 2.18, 3.46, 6.11, 1.00),
    "V-N1": (1.04, 2.32, 3.38, 5.22, 8.97, 1.39),
    "V-N2": (1.04, 2.27, 3.37, 5.24, 8.87, 1.37),
    "N1-N2": (1.09, 2.49, 4.44, 7.85, 13.20, 2.00),
}


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Regenerate Table V (D2GC speedups on the symmetric instances)."""
    names = d2gc_dataset_names()
    seq = {
        n: run_sequential_baseline(n, scale, problem="d2gc") for n in names
    }
    base64d = {
        n: run_algorithm(n, "V-V-64D", 16, scale, problem="d2gc") for n in names
    }
    rows = []
    raw: dict = {}
    for alg in D2GC_VARIANTS:
        speeds = [
            geomean(
                seq[n].cycles
                / run_algorithm(n, alg, t, scale, problem="d2gc").cycles
                for n in names
            )
            for t in PAPER_THREADS
        ]
        colors = geomean(
            run_algorithm(n, alg, 16, scale, problem="d2gc").num_colors
            / seq[n].num_colors
            for n in names
        )
        over = geomean(
            base64d[n].cycles
            / run_algorithm(n, alg, 16, scale, problem="d2gc").cycles
            for n in names
        )
        rows.append(
            (alg, round(colors, 3), *[round(s, 2) for s in speeds], round(over, 2))
        )
        raw[alg] = {"colors": colors, "speedups": speeds, "over_64d": over}
    lines = ["Paper Table V (colors, t2, t4, t8, t16, /V-V-64D@16):"]
    for alg, vals in PAPER_TABLE5.items():
        lines.append(f"  {alg:8s} " + "  ".join(f"{v:5.2f}" for v in vals))
    lines.append(
        "Shape: N1-N2 about 2x over V-V-64D at t=16 with a few percent more "
        "colors (paper: 2.00x, +5%)."
    )
    lines.append(
        "The paper averages 10 runs per triplet; this simulation is "
        "deterministic, so one run is exact."
    )
    return Experiment(
        id="table5",
        title="D2GC speedups over the sequential baseline "
        f"(geomean of {len(names)} symmetric instances)",
        header=["alg", "colors/seq", "t=2", "t=4", "t=8", "t=16", "/64D@16"],
        rows=rows,
        notes="\n".join(lines),
        data=raw,
    )
