"""Table VI — impact of the B1/B2 balancing heuristics (16 threads).

For V-N2 and N1-N2 the paper normalizes four metrics of the B1/B2 runs to
the unbalanced (-U) runs: coloring time, number of color sets, average set
cardinality and cardinality standard deviation:

==========  =====  =======  =====  =====
variant     time   #sets    card   std
==========  =====  =======  =====  =====
V-N2-U      1.00   1.00     1.00   1.00
V-N2-B1     0.95   1.04     0.96   0.69
V-N2-B2     0.95   1.13     0.89   0.25
N1-N2-U     1.00   1.00     1.00   1.00
N1-N2-B1    0.99   1.04     0.96   0.84
N1-N2-B2    0.99   1.09     0.91   0.62
==========  =====  =======  =====  =====

Shape: balancing is (nearly) free in time; std drops substantially, more
aggressively for B2; colors increase by a few percent.
"""

from __future__ import annotations

from repro.bench.runner import geomean, run_algorithm
from repro.bench.tables import Experiment
from repro.core.metrics import color_stats
from repro.datasets.registry import bgpc_dataset_names

__all__ = ["run", "PAPER_TABLE6", "BALANCE_ALGS", "POLICY_NAMES"]

BALANCE_ALGS = ("V-N2", "N1-N2")
POLICY_NAMES = ("U", "B1", "B2")

PAPER_TABLE6 = {
    ("V-N2", "U"): (1.00, 1.00, 1.00, 1.00),
    ("V-N2", "B1"): (0.95, 1.04, 0.96, 0.69),
    ("V-N2", "B2"): (0.95, 1.13, 0.89, 0.25),
    ("N1-N2", "U"): (1.00, 1.00, 1.00, 1.00),
    ("N1-N2", "B1"): (0.99, 1.04, 0.96, 0.84),
    ("N1-N2", "B2"): (0.99, 1.09, 0.91, 0.62),
}


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Regenerate Table VI (balancing heuristics impact)."""
    names = bgpc_dataset_names()
    metrics: dict[tuple, dict] = {}
    for alg in BALANCE_ALGS:
        for pol in POLICY_NAMES:
            per = {"time": [], "sets": [], "card": [], "std": []}
            for n in names:
                result = run_algorithm(n, alg, threads, scale, policy_name=pol)
                stats = color_stats(result.colors)
                per["time"].append(result.cycles)
                per["sets"].append(stats.num_colors)
                per["card"].append(stats.mean)
                # Guard: an (unlikely) zero std would break the geomean.
                per["std"].append(max(stats.std, 1e-9))
            metrics[(alg, pol)] = per
    rows = []
    raw: dict = {}
    for alg in BALANCE_ALGS:
        base = metrics[(alg, "U")]
        for pol in POLICY_NAMES:
            cur = metrics[(alg, pol)]
            vals = {
                k: geomean(c / b for c, b in zip(cur[k], base[k]))
                for k in ("time", "sets", "card", "std")
            }
            rows.append(
                (
                    f"{alg}-{pol}",
                    round(vals["time"], 2),
                    round(vals["sets"], 2),
                    round(vals["card"], 2),
                    round(vals["std"], 2),
                )
            )
            raw[f"{alg}-{pol}"] = vals
    lines = ["Paper Table VI (time, #sets, card, std):"]
    for (alg, pol), vals in PAPER_TABLE6.items():
        lines.append(f"  {alg}-{pol:2s} " + "  ".join(f"{v:4.2f}" for v in vals))
    lines.append(
        "Shape: time ~1.0 (balancing is free), std(B2) < std(B1) < 1, a few "
        "percent more color sets."
    )
    return Experiment(
        id="table6",
        title=f"balancing heuristics, normalized to -U ({threads} threads, "
        "geomean of 8)",
        header=["variant", "time", "#sets", "avg card", "std"],
        rows=rows,
        notes="\n".join(lines),
        data=raw,
    )
