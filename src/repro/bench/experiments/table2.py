"""Table II — dataset properties and sequential BGPC baselines.

For every instance: matrix dimensions, max/std of the column degrees, the
sequential greedy execution (simulated cycles) and color count under the
natural order, the same under the smallest-last order, and the D2GC
eligibility flag.  Paper shape: smallest-last reduces colors on most
matrices while being somewhat slower to run end-to-end (ordering time is
excluded, as in the paper).
"""

from __future__ import annotations

from repro.bench.runner import run_sequential_baseline
from repro.bench.tables import Experiment
from repro.datasets.registry import DATASETS, bgpc_dataset_names, load_dataset
from repro.graph.stats import dataset_properties

__all__ = ["run"]


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Regenerate Table II (dataset properties + sequential baselines)."""
    rows = []
    sl_reduces = 0
    for name in bgpc_dataset_names():
        bg = load_dataset(name, scale)
        props = dataset_properties(name, bg)
        nat = run_sequential_baseline(name, scale, ordering="natural")
        sl = run_sequential_baseline(name, scale, ordering="smallest-last")
        if sl.num_colors <= nat.num_colors:
            sl_reduces += 1
        rows.append(
            (
                name,
                DATASETS[name].paper_name,
                props.num_rows,
                props.num_cols,
                props.nnz,
                props.max_row_degree,
                round(props.row_degree_std, 2),
                int(nat.cycles),
                nat.num_colors,
                int(sl.cycles),
                sl.num_colors,
                "yes" if props.structurally_symmetric else "no",
            )
        )
    notes = (
        "Columns mirror paper Table II: sizes, degree stats, sequential BGPC "
        "cycles+colors for natural and smallest-last orders, D2GC flag.\n"
        f"Smallest-last reduces (or matches) colors on {sl_reduces} of "
        f"{len(rows)} instances (paper: most of 8)."
    )
    return Experiment(
        id="table2",
        title="dataset properties and sequential BGPC baselines",
        header=[
            "name",
            "stands for",
            "#rows",
            "#cols",
            "#nnz",
            "deg max (L)",
            "deg std",
            "nat cycles",
            "nat #colors",
            "SL cycles",
            "SL #colors",
            "D2GC",
        ],
        rows=rows,
        notes=notes,
        data={"sl_reduces": sl_reduces},
    )
