"""Incremental recoloring vs full recolor over a sweep of delta sizes.

The claim behind ``repro.core.incremental`` (see ``docs/incremental.md``)
is economic: when a small fraction of the edges changes, re-running the
speculative loop only on the invalidated two-hop frontier should cost
orders of magnitude less work than recoloring the mutated graph from
scratch.  This experiment measures that claim with the deterministic
work-metric counters (probes + conflict checks — the same numbers the
perf-regression gate compares), not wall clock.

For each delta fraction f we mutate ``af_shell`` by deleting and
inserting ``round(f * |E|)`` edges each (deterministic RNG), then color
the mutated graph twice: from scratch with :func:`color_bgpc`, and
incrementally with :func:`recolor_incremental` seeded from the base
coloring.  Both runs use the same vertex-based schedule, so the ratio
isolates the frontier restriction.  ``data["rows"]`` carries the raw
numbers for the CI ``incremental-smoke`` job, which asserts the >= 10x
bar on the small-delta rows.
"""

from __future__ import annotations

import numpy as np

from repro.bench.tables import Experiment
from repro.core.bgpc import color_bgpc
from repro.core.incremental import recolor_incremental
from repro.core.validate import validate_bgpc
from repro.datasets.registry import load_dataset
from repro.graph.delta import GraphDelta, apply_delta

__all__ = ["run", "make_delta", "DELTA_FRACTIONS"]

DATASET = "af_shell"
ALGORITHM = "V-V"
#: Fractions of |E| deleted AND inserted per sweep point (so a point
#: touches 2f of the edge set).  The acceptance bar (>= 10x less work)
#: applies to the <= 0.2% rows; at 1% of a mesh the frontier covers a
#: sizable share of the vertices and the ratio legitimately shrinks.
DELTA_FRACTIONS = (0.0002, 0.001, 0.005, 0.01)


def _edge_list(bg) -> np.ndarray:
    """All (vertex, net) pairs of ``bg`` as an (m, 2) int64 array."""
    nets = bg.vtx_to_nets
    counts = np.diff(nets.ptr)
    vtx = np.repeat(np.arange(bg.num_vertices, dtype=np.int64), counts)
    return np.column_stack((vtx, nets.idx.astype(np.int64)))


def make_delta(bg, count: int, seed: int = 7) -> GraphDelta:
    """A deterministic localized delta deleting and inserting ``count`` edges.

    The churn is confined to a contiguous block of ``count // 8 + 1``
    net ids (spatially local on the structured mesh instances, whose net
    ids are laid out row-major): deletions sample existing edges of those
    nets, insertions draw absent (vertex, net) pairs into them by
    rejection sampling.  This models the incremental use case — an
    update that touches one region of the instance — rather than a
    uniformly scattered rewrite, which would invalidate a frontier far
    larger than the delta itself.
    """
    rng = np.random.default_rng(seed)
    edges = _edge_list(bg)
    pool_size = min(count // 8 + 1, bg.num_nets)
    start = int(rng.integers(max(bg.num_nets - pool_size, 1)))
    pool = np.arange(start, min(start + pool_size, bg.num_nets))

    pool_edges = edges[np.isin(edges[:, 1], pool)]
    if pool_edges.shape[0] >= count:
        delete = pool_edges[
            rng.choice(pool_edges.shape[0], size=count, replace=False)
        ]
    else:  # region too sparse to supply the deletions: fall back to global
        delete = edges[rng.choice(edges.shape[0], size=count, replace=False)]

    stride = np.int64(max(bg.num_nets, 1))
    existing = set((edges[:, 0] * stride + edges[:, 1]).tolist())
    insert: list[tuple[int, int]] = []
    chosen = set()
    while len(insert) < count:
        u = int(rng.integers(bg.num_vertices))
        n = int(pool[rng.integers(pool.size)])
        key = u * int(stride) + n
        if key in existing or key in chosen:
            continue
        chosen.add(key)
        insert.append((u, n))
    return GraphDelta(insert=np.array(insert), delete=delete)


def _work(metrics: dict) -> int:
    return int(metrics.get("probes", 0)) + int(metrics.get("conflict_checks", 0))


def run(scale: str = "small", threads: int = 16) -> Experiment:
    """Sweep delta fractions; compare full-recolor vs incremental work."""
    bg = load_dataset(DATASET, scale)
    base = color_bgpc(bg, algorithm=ALGORITHM, threads=threads)

    rows: list[tuple] = []
    raw: list[dict] = []
    for fraction in DELTA_FRACTIONS:
        count = max(1, round(fraction * bg.num_edges))
        delta = make_delta(bg, count, seed=int(1e4 * fraction) + 7)
        mutated = apply_delta(bg, delta)

        full = color_bgpc(mutated, algorithm=ALGORITHM, threads=threads)
        validate_bgpc(mutated, full.colors)
        inc = recolor_incremental(
            bg,
            base.colors,
            delta,
            algorithm=ALGORITHM,
            threads=threads,
            validate=False,
            mutated=mutated,
        )

        work_full = _work(full.work_metrics)
        work_inc = _work(inc.work_metrics)
        ratio = work_full / work_inc if work_inc else float("inf")
        rows.append(
            (
                f"{fraction:.2%}",
                f"+{count}/-{count}",
                inc.frontier_size,
                full.num_colors,
                inc.num_colors,
                work_full,
                work_inc,
                "inf" if work_inc == 0 else f"{ratio:.1f}x",
            )
        )
        raw.append(
            {
                "fraction": fraction,
                "edges_changed": 2 * count,
                "frontier": inc.frontier_size,
                "colors_full": full.num_colors,
                "colors_incremental": inc.num_colors,
                "work_full": work_full,
                "work_incremental": work_inc,
                "ratio": ratio if work_inc else None,
            }
        )

    notes = (
        f"{DATASET} ({scale}): {bg.num_vertices} vertices, "
        f"{bg.num_edges} edges; schedule {ALGORITHM}, {threads} threads, "
        "sim backend.\n"
        "work = probes + conflict checks (deterministic counters).  Each "
        "row deletes and inserts the given edge count, then colors the "
        "mutated graph from scratch (work-full) and incrementally from "
        "the base coloring (work-inc).\n"
        "Deltas are localized churn (confined to a contiguous block of "
        "nets, as in a regional mesh update).  The frontier — insertion "
        "endpoints plus every member of an inserted-into net — grows "
        "with the delta, so the ratio shrinks as the delta grows; the "
        ">= 10x acceptance bar applies to the small-delta rows "
        "(<= 0.2% of |E|)."
    )
    return Experiment(
        id="incremental",
        title=f"incremental recolor vs full recolor on {DATASET} "
        f"({ALGORITHM}, {threads} threads)",
        header=[
            "delta",
            "edges",
            "frontier",
            "colors-full",
            "colors-inc",
            "work-full",
            "work-inc",
            "ratio",
        ],
        rows=rows,
        notes=notes,
        data={"rows": raw},
    )
